//! # neural-graphics-hw
//!
//! A full reproduction of *"Hardware Acceleration of Neural Graphics"*
//! (Mubarik, Kanungo, Zirr, Kumar — ISCA 2023) as a Rust workspace:
//!
//! * [`neural`] (`ng-neural`) — the neural-graphics software substrate:
//!   instant-NGP-style multiresolution grid encodings, fully-fused-style
//!   MLPs, the four applications (NeRF, NSDF, GIA, NVR), training,
//!   rendering and synthetic scenes.
//! * [`gpu`] (`ng-gpu`) — the analytical RTX 3090 performance model that
//!   substitutes for the paper's Nsight profiling.
//! * [`ngpc`] — the paper's contribution: the Neural Fields Processor
//!   (fused input-encoding + MLP engines), the NGPC cluster, the
//!   programming model and the evaluation emulator.
//! * [`hw`] (`ng-hw`) — area/power substrate (Design Compiler / CACTI /
//!   Stillmaker–Baas substitutes).
//! * [`timeloop`] (`ng-timeloop`) — Timeloop/Accelergy-lite used to
//!   cross-validate the MLP engine.
//! * [`dse`] (`ng-dse`) — parallel design-space exploration over NGPC
//!   configurations with Pareto frontier extraction (the `dse` binary).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured numbers of every table and
//! figure.
//!
//! ```
//! use neural_graphics_hw::prelude::*;
//!
//! // How much faster is NeRF with a 64-NFP cluster?
//! let r = emulate(&EmulatorInput {
//!     app: AppKind::Nerf,
//!     nfp_units: 64,
//!     ..EmulatorInput::default()
//! });
//! assert!(r.speedup > 35.0);
//! ```

pub use ng_dse as dse;
pub use ng_gpu as gpu;
pub use ng_hw as hw;
pub use ng_neural as neural;
pub use ng_timeloop as timeloop;
pub use ngpc;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use ng_dse::{Constraints, SearchSpec, Searcher, SweepEngine, SweepSpec};
    pub use ng_gpu::{frame_time_ms, kernel_breakdown, rtx3090};
    pub use ng_neural::apps::{AppKind, EncodingKind};
    pub use ng_neural::math::Vec3;
    pub use ng_neural::train::{TrainConfig, Trainer};
    pub use ngpc::emulator::{emulate, EmulationResult, EmulatorInput};
    pub use ngpc::{NfpConfig, NgpcConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let r = emulate(&EmulatorInput::default());
        assert!(r.speedup > 1.0);
        assert!(frame_time_ms(AppKind::Gia, EncodingKind::MultiResHashGrid, 1920 * 1080) > 0.0);
    }
}
