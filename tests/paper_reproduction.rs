//! Integration tests pinning every *published* number of the paper's
//! evaluation to this reproduction, across crate boundaries.

use neural_graphics_hw::prelude::*;
use ngpc::emulator::average_speedup;
use ngpc::kernels::{kernel_speedup, AcceleratedKernel, REST_FUSION_SPEEDUP};

const FHD: u64 = 1920 * 1080;
const UHD4K: u64 = 3840 * 2160;

#[test]
fn section3_fhd_frame_times() {
    let hg = EncodingKind::MultiResHashGrid;
    assert_eq!(frame_time_ms(AppKind::Nerf, hg, FHD), 231.0);
    assert_eq!(frame_time_ms(AppKind::Nsdf, hg, FHD), 27.87);
    assert_eq!(frame_time_ms(AppKind::Gia, hg, FHD), 2.12);
    assert_eq!(frame_time_ms(AppKind::Nvr, hg, FHD), 6.32);
}

#[test]
fn section1_gap_interval() {
    // "a gap of ~1.51x to 55.50x in the desired performance"
    let hg = EncodingKind::MultiResHashGrid;
    let budget = 1000.0 / 60.0;
    let gaps: Vec<f64> =
        AppKind::ALL.iter().map(|&a| frame_time_ms(a, hg, UHD4K) / budget).collect();
    let max = gaps.iter().cloned().fold(0.0, f64::max);
    assert!((max - 55.50).abs() < 0.1);
    // GIA meets the target, so the *gap* interval starts at NVR's 1.51.
    let min_above_one = gaps.iter().cloned().filter(|g| *g > 1.0).fold(f64::MAX, f64::min);
    assert!((min_above_one - 1.51).abs() < 0.02);
}

#[test]
fn fig12_average_speedups_all_encodings() {
    let cases = [
        (EncodingKind::MultiResHashGrid, [12.94, 20.85, 33.73, 39.04]),
        (EncodingKind::MultiResDenseGrid, [9.05, 14.22, 22.57, 26.22]),
        (EncodingKind::LowResDenseGrid, [9.37, 14.66, 22.97, 26.4]),
    ];
    for (enc, targets) in cases {
        for (&n, target) in NgpcConfig::SCALING_FACTORS.iter().zip(targets) {
            let avg = average_speedup(enc, n);
            assert!(
                (avg - target).abs() / target < 0.015,
                "{enc} NGPC-{n}: {avg} vs paper {target}"
            );
        }
    }
}

#[test]
fn fig13_kernel_speedups_at_64() {
    let e = AcceleratedKernel::InputEncoding;
    let m = AcceleratedKernel::Mlp;
    assert_eq!(kernel_speedup(EncodingKind::MultiResHashGrid, e, 64), 246.0);
    assert_eq!(kernel_speedup(EncodingKind::MultiResHashGrid, m, 64), 1232.0);
    assert_eq!(kernel_speedup(EncodingKind::MultiResDenseGrid, e, 64), 379.0);
    assert_eq!(kernel_speedup(EncodingKind::MultiResDenseGrid, m, 64), 1070.0);
    assert_eq!(kernel_speedup(EncodingKind::LowResDenseGrid, e, 64), 2353.0);
    assert_eq!(kernel_speedup(EncodingKind::LowResDenseGrid, m, 64), 1451.0);
    assert_eq!(REST_FUSION_SPEEDUP, 9.94);
}

#[test]
fn fig14_headline_resolutions() {
    use ng_neural::render::image::Resolution;
    use ngpc::pixels::pixel_budget;
    let hg = EncodingKind::MultiResHashGrid;
    // NeRF: 4k at 30 FPS with NGPC-64.
    let nerf = pixel_budget(AppKind::Nerf, hg, 64, 30.0);
    assert!(nerf.ngpc_pixels >= Resolution::Uhd4k.pixels());
    // GIA + NVR: 8k at 120 FPS.
    for app in [AppKind::Gia, AppKind::Nvr] {
        let b = pixel_budget(app, hg, 64, 120.0);
        assert!(b.ngpc_pixels >= Resolution::Uhd8k.pixels(), "{app}");
    }
}

#[test]
fn fig15_area_power_percentages() {
    let area_targets = [(8u32, 4.52f64), (16, 9.04), (32, 18.01), (64, 36.18)];
    let power_targets = [(8u32, 2.75f64), (16, 5.51), (32, 11.03), (64, 22.06)];
    for ((n, a), (_, p)) in area_targets.into_iter().zip(power_targets) {
        let r = ng_hw::ngpc_area_power(n);
        assert!((r.area_pct_of_gpu - a).abs() / a < 0.06, "area NGPC-{n}: {}", r.area_pct_of_gpu);
        assert!(
            (r.power_pct_of_gpu - p).abs() / p < 0.06,
            "power NGPC-{n}: {}",
            r.power_pct_of_gpu
        );
    }
}

#[test]
fn table3_bandwidths() {
    use ngpc::bandwidth::table3;
    let rows = table3();
    let nerf = rows.iter().find(|r| r.app == AppKind::Nerf).unwrap();
    assert!((nerf.total_gbps - 231.743).abs() < 0.5);
    assert!((nerf.access_time_ms - 4.126).abs() < 0.02);
    let nsdf = rows.iter().find(|r| r.app == AppKind::Nsdf).unwrap();
    assert!((nsdf.total_gbps - 69.523).abs() < 0.2);
    assert!((nsdf.access_time_ms - 1.238).abs() < 0.01);
}

#[test]
fn emulator_against_timeloop_within_seven_percent() {
    // The paper's Fig. 13 cross-check: MLP engine model vs Timeloop +
    // Accelergy within ~7%.
    use ng_timeloop::arch::PeArray;
    use ng_timeloop::energy::EnergyTable;
    use ng_timeloop::evaluate_mlp;
    use ngpc::engine::MlpEngine;

    for (input, layers, output) in [(32usize, 3usize, 16usize), (32, 4, 1), (16, 4, 4)] {
        let mlp = ng_neural::mlp::Mlp::new(
            ng_neural::mlp::MlpConfig::neural_graphics(
                input,
                layers,
                output,
                ng_neural::math::Activation::None,
            ),
            1,
        )
        .unwrap();
        let mut engine = MlpEngine::new(&NfpConfig::default());
        engine.load_weights(&mlp);
        let batch = 50_000u64;
        let ours = engine.batch_cycles(batch) as f64;
        let ta = evaluate_mlp(
            &PeArray::nfp_mlp_engine(),
            &EnergyTable::default(),
            batch,
            input as u64,
            64,
            layers as u64,
            output as u64,
        )
        .cycles as f64;
        let diff = (ours - ta).abs() / ta;
        assert!(diff < 0.07, "{input}->{layers}x64->{output}: {diff:.3}");
    }
}

#[test]
fn amdahl_sanity_check_over_full_grid() {
    // The paper's own validation: reported speedup always under the
    // Amdahl-driven analytical bound.
    for enc in EncodingKind::ALL {
        for app in AppKind::ALL {
            for n in [1u32, 2, 8, 16, 32, 64, 128, 512] {
                let r = emulate(&EmulatorInput {
                    app,
                    encoding: enc,
                    nfp_units: n,
                    ..EmulatorInput::default()
                });
                assert!(r.speedup <= r.amdahl_bound + 1e-9, "{app}/{enc}/{n}");
                assert!(r.speedup >= 1.0 || n == 1, "{app}/{enc}/{n}: {}", r.speedup);
            }
        }
    }
}
