//! Baseline comparison backing the paper's Section III choice: "As
//! parametric encodings produce strictly better output fidelity than
//! frequency encodings, we picked parametric encoding".
//!
//! We train the same 64-wide MLP on the same high-frequency procedural
//! image with (a) the vanilla-NeRF frequency encoding and (b) the
//! multiresolution hashgrid, for the same step budget, and verify the
//! parametric encoding fits markedly better.

use ng_neural::apps::gia::GiaModel;
use ng_neural::apps::{EncodingKind, OutputDecode};
use ng_neural::data::procedural::ProceduralImage;
use ng_neural::encoding::frequency::FrequencyEncoding;
use ng_neural::encoding::Encoding;
use ng_neural::math::{Activation, Pcg32};
use ng_neural::mlp::{Adam, AdamConfig, Loss, Mlp, MlpConfig};
use ng_neural::train::{TrainConfig, Trainer};

const STEPS: usize = 120;
const BATCH: usize = 512;

/// Train an MLP on frequency-encoded inputs (no trainable encoding
/// parameters) and return the final-epoch loss.
fn train_frequency_baseline(image: &ProceduralImage) -> f32 {
    let enc = FrequencyEncoding::new(2, 10);
    let mlp_cfg = MlpConfig::neural_graphics(enc.output_dim(), 4, 3, Activation::None);
    let mut mlp = Mlp::new(mlp_cfg, 5).unwrap();
    let mut adam = Adam::new(AdamConfig::default(), mlp.param_count());
    let mut rng = Pcg32::new(7);
    let mut grads = vec![0.0f32; mlp.param_count()];
    let mut last_loss = f32::MAX;
    for _ in 0..STEPS {
        grads.iter_mut().for_each(|g| *g = 0.0);
        let mut loss_acc = 0.0f32;
        for _ in 0..BATCH {
            let (u, v) = (rng.next_f32(), rng.next_f32());
            let target = image.color_at(u, v);
            let features = enc.encode(&[u, v]).unwrap();
            let trace = mlp.forward_traced(&features).unwrap();
            let raw = trace.post.last().unwrap().clone();
            let mut decoded = raw.clone();
            OutputDecode::Color.apply(&mut decoded);
            let t = [target.x, target.y, target.z];
            let mut d_decoded = [0.0f32; 3];
            for c in 0..3 {
                loss_acc += Loss::Mse.value(decoded[c], t[c]);
                d_decoded[c] = Loss::Mse.gradient(decoded[c], t[c]);
            }
            let mut d_raw = [0.0f32; 3];
            OutputDecode::Color.gradient(&raw, &decoded, &d_decoded, &mut d_raw);
            mlp.backward(&features, &trace, &d_raw, &mut grads).unwrap();
        }
        let scale = 1.0 / (BATCH * 3) as f32;
        grads.iter_mut().for_each(|g| *g *= scale);
        adam.step(mlp.params_mut(), &grads).unwrap();
        last_loss = loss_acc * scale;
    }
    last_loss
}

#[test]
fn parametric_encoding_beats_frequency_encoding() {
    let image = ProceduralImage::new(7);

    let frequency_loss = train_frequency_baseline(&image);

    let mut hashgrid = GiaModel::new(EncodingKind::MultiResHashGrid, 5);
    let cfg = TrainConfig { steps: STEPS, batch_size: BATCH, seed: 7, ..TrainConfig::default() };
    let stats = Trainer::new(cfg).train_gia(&mut hashgrid, &image);
    let hashgrid_loss = stats.final_loss;

    assert!(
        hashgrid_loss < frequency_loss * 0.5,
        "hashgrid {hashgrid_loss} should fit far better than frequency {frequency_loss}"
    );
}

#[test]
fn all_three_parametric_encodings_learn_the_image() {
    // Each Table I encoding must make progress on the same target within
    // the same budget (the paper treats all three as viable).
    let image = ProceduralImage::new(6);
    for enc in EncodingKind::ALL {
        let mut model = GiaModel::new(enc, 3);
        let cfg = TrainConfig { steps: 60, batch_size: 512, ..TrainConfig::default() };
        let stats = Trainer::new(cfg).train_gia(&mut model, &image);
        assert!(
            stats.final_loss < stats.initial_loss * 0.7,
            "{enc}: {} -> {}",
            stats.initial_loss,
            stats.final_loss
        );
    }
}
