//! Property-based tests (proptest) on the core invariants that hold for
//! *arbitrary* inputs: encoding interpolation, hardware/software
//! equivalence, compositing physics, optimizer behaviour and the
//! emulator's ordering properties.

use neural_graphics_hw::prelude::*;
use ng_neural::apps::nsdf::NsdfModel;
use ng_neural::encoding::interp::CellPosition;
use ng_neural::encoding::{Encoding, GridConfig, MultiResGrid};
use ng_neural::render::volume::{composite_ray, RaymarchConfig};
use ngpc::engine::FusedNfp;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpolation_weights_partition_unity(
        x in 0.0f32..1.0,
        y in 0.0f32..1.0,
        z in 0.0f32..1.0,
        scale in 1u32..512,
    ) {
        let cell = CellPosition::from_normalized(&[x, y, z], scale);
        let total: f32 = (0..cell.corner_count()).map(|c| cell.corner_weight(c)).sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        for c in 0..cell.corner_count() {
            prop_assert!(cell.corner_weight(c) >= 0.0);
        }
    }

    #[test]
    fn grid_encoding_bounded_by_table_extrema(
        x in 0.0f32..1.0,
        y in 0.0f32..1.0,
        seed in 0u64..50,
    ) {
        // Interpolation is a convex combination: outputs stay within the
        // per-level table min/max.
        let grid = MultiResGrid::new(GridConfig::hashgrid(2, 8, 1.4), seed).unwrap();
        let lo = grid.params().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = grid.params().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let out = grid.encode(&[x, y]).unwrap();
        for v in out {
            prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6);
        }
    }

    #[test]
    fn hardware_matches_software_for_random_points(
        x in 0.0f32..1.0,
        y in 0.0f32..1.0,
        z in 0.0f32..1.0,
    ) {
        // One shared model per test run would be faster, but proptest
        // closures take ownership; keep the grid tiny instead.
        let model = NsdfModel::new(EncodingKind::LowResDenseGrid, 1);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        let p = [x, y, z];
        prop_assert_eq!(nfp.query(&p).unwrap(), model.field().forward(&p).unwrap());
    }

    #[test]
    fn transmittance_is_monotone_in_density(
        sigma_lo in 0.0f32..5.0,
        extra in 0.01f32..5.0,
    ) {
        let cfg = RaymarchConfig { n_samples: 32, early_stop_transmittance: 0.0 };
        let o = Vec3::ZERO;
        let d = Vec3::new(0.0, 0.0, 1.0);
        let t_lo = composite_ray(o, d, 0.0, 1.0, &cfg, |_| (Vec3::ZERO, sigma_lo)).transmittance;
        let t_hi = composite_ray(o, d, 0.0, 1.0, &cfg, |_| (Vec3::ZERO, sigma_lo + extra))
            .transmittance;
        prop_assert!(t_hi <= t_lo + 1e-6);
        prop_assert!((0.0..=1.0).contains(&t_lo));
    }

    #[test]
    fn composited_color_is_convex_in_sample_colors(
        r in 0.0f32..1.0,
        g in 0.0f32..1.0,
        b in 0.0f32..1.0,
        sigma in 0.0f32..50.0,
    ) {
        // With constant sample color c, output = (1 - T) * c; channels
        // never exceed c.
        let cfg = RaymarchConfig::default();
        let c = Vec3::new(r, g, b);
        let out = composite_ray(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), 0.0, 1.0, &cfg, |_| {
            (c, sigma)
        });
        prop_assert!(out.color.x <= c.x + 1e-5);
        prop_assert!(out.color.y <= c.y + 1e-5);
        prop_assert!(out.color.z <= c.z + 1e-5);
    }

    #[test]
    fn emulator_monotone_and_bounded(
        n1 in 1u32..256,
        n2 in 1u32..256,
    ) {
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let run = |n| emulate(&EmulatorInput { nfp_units: n, ..EmulatorInput::default() });
        let a = run(lo);
        let b = run(hi);
        prop_assert!(b.speedup + 1e-9 >= a.speedup);
        prop_assert!(a.speedup <= a.amdahl_bound + 1e-9);
        prop_assert!(b.speedup <= b.amdahl_bound + 1e-9);
    }

    #[test]
    fn adam_step_is_bounded_by_learning_rate(
        grad in prop::collection::vec(-100.0f32..100.0, 4),
        lr in 0.001f32..0.5,
    ) {
        // |update| <= lr / (1 - beta1) in the worst bias-corrected case;
        // with the first step it is ~lr per coordinate.
        use ng_neural::mlp::{Adam, AdamConfig};
        let mut adam = Adam::new(
            AdamConfig { learning_rate: lr, ..AdamConfig::default() },
            grad.len(),
        );
        let mut params = vec![0.0f32; grad.len()];
        adam.step(&mut params, &grad).unwrap();
        for (i, p) in params.iter().enumerate() {
            if grad[i] != 0.0 {
                prop_assert!(p.abs() <= lr * 1.01, "param {i} moved {p} with lr {lr}");
            }
        }
    }

    #[test]
    fn spatial_hash_stays_in_table(
        cx in 0u32..100_000,
        cy in 0u32..100_000,
        cz in 0u32..100_000,
        log2 in 4u32..24,
    ) {
        use ng_neural::encoding::hash::spatial_hash;
        prop_assert!(spatial_hash(&[cx, cy, cz], log2) < (1u32 << log2));
    }

    #[test]
    fn pipeline_makespan_bounds(
        a in 0.01f64..10.0,
        b in 0.01f64..10.0,
        n in 1u64..100,
    ) {
        use ngpc::sched::{overlapped_makespan_ms, serial_makespan_ms};
        let over = overlapped_makespan_ms(n, a, b);
        let serial = serial_makespan_ms(n, a, b);
        prop_assert!(over <= serial + 1e-9);
        // Lower bound: the busier stage must run n times.
        prop_assert!(over + 1e-9 >= n as f64 * a.max(b));
    }
}
