//! Cross-crate functional equivalence: the NFP hardware model must
//! produce bit-identical results to the `ng-neural` software reference
//! for every Table I configuration, including after training.

use neural_graphics_hw::prelude::*;
use ng_neural::apps::gia::GiaModel;
use ng_neural::apps::nsdf::NsdfModel;
use ng_neural::apps::nvr::NvrModel;
use ng_neural::data::procedural::ProceduralImage;
use ng_neural::data::sdf::SdfShape;
use ngpc::engine::FusedNfp;

fn probe_points(dim: usize, n: usize) -> Vec<Vec<f32>> {
    let mut rng = ng_neural::math::Pcg32::new(0xE0);
    (0..n).map(|_| (0..dim).map(|_| rng.next_f32()).collect()).collect()
}

#[test]
fn nsdf_equivalence_all_encodings() {
    for enc in EncodingKind::ALL {
        let model = NsdfModel::new(enc, 31);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        for p in probe_points(3, 25) {
            assert_eq!(
                nfp.query(&p).unwrap(),
                model.field().forward(&p).unwrap(),
                "{enc} diverged at {p:?}"
            );
        }
    }
}

#[test]
fn gia_equivalence_all_encodings() {
    for enc in EncodingKind::ALL {
        let model = GiaModel::new(enc, 17);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        for p in probe_points(2, 25) {
            assert_eq!(nfp.query(&p).unwrap(), model.field().forward(&p).unwrap(), "{enc}");
        }
    }
}

#[test]
fn nvr_equivalence_all_encodings() {
    for enc in EncodingKind::ALL {
        let model = NvrModel::new(enc, 23);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        for p in probe_points(3, 25) {
            assert_eq!(nfp.query(&p).unwrap(), model.field().forward(&p).unwrap(), "{enc}");
        }
    }
}

#[test]
fn equivalence_survives_training() {
    // Train a model, reconfigure the NFP with the trained tables, and
    // re-check equivalence — guards against stale-table bugs.
    let shape = SdfShape::centered_sphere(0.27);
    let mut model = NsdfModel::new(EncodingKind::MultiResDenseGrid, 9);
    let cfg = TrainConfig { steps: 30, batch_size: 256, ..TrainConfig::default() };
    Trainer::new(cfg).train_nsdf(&mut model, move |p| shape.distance(p), 0.2);
    let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
    for p in probe_points(3, 40) {
        assert_eq!(nfp.query(&p).unwrap(), model.field().forward(&p).unwrap());
    }
}

#[test]
fn cluster_equivalence_matches_single_nfp() {
    use ngpc::cluster::Ngpc;
    let model = NsdfModel::new(EncodingKind::LowResDenseGrid, 4);
    let mut cluster = Ngpc::new(NgpcConfig::with_units(8), model.field()).unwrap();
    let mut flat = Vec::new();
    let probes = probe_points(3, 100);
    for p in &probes {
        flat.extend_from_slice(p);
    }
    let (out, _) = cluster.run_batch(&flat).unwrap();
    for (i, p) in probes.iter().enumerate() {
        assert_eq!(out[i], model.field().forward(p).unwrap()[0], "query {i}");
    }
}

#[test]
fn trained_gia_on_hardware_reconstructs_image() {
    // The full story: train in software, deploy on the modelled
    // accelerator, verify reconstruction quality through the hardware
    // path.
    let image = ProceduralImage::new(5);
    let mut model = GiaModel::new(EncodingKind::MultiResHashGrid, 77);
    let cfg = TrainConfig { steps: 120, batch_size: 1024, ..TrainConfig::default() };
    Trainer::new(cfg).train_gia(&mut model, &image);
    let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
    let mut err = 0.0f64;
    let n = 24;
    for i in 0..n {
        for j in 0..n {
            let (u, v) = ((i as f32 + 0.5) / n as f32, (j as f32 + 0.5) / n as f32);
            let mut raw = nfp.query(&[u, v]).unwrap();
            model.decode().apply(&mut raw);
            let truth = image.color_at(u, v);
            err += ((raw[0] - truth.x).powi(2)
                + (raw[1] - truth.y).powi(2)
                + (raw[2] - truth.z).powi(2)) as f64;
        }
    }
    let mse = err / (3 * n * n) as f64;
    let psnr = 10.0 * (1.0 / mse).log10();
    assert!(psnr > 20.0, "hardware-path reconstruction PSNR {psnr:.1} dB");
}
