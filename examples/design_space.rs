//! Design-space exploration with `ng-dse`: sweep NFP counts, clocks and
//! encodings in parallel, extract the Pareto frontier over
//! {speedup, area, power}, and read off the trade-off a real architect
//! would take from Figs. 12 and 15 together.
//!
//! Run with: `cargo run --release --example design_space`

use ng_dse::report::frontier_table;
use ng_dse::{Constraints, SweepEngine, SweepSpec};

fn main() {
    // The paper's axes plus a clock sweep, declared instead of nested
    // loops; evaluation is parallel, cached, and deterministic.
    let spec = SweepSpec {
        name: "design-space-example".to_string(),
        nfp_units: vec![4, 8, 16, 32, 64, 128],
        clock_ghz: vec![0.5, 1.0, 2.0],
        ..SweepSpec::default()
    };
    let outcome = SweepEngine::new().run(&spec).expect("valid spec");
    println!(
        "evaluated {} points in {:.1} ms ({}; {} threads)\n",
        outcome.stats.total_points,
        outcome.stats.wall.as_secs_f64() * 1e3,
        if outcome.stats.cache_hit { "cache hit" } else { "cache miss" },
        outcome.stats.threads,
    );

    println!("unconstrained cross-app frontier (hashgrid, FHD):");
    print!("{}", frontier_table(&outcome.cross_app_frontier(&Constraints::NONE), 20));

    // The budget question the paper's Fig. 15 invites: what is the best
    // architecture costing at most 10% of the die and 10% of TDP?
    let budget = Constraints {
        max_area_pct: Some(10.0),
        max_power_pct: Some(10.0),
        ..Constraints::default()
    };
    let affordable = outcome.cross_app_frontier(&budget);
    println!("\nwithin a 10% area / 10% power budget:");
    print!("{}", frontier_table(&affordable, 20));
    if let Some(best) = affordable.iter().max_by(|a, b| a.avg_speedup.total_cmp(&b.avg_speedup)) {
        println!(
            "\nbest affordable: NGPC-{} @ {} GHz — {:.2}x avg speedup for {:.2}% area / {:.2}% power",
            best.nfp_units,
            best.clock_ghz,
            best.avg_speedup,
            best.area_pct_of_gpu,
            best.power_pct_of_gpu,
        );
    }

    println!(
        "\nReading: past each app's Amdahl plateau additional NFPs buy no\n\
         speedup but cost linear area/power, so the frontier bends at the\n\
         paper's NGPC-16..64 range — the sweet spot the paper reads off\n\
         Figs. 12 and 15."
    );
}
