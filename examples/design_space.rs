//! Design-space exploration with the NGPC emulator: sweep scaling
//! factors, clocks and encodings, and report speedup against the area and
//! power each point costs — the trade-off a real architect would read off
//! Figs. 12 and 15 together.
//!
//! Run with: `cargo run --release --example design_space`

use neural_graphics_hw::prelude::*;

fn main() {
    println!("NGPC design space (4k NeRF + cross-app average, hashgrid)\n");
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "config", "clock", "NeRF x", "avg x", "area %", "power %"
    );
    for &n in &[4u32, 8, 16, 32, 64, 128] {
        for &clock in &[0.5f64, 1.0, 2.0] {
            let nfp = NfpConfig { clock_ghz: clock, ..NfpConfig::default() };
            let nerf = emulate(&EmulatorInput {
                app: AppKind::Nerf,
                nfp_units: n,
                nfp,
                ..EmulatorInput::default()
            });
            let avg: f64 = AppKind::ALL
                .iter()
                .map(|&app| {
                    emulate(&EmulatorInput {
                        app,
                        nfp_units: n,
                        nfp,
                        ..EmulatorInput::default()
                    })
                    .speedup
                })
                .sum::<f64>()
                / 4.0;
            println!(
                "NGPC-{:<5} {:>5.1}G {:>9.2}x {:>9.2}x {:>9.2}% {:>9.2}%",
                n, clock, nerf.speedup, avg, nerf.area_pct_of_gpu, nerf.power_pct_of_gpu
            );
        }
    }

    println!("\nefficiency frontier (speedup per % of GPU area, 1 GHz):");
    for &n in &[8u32, 16, 32, 64] {
        let avg: f64 = AppKind::ALL
            .iter()
            .map(|&app| {
                emulate(&EmulatorInput { app, nfp_units: n, ..EmulatorInput::default() })
                    .speedup
            })
            .sum::<f64>()
            / 4.0;
        let r = emulate(&EmulatorInput { nfp_units: n, ..EmulatorInput::default() });
        println!(
            "NGPC-{:<3} {:>6.2}x / {:>5.2}% area = {:>5.2} x/%",
            n,
            avg,
            r.area_pct_of_gpu,
            avg / r.area_pct_of_gpu
        );
    }
    println!(
        "\nReading: past the per-app Amdahl plateau, additional NFPs buy no\n\
         speedup but cost linear area/power — NGPC-16 is the efficiency\n\
         sweet spot, NGPC-64 the performance point, matching the paper's\n\
         choice of 8..64 as the interesting range."
    );
}
