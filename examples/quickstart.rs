//! Quickstart: train a small gigapixel-image-approximation model, check
//! its reconstruction quality, and ask the NGPC emulator what dedicated
//! hardware buys for it.
//!
//! Run with: `cargo run --release --example quickstart`

use neural_graphics_hw::prelude::*;
use ng_neural::apps::gia::GiaModel;
use ng_neural::data::procedural::ProceduralImage;
use ng_neural::render::ImageBuffer;

fn main() {
    // 1. A synthetic high-frequency target image (the GIA workload).
    let image = ProceduralImage::new(6);

    // 2. Train the Table I GIA model (hashgrid encoding) briefly.
    let mut model = GiaModel::new(EncodingKind::MultiResHashGrid, 42);
    println!("training GIA ({} parameters)...", model.param_count());
    let cfg = TrainConfig { steps: 300, batch_size: 2048, ..TrainConfig::default() };
    let stats = Trainer::new(cfg).train_gia(&mut model, &image);
    println!("loss: {:.5} -> {:.5}", stats.initial_loss, stats.final_loss);

    // 3. Reconstruct a small frame and measure PSNR against the truth.
    let side = 96;
    let mut truth = ImageBuffer::new(side, side);
    truth.fill_from(|u, v| image.color_at(u, v));
    let mut recon = ImageBuffer::new(side, side);
    recon.fill_from(|u, v| model.color_at(u, v).expect("in-range query"));
    println!("reconstruction PSNR: {:.2} dB", recon.psnr(&truth));

    // 4. What would the NGPC do for this application?
    for n in NgpcConfig::SCALING_FACTORS {
        let r = emulate(&EmulatorInput {
            app: AppKind::Gia,
            encoding: EncodingKind::MultiResHashGrid,
            nfp_units: n,
            pixels: 3840 * 2160,
            ..EmulatorInput::default()
        });
        println!(
            "NGPC-{n:<2}  4k frame: {:6.2} ms -> {:5.2} ms  ({:5.2}x, Amdahl bound {:5.2}x{})",
            r.gpu_ms,
            r.ngpc_frame_ms,
            r.speedup,
            r.amdahl_bound,
            if r.plateaued { ", plateaued" } else { "" },
        );
    }
}
