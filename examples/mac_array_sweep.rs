//! The MAC-array / engine-count axes end to end: probe single points
//! through the public `EmulatorInput` builder, then sweep the
//! `mac-arrays` preset with `ng-dse` and read off which NFP
//! microarchitectures are worth their silicon.
//!
//! Until the compositional timing model landed, `mac_rows`, `mac_cols`
//! and `encoding_engines` changed area and power but never throughput;
//! now the emulator derives per-query cycles from the MLP engine's tile
//! model and the encoding gang's level folding, calibrated to reproduce
//! the paper's numbers exactly at 64x64 MACs / 16 engines.
//!
//! Run with: `cargo run --release --example mac_array_sweep`

use ng_dse::report::frontier_table;
use ng_dse::{Constraints, SweepEngine, SweepSpec};
use ng_neural::apps::{AppKind, EncodingKind};
use ngpc::emulator::{emulate, mac_engine_factor, per_sample_cycles, EmulatorInput};
use ngpc::NfpConfig;

fn main() {
    // 1. Single points through the builder: shrink the MAC array,
    //    shrink the engine gang, and watch the cycle model charge both.
    let paper = EmulatorInput::builder().app(AppKind::Nsdf).nfp_units(16).build();
    let narrow =
        EmulatorInput::builder().app(AppKind::Nsdf).nfp_units(16).mac_rows(32).mac_cols(32).build();
    let few_engines =
        EmulatorInput::builder().app(AppKind::Nsdf).nfp_units(16).encoding_engines(8).build();
    println!("NSDF on NGPC-16 (hashgrid):");
    for (label, input) in [
        ("64x64 / 16 engines", &paper),
        ("32x32 / 16 engines", &narrow),
        ("64x64 /  8 engines", &few_engines),
    ] {
        let r = emulate(input);
        let cycles = per_sample_cycles(input.app, input.encoding, &input.nfp);
        println!(
            "  {label}: {:5.2} cycles/query, factor {:.3}, {:6.2}x end to end, {:5.2}% area",
            cycles,
            mac_engine_factor(input.app, input.encoding, &input.nfp),
            r.speedup,
            r.area_pct_of_gpu,
        );
    }

    // 2. The factor is exactly 1.0 at the paper's NFP for every
    //    workload — the calibration contract that keeps the published
    //    numbers byte-identical.
    for enc in EncodingKind::ALL {
        for app in AppKind::ALL {
            assert_eq!(mac_engine_factor(app, enc, &NfpConfig::default()), 1.0);
        }
    }
    println!("\nmac/engine factor == 1.0 at the paper NFP for all 12 (app, encoding) pairs");

    // 3. The preset sweep: {32,64,128}^2 MAC shapes x {8,16,32} engines
    //    at the paper's scaling factors, Pareto-reduced.
    let outcome = SweepEngine::new().run(&SweepSpec::mac_arrays()).expect("preset validates");
    println!(
        "\nswept {} points in {:.1} ms ({} threads)",
        outcome.stats.total_points,
        outcome.stats.wall.as_secs_f64() * 1e3,
        outcome.stats.threads,
    );
    let frontier = outcome.cross_app_frontier(&Constraints::NONE);
    println!("cross-app Pareto frontier of the MAC-array / engine-count space:");
    print!("{}", frontier_table(&frontier, 16));

    // 4. What an architect reads off it: which microarchitectures earn
    //    a frontier slot at the paper's flagship NGPC-64 scale.
    let at_64: Vec<_> = frontier.iter().filter(|a| a.nfp_units == 64).collect();
    println!("\nfrontier slots at NGPC-64:");
    for a in &at_64 {
        println!(
            "  {}x{} MACs / {} engines: {:.2}x avg for {:.2}% area",
            a.mac_rows, a.mac_cols, a.encoding_engines, a.avg_speedup, a.area_pct_of_gpu
        );
    }
    assert!(
        at_64.iter().any(|a| a.mac_rows == 64 && a.mac_cols == 64 && a.encoding_engines == 16),
        "the paper's choice must hold its frontier slot"
    );
}
