//! GIA with image output: trains the gigapixel-approximation model at
//! increasing step budgets and writes PPM snapshots (truth, and the
//! reconstruction after each budget) to `target/gia/`, so the fidelity
//! progression is visible in any image viewer.
//!
//! Run with: `cargo run --release --example gigapixel_out`

use neural_graphics_hw::prelude::*;
use ng_neural::apps::gia::GiaModel;
use ng_neural::data::procedural::ProceduralImage;
use ng_neural::render::ImageBuffer;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from("target/gia");
    std::fs::create_dir_all(&out_dir)?;

    let image = ProceduralImage::new(7);
    let side = 256;

    let mut truth = ImageBuffer::new(side, side);
    truth.fill_from(|u, v| image.color_at(u, v));
    truth.write_ppm(&out_dir.join("truth.ppm"))?;
    println!("wrote {}", out_dir.join("truth.ppm").display());

    let mut model = GiaModel::new(EncodingKind::MultiResHashGrid, 2024);
    let mut done = 0usize;
    for budget in [50usize, 200, 800] {
        let steps = budget - done;
        let cfg =
            TrainConfig { steps, batch_size: 4096, seed: done as u64, ..TrainConfig::default() };
        let stats = Trainer::new(cfg).train_gia(&mut model, &image);
        done = budget;

        let mut recon = ImageBuffer::new(side, side);
        recon.fill_from(|u, v| model.color_at(u, v).expect("in-range query"));
        let path = out_dir.join(format!("recon_{budget:04}.ppm"));
        recon.write_ppm(&path)?;
        println!(
            "step {budget:>4}: loss {:.5}, PSNR {:>5.2} dB -> {}",
            stats.final_loss,
            recon.psnr(&truth),
            path.display()
        );
    }
    Ok(())
}
