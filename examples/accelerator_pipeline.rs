//! Drive the functional NFP hardware model directly: configure a fused
//! NFP for a trained NSDF, validate bit-exactness against the software
//! reference, record the Fig. 10-c command stream, and show what fusion
//! and batch overlap buy.
//!
//! Run with: `cargo run --release --example accelerator_pipeline`

use neural_graphics_hw::prelude::*;
use ng_neural::apps::nsdf::NsdfModel;
use ng_neural::data::sdf::SdfShape;
use ngpc::cluster::Ngpc;
use ngpc::engine::FusedNfp;
use ngpc::sched::{frame_stream, overlapped_makespan_ms, serial_makespan_ms};

fn main() {
    // A lightly trained model (the hardware doesn't care how good it is).
    let shape = SdfShape::centered_sphere(0.3);
    let mut model = NsdfModel::new(EncodingKind::MultiResDenseGrid, 3);
    let cfg = TrainConfig { steps: 50, batch_size: 512, ..TrainConfig::default() };
    Trainer::new(cfg).train_nsdf(&mut model, move |p| shape.distance(p), 0.25);

    // 1. One fused NFP: functional equivalence.
    let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).expect("configures");
    let probe = [0.41f32, 0.52, 0.63];
    let hw = nfp.query(&probe).expect("query");
    let sw = model.field().forward(&probe).expect("query");
    assert_eq!(hw, sw);
    println!("NFP output == software reference (bit-exact): {:?}", hw);

    // 2. A batch through an 8-NFP cluster.
    let mut queries = Vec::new();
    for i in 0..4096 {
        let t = i as f32 / 4096.0;
        queries.extend_from_slice(&[t, (t * 7.0).fract(), (t * 13.0).fract()]);
    }
    let mut cluster = Ngpc::new(NgpcConfig::with_units(8), model.field()).expect("builds");
    let (_, stats) = cluster.run_batch(&queries).expect("runs");
    println!(
        "cluster batch: {} queries, makespan {} cycles, {} KiB of DRAM traffic avoided by fusion",
        stats.queries,
        stats.makespan_cycles,
        stats.dram_bytes_saved / 1024
    );

    // 3. The programming model: record and validate a frame's commands.
    let table_bytes = model.field().encoding.footprint_bytes(2) as u64;
    let stream = frame_stream(
        AppKind::Nsdf,
        EncodingKind::MultiResDenseGrid,
        table_bytes,
        2_073_600 * 6, // FHD x 6 sphere-trace steps
        32,
    );
    stream.validate().expect("well-formed command stream");
    println!(
        "command stream: {} commands, {} queries dispatched",
        stream.commands().len(),
        stream.dispatched_queries()
    );

    // 4. Batch overlap (Fig. 10-b): NGPC stage vs fused-GPU stage.
    let (ngpc_ms, gpu_ms, batches) = (0.9f64, 0.7f64, 32);
    println!(
        "overlap: serial {:.1} ms vs pipelined {:.1} ms over {batches} batches",
        serial_makespan_ms(batches, ngpc_ms, gpu_ms),
        overlapped_makespan_ms(batches, ngpc_ms, gpu_ms),
    );

    // 5. Fusion ablation on the engine cycle model.
    let fused = nfp.batch_time_ns(100_000);
    let unfused = nfp.batch_time_unfused_ns(100_000, 936.2);
    println!(
        "fusion ablation (100k queries): fused {:.1} us vs unfused {:.1} us ({:.2}x)",
        fused / 1e3,
        unfused / 1e3,
        unfused / fused
    );
}
