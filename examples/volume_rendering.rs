//! NeRF end to end: train the two-network radiance field on a synthetic
//! emissive volume, volume-render a novel view through the *learned*
//! field with the classic compositing quadrature, and compare against
//! rendering the analytic field directly.
//!
//! Run with: `cargo run --release --example volume_rendering`

use neural_graphics_hw::prelude::*;
use ng_neural::apps::nerf::NerfModel;
use ng_neural::data::volume_scene::VolumeScene;
use ng_neural::render::camera::Camera;
use ng_neural::render::volume::{composite_ray, RaymarchConfig};
use ng_neural::render::{render_frame_parallel, ImageBuffer};

fn render_with<F>(side: usize, field: F) -> ImageBuffer
where
    F: Fn(Vec3, Vec3) -> (Vec3, f32) + Sync,
{
    let cam = Camera::orbit(0.5, 0.35, 1.9, 1.0);
    let march = RaymarchConfig { n_samples: 64, ..RaymarchConfig::default() };
    render_frame_parallel(side, side, 4, |u, v| {
        let ray = cam.ray(u, v);
        match ray.intersect_unit_cube() {
            Some((t0, t1)) => {
                composite_ray(ray.origin, ray.dir, t0, t1, &march, |p| field(p, ray.dir)).color
            }
            None => Vec3::ZERO,
        }
    })
}

fn main() {
    let scene = VolumeScene::demo();

    println!("training NeRF (density + color networks) on a synthetic volume...");
    let mut model = NerfModel::new(EncodingKind::MultiResHashGrid, 11);
    let cfg =
        TrainConfig { steps: 250, batch_size: 2048, sigma_weight: 0.02, ..TrainConfig::default() };
    let stats = Trainer::new(cfg).train_nerf(&mut model, &scene).expect("training succeeds");
    println!("loss: {:.4} -> {:.4}", stats.initial_loss, stats.final_loss);

    let side = 72;
    let truth = render_with(side, |p, d| scene.sample(p, d));
    let learned = render_with(side, |p, d| {
        let s = model.query(p, d).expect("in-range query");
        (s.color, s.sigma)
    });

    println!("\nanalytic volume:");
    print!("{}", truth.to_ascii(2));
    println!("\nlearned radiance field:");
    print!("{}", learned.to_ascii(2));
    println!("\nnovel-view PSNR (learned vs analytic): {:.2} dB", learned.psnr(&truth));

    // The flagship NGPC headline for NeRF.
    let r = emulate(&EmulatorInput {
        app: AppKind::Nerf,
        nfp_units: 64,
        pixels: 3840 * 2160,
        ..EmulatorInput::default()
    });
    println!(
        "\nNGPC-64 on 4k NeRF: {:.1} ms -> {:.1} ms ({:.2}x) => {:.0} FPS",
        r.gpu_ms,
        r.ngpc_frame_ms,
        r.speedup,
        1000.0 / r.ngpc_frame_ms
    );
}
