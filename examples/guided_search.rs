//! Guided search through the public API: seed → budget → frontier.
//!
//! The exploded `guided-lanes` space (~260k points over 11 architecture
//! axes, including the query-lane and input-FIFO axes) is too large for
//! an interactive exhaustive sweep to stay the default answer. This
//! example drives `ng_dse`'s budgeted searcher over it the same way
//! `mac_array_sweep.rs` drives the exhaustive engine:
//!
//! 1. build the spec and a [`SearchSpec`] (strategy, budget, seed);
//! 2. run the hill-climbing searcher under a 5%-of-space budget;
//! 3. read the recovered Pareto frontier and the budget accounting;
//! 4. sanity-check it against a small exhaustively-swept subspace.
//!
//! Run with: `cargo run --release --example guided_search`

use ng_dse::report::frontier_table;
use ng_dse::{Constraints, SearchSpec, SearchStrategy, Searcher, SweepEngine, SweepSpec};

fn main() {
    // 1. The exploded space and a budgeted search spec. The default
    //    budget is 5% of the space's point count; the seed pins the
    //    exact trajectory (same seed, same frontier, every run).
    let spec = SweepSpec::guided_lanes();
    let mut search = SearchSpec::for_space(&spec);
    search.strategy = SearchStrategy::HillClimb;
    search.seed = 42;
    println!(
        "space: {} points ({} architectures x {} apps), budget {} evaluations ({:.0}%)",
        spec.point_count(),
        spec.point_count() / spec.apps.len(),
        spec.apps.len(),
        search.budget,
        100.0 * SearchSpec::DEFAULT_BUDGET_FRACTION,
    );

    // 2. Search. Revisited architectures are free (in-search memo) and
    //    cached points are free across runs; only fresh emulator calls
    //    consume the budget. (`without_cache` here so the printed
    //    numbers are reproducible on any machine.)
    let outcome = Searcher::new().without_cache().run(&spec, &search).expect("preset validates");
    let stats = &outcome.stats;
    println!(
        "searched {} architectures with {} evaluations ({:.2}% of the space) in {:.1} ms",
        stats.archs_visited,
        stats.evaluations,
        100.0 * stats.budget_fraction_used(),
        stats.wall.as_secs_f64() * 1e3,
    );

    // 3. The recovered cross-app Pareto frontier, best-value end first.
    println!("\nrecovered frontier ({} architectures):", outcome.frontier.len());
    print!("{}", frontier_table(&outcome.frontier, 12));

    // The paper's NGPC-64 organisation must be among them (the CI win
    // condition): hashgrid, 64 units, 1 MB/8-bank SRAMs, 16 engines,
    // 64x64 MACs — with the FIFO right-sized by the search itself.
    let headline = outcome
        .frontier
        .iter()
        .find(|a| {
            a.nfp_units == 64
                && a.grid_sram_kb == 1024
                && a.encoding_engines == 16
                && a.mac_rows == 64
                && a.mac_cols == 64
        })
        .expect("guided search recovers the paper's NGPC-64 organisation");
    println!(
        "\nNGPC-64 recovered: {:.2}x avg, {:.2}% area, {:.2}% power ({} lane(s), {}-deep FIFO)",
        headline.avg_speedup,
        headline.area_pct_of_gpu,
        headline.power_pct_of_gpu,
        headline.lanes_per_engine,
        headline.input_fifo_depth,
    );

    // 4. Degeneration check on a subspace small enough to exhaust: with
    //    the budget covering every point, the searcher IS the sweep.
    let mut small = SweepSpec::quick();
    small.nfp_units = vec![8, 16, 32, 64];
    small.lanes_per_engine = vec![1, 2];
    small.input_fifo_depth = vec![8, 64];
    let exhaustive = SweepEngine::new().without_cache().run(&small).expect("valid");
    let full_frontier = exhaustive.cross_app_frontier(&Constraints::NONE);
    let saturated = SearchSpec { budget: small.point_count(), ..search };
    let degenerate = Searcher::new().without_cache().run(&small, &saturated).expect("valid");
    assert_eq!(degenerate.frontier.len(), full_frontier.len());
    println!(
        "\nsaturated-budget check: searched frontier == exhaustive frontier \
         ({} architectures) on a {}-point subspace",
        full_frontier.len(),
        small.point_count(),
    );
}
