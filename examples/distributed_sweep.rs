//! The multi-process sweep backend, driven through the library API:
//! partition a spec into deterministic canonical-order slices, run the
//! worker protocol against one shared point store, kill a worker
//! mid-run (here: simply never run its slice), and watch the
//! coordinator's merge recover the gap — then resume the whole sweep
//! for free.
//!
//! The `dse` CLI does the same thing across OS processes
//! (`dse --preset quick --workers 3`); this example uses the in-process
//! form so it runs anywhere `cargo run` does.
//!
//! Run with: `cargo run --release --example distributed_sweep`

use ng_dse::distrib::{merge_and_recover, run_sharded_in_process, run_worker_slice, shard_points};
use ng_dse::{EvalCache, SweepEngine, SweepSpec};

fn main() {
    let spec = SweepSpec::quick();
    let store = std::env::temp_dir().join(format!("ng-dse-distrib-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // 1. The partition: worker i of N owns the points with
    //    index ≡ i (mod N). Deterministic, disjoint, balanced.
    let points = spec.points();
    println!("sweep `{}`: {} points across 3 workers", spec.name, points.len());
    for shard in 0..3 {
        println!("  worker {shard}/3 owns {} points", shard_points(&points, shard, 3).len());
    }

    // 2. A crashed run: workers 0 and 2 deliver their slices into the
    //    shared store; worker 1 dies before evaluating anything.
    for shard in [0, 2] {
        let summary = run_worker_slice(&spec, shard, 3, &store, 2).unwrap();
        println!("{summary}");
    }
    println!("worker 1/3: (killed)");

    // 3. The coordinator merge: look everything up in the store and
    //    evaluate the stragglers locally — the crash-recovery path.
    let cache = EvalCache::new(&store);
    let (merged, recovered) = merge_and_recover(&spec, &cache, 2).unwrap();
    println!("merge: {} points, {recovered} recovered from the dead worker's slice", merged.len());

    // The merged result is bit-identical to a single-process sweep.
    let reference = SweepEngine::new().without_cache().run(&spec).unwrap();
    assert_eq!(merged, reference.points);
    println!("merged outcome is bit-identical to the single-process sweep");

    // 4. Resume: the recovery appended its work, so a full distributed
    //    re-run over the same store is a pure cache hit.
    let resumed = run_sharded_in_process(&spec, 3, 1, &store).unwrap();
    assert!(resumed.outcome.stats.cache_hit);
    println!(
        "resumed distributed run: {} hits, {} evaluated — resumability is free",
        resumed.outcome.stats.cache_hits, resumed.outcome.stats.evaluated
    );

    let _ = std::fs::remove_dir_all(&store);
}
