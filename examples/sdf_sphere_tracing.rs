//! NSDF end to end: train a neural signed-distance function on an
//! analytic CSG scene, then sphere-trace the *learned* field and render
//! it as ASCII art next to the ground truth.
//!
//! Run with: `cargo run --release --example sdf_sphere_tracing`

use neural_graphics_hw::prelude::*;
use ng_neural::apps::nsdf::NsdfModel;
use ng_neural::data::sdf::SdfShape;
use ng_neural::render::camera::Camera;
use ng_neural::render::sphere_trace::{
    lambert_shade, sphere_trace, SphereTraceConfig, TraceResult,
};
use ng_neural::render::ImageBuffer;

fn render<F: Fn(Vec3) -> f32>(sdf: F, side: usize) -> ImageBuffer {
    let cam = Camera::orbit(0.9, 0.5, 1.7, 1.0);
    // Learned fields overestimate near the surface; march conservatively.
    let cfg = SphereTraceConfig { step_scale: 0.7, hit_epsilon: 4e-3, ..Default::default() };
    let mut img = ImageBuffer::new(side, side);
    img.fill_from(|u, v| {
        let ray = cam.ray(u, v);
        match sphere_trace(&ray, &cfg, &sdf) {
            TraceResult::Hit { position, .. } => {
                // Normal from central differences of the same field.
                let eps = 2e-3;
                let g = Vec3::new(
                    sdf(Vec3::new(position.x + eps, position.y, position.z))
                        - sdf(Vec3::new(position.x - eps, position.y, position.z)),
                    sdf(Vec3::new(position.x, position.y + eps, position.z))
                        - sdf(Vec3::new(position.x, position.y - eps, position.z)),
                    sdf(Vec3::new(position.x, position.y, position.z + eps))
                        - sdf(Vec3::new(position.x, position.y, position.z - eps)),
                );
                let n = if g.length() > 1e-9 { g / g.length() } else { Vec3::new(0.0, 0.0, 1.0) };
                lambert_shade(n, ray.dir, Vec3::new(0.9, 0.85, 0.7))
            }
            TraceResult::Miss { .. } => Vec3::ZERO,
        }
    });
    img
}

fn main() {
    let shape = SdfShape::centered_torus(0.22, 0.08);

    println!("training NSDF on an analytic torus...");
    let mut model = NsdfModel::new(EncodingKind::MultiResHashGrid, 7);
    let cfg = TrainConfig { steps: 400, batch_size: 4096, ..TrainConfig::default() };
    let stats = Trainer::new(cfg).train_nsdf(&mut model, move |p| shape.distance(p), 0.25);
    println!("loss: {:.6} -> {:.6}", stats.initial_loss, stats.final_loss);

    let side = 56;
    println!("\nground truth (analytic SDF):");
    print!("{}", render(|p| shape.distance(p), side).to_ascii(1));
    println!("\nlearned field (sphere-traced neural SDF):");
    print!("{}", render(|p| model.distance(p).expect("in-range query"), side).to_ascii(1));

    // Surface error along a probe circle.
    let mut max_err = 0.0f32;
    for i in 0..64 {
        let a = i as f32 / 64.0 * std::f32::consts::TAU;
        let p = Vec3::new(0.5 + 0.3 * a.cos(), 0.5, 0.5 + 0.3 * a.sin());
        let err = (model.distance(p).expect("in-range") - shape.distance(p)).abs();
        max_err = max_err.max(err);
    }
    println!("\nmax |error| on probe circle: {max_err:.4} (truncation 0.25)");
}
