//! Deterministic training loops for the four applications.
//!
//! Training follows the paper's setup (Section II.2): batches of points
//! are drawn from the scene observations, the encoding + MLP pipeline is
//! evaluated, a regression loss propagates gradients back through the MLP
//! into the grid tables, and Adam updates both parameter chunks.
//!
//! Because the ground truths in [`crate::data`] are analytic, scene
//! "observations" are sampled directly from the target field — the exact
//! code path (encode, infer, composite, backprop) is what matters to the
//! architecture study, not the provenance of the supervision signal.

use crate::apps::gia::GiaModel;
use crate::apps::nerf::{NerfGrads, NerfModel};
use crate::apps::nsdf::NsdfModel;
use crate::apps::nvr::NvrModel;
use crate::apps::{FieldGrads, FieldModel, OutputDecode};
use crate::data::procedural::ProceduralImage;
use crate::data::volume_scene::VolumeScene;
use crate::encoding::Encoding;
use crate::error::Result;
use crate::math::{Pcg32, Vec3};
use crate::mlp::{Adam, AdamConfig, Loss};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of optimizer steps.
    pub steps: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// Adam settings (applied to both the grid tables and the MLP).
    pub adam: AdamConfig,
    /// Regression loss.
    pub loss: Loss,
    /// RNG seed for batch sampling.
    pub seed: u64,
    /// Relative weight of the density loss in NeRF/NVR training (colors
    /// live in `[0,1]` while sigma can reach tens).
    pub sigma_weight: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 500,
            batch_size: 1024,
            adam: AdamConfig::default(),
            loss: Loss::Mse,
            seed: 0,
            sigma_weight: 0.01,
        }
    }
}

/// Summary statistics of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Mean loss of the first step.
    pub initial_loss: f32,
    /// Mean loss of the last step.
    pub final_loss: f32,
    /// Loss after every step.
    pub history: Vec<f32>,
}

impl TrainStats {
    fn from_history(history: Vec<f32>) -> Self {
        TrainStats {
            initial_loss: *history.first().unwrap_or(&0.0),
            final_loss: *history.last().unwrap_or(&0.0),
            history,
        }
    }
}

/// Drives training of any of the four application models.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Create a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Generic regression training of a [`FieldModel`]: each batch element
    /// is produced by `sample(rng, input, target)` where `input` has the
    /// encoding's input width and `target` the decoded output width.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the model.
    pub fn train_field<S>(
        &self,
        model: &mut FieldModel,
        decode: OutputDecode,
        sample: S,
    ) -> Result<TrainStats>
    where
        S: FnMut(&mut Pcg32, &mut [f32], &mut [f32]),
    {
        let out_dim = model.mlp.config().output_dim;
        self.train_field_weighted(model, decode, &vec![1.0; out_dim], sample)
    }

    /// Like [`Trainer::train_field`], but with a per-output-channel loss
    /// weight. NVR uses this to keep its wide-dynamic-range density
    /// channel from drowning out the color channels.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the model.
    ///
    /// # Panics
    ///
    /// Panics if `channel_weights` has a different length than the model
    /// output.
    pub fn train_field_weighted<S>(
        &self,
        model: &mut FieldModel,
        decode: OutputDecode,
        channel_weights: &[f32],
        mut sample: S,
    ) -> Result<TrainStats>
    where
        S: FnMut(&mut Pcg32, &mut [f32], &mut [f32]),
    {
        assert_eq!(channel_weights.len(), model.mlp.config().output_dim);
        let in_dim = model.encoding.config().dim;
        let out_dim = model.mlp.config().output_dim;
        let mut rng = Pcg32::with_stream(self.config.seed, 0x7541);
        let mut enc_adam = Adam::new(self.config.adam, model.encoding.param_count());
        let mut mlp_adam = Adam::new(self.config.adam, model.mlp.param_count());
        let mut grads = FieldGrads::zeros_like(model);
        let mut input = vec![0.0f32; in_dim];
        let mut target = vec![0.0f32; out_dim];
        let mut d_decoded = vec![0.0f32; out_dim];
        let mut d_raw = vec![0.0f32; out_dim];
        let mut history = Vec::with_capacity(self.config.steps);

        for _ in 0..self.config.steps {
            grads.clear();
            let mut batch_loss = 0.0f32;
            for _ in 0..self.config.batch_size {
                sample(&mut rng, &mut input, &mut target);
                let (features, trace) = model.forward_traced(&input)?;
                let raw = trace.post.last().expect("trace has layers").clone();
                let mut decoded = raw.clone();
                decode.apply(&mut decoded);
                for c in 0..out_dim {
                    let w = channel_weights[c];
                    batch_loss += w * self.config.loss.value(decoded[c], target[c]);
                    d_decoded[c] = w * self.config.loss.gradient(decoded[c], target[c]);
                }
                decode.gradient(&raw, &decoded, &d_decoded, &mut d_raw);
                model.backward(&input, &features, &trace, &d_raw, &mut grads)?;
            }
            let scale = 1.0 / (self.config.batch_size * out_dim) as f32;
            grads.scale(scale);
            batch_loss *= scale;
            enc_adam.step(model.encoding.params_mut(), &grads.encoding)?;
            mlp_adam.step(model.mlp.params_mut(), &grads.mlp)?;
            history.push(batch_loss);
        }
        Ok(TrainStats::from_history(history))
    }

    /// Train a GIA model against a procedural image.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the model.
    pub fn train_gia(&self, model: &mut GiaModel, image: &ProceduralImage) -> TrainStats {
        let decode = model.decode();
        let img = *image;
        self.train_field(model.field_mut(), decode, move |rng, input, target| {
            let u = rng.next_f32();
            let v = rng.next_f32();
            input[0] = u;
            input[1] = v;
            let c = img.color_at(u, v);
            target[0] = c.x;
            target[1] = c.y;
            target[2] = c.z;
        })
        .expect("gia model dimensions are consistent")
    }

    /// Train an NSDF model against a signed-distance oracle. Distances are
    /// truncated to `[-trunc, trunc]` (standard TSDF practice) so network
    /// capacity concentrates near the surface.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the model.
    pub fn train_nsdf<F>(&self, model: &mut NsdfModel, sdf: F, trunc: f32) -> TrainStats
    where
        F: Fn(Vec3) -> f32,
    {
        let decode = model.decode();
        self.train_field(model.field_mut(), decode, move |rng, input, target| {
            let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
            input[0] = p.x;
            input[1] = p.y;
            input[2] = p.z;
            target[0] = sdf(p).clamp(-trunc, trunc);
        })
        .expect("nsdf model dimensions are consistent")
    }

    /// Train an NVR model against an analytic volume scene. Density is
    /// squashed through `log1p` for supervision to tame its dynamic range,
    /// matching the sigma weighting of the config.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the model.
    pub fn train_nvr(&self, model: &mut NvrModel, scene: &VolumeScene) -> TrainStats {
        let decode = model.decode();
        let scene = scene.clone();
        // NVR's reflectance field is view-independent in our analytic
        // target; use a fixed canonical direction for the color.
        let dir = Vec3::new(0.0, 0.0, 1.0);
        let weights = [1.0, 1.0, 1.0, self.config.sigma_weight];
        self.train_field_weighted(model.field_mut(), decode, &weights, move |rng, input, target| {
            let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
            input[0] = p.x;
            input[1] = p.y;
            input[2] = p.z;
            let (c, sigma) = scene.sample(p, dir);
            target[0] = c.x;
            target[1] = c.y;
            target[2] = c.z;
            target[3] = sigma;
        })
        .expect("nvr model dimensions are consistent")
    }

    /// Train a NeRF model (density + color networks jointly) against an
    /// analytic volume scene.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the model.
    pub fn train_nerf(&self, model: &mut NerfModel, scene: &VolumeScene) -> Result<TrainStats> {
        let mut rng = Pcg32::with_stream(self.config.seed, 0x4EF);
        let mut grads = NerfGrads::zeros_like(model);
        let mut enc_adam =
            Adam::new(self.config.adam, model.density_field().encoding.param_count());
        let mut density_adam = Adam::new(self.config.adam, model.density_field().mlp.param_count());
        let mut color_adam = Adam::new(self.config.adam, model.color_mlp().param_count());
        let mut history = Vec::with_capacity(self.config.steps);

        for _ in 0..self.config.steps {
            grads.clear();
            let mut batch_loss = 0.0f32;
            for _ in 0..self.config.batch_size {
                let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
                let theta = (1.0 - 2.0 * rng.next_f32()).acos();
                let phi = rng.range_f32(0.0, 2.0 * std::f32::consts::PI);
                let dir = Vec3::from_spherical(theta, phi);
                let (c_gt, sigma_gt) = scene.sample(p, dir);

                let trace = model.forward_traced(p, dir)?;
                let s = trace.sample;
                // Color MSE.
                let dc = Vec3::new(
                    2.0 * (s.color.x - c_gt.x),
                    2.0 * (s.color.y - c_gt.y),
                    2.0 * (s.color.z - c_gt.z),
                );
                batch_loss += (s.color - c_gt).dot(s.color - c_gt);
                // Weighted sigma MSE.
                let w = self.config.sigma_weight;
                let ds = 2.0 * w * (s.sigma - sigma_gt);
                batch_loss += w * (s.sigma - sigma_gt) * (s.sigma - sigma_gt);
                model.backward(p, &trace, dc, ds, &mut grads)?;
            }
            let scale = 1.0 / self.config.batch_size as f32;
            grads.scale(scale);
            batch_loss *= scale;
            enc_adam
                .step(model.density_field_mut().encoding.params_mut(), &grads.density.encoding)?;
            density_adam.step(model.density_field_mut().mlp.params_mut(), &grads.density.mlp)?;
            color_adam.step(model.color_mlp_mut().params_mut(), &grads.color_mlp)?;
            history.push(batch_loss);
        }
        Ok(TrainStats::from_history(history))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::EncodingKind;
    use crate::data::sdf::SdfShape;

    fn quick_config(steps: usize) -> TrainConfig {
        TrainConfig { steps, batch_size: 128, ..TrainConfig::default() }
    }

    #[test]
    fn gia_loss_decreases() {
        let image = ProceduralImage::new(5);
        let mut model = GiaModel::new(EncodingKind::LowResDenseGrid, 1);
        let stats = Trainer::new(quick_config(40)).train_gia(&mut model, &image);
        assert!(
            stats.final_loss < stats.initial_loss * 0.8,
            "loss {} -> {}",
            stats.initial_loss,
            stats.final_loss
        );
    }

    #[test]
    fn nsdf_learns_a_sphere_roughly() {
        // Hashgrid: its coarse dense levels get full coverage even from
        // small test batches, so convergence is fast and reliable.
        let shape = SdfShape::centered_sphere(0.3);
        let mut model = NsdfModel::new(EncodingKind::MultiResHashGrid, 2);
        let cfg = TrainConfig { steps: 80, batch_size: 256, ..TrainConfig::default() };
        let stats = Trainer::new(cfg).train_nsdf(&mut model, move |p| shape.distance(p), 0.2);
        assert!(
            stats.final_loss < stats.initial_loss * 0.5,
            "loss {} -> {}",
            stats.initial_loss,
            stats.final_loss
        );
        // Signs should be right at the center and far corner.
        let inside = model.distance(Vec3::splat(0.5)).unwrap();
        let outside = model.distance(Vec3::new(0.02, 0.02, 0.02)).unwrap();
        assert!(inside < outside, "inside {inside} vs outside {outside}");
    }

    #[test]
    fn nvr_loss_decreases() {
        let scene = VolumeScene::random(3, 7);
        let mut model = NvrModel::new(EncodingKind::MultiResHashGrid, 3);
        let cfg = TrainConfig { steps: 60, batch_size: 256, ..TrainConfig::default() };
        let stats = Trainer::new(cfg).train_nvr(&mut model, &scene);
        // Batch losses are noisy; compare the mean of the first and last
        // few steps.
        let head: f32 = stats.history[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = stats.history[stats.history.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "loss head {head} vs tail {tail}");
    }

    #[test]
    fn nerf_joint_training_decreases_loss() {
        let scene = VolumeScene::random(3, 11);
        let mut model = NerfModel::new(EncodingKind::LowResDenseGrid, 4);
        let cfg = TrainConfig { steps: 30, batch_size: 96, ..TrainConfig::default() };
        let stats = Trainer::new(cfg).train_nerf(&mut model, &scene).unwrap();
        assert!(
            stats.final_loss < stats.initial_loss,
            "loss {} -> {}",
            stats.initial_loss,
            stats.final_loss
        );
    }

    #[test]
    fn training_is_deterministic() {
        let image = ProceduralImage::new(4);
        let mut a = GiaModel::new(EncodingKind::LowResDenseGrid, 5);
        let mut b = GiaModel::new(EncodingKind::LowResDenseGrid, 5);
        let cfg = quick_config(5);
        let sa = Trainer::new(cfg).train_gia(&mut a, &image);
        let sb = Trainer::new(cfg).train_gia(&mut b, &image);
        assert_eq!(sa.history, sb.history);
    }

    #[test]
    fn history_length_matches_steps() {
        let image = ProceduralImage::new(4);
        let mut model = GiaModel::new(EncodingKind::LowResDenseGrid, 6);
        let stats = Trainer::new(quick_config(7)).train_gia(&mut model, &image);
        assert_eq!(stats.history.len(), 7);
    }
}
