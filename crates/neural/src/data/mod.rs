//! Synthetic targets substituting for the paper's captured datasets.
//!
//! The paper evaluates on real scenes (NeRF captures, gigapixel
//! photographs, SDF meshes). Those are not redistributable, so this module
//! provides *analytic* ground truths with the same statistical character —
//! high-frequency content a plain MLP cannot fit but a grid-encoded model
//! can: procedural images ([`procedural`]), exact signed-distance fields
//! ([`sdf`]) and emissive density volumes ([`volume_scene`]). Because the
//! targets are analytic, reconstruction error can be measured exactly
//! anywhere, which the test-suite uses heavily.

pub mod procedural;
pub mod sdf;
pub mod volume_scene;

pub use procedural::ProceduralImage;
pub use sdf::{Csg, SdfShape};
pub use volume_scene::VolumeScene;
