//! Procedural high-frequency images: the training target for GIA.
//!
//! A gigapixel photograph is, statistically, a broadband signal with
//! structure at every scale. We synthesise an analytic stand-in from
//! several octaves of value noise plus crisp sinusoidal detail, so the GIA
//! task keeps its defining property (an MLP alone underfits; a
//! grid-encoded model fits well) while the ground truth stays exact and
//! free.

use crate::math::{lerp, smoothstep, Vec3};

/// Hash-based gradient-free value noise (deterministic, no tables).
fn lattice_value(ix: i64, iy: i64, seed: u64) -> f32 {
    let mut h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((ix as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((iy as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    h ^= h >> 31;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 27;
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// One octave of smooth value noise at integer frequency `freq`.
fn value_noise(u: f32, v: f32, freq: f32, seed: u64) -> f32 {
    let x = u * freq;
    let y = v * freq;
    let ix = x.floor() as i64;
    let iy = y.floor() as i64;
    let fx = smoothstep(0.0, 1.0, x - ix as f32);
    let fy = smoothstep(0.0, 1.0, y - iy as f32);
    let v00 = lattice_value(ix, iy, seed);
    let v10 = lattice_value(ix + 1, iy, seed);
    let v01 = lattice_value(ix, iy + 1, seed);
    let v11 = lattice_value(ix + 1, iy + 1, seed);
    lerp(lerp(v00, v10, fx), lerp(v01, v11, fx), fy)
}

/// An analytic "gigapixel" image over `[0,1]^2`.
///
/// `detail_octaves` controls the bandwidth: each octave doubles the
/// highest spatial frequency. Seven octaves put detail at ~1/512 of the
/// image extent, comfortably beyond what a bare 64-wide MLP can represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProceduralImage {
    detail_octaves: u32,
    seed: u64,
}

impl ProceduralImage {
    /// Create an image with the given number of noise octaves (seed 0).
    pub fn new(detail_octaves: u32) -> Self {
        Self::with_seed(detail_octaves, 0)
    }

    /// Create an image with an explicit seed.
    pub fn with_seed(detail_octaves: u32, seed: u64) -> Self {
        ProceduralImage { detail_octaves: detail_octaves.clamp(1, 12), seed }
    }

    /// Number of octaves of detail.
    pub fn detail_octaves(&self) -> u32 {
        self.detail_octaves
    }

    /// Ground-truth RGB at normalized coordinates `(u, v)`.
    ///
    /// Output channels are guaranteed to lie in `[0, 1]`.
    pub fn color_at(&self, u: f32, v: f32) -> Vec3 {
        let u = u.clamp(0.0, 1.0);
        let v = v.clamp(0.0, 1.0);
        // Broadband luminance: fractal value noise.
        let mut lum = 0.0f32;
        let mut amp = 0.5f32;
        let mut freq = 4.0f32;
        let mut norm = 0.0f32;
        for octave in 0..self.detail_octaves {
            lum += amp * value_noise(u, v, freq, self.seed.wrapping_add(octave as u64));
            norm += amp;
            amp *= 0.7;
            freq *= 2.0;
        }
        lum /= norm;
        // Crisp structured detail: interference of two sinusoid families
        // (stands in for text/edges in real gigapixel content). The
        // frequencies scale with the octave count so the image bandwidth
        // grows with `detail_octaves`.
        let sf = (1 << (self.detail_octaves.min(9))) as f32;
        let stripes =
            0.5 + 0.5 * ((4.0 * sf * u + 13.0 * (8.0 * v).sin()).sin() * (3.1 * sf * v).cos());
        // Smooth chroma gradients.
        let r = 0.65 * lum + 0.35 * stripes;
        let g = 0.8 * lum + 0.2 * (0.5 + 0.5 * (21.0 * (u + v)).sin());
        let b = 0.5 * lum + 0.5 * (0.5 + 0.5 * (17.0 * (u - v)).cos());
        Vec3::new(r.clamp(0.0, 1.0), g.clamp(0.0, 1.0), b.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_in_unit_range() {
        let img = ProceduralImage::new(7);
        for i in 0..50 {
            for j in 0..50 {
                let c = img.color_at(i as f32 / 49.0, j as f32 / 49.0);
                for ch in [c.x, c.y, c.z] {
                    assert!((0.0..=1.0).contains(&ch), "channel {ch} out of range");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let img = ProceduralImage::new(6);
        assert_eq!(img.color_at(0.3, 0.7), img.color_at(0.3, 0.7));
    }

    #[test]
    fn seeds_change_content() {
        let a = ProceduralImage::with_seed(6, 1);
        let b = ProceduralImage::with_seed(6, 2);
        let diff = (a.color_at(0.5, 0.5) - b.color_at(0.5, 0.5)).length();
        assert!(diff > 1e-4);
    }

    #[test]
    fn has_high_frequency_content() {
        // Neighbouring samples 1/1024 apart must differ measurably
        // somewhere: that's the property that defeats a bare MLP.
        let img = ProceduralImage::new(8);
        let mut max_delta = 0.0f32;
        for i in 0..200 {
            let u = i as f32 / 200.0;
            let a = img.color_at(u, 0.4);
            let b = img.color_at(u + 1.0 / 1024.0, 0.4);
            max_delta = max_delta.max((a - b).length());
        }
        assert!(max_delta > 0.05, "image too smooth: max delta {max_delta}");
    }

    #[test]
    fn not_constant() {
        let img = ProceduralImage::new(5);
        let a = img.color_at(0.1, 0.1);
        let b = img.color_at(0.9, 0.9);
        assert!((a - b).length() > 1e-3);
    }
}
