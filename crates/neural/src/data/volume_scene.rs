//! Analytic emissive density volumes: the training target for NeRF and
//! NVR.
//!
//! The scene is a mixture of anisotropic Gaussian density blobs, each with
//! its own base color, plus a view-dependent sheen on the color (so NeRF's
//! direction-conditioned color branch has something real to learn).

use crate::math::{Pcg32, Vec3};

/// One Gaussian density blob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blob {
    /// Blob center in `[0,1]^3`.
    pub center: Vec3,
    /// Per-axis inverse squared radii.
    pub inv_radii_sq: Vec3,
    /// Peak density at the center.
    pub peak_density: f32,
    /// Base emitted/reflected color.
    pub color: Vec3,
}

impl Blob {
    /// Density contribution at `p`.
    #[inline]
    pub fn density(&self, p: Vec3) -> f32 {
        let d = p - self.center;
        let q = d.x * d.x * self.inv_radii_sq.x
            + d.y * d.y * self.inv_radii_sq.y
            + d.z * d.z * self.inv_radii_sq.z;
        self.peak_density * (-q).exp()
    }
}

/// An analytic volume: ground truth for `(RGB, sigma)` queries.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeScene {
    blobs: Vec<Blob>,
    /// Strength of the view-dependent color term in `[0, 1]`.
    sheen: f32,
}

impl VolumeScene {
    /// Generate a random scene of `n_blobs` blobs.
    pub fn random(n_blobs: usize, seed: u64) -> Self {
        let mut rng = Pcg32::with_stream(seed, 0xB10B);
        let palette = [
            Vec3::new(0.9, 0.3, 0.2),
            Vec3::new(0.2, 0.7, 0.9),
            Vec3::new(0.95, 0.85, 0.3),
            Vec3::new(0.4, 0.9, 0.4),
            Vec3::new(0.8, 0.4, 0.9),
        ];
        let blobs = (0..n_blobs)
            .map(|i| {
                let center = Vec3::new(
                    rng.range_f32(0.25, 0.75),
                    rng.range_f32(0.25, 0.75),
                    rng.range_f32(0.25, 0.75),
                );
                let r = |rng: &mut Pcg32| {
                    let radius = rng.range_f32(0.05, 0.18);
                    1.0 / (radius * radius)
                };
                Blob {
                    center,
                    inv_radii_sq: Vec3::new(r(&mut rng), r(&mut rng), r(&mut rng)),
                    peak_density: rng.range_f32(8.0, 40.0),
                    color: palette[i % palette.len()],
                }
            })
            .collect();
        VolumeScene { blobs, sheen: 0.3 }
    }

    /// The default 5-blob scene used by examples and tests.
    pub fn demo() -> Self {
        VolumeScene::random(5, 2024)
    }

    /// The blobs of the scene.
    pub fn blobs(&self) -> &[Blob] {
        &self.blobs
    }

    /// Ground-truth density at `p`.
    pub fn sigma(&self, p: Vec3) -> f32 {
        self.blobs.iter().map(|b| b.density(p)).sum()
    }

    /// Ground-truth color at `p` seen from unit direction `dir`:
    /// density-weighted blob palette plus a directional sheen.
    pub fn color(&self, p: Vec3, dir: Vec3) -> Vec3 {
        let mut total = 0.0f32;
        let mut color = Vec3::ZERO;
        for b in &self.blobs {
            let d = b.density(p);
            total += d;
            color = color + b.color * d;
        }
        if total < 1e-6 {
            return Vec3::ZERO;
        }
        let base = color / total;
        // View-dependent sheen: brighter when looking along +z.
        let facing = 0.5 + 0.5 * dir.z;
        let sheen = self.sheen * facing;
        Vec3::new(
            (base.x * (1.0 - self.sheen) + sheen).clamp(0.0, 1.0),
            (base.y * (1.0 - self.sheen) + sheen).clamp(0.0, 1.0),
            (base.z * (1.0 - self.sheen) + sheen).clamp(0.0, 1.0),
        )
    }

    /// Ground truth `(color, sigma)` pair, matching the NeRF/NVR output.
    pub fn sample(&self, p: Vec3, dir: Vec3) -> (Vec3, f32) {
        (self.color(p, dir), self.sigma(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_nonnegative_and_peaked_at_centers() {
        let scene = VolumeScene::demo();
        for b in scene.blobs() {
            let at_center = scene.sigma(b.center);
            let away = scene.sigma(b.center + Vec3::new(0.3, 0.3, 0.3));
            assert!(at_center > away, "density not peaked at blob center");
        }
        let mut rng = Pcg32::new(1);
        for _ in 0..100 {
            let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
            assert!(scene.sigma(p) >= 0.0);
        }
    }

    #[test]
    fn color_in_unit_cube() {
        let scene = VolumeScene::demo();
        let mut rng = Pcg32::new(2);
        for _ in 0..200 {
            let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
            let d = Vec3::from_spherical(
                rng.range_f32(0.0, std::f32::consts::PI),
                rng.range_f32(0.0, 2.0 * std::f32::consts::PI),
            );
            let c = scene.color(p, d);
            for ch in [c.x, c.y, c.z] {
                assert!((0.0..=1.0).contains(&ch));
            }
        }
    }

    #[test]
    fn color_is_view_dependent() {
        let scene = VolumeScene::demo();
        let p = scene.blobs()[0].center;
        let a = scene.color(p, Vec3::new(0.0, 0.0, 1.0));
        let b = scene.color(p, Vec3::new(0.0, 0.0, -1.0));
        assert!((a - b).length() > 1e-3);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = VolumeScene::random(4, 9);
        let b = VolumeScene::random(4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_space_has_near_zero_density() {
        let scene = VolumeScene::demo();
        // Corners are far from every blob center (blobs live in the inner
        // half of the cube).
        let corner = scene.sigma(Vec3::new(0.01, 0.01, 0.01));
        assert!(corner < 1.0, "corner density {corner}");
    }
}
