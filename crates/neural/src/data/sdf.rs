//! Analytic signed-distance fields: the training target for NSDF.
//!
//! All shapes live inside the unit cube `[0,1]^3` (the encoding domain)
//! and are expressed around its center. Distances are exact for the
//! primitives and Lipschitz-1 bounds for the CSG combinations, which is
//! the standard contract sphere tracers rely on.

use crate::math::Vec3;

/// Analytic primitive shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SdfShape {
    /// Sphere of `radius` centered at `center`.
    Sphere {
        /// Center position.
        center: Vec3,
        /// Sphere radius.
        radius: f32,
    },
    /// Axis-aligned box with half-extents `half` centered at `center`.
    Box {
        /// Center position.
        center: Vec3,
        /// Half-extent along each axis.
        half: Vec3,
    },
    /// Torus in the xz-plane: `major` ring radius, `minor` tube radius.
    Torus {
        /// Center position.
        center: Vec3,
        /// Ring (major) radius.
        major: f32,
        /// Tube (minor) radius.
        minor: f32,
    },
    /// Gyroid shell (`sin x cos y + sin y cos z + sin z cos x = 0`) of a
    /// given `frequency` and `thickness`, clipped to a bounding sphere.
    /// This is the "high-frequency" stress shape.
    Gyroid {
        /// Spatial frequency of the triply periodic surface.
        frequency: f32,
        /// Shell half-thickness.
        thickness: f32,
    },
}

impl SdfShape {
    /// Signed distance from `p` (negative inside).
    pub fn distance(&self, p: Vec3) -> f32 {
        match *self {
            SdfShape::Sphere { center, radius } => (p - center).length() - radius,
            SdfShape::Box { center, half } => {
                let q = (p - center).abs() - half;
                let outside = q.max(Vec3::ZERO).length();
                let inside = q.max_component().min(0.0);
                outside + inside
            }
            SdfShape::Torus { center, major, minor } => {
                let q = p - center;
                let ring = ((q.x * q.x + q.z * q.z).sqrt() - major).hypot(q.y);
                ring - minor
            }
            SdfShape::Gyroid { frequency, thickness } => {
                let q = (p - Vec3::splat(0.5)) * frequency;
                let g = q.x.sin() * q.y.cos() + q.y.sin() * q.z.cos() + q.z.sin() * q.x.cos();
                // The gyroid implicit is not a true distance; divide by the
                // gradient-magnitude bound (~1.5 * frequency) for a
                // conservative Lipschitz estimate and clip to a sphere so
                // the shape is bounded.
                let shell = g.abs() / (1.5 * frequency) - thickness;
                let clip = (p - Vec3::splat(0.5)).length() - 0.45;
                shell.max(clip)
            }
        }
    }

    /// A sphere centered in the unit cube — the simplest smoke-test shape.
    pub fn centered_sphere(radius: f32) -> SdfShape {
        SdfShape::Sphere { center: Vec3::splat(0.5), radius }
    }

    /// A torus centered in the unit cube.
    pub fn centered_torus(major: f32, minor: f32) -> SdfShape {
        SdfShape::Torus { center: Vec3::splat(0.5), major, minor }
    }
}

/// Constructive solid geometry over SDF shapes (min/max combinations).
#[derive(Debug, Clone)]
pub enum Csg {
    /// A single primitive.
    Leaf(SdfShape),
    /// Union (minimum of distances).
    Union(Box<Csg>, Box<Csg>),
    /// Intersection (maximum of distances).
    Intersection(Box<Csg>, Box<Csg>),
    /// Difference: first minus second.
    Difference(Box<Csg>, Box<Csg>),
}

impl Csg {
    /// Signed distance bound from `p`.
    pub fn distance(&self, p: Vec3) -> f32 {
        match self {
            Csg::Leaf(s) => s.distance(p),
            Csg::Union(a, b) => a.distance(p).min(b.distance(p)),
            Csg::Intersection(a, b) => a.distance(p).max(b.distance(p)),
            Csg::Difference(a, b) => a.distance(p).max(-b.distance(p)),
        }
    }

    /// The demo scene used by examples and tests: a box with a sphere
    /// carved out of it, next to a torus.
    pub fn demo_scene() -> Csg {
        let boxy = Csg::Leaf(SdfShape::Box {
            center: Vec3::new(0.38, 0.5, 0.5),
            half: Vec3::new(0.16, 0.16, 0.16),
        });
        let hole = Csg::Leaf(SdfShape::Sphere { center: Vec3::new(0.38, 0.5, 0.34), radius: 0.17 });
        let torus = Csg::Leaf(SdfShape::Torus {
            center: Vec3::new(0.72, 0.5, 0.5),
            major: 0.12,
            minor: 0.045,
        });
        Csg::Union(Box::new(Csg::Difference(Box::new(boxy), Box::new(hole))), Box::new(torus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_distance_exact() {
        let s = SdfShape::centered_sphere(0.25);
        assert!((s.distance(Vec3::splat(0.5)) + 0.25).abs() < 1e-6); // center
        assert!((s.distance(Vec3::new(0.5, 0.5, 0.0)) - 0.25).abs() < 1e-6);
        assert!(s.distance(Vec3::new(0.75, 0.5, 0.5)).abs() < 1e-6); // surface
    }

    #[test]
    fn box_distance_exact_on_faces_and_corners() {
        let b = SdfShape::Box { center: Vec3::splat(0.5), half: Vec3::splat(0.1) };
        // On a face.
        assert!(b.distance(Vec3::new(0.6, 0.5, 0.5)).abs() < 1e-6);
        // Outside along an axis.
        assert!((b.distance(Vec3::new(0.8, 0.5, 0.5)) - 0.2).abs() < 1e-6);
        // At a corner: diagonal distance.
        let d = b.distance(Vec3::new(0.7, 0.7, 0.7));
        assert!((d - (3.0f32).sqrt() * 0.1).abs() < 1e-5);
        // Inside.
        assert!(b.distance(Vec3::splat(0.5)) < 0.0);
    }

    #[test]
    fn torus_distance_on_ring() {
        let t = SdfShape::centered_torus(0.2, 0.05);
        // Point on the ring circle, offset by the tube radius.
        let on_surface = Vec3::new(0.5 + 0.2, 0.5 + 0.05, 0.5);
        assert!(t.distance(on_surface).abs() < 1e-5);
    }

    #[test]
    fn lipschitz_property_holds_statistically() {
        // |d(p) - d(q)| <= |p - q| for true SDFs (and our bounds).
        let shapes = [
            SdfShape::centered_sphere(0.3),
            SdfShape::Box { center: Vec3::splat(0.5), half: Vec3::new(0.2, 0.1, 0.15) },
            SdfShape::centered_torus(0.2, 0.06),
            SdfShape::Gyroid { frequency: 20.0, thickness: 0.02 },
        ];
        let mut rng = crate::math::Pcg32::new(5);
        for shape in &shapes {
            for _ in 0..500 {
                let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
                let q = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
                let lhs = (shape.distance(p) - shape.distance(q)).abs();
                let rhs = (p - q).length() + 1e-4;
                assert!(lhs <= rhs, "{shape:?} violates Lipschitz: {lhs} > {rhs}");
            }
        }
    }

    #[test]
    fn csg_union_is_min() {
        let a = Csg::Leaf(SdfShape::centered_sphere(0.1));
        let b = Csg::Leaf(SdfShape::centered_sphere(0.3));
        let u = Csg::Union(Box::new(a), Box::new(b));
        let p = Vec3::new(0.9, 0.5, 0.5);
        assert!((u.distance(p) - (0.4 - 0.3)).abs() < 1e-6);
    }

    #[test]
    fn csg_difference_carves() {
        let outer = Csg::Leaf(SdfShape::centered_sphere(0.3));
        let inner = Csg::Leaf(SdfShape::centered_sphere(0.2));
        let shell = Csg::Difference(Box::new(outer), Box::new(inner));
        // Center is inside the carved-out region -> outside the shell.
        assert!(shell.distance(Vec3::splat(0.5)) > 0.0);
        // Midway through the shell wall -> inside.
        assert!(shell.distance(Vec3::new(0.75, 0.5, 0.5)) < 0.0);
    }

    #[test]
    fn demo_scene_has_surface() {
        let scene = Csg::demo_scene();
        let mut inside = 0;
        let mut outside = 0;
        let mut rng = crate::math::Pcg32::new(17);
        for _ in 0..2_000 {
            let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
            if scene.distance(p) < 0.0 {
                inside += 1;
            } else {
                outside += 1;
            }
        }
        assert!(inside > 10, "scene seems empty");
        assert!(outside > 10, "scene fills everything");
    }
}
