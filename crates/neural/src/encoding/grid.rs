//! Multiresolution grid encodings (instant-NGP family).
//!
//! The scene is covered by `L` grids of geometrically increasing resolution
//! `N_l = floor(N_min * b^l)`. Each level owns a table of up to `T` feature
//! vectors of dimensionality `F`. A query point is located in each level's
//! grid, the features at the 2^d cell corners are fetched (either 1:1 for
//! dense/coarse levels or through the spatial hash for fine hash levels),
//! d-linearly interpolated, and the per-level results are concatenated into
//! the final `L * F`-dimensional MLP input.

use serde::{Deserialize, Serialize};

use super::hash::{dense_index, dense_vertex_count, spatial_hash, table_mask};
use super::interp::CellPosition;
use super::{check_dim, Encoding};
use crate::error::{NgError, Result};
use crate::math::Pcg32;

/// How grid vertices are mapped to feature-table entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GridKind {
    /// 1:1 for coarse levels; the spatial hash (Eq. 1) once a level has
    /// more vertices than table entries. This is the paper's
    /// *multiresolution hashgrid*.
    Hash,
    /// Always 1:1; tables grow with the level resolution. The paper's
    /// *multiresolution densegrid*.
    Dense,
    /// 1:1 with the flattened vertex index wrapped into the table (the
    /// instant-NGP "tiled" grid). With few, low-resolution levels this is
    /// the paper's *low resolution densegrid*.
    Tiled,
}

/// Hyper-parameters of a multiresolution grid encoding.
///
/// Field names follow the paper's Table I: `N_min` (base resolution), `b`
/// (per-level growth factor), `F` (features per entry), `T` (maximum table
/// entries, always a power of two), `L` (number of levels).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Input dimensionality `d` (2 for images, 3 for volumes).
    pub dim: usize,
    /// Number of resolution levels `L`.
    pub n_levels: usize,
    /// Features per table entry `F`.
    pub features_per_level: usize,
    /// `log2(T)`: table entries are always a power of two, which is what
    /// lets both the GPU implementation and the NFP hardware replace the
    /// modulo with a mask.
    pub log2_table_size: u32,
    /// Coarsest grid resolution `N_min`.
    pub base_resolution: u32,
    /// Geometric growth factor `b` between levels.
    pub growth_factor: f32,
    /// Vertex-to-entry mapping.
    pub kind: GridKind,
}

impl GridConfig {
    /// The paper's *multiresolution hashgrid* defaults (Table I):
    /// `L = 16`, `F = 2`, `N_min = 16`.
    pub fn hashgrid(dim: usize, log2_table_size: u32, growth_factor: f32) -> Self {
        GridConfig {
            dim,
            n_levels: 16,
            features_per_level: 2,
            log2_table_size,
            base_resolution: 16,
            growth_factor,
            kind: GridKind::Hash,
        }
    }

    /// The paper's *multiresolution densegrid* defaults (Table I):
    /// `L = 8`, `F = 2`, `N_min = 16`, `b = 1.405`.
    pub fn densegrid(dim: usize, log2_table_size: u32) -> Self {
        GridConfig {
            dim,
            n_levels: 8,
            features_per_level: 2,
            log2_table_size,
            base_resolution: 16,
            growth_factor: 1.405,
            kind: GridKind::Dense,
        }
    }

    /// The paper's *low resolution densegrid* defaults (Table I):
    /// `L = 2`, `F = 8`, `N_min = 128`, `b = 1`.
    pub fn low_res_densegrid(dim: usize, log2_table_size: u32) -> Self {
        GridConfig {
            dim,
            n_levels: 2,
            features_per_level: 8,
            log2_table_size,
            base_resolution: 128,
            growth_factor: 1.0,
            kind: GridKind::Tiled,
        }
    }

    /// Resolution of level `l`: `floor(N_min * b^l)`.
    pub fn level_resolution(&self, level: usize) -> u32 {
        (self.base_resolution as f64 * (self.growth_factor as f64).powi(level as i32)).floor()
            as u32
    }

    /// Output feature width `L * F`.
    pub fn output_dim(&self) -> usize {
        self.n_levels * self.features_per_level
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::InvalidConfig`] for out-of-range values (e.g.
    /// `dim` not in 1..=3, zero levels, growth factor below 1).
    pub fn validate(&self) -> Result<()> {
        if !(1..=3).contains(&self.dim) {
            return Err(NgError::InvalidConfig {
                parameter: "dim",
                message: format!("must be 1..=3, got {}", self.dim),
            });
        }
        if self.n_levels == 0 || self.n_levels > 32 {
            return Err(NgError::InvalidConfig {
                parameter: "n_levels",
                message: format!("must be 1..=32, got {}", self.n_levels),
            });
        }
        if self.features_per_level == 0 || self.features_per_level > 16 {
            return Err(NgError::InvalidConfig {
                parameter: "features_per_level",
                message: format!("must be 1..=16, got {}", self.features_per_level),
            });
        }
        if !(1.0..=4.0).contains(&self.growth_factor) {
            return Err(NgError::InvalidConfig {
                parameter: "growth_factor",
                message: format!("must be in [1, 4], got {}", self.growth_factor),
            });
        }
        if self.base_resolution == 0 {
            return Err(NgError::InvalidConfig {
                parameter: "base_resolution",
                message: "must be nonzero".to_string(),
            });
        }
        if self.log2_table_size == 0 || self.log2_table_size > 26 {
            return Err(NgError::InvalidConfig {
                parameter: "log2_table_size",
                message: format!("must be 1..=26, got {}", self.log2_table_size),
            });
        }
        Ok(())
    }
}

/// Per-level derived layout, exposed so the hardware model (`ngpc` crate)
/// can size its grid SRAMs and index logic against the exact same numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelLayout {
    /// Grid resolution `N_l` (cells per axis; vertices are `N_l + 1`).
    pub resolution: u32,
    /// Feature-table entries actually allocated for this level.
    pub entries: usize,
    /// Whether vertex indices go through the spatial hash.
    pub hashed: bool,
    /// Whether the flattened dense index wraps (tiled levels whose vertex
    /// count exceeds the table size).
    pub wrapped: bool,
    /// Offset (in feature vectors, not floats) into the parameter buffer.
    pub offset: usize,
}

/// The table layout of a grid configuration — every per-level shape a
/// grid of that configuration would have, computed *without* allocating
/// or initialising the parameter tables themselves.
///
/// Analytical consumers (the GPU cache model, workload derivation, the
/// NFP SRAM sizing) only ever read shapes, never weights; going through
/// a layout instead of a full [`MultiResGrid`] turns an
/// allocate-and-RNG-fill of tens of MiB (the NeRF hash tables) into
/// `O(levels)` integer math.
///
/// ```
/// use ng_neural::encoding::{GridConfig, GridLayout, MultiResGrid};
///
/// # fn main() -> ng_neural::Result<()> {
/// let cfg = GridConfig::hashgrid(3, 14, 1.5);
/// let layout = GridLayout::new(cfg)?;
/// // Bit-identical to the layout of a fully materialised grid.
/// assert_eq!(layout.levels(), MultiResGrid::new(cfg, 1)?.levels());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridLayout {
    config: GridConfig,
    levels: Vec<LevelLayout>,
    /// Feature vectors across all levels (the end offset).
    total_entries: usize,
}

impl GridLayout {
    /// Compute the per-level layout of `config`.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: GridConfig) -> Result<Self> {
        config.validate()?;
        let table_cap = 1usize << config.log2_table_size;
        let mut levels = Vec::with_capacity(config.n_levels);
        let mut offset = 0usize;
        for l in 0..config.n_levels {
            let resolution = config.level_resolution(l);
            let vertices = dense_vertex_count(resolution, config.dim);
            let (entries, hashed, wrapped) = match config.kind {
                GridKind::Hash => {
                    if vertices <= table_cap as u64 {
                        (vertices as usize, false, false)
                    } else {
                        (table_cap, true, false)
                    }
                }
                GridKind::Dense => (vertices as usize, false, false),
                GridKind::Tiled => {
                    if vertices <= table_cap as u64 {
                        (vertices as usize, false, false)
                    } else {
                        (table_cap, false, true)
                    }
                }
            };
            levels.push(LevelLayout { resolution, entries, hashed, wrapped, offset });
            offset += entries;
        }
        Ok(GridLayout { config, levels, total_entries: offset })
    }

    /// The configuration this layout was computed from.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Per-level layout (entries, hashing, offsets).
    pub fn levels(&self) -> &[LevelLayout] {
        &self.levels
    }

    /// Number of `f32` parameters a materialised grid would hold.
    pub fn param_count(&self) -> usize {
        self.total_entries * self.config.features_per_level
    }

    /// Total table footprint in bytes assuming `bytes_per_param`
    /// storage.
    pub fn footprint_bytes(&self, bytes_per_param: usize) -> usize {
        self.param_count() * bytes_per_param
    }

    /// Footprint in bytes of a single level's table.
    pub fn level_footprint_bytes(&self, level: usize, bytes_per_param: usize) -> usize {
        self.levels[level].entries * self.config.features_per_level * bytes_per_param
    }
}

/// A trainable multiresolution grid encoding.
///
/// ```
/// use ng_neural::encoding::{Encoding, GridConfig, MultiResGrid};
///
/// # fn main() -> ng_neural::Result<()> {
/// let cfg = GridConfig::hashgrid(3, 14, 1.5);
/// let grid = MultiResGrid::new(cfg, 1)?;
/// let features = grid.encode(&[0.25, 0.5, 0.75])?;
/// assert_eq!(features.len(), 32); // 16 levels x 2 features
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiResGrid {
    config: GridConfig,
    levels: Vec<LevelLayout>,
    params: Vec<f32>,
}

impl MultiResGrid {
    /// Scale of the random uniform initialisation of table entries, as in
    /// instant-NGP.
    pub const INIT_SCALE: f32 = 1e-4;

    /// Allocate and randomly initialise the encoding tables.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: GridConfig, seed: u64) -> Result<Self> {
        let layout = GridLayout::new(config)?;
        let mut params = vec![0.0f32; layout.param_count()];
        let mut rng = Pcg32::with_stream(seed, 0x9e11);
        rng.fill_uniform(&mut params, -Self::INIT_SCALE, Self::INIT_SCALE);
        Ok(MultiResGrid { config, levels: layout.levels, params })
    }

    /// The configuration this encoding was built from.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Per-level layout (entries, hashing, offsets).
    pub fn levels(&self) -> &[LevelLayout] {
        &self.levels
    }

    /// Total table footprint in bytes assuming `bytes_per_param` storage
    /// (tiny-cuda-nn stores fp16, i.e. 2 bytes). Used by the GPU cache
    /// model and the NFP SRAM sizing.
    pub fn footprint_bytes(&self, bytes_per_param: usize) -> usize {
        self.params.len() * bytes_per_param
    }

    /// Footprint in bytes of a single level's table.
    pub fn level_footprint_bytes(&self, level: usize, bytes_per_param: usize) -> usize {
        self.levels[level].entries * self.config.features_per_level * bytes_per_param
    }

    /// Table index for a vertex of `level`, replicating the hardware
    /// `grid_index` module: dense levels use the row-major index, hashed
    /// levels the spatial hash, tiled levels wrap with the power-of-two
    /// mask.
    #[inline]
    pub fn vertex_entry(&self, level: &LevelLayout, coords: &[u32]) -> usize {
        if level.hashed {
            spatial_hash(coords, self.config.log2_table_size) as usize
        } else if level.wrapped {
            (dense_index(coords, level.resolution) as u32 & table_mask(self.config.log2_table_size))
                as usize
        } else {
            dense_index(coords, level.resolution) as usize
        }
    }

    /// Interpolated features of one level written into `out` (length `F`).
    fn encode_level(&self, level: &LevelLayout, x: &[f32], out: &mut [f32]) {
        let f_dim = self.config.features_per_level;
        out.iter_mut().for_each(|o| *o = 0.0);
        let cell = CellPosition::from_normalized(x, level.resolution);
        for corner in 0..cell.corner_count() {
            let w = cell.corner_weight(corner);
            if w == 0.0 {
                continue;
            }
            let coords = cell.corner_coords(corner);
            let entry = self.vertex_entry(level, &coords[..self.config.dim]);
            let base = (level.offset + entry) * f_dim;
            for (o, p) in out.iter_mut().zip(&self.params[base..base + f_dim]) {
                *o += w * p;
            }
        }
    }
}

impl Encoding for MultiResGrid {
    fn input_dim(&self) -> usize {
        self.config.dim
    }

    fn output_dim(&self) -> usize {
        self.config.output_dim()
    }

    fn encode_into(&self, input: &[f32], out: &mut [f32]) -> Result<()> {
        check_dim("grid encoding input", self.config.dim, input.len())?;
        check_dim("grid encoding output", self.output_dim(), out.len())?;
        let f_dim = self.config.features_per_level;
        for (l, level) in self.levels.iter().enumerate() {
            self.encode_level(level, input, &mut out[l * f_dim..(l + 1) * f_dim]);
        }
        Ok(())
    }

    fn param_count(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn backward(&self, input: &[f32], d_out: &[f32], d_params: &mut [f32]) -> Result<()> {
        check_dim("grid backward input", self.config.dim, input.len())?;
        check_dim("grid backward d_out", self.output_dim(), d_out.len())?;
        check_dim("grid backward d_params", self.params.len(), d_params.len())?;
        let f_dim = self.config.features_per_level;
        for (l, level) in self.levels.iter().enumerate() {
            let cell = CellPosition::from_normalized(input, level.resolution);
            let d_level = &d_out[l * f_dim..(l + 1) * f_dim];
            for corner in 0..cell.corner_count() {
                let w = cell.corner_weight(corner);
                if w == 0.0 {
                    continue;
                }
                let coords = cell.corner_coords(corner);
                let entry = self.vertex_entry(level, &coords[..self.config.dim]);
                let base = (level.offset + entry) * f_dim;
                for (f, dl) in d_level.iter().enumerate() {
                    d_params[base + f] += w * dl;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::encode_batch;

    fn tiny_hash() -> MultiResGrid {
        MultiResGrid::new(GridConfig::hashgrid(3, 10, 1.5), 7).unwrap()
    }

    #[test]
    fn output_dims_match_table1() {
        let hg = MultiResGrid::new(GridConfig::hashgrid(3, 19, 1.51572), 1).unwrap();
        assert_eq!(hg.output_dim(), 32);
        let dg = MultiResGrid::new(GridConfig::densegrid(3, 19), 1).unwrap();
        assert_eq!(dg.output_dim(), 16);
        let lr = MultiResGrid::new(GridConfig::low_res_densegrid(3, 19), 1).unwrap();
        assert_eq!(lr.output_dim(), 16);
    }

    #[test]
    fn coarse_hash_levels_are_dense() {
        let grid = MultiResGrid::new(GridConfig::hashgrid(3, 19, 1.51572), 1).unwrap();
        // Level 0: 17^3 = 4913 < 2^19 vertices -> 1:1 mapping.
        assert!(!grid.levels()[0].hashed);
        // The finest level must be hashed (resolution ~16*1.51572^15 ~ 8k).
        assert!(grid.levels().last().unwrap().hashed);
    }

    #[test]
    fn dense_levels_never_hash() {
        let grid = MultiResGrid::new(GridConfig::densegrid(3, 19), 1).unwrap();
        assert!(grid.levels().iter().all(|l| !l.hashed));
    }

    #[test]
    fn tiled_levels_wrap_when_too_big() {
        // 129^3 ~ 2.1M vertices > 2^19 entries -> wrapped.
        let grid = MultiResGrid::new(GridConfig::low_res_densegrid(3, 19), 1).unwrap();
        assert!(grid.levels().iter().all(|l| l.wrapped));
        assert!(grid.levels().iter().all(|l| l.entries == 1 << 19));
    }

    #[test]
    fn encoding_is_continuous_across_cell_boundary() {
        let grid = tiny_hash();
        // Sample just left and right of an interior vertex; outputs must be
        // close (the encoding is C0 by construction).
        let eps = 1e-4f32;
        let at = 5.0 / 16.0; // vertex of the coarsest level
        let a = grid.encode(&[at - eps, 0.4, 0.6]).unwrap();
        let b = grid.encode(&[at + eps, 0.4, 0.6]).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "discontinuity: {x} vs {y}");
        }
    }

    #[test]
    fn encode_matches_manual_interpolation_on_vertex() {
        let grid = tiny_hash();
        // On an exact vertex of level 0 the output equals the stored entry.
        let level = grid.levels()[0];
        let res = level.resolution;
        let x = [2.0 / res as f32, 3.0 / res as f32, 4.0 / res as f32];
        let out = grid.encode(&x).unwrap();
        let entry = grid.vertex_entry(&level, &[2, 3, 4]);
        let f_dim = grid.config().features_per_level;
        for (f, o) in out.iter().enumerate().take(f_dim) {
            assert!((o - grid.params()[(level.offset + entry) * f_dim + f]).abs() < 1e-6);
        }
    }

    #[test]
    fn params_initialised_small_and_nonzero() {
        let grid = tiny_hash();
        assert!(grid.params().iter().all(|p| p.abs() <= MultiResGrid::INIT_SCALE));
        assert!(grid.params().iter().any(|p| *p != 0.0));
    }

    #[test]
    fn backward_distributes_weighted_gradients() {
        let grid = tiny_hash();
        let x = [0.21, 0.43, 0.67];
        let d_out = vec![1.0f32; grid.output_dim()];
        let mut d_params = vec![0.0f32; grid.param_count()];
        grid.backward(&x, &d_out, &mut d_params).unwrap();
        // Gradient mass per level must equal the (unit) upstream gradient
        // times the partition-of-unity weights = F per level... but summed
        // over features: F. Total = L * F.
        let total: f32 = d_params.iter().sum();
        let expected = grid.output_dim() as f32;
        assert!((total - expected).abs() < 1e-3, "gradient mass {total} vs expected {expected}");
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut grid = MultiResGrid::new(GridConfig::hashgrid(2, 8, 1.4), 3).unwrap();
        let x = [0.37, 0.58];
        let out_dim = grid.output_dim();
        // Loss = sum of outputs; dL/d_out = 1.
        let d_out = vec![1.0f32; out_dim];
        let mut analytic = vec![0.0f32; grid.param_count()];
        grid.backward(&x, &d_out, &mut analytic).unwrap();
        // Pick a few parameters and perturb them.
        let sum_of = |g: &MultiResGrid| -> f32 { g.encode(&x).unwrap().iter().sum() };
        let h = 1e-3f32;
        for &idx in &[0usize, 5, 17, 101] {
            let base = sum_of(&grid);
            grid.params_mut()[idx] += h;
            let plus = sum_of(&grid);
            grid.params_mut()[idx] -= h;
            let numeric = (plus - base) / h;
            assert!(
                (analytic[idx] - numeric).abs() < 1e-2,
                "param {idx}: analytic {} vs numeric {numeric}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn batch_encode_agrees_with_single() {
        let grid = tiny_hash();
        let pts = [0.1f32, 0.2, 0.3, 0.7, 0.8, 0.9];
        let batch = encode_batch(&grid, &pts).unwrap();
        let first = grid.encode(&pts[0..3]).unwrap();
        let second = grid.encode(&pts[3..6]).unwrap();
        assert_eq!(&batch[..first.len()], &first[..]);
        assert_eq!(&batch[first.len()..], &second[..]);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(MultiResGrid::new(GridConfig { dim: 4, ..GridConfig::hashgrid(3, 14, 1.5) }, 0)
            .is_err());
        assert!(MultiResGrid::new(
            GridConfig { n_levels: 0, ..GridConfig::hashgrid(3, 14, 1.5) },
            0
        )
        .is_err());
        assert!(MultiResGrid::new(
            GridConfig { growth_factor: 0.5, ..GridConfig::hashgrid(3, 14, 1.5) },
            0
        )
        .is_err());
        assert!(MultiResGrid::new(
            GridConfig { log2_table_size: 30, ..GridConfig::hashgrid(3, 14, 1.5) },
            0
        )
        .is_err());
    }

    #[test]
    fn wrong_input_dims_error() {
        let grid = tiny_hash();
        assert!(grid.encode(&[0.5, 0.5]).is_err());
        let mut out = vec![0.0; 3];
        assert!(grid.encode_into(&[0.5, 0.5, 0.5], &mut out).is_err());
    }

    #[test]
    fn footprint_matches_level_sum() {
        let grid = MultiResGrid::new(GridConfig::densegrid(3, 19), 1).unwrap();
        let total: usize = (0..grid.levels().len()).map(|l| grid.level_footprint_bytes(l, 2)).sum();
        assert_eq!(total, grid.footprint_bytes(2));
    }

    #[test]
    fn seeds_change_init() {
        let a = MultiResGrid::new(GridConfig::hashgrid(2, 8, 1.4), 1).unwrap();
        let b = MultiResGrid::new(GridConfig::hashgrid(2, 8, 1.4), 2).unwrap();
        assert_ne!(a.params()[0], b.params()[0]);
    }
}
