//! Fixed-function frequency encoding (vanilla NeRF, Mildenhall et al.).
//!
//! Maps each coordinate `x` to `(sin(2^0 pi x), cos(2^0 pi x), ...,
//! sin(2^{K-1} pi x), cos(2^{K-1} pi x))`. Included as the representative
//! fixed-function encoding the paper contrasts with parametric grids; it
//! also serves as a zero-parameter baseline in the ablation benches.

use super::{check_dim, Encoding};
use crate::error::Result;

/// Sin/cos frequency encoding with `n_frequencies` octaves per input
/// dimension.
///
/// ```
/// use ng_neural::encoding::{frequency::FrequencyEncoding, Encoding};
/// let enc = FrequencyEncoding::new(3, 10); // vanilla-NeRF position encoding
/// assert_eq!(enc.output_dim(), 3 * 10 * 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyEncoding {
    dim: usize,
    n_frequencies: usize,
}

impl FrequencyEncoding {
    /// Create an encoding for `dim` inputs and `n_frequencies` octaves.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `n_frequencies` is zero.
    pub fn new(dim: usize, n_frequencies: usize) -> Self {
        assert!(dim > 0, "dim must be nonzero");
        assert!(n_frequencies > 0, "n_frequencies must be nonzero");
        FrequencyEncoding { dim, n_frequencies }
    }

    /// Number of octaves per dimension.
    pub fn n_frequencies(&self) -> usize {
        self.n_frequencies
    }
}

impl Encoding for FrequencyEncoding {
    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim * self.n_frequencies * 2
    }

    fn encode_into(&self, input: &[f32], out: &mut [f32]) -> Result<()> {
        check_dim("frequency encoding input", self.dim, input.len())?;
        check_dim("frequency encoding output", self.output_dim(), out.len())?;
        let mut o = 0;
        for &x in input {
            let mut freq = std::f32::consts::PI;
            for _ in 0..self.n_frequencies {
                let v = freq * x;
                out[o] = v.sin();
                out[o + 1] = v.cos();
                o += 2;
                freq *= 2.0;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_bounded() {
        let enc = FrequencyEncoding::new(3, 8);
        let out = enc.encode(&[0.123, 0.456, 0.789]).unwrap();
        assert!(out.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn sin_cos_pairs_consistent() {
        let enc = FrequencyEncoding::new(1, 4);
        let out = enc.encode(&[0.3]).unwrap();
        for pair in out.chunks_exact(2) {
            let norm = pair[0] * pair[0] + pair[1] * pair[1];
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_input_gives_known_pattern() {
        let enc = FrequencyEncoding::new(1, 3);
        let out = enc.encode(&[0.0]).unwrap();
        for pair in out.chunks_exact(2) {
            assert!((pair[0] - 0.0).abs() < 1e-6); // sin(0)
            assert!((pair[1] - 1.0).abs() < 1e-6); // cos(0)
        }
    }

    #[test]
    fn has_no_parameters() {
        let enc = FrequencyEncoding::new(2, 6);
        assert_eq!(enc.param_count(), 0);
        assert!(enc.params().is_empty());
    }

    #[test]
    fn higher_octaves_oscillate_faster() {
        // The last octave should flip sign over a much smaller interval
        // than the first.
        let enc = FrequencyEncoding::new(1, 10);
        let a = enc.encode(&[0.500]).unwrap();
        let b = enc.encode(&[0.502]).unwrap();
        let low_delta = (a[0] - b[0]).abs();
        let high_delta = (a[18] - b[18]).abs();
        assert!(high_delta > low_delta * 10.0, "{high_delta} vs {low_delta}");
    }
}
