//! Composite encoding: independent encoders over disjoint slices of the
//! input vector, with outputs concatenated.
//!
//! Table I's NeRF/NVR color models are written
//! `3 -[Composite]-> 16+16`: the 16 latent geometry features pass through
//! unchanged (identity) while the 3 direction components are expanded to 16
//! spherical-harmonics features. [`CompositeEncoding`] generalises this:
//! each part consumes a contiguous slice of the input and contributes a
//! contiguous slice of the output.

use super::{check_dim, Encoding};
use crate::error::{NgError, Result};

/// Pass-through encoding (identity map), used for latent features that are
/// already in network-feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityEncoding {
    dim: usize,
}

impl IdentityEncoding {
    /// Identity over `dim` values.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "identity dim must be nonzero");
        IdentityEncoding { dim }
    }
}

impl Encoding for IdentityEncoding {
    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn encode_into(&self, input: &[f32], out: &mut [f32]) -> Result<()> {
        check_dim("identity encoding input", self.dim, input.len())?;
        check_dim("identity encoding output", self.dim, out.len())?;
        out.copy_from_slice(input);
        Ok(())
    }
}

/// Concatenation of encodings over consecutive input slices.
///
/// ```
/// use ng_neural::encoding::composite::{CompositeEncoding, IdentityEncoding};
/// use ng_neural::encoding::sh::SphericalHarmonics;
/// use ng_neural::encoding::Encoding;
///
/// // The NeRF color-model input: 16 latent features + SH(direction).
/// let enc = CompositeEncoding::new(vec![
///     Box::new(IdentityEncoding::new(16)),
///     Box::new(SphericalHarmonics::degree4()),
/// ]);
/// assert_eq!(enc.input_dim(), 19);
/// assert_eq!(enc.output_dim(), 32);
/// ```
pub struct CompositeEncoding {
    parts: Vec<Box<dyn Encoding>>,
    input_dim: usize,
    output_dim: usize,
}

impl std::fmt::Debug for CompositeEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeEncoding")
            .field("parts", &self.parts.len())
            .field("input_dim", &self.input_dim)
            .field("output_dim", &self.output_dim)
            .finish()
    }
}

impl CompositeEncoding {
    /// Build a composite from parts applied to consecutive input slices.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn new(parts: Vec<Box<dyn Encoding>>) -> Self {
        assert!(!parts.is_empty(), "composite needs at least one part");
        let input_dim = parts.iter().map(|p| p.input_dim()).sum();
        let output_dim = parts.iter().map(|p| p.output_dim()).sum();
        CompositeEncoding { parts, input_dim, output_dim }
    }

    /// Number of component encodings.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }
}

impl Encoding for CompositeEncoding {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn encode_into(&self, input: &[f32], out: &mut [f32]) -> Result<()> {
        check_dim("composite encoding input", self.input_dim, input.len())?;
        check_dim("composite encoding output", self.output_dim, out.len())?;
        let mut in_off = 0;
        let mut out_off = 0;
        for part in &self.parts {
            let (id, od) = (part.input_dim(), part.output_dim());
            part.encode_into(&input[in_off..in_off + id], &mut out[out_off..out_off + od])?;
            in_off += id;
            out_off += od;
        }
        Ok(())
    }

    fn param_count(&self) -> usize {
        self.parts.iter().map(|p| p.param_count()).sum()
    }

    fn backward(&self, input: &[f32], d_out: &[f32], d_params: &mut [f32]) -> Result<()> {
        check_dim("composite backward input", self.input_dim, input.len())?;
        check_dim("composite backward d_out", self.output_dim, d_out.len())?;
        if d_params.len() != self.param_count() {
            return Err(NgError::DimensionMismatch {
                context: "composite backward d_params",
                expected: self.param_count(),
                actual: d_params.len(),
            });
        }
        let mut in_off = 0;
        let mut out_off = 0;
        let mut p_off = 0;
        for part in &self.parts {
            let (id, od, pd) = (part.input_dim(), part.output_dim(), part.param_count());
            part.backward(
                &input[in_off..in_off + id],
                &d_out[out_off..out_off + od],
                &mut d_params[p_off..p_off + pd],
            )?;
            in_off += id;
            out_off += od;
            p_off += pd;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::frequency::FrequencyEncoding;
    use crate::encoding::sh::SphericalHarmonics;

    #[test]
    fn identity_round_trips() {
        let id = IdentityEncoding::new(4);
        let out = id.encode(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn composite_slices_route_correctly() {
        let enc = CompositeEncoding::new(vec![
            Box::new(IdentityEncoding::new(2)),
            Box::new(IdentityEncoding::new(3)),
        ]);
        let out = enc.encode(&[1.0, 2.0, 10.0, 20.0, 30.0]).unwrap();
        assert_eq!(out, vec![1.0, 2.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn nerf_color_input_shape() {
        let enc = CompositeEncoding::new(vec![
            Box::new(IdentityEncoding::new(16)),
            Box::new(SphericalHarmonics::degree4()),
        ]);
        assert_eq!(enc.input_dim(), 19);
        assert_eq!(enc.output_dim(), 32); // the Table I "16+16"
    }

    #[test]
    fn parts_evaluate_identically_to_standalone() {
        let freq = FrequencyEncoding::new(2, 3);
        let enc = CompositeEncoding::new(vec![
            Box::new(IdentityEncoding::new(1)),
            Box::new(FrequencyEncoding::new(2, 3)),
        ]);
        let input = [5.0f32, 0.25, 0.75];
        let out = enc.encode(&input).unwrap();
        assert_eq!(out[0], 5.0);
        let standalone = freq.encode(&input[1..]).unwrap();
        assert_eq!(&out[1..], &standalone[..]);
    }

    #[test]
    fn wrong_sizes_rejected() {
        let enc = CompositeEncoding::new(vec![Box::new(IdentityEncoding::new(2))]);
        assert!(enc.encode(&[1.0]).is_err());
    }

    #[test]
    fn zero_param_composite() {
        let enc = CompositeEncoding::new(vec![
            Box::new(IdentityEncoding::new(16)),
            Box::new(SphericalHarmonics::degree4()),
        ]);
        assert_eq!(enc.param_count(), 0);
        let mut d = vec![];
        enc.backward(&[0.2; 19], &[1.0; 32], &mut d).unwrap();
    }
}
