//! Real spherical-harmonics direction encoding (degree ≤ 4, 16 outputs).
//!
//! instant-NGP encodes the camera viewing direction with the first 16 real
//! spherical-harmonics basis functions; the NeRF and NVR color models of
//! Table I consume these 16 values alongside the 16 latent geometry
//! features ("Composite 16+16"). Coefficients follow the standard
//! Condon–Shortley-free real SH convention, evaluated on unit vectors.

use super::{check_dim, Encoding};
use crate::error::Result;

/// Degree-4 real spherical harmonics over unit direction vectors.
///
/// Input is a direction in `[0,1]^3` (as instant-NGP passes it: the unit
/// vector remapped by `(d + 1) / 2`), which is mapped back to the sphere
/// before evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SphericalHarmonics {
    degree: usize,
}

impl SphericalHarmonics {
    /// Maximum supported degree.
    pub const MAX_DEGREE: usize = 4;

    /// Create a degree-`degree` SH encoding (`degree^2` outputs).
    ///
    /// # Panics
    ///
    /// Panics if `degree` is 0 or exceeds [`Self::MAX_DEGREE`].
    pub fn new(degree: usize) -> Self {
        assert!((1..=Self::MAX_DEGREE).contains(&degree), "SH degree must be 1..=4, got {degree}");
        SphericalHarmonics { degree }
    }

    /// The degree-4, 16-output configuration used by Table I.
    pub fn degree4() -> Self {
        SphericalHarmonics::new(4)
    }

    /// Basis degree.
    pub fn degree(&self) -> usize {
        self.degree
    }
}

impl Encoding for SphericalHarmonics {
    fn input_dim(&self) -> usize {
        3
    }

    fn output_dim(&self) -> usize {
        self.degree * self.degree
    }

    fn encode_into(&self, input: &[f32], out: &mut [f32]) -> Result<()> {
        check_dim("sh encoding input", 3, input.len())?;
        check_dim("sh encoding output", self.output_dim(), out.len())?;
        // Remap [0,1] -> [-1,1] and renormalise defensively.
        let mut x = input[0] * 2.0 - 1.0;
        let mut y = input[1] * 2.0 - 1.0;
        let mut z = input[2] * 2.0 - 1.0;
        let len = (x * x + y * y + z * z).sqrt();
        if len > 1e-9 {
            x /= len;
            y /= len;
            z /= len;
        }
        let (x2, y2, z2) = (x * x, y * y, z * z);
        let (xy, yz, xz) = (x * y, y * z, x * z);

        // l = 0
        out[0] = 0.282_094_79;
        if self.degree >= 2 {
            out[1] = -0.488_602_51 * y;
            out[2] = 0.488_602_51 * z;
            out[3] = -0.488_602_51 * x;
        }
        if self.degree >= 3 {
            out[4] = 1.092_548_4 * xy;
            out[5] = -1.092_548_4 * yz;
            out[6] = 0.315_391_57 * (3.0 * z2 - 1.0);
            out[7] = -1.092_548_4 * xz;
            out[8] = 0.546_274_2 * (x2 - y2);
        }
        if self.degree >= 4 {
            out[9] = -0.590_043_6 * y * (3.0 * x2 - y2);
            out[10] = 2.890_611_4 * xy * z;
            out[11] = -0.457_045_8 * y * (5.0 * z2 - 1.0);
            out[12] = 0.373_176_34 * z * (5.0 * z2 - 3.0);
            out[13] = -0.457_045_8 * x * (5.0 * z2 - 1.0);
            out[14] = 1.445_305_7 * z * (x2 - y2);
            out[15] = -0.590_043_6 * x * (x2 - 3.0 * y2);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec3;

    /// Map a unit vector into the [0,1]^3 input convention.
    fn dir_input(d: Vec3) -> [f32; 3] {
        [(d.x + 1.0) * 0.5, (d.y + 1.0) * 0.5, (d.z + 1.0) * 0.5]
    }

    #[test]
    fn degree4_has_16_outputs() {
        assert_eq!(SphericalHarmonics::degree4().output_dim(), 16);
    }

    #[test]
    fn l0_is_constant() {
        let sh = SphericalHarmonics::degree4();
        for i in 0..20 {
            let theta = std::f32::consts::PI * (i as f32 + 0.5) / 20.0;
            let d = Vec3::from_spherical(theta, 1.3 * i as f32);
            let out = sh.encode(&dir_input(d)).unwrap();
            assert!((out[0] - 0.282_094_79).abs() < 1e-6);
        }
    }

    #[test]
    fn bands_are_orthogonal_under_quadrature() {
        // Monte-Carlo orthonormality check: <Y_i, Y_j> ~ delta_ij over the
        // sphere (4pi measure).
        let sh = SphericalHarmonics::degree4();
        let n = 40_000;
        let mut rng = crate::math::Pcg32::new(99);
        let mut gram = vec![0.0f64; 16 * 16];
        for _ in 0..n {
            // Uniform sphere sampling.
            let z = rng.range_f32(-1.0, 1.0);
            let phi = rng.range_f32(0.0, 2.0 * std::f32::consts::PI);
            let r = (1.0 - z * z).max(0.0).sqrt();
            let d = Vec3::new(r * phi.cos(), r * phi.sin(), z);
            let out = sh.encode(&dir_input(d)).unwrap();
            for i in 0..16 {
                for j in i..16 {
                    gram[i * 16 + j] += (out[i] * out[j]) as f64;
                }
            }
        }
        let norm = 4.0 * std::f64::consts::PI / n as f64;
        for i in 0..16 {
            for j in i..16 {
                let v = gram[i * 16 + j] * norm;
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((v - expected).abs() < 0.06, "<Y{i}, Y{j}> = {v}, expected {expected}");
            }
        }
    }

    #[test]
    fn antipodal_symmetry_of_odd_bands() {
        let sh = SphericalHarmonics::degree4();
        let d = Vec3::new(0.3, -0.5, 0.8).normalized();
        let a = sh.encode(&dir_input(d)).unwrap();
        let b = sh.encode(&dir_input(-d)).unwrap();
        // l=1 band flips sign under inversion; l=2 band is even.
        for i in 1..4 {
            assert!((a[i] + b[i]).abs() < 1e-5, "odd band {i}");
        }
        for i in 4..9 {
            assert!((a[i] - b[i]).abs() < 1e-5, "even band {i}");
        }
    }

    #[test]
    fn degenerate_input_is_finite() {
        let sh = SphericalHarmonics::degree4();
        let out = sh.encode(&[0.5, 0.5, 0.5]).unwrap(); // zero vector
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
