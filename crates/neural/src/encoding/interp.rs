//! d-linear interpolation support for grid encodings.
//!
//! A continuous position inside a grid cell is blended from the feature
//! vectors at the 2^d cell corners. The interpolation weight of a corner is
//! the product over dimensions of either the fractional coordinate (corner
//! bit 1) or its complement (corner bit 0). The NFP hardware implements the
//! identical computation in its `interpol_weights` module, so this is the
//! reference the hardware model is validated against.

/// Maximum supported input dimensionality (images are 2D, volumes 3D).
pub const MAX_DIM: usize = 3;

/// Maximum number of cell corners (2^MAX_DIM).
pub const MAX_CORNERS: usize = 1 << MAX_DIM;

/// Decomposition of a continuous grid position into integer cell base and
/// fractional offsets, as produced by the `pos_fract` hardware stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellPosition {
    /// Integer coordinate of the cell's low corner, per dimension.
    pub base: [u32; MAX_DIM],
    /// Fractional offset within the cell in `[0, 1)`, per dimension.
    pub fract: [f32; MAX_DIM],
    /// Number of valid dimensions.
    pub dim: usize,
}

impl CellPosition {
    /// Decompose normalized coordinates `x in [0,1]^dim` scaled by
    /// `scale` (the level's resolution) into cell base + fraction.
    ///
    /// Positions are clamped so the high corner `base + 1` never exceeds
    /// `scale`, mirroring the boundary handling of instant-NGP.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x.len() > MAX_DIM`.
    pub fn from_normalized(x: &[f32], scale: u32) -> Self {
        debug_assert!(x.len() <= MAX_DIM && !x.is_empty());
        let mut base = [0u32; MAX_DIM];
        let mut fract = [0.0f32; MAX_DIM];
        for (i, &xi) in x.iter().enumerate() {
            let pos = (xi.clamp(0.0, 1.0)) * scale as f32;
            // Clamp the integer part so that base+1 is still a valid vertex.
            let cell = (pos.floor() as i64).clamp(0, scale.max(1) as i64 - 1) as u32;
            base[i] = cell;
            fract[i] = (pos - cell as f32).clamp(0.0, 1.0);
        }
        CellPosition { base, fract, dim: x.len() }
    }

    /// The integer coordinates of corner `corner` (bit `i` selects the high
    /// vertex along dimension `i`).
    #[inline]
    pub fn corner_coords(&self, corner: usize) -> [u32; MAX_DIM] {
        let mut c = self.base;
        for (i, coord) in c.iter_mut().enumerate().take(self.dim) {
            if corner & (1 << i) != 0 {
                *coord += 1;
            }
        }
        c
    }

    /// The d-linear interpolation weight of corner `corner`.
    #[inline]
    pub fn corner_weight(&self, corner: usize) -> f32 {
        let mut w = 1.0f32;
        for i in 0..self.dim {
            let f = self.fract[i];
            w *= if corner & (1 << i) != 0 { f } else { 1.0 - f };
        }
        w
    }

    /// Number of corners of this cell (2^dim).
    #[inline]
    pub fn corner_count(&self) -> usize {
        1 << self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_partition_unity() {
        for &(x, y, z) in &[(0.13f32, 0.57, 0.99), (0.0, 0.5, 1.0), (0.333, 0.666, 0.111)] {
            let cell = CellPosition::from_normalized(&[x, y, z], 16);
            let total: f32 = (0..cell.corner_count()).map(|c| cell.corner_weight(c)).sum();
            assert!((total - 1.0).abs() < 1e-5, "weights sum to {total}");
        }
    }

    #[test]
    fn weight_at_corner_is_one() {
        // Exactly on a vertex: all weight on one corner.
        let cell = CellPosition::from_normalized(&[0.5, 0.5], 2);
        // 0.5 * 2 = 1.0 exactly on vertex 1 -> fract 0, base 1.
        assert_eq!(cell.base[0], 1);
        assert_eq!(cell.fract[0], 0.0);
        assert_eq!(cell.corner_weight(0), 1.0);
        for c in 1..cell.corner_count() {
            assert_eq!(cell.corner_weight(c), 0.0);
        }
    }

    #[test]
    fn boundary_clamps_keep_corners_in_grid() {
        let cell = CellPosition::from_normalized(&[1.0, 1.0, 1.0], 8);
        for c in 0..cell.corner_count() {
            for (i, coord) in cell.corner_coords(c).iter().enumerate().take(3) {
                assert!(*coord <= 8, "dim {i} corner {coord} exceeds grid");
            }
        }
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        let cell = CellPosition::from_normalized(&[-0.5, 2.0], 4);
        assert_eq!(cell.base[0], 0);
        assert_eq!(cell.fract[0], 0.0);
        assert_eq!(cell.base[1], 3);
        assert_eq!(cell.fract[1], 1.0);
    }

    #[test]
    fn corner_coords_match_bits() {
        let cell = CellPosition::from_normalized(&[0.1, 0.1, 0.1], 10);
        let c5 = cell.corner_coords(0b101);
        assert_eq!(c5[0], cell.base[0] + 1);
        assert_eq!(c5[1], cell.base[1]);
        assert_eq!(c5[2], cell.base[2] + 1);
    }

    #[test]
    fn interpolation_reconstructs_linear_function() {
        // A function linear in x must be exactly reproduced by bilinear
        // interpolation of its vertex samples.
        let f = |x: f32, y: f32| 3.0 * x - 2.0 * y + 0.5;
        let scale = 4u32;
        for &(x, y) in &[(0.12f32, 0.7), (0.5, 0.25), (0.9, 0.9)] {
            let cell = CellPosition::from_normalized(&[x, y], scale);
            let mut value = 0.0;
            for c in 0..cell.corner_count() {
                let cc = cell.corner_coords(c);
                let vx = cc[0] as f32 / scale as f32;
                let vy = cc[1] as f32 / scale as f32;
                value += cell.corner_weight(c) * f(vx, vy);
            }
            assert!((value - f(x, y)).abs() < 1e-4, "at ({x},{y}): {value} vs {}", f(x, y));
        }
    }
}
