//! The spatial hash function of instant-NGP (Eq. 1 of the NGPC paper):
//!
//! ```text
//! h(x) = (xor_{i=1..d} x_i * pi_i) mod T
//! ```
//!
//! where the `pi_i` are unique large primes and `T` is the table size.
//! Because `T` is always a power of two in every neural-graphics
//! configuration, the modulo reduces to a bit mask — the very observation
//! the NGPC input-encoding engine exploits to replace the expensive integer
//! modulo with a shift/mask (Section V of the paper). The software
//! reference here uses the same mask, so the hardware model in the `ngpc`
//! crate is bit-exact against this implementation.

/// The hashing primes of instant-NGP. The first coordinate is multiplied
/// by 1 to preserve cache coherence in the fastest-varying dimension.
pub const HASH_PRIMES: [u32; 3] = [1, 2_654_435_761, 805_459_861];

/// Compute the spatial hash of up to 3 integer grid coordinates, reduced
/// into a table of `1 << log2_table_size` entries.
///
/// # Panics
///
/// Panics in debug builds if `coords` is empty or longer than
/// [`HASH_PRIMES`].
#[inline]
pub fn spatial_hash(coords: &[u32], log2_table_size: u32) -> u32 {
    debug_assert!(!coords.is_empty() && coords.len() <= HASH_PRIMES.len());
    let mut h = 0u32;
    for (i, &c) in coords.iter().enumerate() {
        h ^= c.wrapping_mul(HASH_PRIMES[i]);
    }
    h & table_mask(log2_table_size)
}

/// The bit mask implementing `mod 2^log2_table_size`.
#[inline]
pub const fn table_mask(log2_table_size: u32) -> u32 {
    if log2_table_size >= 32 {
        u32::MAX
    } else {
        (1u32 << log2_table_size) - 1
    }
}

/// Row-major linear index of a grid corner in a dense level with
/// `resolution + 1` vertices per axis (dimension inferred from `coords`).
///
/// The fastest-varying dimension is `coords[0]`, matching the hash prime
/// assignment above.
#[inline]
pub fn dense_index(coords: &[u32], resolution: u32) -> u64 {
    let stride = resolution as u64 + 1;
    let mut idx = 0u64;
    for &c in coords.iter().rev() {
        debug_assert!(c as u64 <= resolution as u64, "corner out of grid");
        idx = idx * stride + c as u64;
    }
    idx
}

/// Number of vertices in a dense level of `dim` dimensions.
#[inline]
pub fn dense_vertex_count(resolution: u32, dim: usize) -> u64 {
    (resolution as u64 + 1).pow(dim as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(spatial_hash(&[3, 5, 7], 19), spatial_hash(&[3, 5, 7], 19));
    }

    #[test]
    fn hash_respects_table_size() {
        for c in 0..1000u32 {
            let h = spatial_hash(&[c, c * 3 + 1, c * 7 + 2], 14);
            assert!(h < (1 << 14));
        }
    }

    #[test]
    fn mask_equals_modulo_for_powers_of_two() {
        for log2 in [1u32, 4, 14, 19, 24] {
            let t = 1u64 << log2;
            for x in [0u32, 1, 12345, u32::MAX, 987_654_321] {
                assert_eq!((x & table_mask(log2)) as u64, x as u64 % t);
            }
        }
    }

    #[test]
    fn hash_distribution_is_roughly_uniform() {
        // Chi-square-ish sanity: bucket 64k hashes of a 3D lattice into 256
        // bins; no bin should deviate wildly from the mean.
        const LOG2: u32 = 8;
        let mut bins = [0u32; 1 << LOG2];
        let mut n = 0u32;
        for x in 0..40u32 {
            for y in 0..40 {
                for z in 0..40 {
                    bins[spatial_hash(&[x, y, z], LOG2) as usize] += 1;
                    n += 1;
                }
            }
        }
        let mean = n as f64 / bins.len() as f64;
        for (i, &b) in bins.iter().enumerate() {
            assert!(
                (b as f64) < 3.0 * mean && (b as f64) > mean / 3.0,
                "bin {i} count {b} vs mean {mean}"
            );
        }
    }

    #[test]
    fn first_dim_preserves_locality() {
        // The x coordinate is multiplied by prime 1, so two hashes whose
        // inputs differ only in x differ exactly by `x0 ^ x1` — adjacent x
        // values land in nearby table entries (low-bit differences), a
        // property instant-NGP relies on for cache coherence.
        let a = spatial_hash(&[10, 4, 9], 19);
        let b = spatial_hash(&[11, 4, 9], 19);
        assert_eq!(a ^ b, (10 ^ 11) & table_mask(19));
        let c = spatial_hash(&[12, 4, 9], 19);
        assert_eq!(a ^ c, (10 ^ 12) & table_mask(19));
    }

    #[test]
    fn dense_index_row_major() {
        // 2D grid, resolution 2 => 3 vertices per axis.
        assert_eq!(dense_index(&[0, 0], 2), 0);
        assert_eq!(dense_index(&[1, 0], 2), 1);
        assert_eq!(dense_index(&[0, 1], 2), 3);
        assert_eq!(dense_index(&[2, 2], 2), 8);
    }

    #[test]
    fn dense_index_3d_bounds() {
        let res = 4u32;
        let count = dense_vertex_count(res, 3);
        let mut seen = vec![false; count as usize];
        for x in 0..=res {
            for y in 0..=res {
                for z in 0..=res {
                    let idx = dense_index(&[x, y, z], res) as usize;
                    assert!(!seen[idx], "collision in dense index");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vertex_count_matches_formula() {
        assert_eq!(dense_vertex_count(16, 3), 17 * 17 * 17);
        assert_eq!(dense_vertex_count(128, 2), 129 * 129);
    }
}
