//! Input encodings for neural graphics.
//!
//! Photo-realistic visual data is dominated by high-frequency content that
//! plain MLPs are biased against learning (spectral bias). Input encodings
//! map low-dimensional coordinates to a higher-dimensional space so a small
//! MLP can fit the high frequencies. The NGPC paper studies three
//! *parametric* grid encodings (instant-NGP family):
//!
//! * [`grid::MultiResGrid`] with [`GridKind::Hash`] — *multiresolution
//!   hashgrid* (16 levels, hash-indexed tables, Eq. 1 of the paper),
//! * [`GridKind::Dense`] — *multiresolution densegrid* (8 levels, 1:1
//!   index mapping),
//! * [`GridKind::Tiled`] — *low-resolution densegrid* (2 levels, 1:1
//!   mapping that wraps the flattened index into the table),
//!
//! plus the *fixed-function* encodings used as building blocks elsewhere:
//! [`frequency::FrequencyEncoding`] (vanilla NeRF sin/cos) and
//! [`sh::SphericalHarmonics`] (view-direction encoding for the NeRF/NVR
//! color model), and [`composite::CompositeEncoding`] which concatenates
//! encodings over slices of the input (Table I `Composite`).

pub mod composite;
pub mod frequency;
pub mod grid;
pub mod hash;
pub mod interp;
pub mod sh;

pub use grid::{GridConfig, GridKind, GridLayout, LevelLayout, MultiResGrid};

use crate::error::{NgError, Result};

/// A mapping from low-dimensional inputs to high-dimensional MLP features.
///
/// Implementations must be deterministic. Parametric encodings additionally
/// expose their trainable table through [`Encoding::params`] /
/// [`Encoding::params_mut`] and accumulate parameter gradients in
/// [`Encoding::backward`]; fixed-function encodings report zero parameters.
pub trait Encoding: Send + Sync {
    /// Number of input coordinates (2 for images, 3 for volumes, ...).
    fn input_dim(&self) -> usize;

    /// Number of produced features (the MLP input width).
    fn output_dim(&self) -> usize;

    /// Encode one input point into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::DimensionMismatch`] if `input` or `out` have the
    /// wrong length.
    fn encode_into(&self, input: &[f32], out: &mut [f32]) -> Result<()>;

    /// Convenience wrapper allocating the output.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Encoding::encode_into`].
    fn encode(&self, input: &[f32]) -> Result<Vec<f32>> {
        let mut out = vec![0.0; self.output_dim()];
        self.encode_into(input, &mut out)?;
        Ok(out)
    }

    /// Number of trainable parameters (0 for fixed-function encodings).
    fn param_count(&self) -> usize {
        0
    }

    /// Trainable parameters, if any.
    fn params(&self) -> &[f32] {
        &[]
    }

    /// Mutable trainable parameters, if any.
    fn params_mut(&mut self) -> &mut [f32] {
        &mut []
    }

    /// Accumulate `d loss / d params` into `d_params` for one input, given
    /// the upstream gradient `d_out` (`d loss / d encoding output`), and
    /// return nothing: coordinate gradients are not needed because
    /// encodings are always the first pipeline stage.
    ///
    /// The default implementation is a no-op (fixed-function encodings).
    ///
    /// # Errors
    ///
    /// Returns [`NgError::DimensionMismatch`] on inconsistent slice sizes.
    fn backward(&self, input: &[f32], d_out: &[f32], d_params: &mut [f32]) -> Result<()> {
        let _ = (input, d_out, d_params);
        Ok(())
    }
}

/// Validate a slice length, producing a consistent error.
pub(crate) fn check_dim(context: &'static str, expected: usize, actual: usize) -> Result<()> {
    if expected != actual {
        return Err(NgError::DimensionMismatch { context, expected, actual });
    }
    Ok(())
}

/// Encode a batch of points laid out row-major (`n_points * input_dim`).
///
/// Returns a row-major `n_points * output_dim` buffer. This is the batched
/// entry point the renderer and trainer use.
///
/// # Errors
///
/// Returns [`NgError::DimensionMismatch`] if `inputs.len()` is not a
/// multiple of the encoding input dimension.
pub fn encode_batch<E: Encoding + ?Sized>(encoding: &E, inputs: &[f32]) -> Result<Vec<f32>> {
    let d = encoding.input_dim();
    if d == 0 || !inputs.len().is_multiple_of(d) {
        return Err(NgError::DimensionMismatch {
            context: "batch encode input",
            expected: d,
            actual: inputs.len(),
        });
    }
    let n = inputs.len() / d;
    let out_dim = encoding.output_dim();
    let mut out = vec![0.0; n * out_dim];
    for (point, chunk) in inputs.chunks_exact(d).zip(out.chunks_exact_mut(out_dim)) {
        encoding.encode_into(point, chunk)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::frequency::FrequencyEncoding;
    use super::*;

    #[test]
    fn encode_batch_shapes() {
        let enc = FrequencyEncoding::new(2, 4);
        let inputs = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        let out = encode_batch(&enc, &inputs).unwrap();
        assert_eq!(out.len(), 3 * enc.output_dim());
    }

    #[test]
    fn encode_batch_rejects_ragged_input() {
        let enc = FrequencyEncoding::new(3, 4);
        let err = encode_batch(&enc, &[0.0; 7]).unwrap_err();
        assert!(matches!(err, NgError::DimensionMismatch { .. }));
    }

    #[test]
    fn default_backward_is_noop() {
        let enc = FrequencyEncoding::new(2, 2);
        let mut grads: Vec<f32> = vec![];
        enc.backward(&[0.1, 0.2], &vec![1.0; enc.output_dim()], &mut grads).unwrap();
        assert!(grads.is_empty());
    }
}
