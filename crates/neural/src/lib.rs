//! # ng-neural — neural graphics algorithm substrate
//!
//! This crate implements, from scratch, every algorithm the NGPC paper
//! ("Hardware Acceleration of Neural Graphics", ISCA 2023) builds on:
//!
//! * **Input encodings** ([`encoding`]): multiresolution *hashgrid*,
//!   *densegrid* and *tiled (low-resolution dense) grid* parametric
//!   encodings exactly as in instant-NGP (Müller et al. 2022), plus the
//!   fixed-function *frequency* and *spherical-harmonics* encodings and a
//!   *composite* combinator used by the NeRF color model.
//! * **Fully-fused-style MLPs** ([`mlp`]): small bias-free multi-layer
//!   perceptrons (2–4 hidden layers, 64 neurons) with forward, backward,
//!   Adam optimisation and the losses used for neural-graphics training.
//! * **The four applications** ([`apps`]): NeRF, NSDF, GIA and NVR with the
//!   exact hyper-parameters of Table I of the paper.
//! * **Rendering** ([`render`]): ray generation, ray-marched volume
//!   rendering with alpha compositing, SDF sphere tracing and image
//!   utilities (PSNR, PPM output).
//! * **Synthetic data** ([`data`]): procedural high-frequency images,
//!   analytic signed-distance fields and emissive density volumes that
//!   substitute for the paper's captured datasets.
//! * **Training** ([`train`]): a deterministic, seedable training loop.
//!
//! ## Quickstart
//!
//! Train a tiny gigapixel-image-approximation (GIA) model on a procedural
//! target and evaluate its reconstruction error:
//!
//! ```
//! use ng_neural::apps::{AppKind, EncodingKind};
//! use ng_neural::apps::gia::GiaModel;
//! use ng_neural::data::procedural::ProceduralImage;
//! use ng_neural::train::{TrainConfig, Trainer};
//!
//! let image = ProceduralImage::new(7);
//! let mut model = GiaModel::new(EncodingKind::MultiResHashGrid, 42);
//! let cfg = TrainConfig { steps: 50, batch_size: 256, ..TrainConfig::default() };
//! let stats = Trainer::new(cfg).train_gia(&mut model, &image);
//! assert!(stats.final_loss < stats.initial_loss);
//! ```

pub mod apps;
pub mod data;
pub mod encoding;
pub mod error;
pub mod math;
pub mod mlp;
pub mod render;
pub mod train;

pub use error::{NgError, Result};
