//! Neural volume rendering (NVR): like NeRF, but the network learns a
//! density plus a *reflectance* field of a bounded object, later used for
//! path-traced light transport. Table I specifies a single grid encoding
//! feeding one 4-layer MLP with a 4-channel `(RGB, sigma)` output.

use super::{table1, AppKind, EncodingKind, FieldModel, OutputDecode};
use crate::encoding::MultiResGrid;
use crate::error::Result;
use crate::math::Vec3;
use crate::mlp::Mlp;

/// A decoded NVR sample: reflectance color and density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeSample {
    /// Reflectance RGB in `[0,1]`.
    pub color: Vec3,
    /// Volume density (non-negative).
    pub sigma: f32,
}

/// An NVR model: 3D grid encoding -> 4-layer MLP -> (RGB, sigma).
#[derive(Debug, Clone)]
pub struct NvrModel {
    field: FieldModel,
    encoding_kind: EncodingKind,
}

impl NvrModel {
    /// Build the Table I NVR configuration for the chosen encoding.
    pub fn new(encoding: EncodingKind, seed: u64) -> Self {
        let p = table1(AppKind::Nvr, encoding);
        let grid = MultiResGrid::new(p.grid, seed).expect("table1 grid config is valid");
        let mlp = Mlp::new(p.mlp, seed ^ 0x4E4B).expect("table1 mlp config is valid");
        NvrModel {
            field: FieldModel::new(grid, mlp).expect("table1 widths are consistent"),
            encoding_kind: encoding,
        }
    }

    /// The encoding scheme in use.
    pub fn encoding_kind(&self) -> EncodingKind {
        self.encoding_kind
    }

    /// The underlying encoding + MLP pair.
    pub fn field(&self) -> &FieldModel {
        &self.field
    }

    /// Mutable access for training.
    pub fn field_mut(&mut self) -> &mut FieldModel {
        &mut self.field
    }

    /// The decode applied to raw MLP outputs.
    pub fn decode(&self) -> OutputDecode {
        OutputDecode::ColorDensity
    }

    /// Query the reflectance and density at a point in `[0,1]^3`.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the underlying model.
    pub fn query(&self, p: Vec3) -> Result<VolumeSample> {
        let mut raw = self.field.forward(&p.to_array())?;
        self.decode().apply(&mut raw);
        Ok(VolumeSample { color: Vec3::new(raw[0], raw[1], raw[2]), sigma: raw[3] })
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.field.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_physical() {
        let model = NvrModel::new(EncodingKind::MultiResDenseGrid, 12);
        let s = model.query(Vec3::new(0.2, 0.8, 0.5)).unwrap();
        assert!(s.sigma >= 0.0);
        for ch in [s.color.x, s.color.y, s.color.z] {
            assert!((0.0..=1.0).contains(&ch));
        }
    }

    #[test]
    fn four_output_channels() {
        let model = NvrModel::new(EncodingKind::MultiResHashGrid, 1);
        assert_eq!(model.field().mlp.config().output_dim, 4);
        assert_eq!(model.field().mlp.config().hidden_layers, 4);
    }

    #[test]
    fn all_encodings_construct() {
        for enc in EncodingKind::ALL {
            assert!(NvrModel::new(enc, 7).param_count() > 0);
        }
    }
}
