//! Neural radiance and density fields (NeRF).
//!
//! Two concatenated networks (paper Fig. 4): a *density MLP* maps encoded
//! positions to sigma plus latent geometry features; a *color MLP* maps
//! those latent features together with the spherical-harmonics-encoded
//! view direction to RGB. The output is the `(RGB, sigma)` tuple consumed
//! by the volume renderer.

use super::params::{NERF_LATENT_DIM, NERF_SH_DIM};
use super::{table1, AppKind, EncodingKind, FieldGrads, FieldModel, OutputDecode};
use crate::encoding::sh::SphericalHarmonics;
use crate::encoding::{Encoding, MultiResGrid};
use crate::error::Result;
use crate::math::{Activation, Vec3};
use crate::mlp::{Mlp, MlpTrace};

/// A radiance-field sample: emitted color and volume density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadianceSample {
    /// Emitted/reflected RGB color in `[0,1]`.
    pub color: Vec3,
    /// Volume density (non-negative).
    pub sigma: f32,
}

/// Gradient buffers for the full NeRF pipeline.
#[derive(Debug, Clone)]
pub struct NerfGrads {
    /// Density model (grid tables + density MLP).
    pub density: FieldGrads,
    /// Color MLP weights.
    pub color_mlp: Vec<f32>,
}

impl NerfGrads {
    /// Zeroed gradients matching `model`.
    pub fn zeros_like(model: &NerfModel) -> Self {
        NerfGrads {
            density: FieldGrads::zeros_like(&model.density),
            color_mlp: vec![0.0; model.color_mlp.param_count()],
        }
    }

    /// Reset all gradients to zero.
    pub fn clear(&mut self) {
        self.density.clear();
        self.color_mlp.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Scale all gradients (e.g. by `1/batch`).
    pub fn scale(&mut self, s: f32) {
        self.density.scale(s);
        self.color_mlp.iter_mut().for_each(|g| *g *= s);
    }
}

/// Everything computed during a traced NeRF forward pass, retained for the
/// backward pass.
#[derive(Debug, Clone)]
pub struct NerfTrace {
    /// Grid-encoding features of the position.
    pub features: Vec<f32>,
    /// Density MLP trace.
    pub density_trace: MlpTrace,
    /// Raw density-MLP outputs (channel 0 is pre-exp sigma).
    pub density_raw: Vec<f32>,
    /// Color-MLP input (latent + SH direction features).
    pub color_input: Vec<f32>,
    /// Color MLP trace.
    pub color_trace: MlpTrace,
    /// Raw color-MLP outputs (pre-sigmoid RGB).
    pub color_raw: Vec<f32>,
    /// Decoded sample.
    pub sample: RadianceSample,
}

/// The full NeRF pipeline of Table I.
#[derive(Debug, Clone)]
pub struct NerfModel {
    density: FieldModel,
    color_mlp: Mlp,
    sh: SphericalHarmonics,
    encoding_kind: EncodingKind,
}

impl NerfModel {
    /// Build the Table I NeRF configuration for the chosen encoding.
    pub fn new(encoding: EncodingKind, seed: u64) -> Self {
        let p = table1(AppKind::Nerf, encoding);
        let grid = MultiResGrid::new(p.grid, seed).expect("table1 grid config is valid");
        let density_mlp = Mlp::new(p.mlp, seed ^ 0xDE45).expect("table1 mlp config is valid");
        let color_mlp = Mlp::new(p.color_mlp.expect("nerf has a color mlp"), seed ^ 0xC010)
            .expect("table1 color mlp config is valid");
        NerfModel {
            density: FieldModel::new(grid, density_mlp).expect("table1 widths are consistent"),
            color_mlp,
            sh: SphericalHarmonics::degree4(),
            encoding_kind: encoding,
        }
    }

    /// The encoding scheme in use.
    pub fn encoding_kind(&self) -> EncodingKind {
        self.encoding_kind
    }

    /// The density branch (grid encoding + density MLP).
    pub fn density_field(&self) -> &FieldModel {
        &self.density
    }

    /// Mutable density branch (for optimizers).
    pub fn density_field_mut(&mut self) -> &mut FieldModel {
        &mut self.density
    }

    /// The color MLP.
    pub fn color_mlp(&self) -> &Mlp {
        &self.color_mlp
    }

    /// Mutable color MLP (for optimizers).
    pub fn color_mlp_mut(&mut self) -> &mut Mlp {
        &mut self.color_mlp
    }

    /// Total trainable parameters across both networks and the grid.
    pub fn param_count(&self) -> usize {
        self.density.param_count() + self.color_mlp.param_count()
    }

    /// Density-only query (used by importance samplers): sigma at `pos`.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn sigma(&self, pos: Vec3) -> Result<f32> {
        let raw = self.density.forward(&pos.to_array())?;
        Ok(Activation::Exp.apply(raw[0]))
    }

    /// Full radiance query at position `pos` (in `[0,1]^3`) viewed from
    /// unit direction `dir`.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn query(&self, pos: Vec3, dir: Vec3) -> Result<RadianceSample> {
        Ok(self.forward_traced(pos, dir)?.sample)
    }

    /// Traced forward pass retaining every intermediate for training.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn forward_traced(&self, pos: Vec3, dir: Vec3) -> Result<NerfTrace> {
        let features = self.density.encoding.encode(&pos.to_array())?;
        let density_trace = self.density.mlp.forward_traced(&features)?;
        let density_raw = density_trace.post.last().expect("trace has layers").clone();
        let sigma = Activation::Exp.apply(density_raw[0]);

        // Assemble the composite color input: latent geometry features
        // followed by SH-encoded direction ([0,1]-remapped as in
        // instant-NGP).
        let mut color_input = vec![0.0f32; NERF_LATENT_DIM + NERF_SH_DIM];
        color_input[..NERF_LATENT_DIM].copy_from_slice(&density_raw[..NERF_LATENT_DIM]);
        let dir01 = [(dir.x + 1.0) * 0.5, (dir.y + 1.0) * 0.5, (dir.z + 1.0) * 0.5];
        self.sh.encode_into(&dir01, &mut color_input[NERF_LATENT_DIM..])?;

        let color_trace = self.color_mlp.forward_traced(&color_input)?;
        let color_raw = color_trace.post.last().expect("trace has layers").clone();
        let color = Vec3::new(
            Activation::Sigmoid.apply(color_raw[0]),
            Activation::Sigmoid.apply(color_raw[1]),
            Activation::Sigmoid.apply(color_raw[2]),
        );
        Ok(NerfTrace {
            features,
            density_trace,
            density_raw,
            color_input,
            color_trace,
            color_raw,
            sample: RadianceSample { color, sigma },
        })
    }

    /// Backward pass for one sample.
    ///
    /// `d_color` is `d loss / d decoded RGB`, `d_sigma` is
    /// `d loss / d sigma`. Gradients flow through the color MLP into the
    /// latent features and join the sigma gradient at the density MLP, then
    /// into the grid tables — the same fused dataflow the NFP hardware
    /// implements.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn backward(
        &self,
        pos: Vec3,
        trace: &NerfTrace,
        d_color: Vec3,
        d_sigma: f32,
        grads: &mut NerfGrads,
    ) -> Result<()> {
        // Through the color sigmoid.
        let mut d_color_raw = vec![0.0f32; 3];
        let d_dec = [d_color.x, d_color.y, d_color.z];
        for i in 0..3 {
            let y = Activation::Sigmoid.apply(trace.color_raw[i]);
            d_color_raw[i] = d_dec[i] * Activation::Sigmoid.derivative(trace.color_raw[i], y);
        }
        // Color MLP backward -> gradient w.r.t. its input.
        let d_color_input = self.color_mlp.backward(
            &trace.color_input,
            &trace.color_trace,
            &d_color_raw,
            &mut grads.color_mlp,
        )?;

        // Density raw gradient: latent part from the color branch plus the
        // sigma channel through exp.
        let mut d_density_raw = vec![0.0f32; trace.density_raw.len()];
        d_density_raw[..NERF_LATENT_DIM].copy_from_slice(&d_color_input[..NERF_LATENT_DIM]);
        let sigma = trace.sample.sigma;
        d_density_raw[0] += d_sigma * Activation::Exp.derivative(trace.density_raw[0], sigma);

        self.density.backward(
            &pos.to_array(),
            &trace.features,
            &trace.density_trace,
            &d_density_raw,
            &mut grads.density,
        )?;
        Ok(())
    }

    /// The decode applied to the color branch.
    pub fn color_decode(&self) -> OutputDecode {
        OutputDecode::Color
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NerfModel {
        NerfModel::new(EncodingKind::LowResDenseGrid, 9)
    }

    #[test]
    fn query_produces_valid_sample() {
        let m = model();
        let s = m.query(Vec3::new(0.4, 0.5, 0.6), Vec3::new(0.0, 0.0, 1.0)).unwrap();
        assert!(s.sigma >= 0.0);
        for ch in [s.color.x, s.color.y, s.color.z] {
            assert!((0.0..=1.0).contains(&ch));
        }
    }

    #[test]
    fn sigma_matches_traced_forward() {
        let m = model();
        let pos = Vec3::new(0.3, 0.7, 0.2);
        let sigma = m.sigma(pos).unwrap();
        let trace = m.forward_traced(pos, Vec3::new(1.0, 0.0, 0.0)).unwrap();
        assert!((sigma - trace.sample.sigma).abs() < 1e-6);
    }

    #[test]
    fn color_depends_on_view_direction() {
        // With random init this holds almost surely; it verifies the SH
        // path is wired into the color input.
        let m = NerfModel::new(EncodingKind::MultiResDenseGrid, 21);
        let pos = Vec3::new(0.5, 0.5, 0.5);
        let a = m.query(pos, Vec3::new(0.0, 0.0, 1.0)).unwrap();
        let b = m.query(pos, Vec3::new(1.0, 0.0, 0.0)).unwrap();
        assert!((a.color - b.color).length() > 1e-6, "color did not change with view direction");
        assert!((a.sigma - b.sigma).abs() < 1e-9, "sigma must be view-independent");
    }

    #[test]
    fn backward_touches_all_parameter_chunks() {
        let m = model();
        let pos = Vec3::new(0.25, 0.5, 0.75);
        let dir = Vec3::new(0.0, 1.0, 0.0);
        let trace = m.forward_traced(pos, dir).unwrap();
        let mut grads = NerfGrads::zeros_like(&m);
        m.backward(pos, &trace, Vec3::new(1.0, 1.0, 1.0), 1.0, &mut grads).unwrap();
        assert!(grads.color_mlp.iter().any(|g| *g != 0.0));
        assert!(grads.density.mlp.iter().any(|g| *g != 0.0));
        assert!(grads.density.encoding.iter().any(|g| *g != 0.0));
    }

    #[test]
    fn sigma_gradient_matches_finite_difference_through_pipeline() {
        // Perturb one grid parameter and verify the sigma gradient.
        let mut m = model();
        let pos = Vec3::new(0.61, 0.37, 0.52);
        let dir = Vec3::new(0.0, 0.0, 1.0);
        let trace = m.forward_traced(pos, dir).unwrap();
        let mut grads = NerfGrads::zeros_like(&m);
        // Loss = sigma -> d_sigma = 1, d_color = 0.
        m.backward(pos, &trace, Vec3::ZERO, 1.0, &mut grads).unwrap();

        // Find a grid parameter with nonzero gradient.
        let idx = grads
            .density
            .encoding
            .iter()
            .position(|g| g.abs() > 1e-8)
            .expect("some grid gradient is nonzero");
        let h = 1e-3f32;
        let base = m.sigma(pos).unwrap();
        m.density_field_mut().encoding.params_mut()[idx] += h;
        let plus = m.sigma(pos).unwrap();
        let numeric = (plus - base) / h;
        let analytic = grads.density.encoding[idx];
        assert!(
            (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }
}
