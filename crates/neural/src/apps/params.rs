//! Table I of the NGPC paper: the exact hyper-parameters of every
//! application x encoding configuration.

use serde::{Deserialize, Serialize};

use super::{AppKind, EncodingKind};
use crate::encoding::{GridConfig, GridKind};
use crate::math::Activation;
use crate::mlp::MlpConfig;

/// A complete Table I row: grid encoding plus MLP topology (two MLPs for
/// NeRF's density/color split).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppParams {
    /// Which application this parameterises.
    pub app: AppKind,
    /// Which input encoding scheme.
    pub encoding: EncodingKind,
    /// Grid-encoding hyper-parameters (`N_min`, `b`, `F`, `T`, `L`).
    pub grid: GridConfig,
    /// The primary MLP (density MLP for NeRF/NVR-style models, the single
    /// MLP otherwise).
    pub mlp: MlpConfig,
    /// NeRF's color MLP (fed by the 16 latent features + 16 SH features).
    pub color_mlp: Option<MlpConfig>,
}

/// Number of latent geometry features NeRF's density MLP hands to the
/// color MLP (the "16" of Table I's "16+16" composite).
///
/// Table I prints the density output as `->1` (the sigma channel); as in
/// instant-NGP the same network also carries the latent features, so the
/// concrete output width here is 16 with channel 0 holding sigma.
pub const NERF_LATENT_DIM: usize = 16;

/// Spherical-harmonics features encoding the view direction.
pub const NERF_SH_DIM: usize = 16;

fn grid_for(app: AppKind, encoding: EncodingKind) -> GridConfig {
    let dim = app.spatial_dim();
    let log2_t = match app {
        AppKind::Gia => 24,
        _ => 19,
    };
    match encoding {
        EncodingKind::MultiResHashGrid => {
            // Per-application growth factors from Table I.
            let b = match app {
                AppKind::Nerf => 1.51572,
                AppKind::Nsdf => 1.38191,
                AppKind::Nvr => 1.275,
                AppKind::Gia => 1.25992,
            };
            GridConfig {
                dim,
                n_levels: 16,
                features_per_level: 2,
                log2_table_size: log2_t,
                base_resolution: 16,
                growth_factor: b,
                kind: GridKind::Hash,
            }
        }
        EncodingKind::MultiResDenseGrid => GridConfig {
            dim,
            n_levels: 8,
            features_per_level: 2,
            log2_table_size: log2_t,
            base_resolution: 16,
            growth_factor: 1.405,
            kind: GridKind::Dense,
        },
        EncodingKind::LowResDenseGrid => GridConfig {
            dim,
            n_levels: 2,
            features_per_level: 8,
            log2_table_size: log2_t,
            base_resolution: 128,
            growth_factor: 1.0,
            kind: GridKind::Tiled,
        },
    }
}

/// Look up the Table I configuration for an application/encoding pair.
///
/// ```
/// use ng_neural::apps::{table1, AppKind, EncodingKind};
/// let p = table1(AppKind::Nerf, EncodingKind::MultiResHashGrid);
/// assert_eq!(p.grid.n_levels, 16);
/// assert_eq!(p.mlp.hidden_layers, 3); // density MLP
/// assert!(p.color_mlp.is_some());
/// ```
pub fn table1(app: AppKind, encoding: EncodingKind) -> AppParams {
    let grid = grid_for(app, encoding);
    let enc_out = grid.output_dim();
    let (mlp, color_mlp) = match app {
        AppKind::Nerf => {
            // Density: enc -> 64x3 -> 16 latent (sigma in channel 0);
            // Color: (16 latent + 16 SH) -> 64x4 -> 3.
            let density = MlpConfig::neural_graphics(enc_out, 3, NERF_LATENT_DIM, Activation::None);
            let color =
                MlpConfig::neural_graphics(NERF_LATENT_DIM + NERF_SH_DIM, 4, 3, Activation::None);
            (density, Some(color))
        }
        AppKind::Nsdf => (MlpConfig::neural_graphics(enc_out, 4, 1, Activation::None), None),
        AppKind::Nvr => (MlpConfig::neural_graphics(enc_out, 4, 4, Activation::None), None),
        AppKind::Gia => (MlpConfig::neural_graphics(enc_out, 4, 3, Activation::None), None),
    };
    AppParams { app, encoding, grid, mlp, color_mlp }
}

/// Every Table I row (4 applications x 3 encodings).
pub fn all_table1() -> Vec<AppParams> {
    let mut rows = Vec::with_capacity(12);
    for app in AppKind::ALL {
        for enc in EncodingKind::ALL {
            rows.push(table1(app, enc));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashgrid_growth_factors_match_table1() {
        assert_eq!(
            table1(AppKind::Nerf, EncodingKind::MultiResHashGrid).grid.growth_factor,
            1.51572
        );
        assert_eq!(
            table1(AppKind::Nsdf, EncodingKind::MultiResHashGrid).grid.growth_factor,
            1.38191
        );
        assert_eq!(table1(AppKind::Nvr, EncodingKind::MultiResHashGrid).grid.growth_factor, 1.275);
        assert_eq!(
            table1(AppKind::Gia, EncodingKind::MultiResHashGrid).grid.growth_factor,
            1.25992
        );
    }

    #[test]
    fn gia_uses_bigger_tables_and_2d() {
        let p = table1(AppKind::Gia, EncodingKind::MultiResHashGrid);
        assert_eq!(p.grid.log2_table_size, 24);
        assert_eq!(p.grid.dim, 2);
        let n = table1(AppKind::Nerf, EncodingKind::MultiResHashGrid);
        assert_eq!(n.grid.log2_table_size, 19);
        assert_eq!(n.grid.dim, 3);
    }

    #[test]
    fn encoding_output_widths_match_table1() {
        for app in AppKind::ALL {
            assert_eq!(table1(app, EncodingKind::MultiResHashGrid).grid.output_dim(), 32);
            assert_eq!(table1(app, EncodingKind::MultiResDenseGrid).grid.output_dim(), 16);
            assert_eq!(table1(app, EncodingKind::LowResDenseGrid).grid.output_dim(), 16);
        }
    }

    #[test]
    fn mlp_depths_match_table1() {
        // NeRF: density layers=3, color layers=4. Others: layers=4.
        let nerf = table1(AppKind::Nerf, EncodingKind::MultiResHashGrid);
        assert_eq!(nerf.mlp.hidden_layers, 3);
        assert_eq!(nerf.color_mlp.unwrap().hidden_layers, 4);
        for app in [AppKind::Nsdf, AppKind::Gia, AppKind::Nvr] {
            let p = table1(app, EncodingKind::MultiResHashGrid);
            assert_eq!(p.mlp.hidden_layers, 4);
            assert!(p.color_mlp.is_none());
        }
    }

    #[test]
    fn output_dims_match_applications() {
        assert_eq!(table1(AppKind::Nsdf, EncodingKind::MultiResHashGrid).mlp.output_dim, 1);
        assert_eq!(table1(AppKind::Gia, EncodingKind::MultiResHashGrid).mlp.output_dim, 3);
        assert_eq!(table1(AppKind::Nvr, EncodingKind::MultiResHashGrid).mlp.output_dim, 4);
        let nerf = table1(AppKind::Nerf, EncodingKind::MultiResHashGrid);
        assert_eq!(nerf.color_mlp.unwrap().output_dim, 3);
    }

    #[test]
    fn low_res_uses_128_base_and_two_levels() {
        for app in AppKind::ALL {
            let p = table1(app, EncodingKind::LowResDenseGrid);
            assert_eq!(p.grid.base_resolution, 128);
            assert_eq!(p.grid.n_levels, 2);
            assert_eq!(p.grid.features_per_level, 8);
        }
    }

    #[test]
    fn all_rows_validate() {
        for p in all_table1() {
            p.grid.validate().unwrap();
            p.mlp.validate().unwrap();
            if let Some(c) = p.color_mlp {
                c.validate().unwrap();
            }
        }
        assert_eq!(all_table1().len(), 12);
    }
}
