//! Gigapixel image approximation (GIA): a network learns the mapping from
//! 2D pixel coordinates to RGB color of an ultra-high-resolution image.

use super::{table1, AppKind, EncodingKind, FieldModel, OutputDecode};
use crate::encoding::MultiResGrid;
use crate::error::Result;
use crate::math::Vec3;
use crate::mlp::Mlp;

/// A GIA model: 2D grid encoding -> 4-layer MLP -> RGB.
#[derive(Debug, Clone)]
pub struct GiaModel {
    field: FieldModel,
    encoding_kind: EncodingKind,
}

impl GiaModel {
    /// Build the Table I GIA configuration for the chosen encoding.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in Table I configurations.
    pub fn new(encoding: EncodingKind, seed: u64) -> Self {
        let p = table1(AppKind::Gia, encoding);
        let grid = MultiResGrid::new(p.grid, seed).expect("table1 grid config is valid");
        let mlp = Mlp::new(p.mlp, seed ^ 0xA11CE).expect("table1 mlp config is valid");
        GiaModel {
            field: FieldModel::new(grid, mlp).expect("table1 widths are consistent"),
            encoding_kind: encoding,
        }
    }

    /// The encoding scheme in use.
    pub fn encoding_kind(&self) -> EncodingKind {
        self.encoding_kind
    }

    /// The underlying encoding + MLP pair.
    pub fn field(&self) -> &FieldModel {
        &self.field
    }

    /// Mutable access for training.
    pub fn field_mut(&mut self) -> &mut FieldModel {
        &mut self.field
    }

    /// The decode applied to raw MLP outputs.
    pub fn decode(&self) -> OutputDecode {
        OutputDecode::Color
    }

    /// Predict the RGB color at normalized image coordinates `(u, v)`.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the underlying model.
    pub fn color_at(&self, u: f32, v: f32) -> Result<Vec3> {
        let mut raw = self.field.forward(&[u, v])?;
        self.decode().apply(&mut raw);
        Ok(Vec3::new(raw[0], raw[1], raw[2]))
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.field.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoding;

    #[test]
    fn colors_are_normalized() {
        let model = GiaModel::new(EncodingKind::MultiResHashGrid, 1);
        for &(u, v) in &[(0.0f32, 0.0f32), (0.5, 0.5), (0.99, 0.01)] {
            let c = model.color_at(u, v).unwrap();
            for ch in [c.x, c.y, c.z] {
                assert!((0.0..=1.0).contains(&ch));
            }
        }
    }

    #[test]
    fn all_encodings_construct() {
        for enc in EncodingKind::ALL {
            let m = GiaModel::new(enc, 3);
            assert!(m.param_count() > 0);
            assert_eq!(m.encoding_kind(), enc);
        }
    }

    #[test]
    fn gia_grid_is_2d() {
        let m = GiaModel::new(EncodingKind::MultiResHashGrid, 5);
        assert_eq!(m.field().encoding.input_dim(), 2);
    }
}
