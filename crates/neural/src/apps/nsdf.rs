//! Neural signed distance functions (NSDF): a network learns the mapping
//! from 3D position to the signed distance of the nearest surface.

use super::{table1, AppKind, EncodingKind, FieldModel, OutputDecode};
use crate::encoding::MultiResGrid;
use crate::error::Result;
use crate::math::Vec3;
use crate::mlp::Mlp;

/// An NSDF model: 3D grid encoding -> 4-layer MLP -> signed distance.
#[derive(Debug, Clone)]
pub struct NsdfModel {
    field: FieldModel,
    encoding_kind: EncodingKind,
}

impl NsdfModel {
    /// Build the Table I NSDF configuration for the chosen encoding.
    pub fn new(encoding: EncodingKind, seed: u64) -> Self {
        let p = table1(AppKind::Nsdf, encoding);
        let grid = MultiResGrid::new(p.grid, seed).expect("table1 grid config is valid");
        let mlp = Mlp::new(p.mlp, seed ^ 0x5DF).expect("table1 mlp config is valid");
        NsdfModel {
            field: FieldModel::new(grid, mlp).expect("table1 widths are consistent"),
            encoding_kind: encoding,
        }
    }

    /// The encoding scheme in use.
    pub fn encoding_kind(&self) -> EncodingKind {
        self.encoding_kind
    }

    /// The underlying encoding + MLP pair.
    pub fn field(&self) -> &FieldModel {
        &self.field
    }

    /// Mutable access for training.
    pub fn field_mut(&mut self) -> &mut FieldModel {
        &mut self.field
    }

    /// The decode applied to raw MLP outputs (identity for distances).
    pub fn decode(&self) -> OutputDecode {
        OutputDecode::Raw
    }

    /// Predicted signed distance at a point in `[0,1]^3`.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the underlying model.
    pub fn distance(&self, p: Vec3) -> Result<f32> {
        Ok(self.field.forward(&p.to_array())?[0])
    }

    /// Numerical surface normal via central differences of the learned
    /// field (used by the sphere-tracing renderer for shading).
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the underlying model.
    pub fn normal(&self, p: Vec3, eps: f32) -> Result<Vec3> {
        let dx = self.distance(Vec3::new(p.x + eps, p.y, p.z))?
            - self.distance(Vec3::new(p.x - eps, p.y, p.z))?;
        let dy = self.distance(Vec3::new(p.x, p.y + eps, p.z))?
            - self.distance(Vec3::new(p.x, p.y - eps, p.z))?;
        let dz = self.distance(Vec3::new(p.x, p.y, p.z + eps))?
            - self.distance(Vec3::new(p.x, p.y, p.z - eps))?;
        let g = Vec3::new(dx, dy, dz);
        let len = g.length();
        Ok(if len > 1e-9 { g / len } else { Vec3::new(0.0, 0.0, 1.0) })
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.field.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_finite_everywhere() {
        let model = NsdfModel::new(EncodingKind::LowResDenseGrid, 2);
        for i in 0..10 {
            let t = i as f32 / 9.0;
            let d = model.distance(Vec3::new(t, 1.0 - t, 0.5)).unwrap();
            assert!(d.is_finite());
        }
    }

    #[test]
    fn normals_are_unit_or_fallback() {
        let model = NsdfModel::new(EncodingKind::MultiResDenseGrid, 4);
        let n = model.normal(Vec3::new(0.4, 0.5, 0.6), 1e-3).unwrap();
        assert!((n.length() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn single_output_channel() {
        let model = NsdfModel::new(EncodingKind::MultiResHashGrid, 8);
        assert_eq!(model.field().mlp.config().output_dim, 1);
    }
}
