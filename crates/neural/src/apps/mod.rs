//! The four representative neural-graphics applications of the NGPC paper:
//! NeRF, NSDF, GIA and NVR (paper Fig. 4, Table I).
//!
//! All four share the same two-stage pipeline: a parametric grid
//! [`crate::encoding`] feeding a tiny fully-fused [`crate::mlp`]. They
//! differ in input dimensionality, output decoding and (for NeRF) in the
//! density/color two-network split. [`FieldModel`] captures the shared
//! "encoding -> MLP" pair; each app module wraps it with the right
//! decoding and training target.

pub mod gia;
pub mod nerf;
pub mod nsdf;
pub mod nvr;
pub mod params;

pub use params::{all_table1, table1, AppParams};

use serde::{Deserialize, Serialize};

use crate::encoding::{Encoding, MultiResGrid};
use crate::error::Result;
use crate::math::Activation;
use crate::mlp::{Mlp, MlpTrace};

/// The four neural-graphics applications under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Neural radiance and density fields (novel view synthesis).
    Nerf,
    /// Neural signed distance functions (3D shape representation).
    Nsdf,
    /// Gigapixel image approximation (2D image fitting).
    Gia,
    /// Neural volume rendering (density + reflectance fields).
    Nvr,
}

impl AppKind {
    /// All four applications, in the paper's order.
    pub const ALL: [AppKind; 4] = [AppKind::Nerf, AppKind::Nsdf, AppKind::Gia, AppKind::Nvr];

    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Nerf => "NeRF",
            AppKind::Nsdf => "NSDF",
            AppKind::Gia => "GIA",
            AppKind::Nvr => "NVR",
        }
    }

    /// Spatial input dimensionality (2 for images, 3 for volumes).
    pub fn spatial_dim(self) -> usize {
        match self {
            AppKind::Gia => 2,
            _ => 3,
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The three input-encoding schemes the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncodingKind {
    /// Multiresolution hashgrid (16 levels, hash-indexed).
    MultiResHashGrid,
    /// Multiresolution densegrid (8 levels, 1:1).
    MultiResDenseGrid,
    /// Low-resolution densegrid (2 levels, 1:1/tiled).
    LowResDenseGrid,
}

impl EncodingKind {
    /// All three encodings, in the paper's order.
    pub const ALL: [EncodingKind; 3] = [
        EncodingKind::MultiResHashGrid,
        EncodingKind::MultiResDenseGrid,
        EncodingKind::LowResDenseGrid,
    ];

    /// Abbreviation used in the paper's Fig. 8 (MRHG/MRDG/LRDG).
    pub fn abbrev(self) -> &'static str {
        match self {
            EncodingKind::MultiResHashGrid => "MRHG",
            EncodingKind::MultiResDenseGrid => "MRDG",
            EncodingKind::LowResDenseGrid => "LRDG",
        }
    }

    /// Long name as used in the paper's prose.
    pub fn name(self) -> &'static str {
        match self {
            EncodingKind::MultiResHashGrid => "multi resolution hashgrid",
            EncodingKind::MultiResDenseGrid => "multi resolution densegrid",
            EncodingKind::LowResDenseGrid => "low resolution densegrid",
        }
    }
}

impl std::fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How raw MLP outputs map to physical quantities.
///
/// All MLPs in this crate produce raw (identity-activated) outputs; the
/// application applies the decode. Keeping the nonlinearity out of the MLP
/// lets the trainer chain gradients explicitly and keeps the hardware MLP
/// engine a pure GEMM pipeline, as in the NFP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutputDecode {
    /// Identity (signed distances).
    Raw,
    /// Sigmoid on every channel (colors).
    Color,
    /// Sigmoid on channels 0..3, exponential on channel 3 (NVR's RGB-sigma).
    ColorDensity,
    /// Exponential on channel 0, identity elsewhere (NeRF density +
    /// latent geometry features).
    DensityLatent,
}

impl OutputDecode {
    /// Decode raw outputs in place.
    pub fn apply(self, raw: &mut [f32]) {
        match self {
            OutputDecode::Raw => {}
            OutputDecode::Color => Activation::Sigmoid.apply_slice(raw),
            OutputDecode::ColorDensity => {
                for v in raw[..3].iter_mut() {
                    *v = Activation::Sigmoid.apply(*v);
                }
                raw[3] = Activation::Exp.apply(raw[3]);
            }
            OutputDecode::DensityLatent => {
                raw[0] = Activation::Exp.apply(raw[0]);
            }
        }
    }

    /// Chain `d loss / d decoded` back to `d loss / d raw`, given the raw
    /// and decoded values.
    pub fn gradient(self, raw: &[f32], decoded: &[f32], d_decoded: &[f32], d_raw: &mut [f32]) {
        match self {
            OutputDecode::Raw => d_raw.copy_from_slice(d_decoded),
            OutputDecode::Color => {
                for i in 0..raw.len() {
                    d_raw[i] = d_decoded[i] * Activation::Sigmoid.derivative(raw[i], decoded[i]);
                }
            }
            OutputDecode::ColorDensity => {
                for i in 0..3 {
                    d_raw[i] = d_decoded[i] * Activation::Sigmoid.derivative(raw[i], decoded[i]);
                }
                d_raw[3] = d_decoded[3] * Activation::Exp.derivative(raw[3], decoded[3]);
            }
            OutputDecode::DensityLatent => {
                d_raw.copy_from_slice(d_decoded);
                d_raw[0] = d_decoded[0] * Activation::Exp.derivative(raw[0], decoded[0]);
            }
        }
    }
}

/// Gradient buffers for a [`FieldModel`], laid out to match its parameter
/// chunks.
#[derive(Debug, Clone)]
pub struct FieldGrads {
    /// Gradients of the grid-encoding table.
    pub encoding: Vec<f32>,
    /// Gradients of the MLP weights.
    pub mlp: Vec<f32>,
}

impl FieldGrads {
    /// Zeroed gradients matching `model`.
    pub fn zeros_like(model: &FieldModel) -> Self {
        FieldGrads {
            encoding: vec![0.0; model.encoding.param_count()],
            mlp: vec![0.0; model.mlp.param_count()],
        }
    }

    /// Reset all gradients to zero.
    pub fn clear(&mut self) {
        self.encoding.iter_mut().for_each(|g| *g = 0.0);
        self.mlp.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Scale all gradients (e.g. by `1/batch`).
    pub fn scale(&mut self, s: f32) {
        self.encoding.iter_mut().for_each(|g| *g *= s);
        self.mlp.iter_mut().for_each(|g| *g *= s);
    }
}

/// The shared "parametric encoding feeding a tiny MLP" pipeline.
#[derive(Debug, Clone)]
pub struct FieldModel {
    /// Trainable grid encoding (the input stage).
    pub encoding: MultiResGrid,
    /// Trainable MLP (the inference stage), raw outputs.
    pub mlp: Mlp,
}

impl FieldModel {
    /// Construct from parts, checking that the widths line up.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NgError::DimensionMismatch`] if the encoding output
    /// width differs from the MLP input width.
    pub fn new(encoding: MultiResGrid, mlp: Mlp) -> Result<Self> {
        crate::encoding::check_dim(
            "field model encoding->mlp width",
            mlp.config().input_dim,
            encoding.output_dim(),
        )?;
        Ok(FieldModel { encoding, mlp })
    }

    /// Raw forward inference for one spatial point.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the encoding or MLP.
    pub fn forward(&self, x: &[f32]) -> Result<Vec<f32>> {
        let features = self.encoding.encode(x)?;
        self.mlp.forward(&features)
    }

    /// Forward pass retaining the features and MLP trace for training.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the encoding or MLP.
    pub fn forward_traced(&self, x: &[f32]) -> Result<(Vec<f32>, MlpTrace)> {
        let features = self.encoding.encode(x)?;
        let trace = self.mlp.forward_traced(&features)?;
        Ok((features, trace))
    }

    /// Accumulate gradients for one sample given `d loss / d raw output`.
    ///
    /// Returns `d loss / d features` in case the caller chains further
    /// (NeRF routes the color model's latent gradient here).
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn backward(
        &self,
        x: &[f32],
        features: &[f32],
        trace: &MlpTrace,
        d_raw: &[f32],
        grads: &mut FieldGrads,
    ) -> Result<Vec<f32>> {
        let d_features = self.mlp.backward(features, trace, d_raw, &mut grads.mlp)?;
        self.encoding.backward(x, &d_features, &mut grads.encoding)?;
        Ok(d_features)
    }

    /// Total trainable parameters (encoding tables + MLP weights).
    pub fn param_count(&self) -> usize {
        self.encoding.param_count() + self.mlp.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::GridConfig;
    use crate::mlp::MlpConfig;

    fn model() -> FieldModel {
        let grid = MultiResGrid::new(GridConfig::hashgrid(3, 10, 1.5), 3).unwrap();
        let mlp = Mlp::new(MlpConfig::neural_graphics(32, 2, 3, Activation::None), 4).unwrap();
        FieldModel::new(grid, mlp).unwrap()
    }

    #[test]
    fn width_mismatch_rejected() {
        let grid = MultiResGrid::new(GridConfig::hashgrid(3, 10, 1.5), 3).unwrap();
        let mlp = Mlp::new(MlpConfig::neural_graphics(16, 2, 3, Activation::None), 4).unwrap();
        assert!(FieldModel::new(grid, mlp).is_err());
    }

    #[test]
    fn forward_shape() {
        let m = model();
        assert_eq!(m.forward(&[0.2, 0.4, 0.6]).unwrap().len(), 3);
    }

    #[test]
    fn backward_fills_both_chunks() {
        let m = model();
        let x = [0.3, 0.5, 0.7];
        let (features, trace) = m.forward_traced(&x).unwrap();
        let mut grads = FieldGrads::zeros_like(&m);
        m.backward(&x, &features, &trace, &[1.0, 1.0, 1.0], &mut grads).unwrap();
        assert!(grads.mlp.iter().any(|g| *g != 0.0));
        assert!(grads.encoding.iter().any(|g| *g != 0.0));
    }

    #[test]
    fn decode_color_bounds() {
        let mut raw = [2.0f32, -2.0, 0.0];
        OutputDecode::Color.apply(&mut raw);
        assert!(raw.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn decode_color_density_channels() {
        let mut raw = [0.0f32, 0.0, 0.0, 1.0];
        OutputDecode::ColorDensity.apply(&mut raw);
        assert!((raw[0] - 0.5).abs() < 1e-6);
        assert!((raw[3] - 1.0f32.exp()).abs() < 1e-5);
    }

    #[test]
    fn decode_gradients_match_finite_difference() {
        let raws = [0.4f32, -0.3, 0.9, 0.2];
        for decode in [
            OutputDecode::Raw,
            OutputDecode::Color,
            OutputDecode::ColorDensity,
            OutputDecode::DensityLatent,
        ] {
            let n = if decode == OutputDecode::Color { 3 } else { 4 };
            let raw = &raws[..n];
            let mut decoded = raw.to_vec();
            decode.apply(&mut decoded);
            // loss = sum(decoded); d_decoded = 1.
            let d_decoded = vec![1.0f32; n];
            let mut d_raw = vec![0.0f32; n];
            decode.gradient(raw, &decoded, &d_decoded, &mut d_raw);
            let h = 1e-3f32;
            for i in 0..n {
                let mut rp = raw.to_vec();
                rp[i] += h;
                decode.apply(&mut rp);
                let mut rm = raw.to_vec();
                rm[i] -= h;
                decode.apply(&mut rm);
                let numeric: f32 = (rp.iter().sum::<f32>() - rm.iter().sum::<f32>()) / (2.0 * h);
                assert!(
                    (d_raw[i] - numeric).abs() < 1e-2,
                    "{decode:?} ch {i}: {} vs {numeric}",
                    d_raw[i]
                );
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AppKind::Nerf.name(), "NeRF");
        assert_eq!(EncodingKind::MultiResHashGrid.abbrev(), "MRHG");
        assert_eq!(AppKind::ALL.len(), 4);
        assert_eq!(EncodingKind::ALL.len(), 3);
    }
}
