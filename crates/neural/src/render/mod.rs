//! Rendering substrate: cameras/rays, volume rendering (the compositing
//! stage of the neural-graphics pipeline), sphere tracing for SDFs, and
//! image buffers with quality metrics.

pub mod camera;
pub mod image;
pub mod occupancy;
pub mod scatter;
pub mod sphere_trace;
pub mod volume;

pub use camera::{Camera, Ray};
pub use image::ImageBuffer;
pub use volume::{composite_ray, RaymarchConfig};

use crate::math::Vec3;

/// Render a frame in parallel across `threads` scoped worker threads.
///
/// `shade` maps normalized pixel-center coordinates (`u` right, `v` down)
/// to a color; it must be `Sync` because rows are distributed across
/// threads (this mirrors the embarrassingly parallel pixel workload the
/// paper's Section VI relies on for NGPC utilization).
///
/// # Panics
///
/// Panics if either dimension is zero (the [`ImageBuffer`] contract).
pub fn render_frame_parallel<F>(
    width: usize,
    height: usize,
    threads: usize,
    shade: F,
) -> ImageBuffer
where
    F: Fn(f32, f32) -> Vec3 + Sync,
{
    let threads = threads.max(1);
    // Allocate up front so zero dimensions fail ImageBuffer's clear
    // assert instead of a bare `chunks_mut(0)` panic mid-render.
    let mut img = ImageBuffer::new(width, height);
    let mut rows: Vec<Vec<Vec3>> = vec![Vec::new(); height];
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in rows.chunks_mut(height.div_ceil(threads)).enumerate() {
            let shade = &shade;
            let rows_per_chunk = height.div_ceil(threads);
            scope.spawn(move || {
                for (i, row) in chunk.iter_mut().enumerate() {
                    let y = chunk_idx * rows_per_chunk + i;
                    let v = (y as f32 + 0.5) / height as f32;
                    *row = (0..width).map(|x| shade((x as f32 + 0.5) / width as f32, v)).collect();
                }
            });
        }
    });
    for (y, row) in rows.into_iter().enumerate() {
        for (x, c) in row.into_iter().enumerate() {
            img.set_pixel(x, y, c);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_render_matches_serial() {
        let shade = |u: f32, v: f32| Vec3::new(u, v, u * v);
        let par = render_frame_parallel(33, 17, 4, shade);
        let mut serial = ImageBuffer::new(33, 17);
        serial.fill_from(shade);
        assert_eq!(par, serial);
    }

    #[test]
    fn single_thread_works() {
        let img = render_frame_parallel(8, 8, 1, |u, _| Vec3::splat(u));
        assert!((img.pixel(7, 0).x - (7.5 / 8.0)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "image dimensions must be nonzero")]
    fn zero_height_panics_with_the_image_contract() {
        let _ = render_frame_parallel(8, 0, 4, |u, _| Vec3::splat(u));
    }

    #[test]
    fn more_threads_than_rows() {
        let img = render_frame_parallel(4, 2, 16, |_, v| Vec3::splat(v));
        assert!(img.pixel(0, 1).x > img.pixel(0, 0).x);
    }
}
