//! Pinhole camera and ray generation (the "rest of the kernels" stage that
//! stays on the GPU in the NGPC system).

use crate::math::Vec3;

/// A ray with origin and unit direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Unit direction.
    pub dir: Vec3,
}

impl Ray {
    /// Point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Intersect with the axis-aligned unit cube `[0,1]^3`.
    ///
    /// Returns `(t_near, t_far)` if the ray hits it with `t_far > max(t_near, 0)`.
    pub fn intersect_unit_cube(&self) -> Option<(f32, f32)> {
        let mut t0 = f32::NEG_INFINITY;
        let mut t1 = f32::INFINITY;
        for (o, d) in
            [(self.origin.x, self.dir.x), (self.origin.y, self.dir.y), (self.origin.z, self.dir.z)]
        {
            if d.abs() < 1e-9 {
                if !(0.0..=1.0).contains(&o) {
                    return None;
                }
            } else {
                let ta = (0.0 - o) / d;
                let tb = (1.0 - o) / d;
                t0 = t0.max(ta.min(tb));
                t1 = t1.min(ta.max(tb));
            }
        }
        if t1 > t0.max(0.0) {
            Some((t0.max(0.0), t1))
        } else {
            None
        }
    }
}

/// A pinhole camera that shoots rays through an image plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Eye position.
    pub position: Vec3,
    forward: Vec3,
    right: Vec3,
    up: Vec3,
    tan_half_fov: f32,
    aspect: f32,
}

impl Camera {
    /// A camera at `position` looking at `target`, with a vertical field of
    /// view of `fov_y_deg` degrees and the given aspect ratio (w/h).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `position == target`.
    pub fn look_at(position: Vec3, target: Vec3, fov_y_deg: f32, aspect: f32) -> Self {
        let forward = (target - position).normalized();
        let world_up = if forward.y.abs() > 0.99 {
            Vec3::new(0.0, 0.0, 1.0)
        } else {
            Vec3::new(0.0, 1.0, 0.0)
        };
        let right = forward.cross(world_up).normalized();
        let up = right.cross(forward);
        Camera {
            position,
            forward,
            right,
            up,
            tan_half_fov: (fov_y_deg.to_radians() * 0.5).tan(),
            aspect,
        }
    }

    /// The standard view used by examples: orbiting the unit cube center.
    pub fn orbit(azimuth: f32, elevation: f32, distance: f32, aspect: f32) -> Self {
        let center = Vec3::splat(0.5);
        let eye = center
            + Vec3::new(
                distance * elevation.cos() * azimuth.cos(),
                distance * elevation.sin(),
                distance * elevation.cos() * azimuth.sin(),
            );
        Camera::look_at(eye, center, 45.0, aspect)
    }

    /// Ray through normalized pixel coordinates (`u`, `v` in `[0,1]`,
    /// v = 0 at the top).
    pub fn ray(&self, u: f32, v: f32) -> Ray {
        let px = (2.0 * u - 1.0) * self.tan_half_fov * self.aspect;
        let py = (1.0 - 2.0 * v) * self.tan_half_fov;
        let dir = (self.forward + self.right * px + self.up * py).normalized();
        Ray { origin: self.position, dir }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_ray_points_forward() {
        let cam = Camera::look_at(Vec3::new(0.5, 0.5, -1.0), Vec3::splat(0.5), 45.0, 1.0);
        let r = cam.ray(0.5, 0.5);
        assert!((r.dir - Vec3::new(0.0, 0.0, 1.0)).length() < 1e-5);
    }

    #[test]
    fn rays_are_unit_length() {
        let cam = Camera::orbit(0.7, 0.3, 1.6, 16.0 / 9.0);
        for &(u, v) in &[(0.0f32, 0.0f32), (1.0, 1.0), (0.25, 0.75)] {
            assert!((cam.ray(u, v).dir.length() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cube_intersection_through_center() {
        let ray = Ray { origin: Vec3::new(0.5, 0.5, -1.0), dir: Vec3::new(0.0, 0.0, 1.0) };
        let (t0, t1) = ray.intersect_unit_cube().unwrap();
        assert!((t0 - 1.0).abs() < 1e-5);
        assert!((t1 - 2.0).abs() < 1e-5);
    }

    #[test]
    fn cube_miss() {
        let ray = Ray { origin: Vec3::new(2.0, 2.0, -1.0), dir: Vec3::new(0.0, 0.0, 1.0) };
        assert!(ray.intersect_unit_cube().is_none());
    }

    #[test]
    fn inside_cube_starts_at_zero() {
        let ray = Ray { origin: Vec3::splat(0.5), dir: Vec3::new(1.0, 0.0, 0.0) };
        let (t0, t1) = ray.intersect_unit_cube().unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 0.5).abs() < 1e-5);
    }

    #[test]
    fn orbit_camera_sees_cube() {
        let cam = Camera::orbit(1.0, 0.4, 1.8, 1.0);
        let hit = cam.ray(0.5, 0.5).intersect_unit_cube();
        assert!(hit.is_some(), "orbit camera center ray must hit the cube");
    }
}
