//! Volume rendering: the compositing stage (paper Section II.3).
//!
//! Classic emission–absorption quadrature (Drebin et al., Max):
//! `alpha_i = 1 - exp(-sigma_i * delta_i)`,
//! `C = sum_i T_i * alpha_i * c_i` with `T_i = prod_{j<i} (1 - alpha_j)`.
//! These are the "rest of the kernels" that the NGPC leaves on the GPU,
//! fused into a single kernel for a ~9.94x speedup.

use crate::math::Vec3;

/// Ray-marching parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaymarchConfig {
    /// Number of equidistant samples along each ray segment.
    pub n_samples: usize,
    /// Transmittance below which marching terminates early.
    pub early_stop_transmittance: f32,
}

impl Default for RaymarchConfig {
    fn default() -> Self {
        RaymarchConfig { n_samples: 96, early_stop_transmittance: 1e-3 }
    }
}

/// Result of compositing one ray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositedRay {
    /// Accumulated color.
    pub color: Vec3,
    /// Final transmittance (1 = empty space, 0 = fully opaque).
    pub transmittance: f32,
    /// Number of field samples actually evaluated (for early termination
    /// accounting; this drives the paper's per-frame sample counts).
    pub samples_evaluated: usize,
}

/// Composite a ray segment `[t_near, t_far]` by sampling
/// `field(position) -> (color, sigma)` at `config.n_samples` midpoints.
///
/// The field closure receives the world position; view direction handling
/// is the caller's business (NeRF passes a closure capturing the ray
/// direction).
pub fn composite_ray<F>(
    origin: Vec3,
    dir: Vec3,
    t_near: f32,
    t_far: f32,
    config: &RaymarchConfig,
    mut field: F,
) -> CompositedRay
where
    F: FnMut(Vec3) -> (Vec3, f32),
{
    debug_assert!(t_far >= t_near);
    debug_assert!(config.n_samples > 0);
    let dt = (t_far - t_near) / config.n_samples as f32;
    let mut color = Vec3::ZERO;
    let mut transmittance = 1.0f32;
    let mut evaluated = 0usize;
    for i in 0..config.n_samples {
        let t = t_near + (i as f32 + 0.5) * dt;
        let (c, sigma) = field(origin + dir * t);
        evaluated += 1;
        let alpha = 1.0 - (-sigma.max(0.0) * dt).exp();
        color = color + c * (transmittance * alpha);
        transmittance *= 1.0 - alpha;
        if transmittance < config.early_stop_transmittance {
            break;
        }
    }
    CompositedRay { color, transmittance, samples_evaluated: evaluated }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORIGIN: Vec3 = Vec3::new(0.0, 0.0, 0.0);
    const DIR: Vec3 = Vec3::new(0.0, 0.0, 1.0);

    #[test]
    fn empty_volume_is_transparent() {
        let out = composite_ray(ORIGIN, DIR, 0.0, 1.0, &RaymarchConfig::default(), |_| {
            (Vec3::new(1.0, 0.0, 0.0), 0.0)
        });
        assert_eq!(out.color, Vec3::ZERO);
        assert!((out.transmittance - 1.0).abs() < 1e-6);
    }

    #[test]
    fn opaque_volume_saturates_to_sample_color() {
        let c = Vec3::new(0.2, 0.6, 0.9);
        let out = composite_ray(ORIGIN, DIR, 0.0, 1.0, &RaymarchConfig::default(), |_| (c, 1e4));
        assert!((out.color - c).length() < 1e-3);
        assert!(out.transmittance < 1e-3);
    }

    #[test]
    fn early_termination_saves_samples() {
        let cfg = RaymarchConfig { n_samples: 128, early_stop_transmittance: 1e-3 };
        let out = composite_ray(ORIGIN, DIR, 0.0, 1.0, &cfg, |_| (Vec3::ZERO, 1e4));
        assert!(out.samples_evaluated < 16, "evaluated {}", out.samples_evaluated);
    }

    #[test]
    fn transmittance_matches_beer_lambert() {
        // Uniform density sigma over length L gives T = exp(-sigma L).
        let sigma = 3.0f32;
        let cfg = RaymarchConfig { n_samples: 512, early_stop_transmittance: 0.0 };
        let out = composite_ray(ORIGIN, DIR, 0.0, 1.0, &cfg, |_| (Vec3::ZERO, sigma));
        let expected = (-sigma).exp();
        assert!((out.transmittance - expected).abs() < 1e-3, "{} vs {expected}", out.transmittance);
    }

    #[test]
    fn compositing_is_order_dependent() {
        // Front red + back blue: the result must be redder than bluer.
        let cfg = RaymarchConfig { n_samples: 64, early_stop_transmittance: 0.0 };
        let out = composite_ray(ORIGIN, DIR, 0.0, 1.0, &cfg, |p| {
            if p.z < 0.5 {
                (Vec3::new(1.0, 0.0, 0.0), 2.0)
            } else {
                (Vec3::new(0.0, 0.0, 1.0), 2.0)
            }
        });
        assert!(out.color.x > out.color.z, "front color must dominate: {:?}", out.color);
    }

    #[test]
    fn color_bounded_by_unit_inputs() {
        let cfg = RaymarchConfig::default();
        let out = composite_ray(ORIGIN, DIR, 0.0, 1.0, &cfg, |p| {
            (Vec3::new(1.0, 1.0, 1.0), (10.0 * p.z).sin().abs() * 20.0)
        });
        for ch in [out.color.x, out.color.y, out.color.z] {
            assert!((0.0..=1.0 + 1e-4).contains(&ch));
        }
    }
}
