//! Sphere tracing for (neural) signed distance functions.

use super::camera::Ray;
use crate::math::Vec3;

/// Sphere-tracing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SphereTraceConfig {
    /// Maximum marching steps before declaring a miss.
    pub max_steps: usize,
    /// Distance threshold counting as a surface hit.
    pub hit_epsilon: f32,
    /// Maximum ray parameter before declaring a miss.
    pub t_max: f32,
    /// Step scale in `(0, 1]`; below 1 compensates for approximate
    /// (learned) distance fields that may overestimate.
    pub step_scale: f32,
}

impl Default for SphereTraceConfig {
    fn default() -> Self {
        SphereTraceConfig { max_steps: 128, hit_epsilon: 1e-3, t_max: 4.0, step_scale: 0.9 }
    }
}

/// Result of sphere tracing one ray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceResult {
    /// The ray hit a surface.
    Hit {
        /// Ray parameter at the hit.
        t: f32,
        /// Hit position.
        position: Vec3,
        /// Steps taken to converge.
        steps: usize,
    },
    /// The ray left the domain or exhausted its steps.
    Miss {
        /// Steps taken before giving up.
        steps: usize,
    },
}

impl TraceResult {
    /// Whether the ray hit a surface.
    pub fn is_hit(&self) -> bool {
        matches!(self, TraceResult::Hit { .. })
    }
}

/// March `ray` against `sdf` (a signed-distance oracle).
pub fn sphere_trace<F>(ray: &Ray, config: &SphereTraceConfig, mut sdf: F) -> TraceResult
where
    F: FnMut(Vec3) -> f32,
{
    let mut t = 0.0f32;
    for step in 0..config.max_steps {
        let p = ray.at(t);
        let d = sdf(p);
        if d < config.hit_epsilon {
            return TraceResult::Hit { t, position: p, steps: step + 1 };
        }
        t += d * config.step_scale;
        if t > config.t_max {
            return TraceResult::Miss { steps: step + 1 };
        }
    }
    TraceResult::Miss { steps: config.max_steps }
}

/// Simple Lambertian shade of a hit given a surface normal, headlight at
/// the ray origin.
pub fn lambert_shade(normal: Vec3, ray_dir: Vec3, albedo: Vec3) -> Vec3 {
    let n_dot_l = normal.dot(-ray_dir).max(0.0);
    let ambient = 0.12;
    albedo * (ambient + (1.0 - ambient) * n_dot_l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::sdf::SdfShape;

    #[test]
    fn hits_centered_sphere() {
        let shape = SdfShape::centered_sphere(0.25);
        let ray = Ray { origin: Vec3::new(0.5, 0.5, -1.0), dir: Vec3::new(0.0, 0.0, 1.0) };
        match sphere_trace(&ray, &SphereTraceConfig::default(), |p| shape.distance(p)) {
            TraceResult::Hit { t, position, .. } => {
                assert!((t - 1.25).abs() < 5e-3, "hit at t = {t}");
                assert!((position.z - 0.25).abs() < 5e-3);
            }
            TraceResult::Miss { .. } => panic!("expected a hit"),
        }
    }

    #[test]
    fn misses_to_the_side() {
        let shape = SdfShape::centered_sphere(0.25);
        let ray = Ray { origin: Vec3::new(2.0, 0.5, -1.0), dir: Vec3::new(0.0, 0.0, 1.0) };
        let r = sphere_trace(&ray, &SphereTraceConfig::default(), |p| shape.distance(p));
        assert!(!r.is_hit());
    }

    #[test]
    fn converges_in_few_steps_for_exact_sdf() {
        let shape = SdfShape::centered_sphere(0.3);
        let ray = Ray { origin: Vec3::new(0.5, 0.5, -2.0), dir: Vec3::new(0.0, 0.0, 1.0) };
        if let TraceResult::Hit { steps, .. } =
            sphere_trace(&ray, &SphereTraceConfig::default(), |p| shape.distance(p))
        {
            assert!(steps < 40, "took {steps} steps");
        } else {
            panic!("expected hit");
        }
    }

    #[test]
    fn shading_is_bounded_and_headlight_bright() {
        let albedo = Vec3::new(0.8, 0.7, 0.6);
        let facing = lambert_shade(Vec3::new(0.0, 0.0, -1.0), Vec3::new(0.0, 0.0, 1.0), albedo);
        let grazing = lambert_shade(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0), albedo);
        assert!(facing.x > grazing.x);
        for ch in [facing.x, facing.y, facing.z] {
            assert!((0.0..=1.0).contains(&ch));
        }
    }
}
