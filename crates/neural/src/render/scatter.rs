//! Single-scattering light transport for neural volume rendering.
//!
//! NVR's stated purpose (paper Section III.4) is a density + reflectance
//! field "used to simulate the light transport in the volume using path
//! tracing". This module implements the single-scatter estimator — the
//! first term of the path-traced series: at each primary-ray sample the
//! in-scattered radiance is the light's emission attenuated by the
//! transmittance along a shadow ray through the same density field.

use crate::math::Vec3;
use crate::render::volume::RaymarchConfig;

/// A point light illuminating the volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointLight {
    /// Light position.
    pub position: Vec3,
    /// Emitted intensity per channel.
    pub intensity: Vec3,
}

/// Transmittance from `p` toward `light` through `sigma`, estimated with
/// `steps` shadow-ray samples.
pub fn transmittance_to_light<F>(p: Vec3, light: Vec3, steps: usize, mut sigma: F) -> f32
where
    F: FnMut(Vec3) -> f32,
{
    debug_assert!(steps > 0);
    let to_light = light - p;
    let dist = to_light.length();
    if dist < 1e-6 {
        return 1.0;
    }
    let dir = to_light / dist;
    let dt = dist / steps as f32;
    let mut optical_depth = 0.0f32;
    for i in 0..steps {
        let t = (i as f32 + 0.5) * dt;
        optical_depth += sigma(p + dir * t).max(0.0) * dt;
    }
    (-optical_depth).exp()
}

/// Result of single-scatter rendering one ray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatteredRay {
    /// In-scattered radiance reaching the camera.
    pub color: Vec3,
    /// Residual transmittance along the primary ray.
    pub transmittance: f32,
    /// Field evaluations (primary + shadow samples).
    pub field_evals: usize,
}

/// Render one primary ray with single scattering: march `[t_near,t_far]`,
/// and at each sample weight the reflectance by the light's attenuated
/// contribution (isotropic phase function).
#[allow(clippy::too_many_arguments)]
pub fn scatter_ray<F, S>(
    origin: Vec3,
    dir: Vec3,
    t_near: f32,
    t_far: f32,
    config: &RaymarchConfig,
    light: &PointLight,
    shadow_steps: usize,
    mut reflectance_sigma: F,
    mut sigma_only: S,
) -> ScatteredRay
where
    F: FnMut(Vec3) -> (Vec3, f32),
    S: FnMut(Vec3) -> f32,
{
    let dt = (t_far - t_near) / config.n_samples as f32;
    let mut color = Vec3::ZERO;
    let mut transmittance = 1.0f32;
    let mut evals = 0usize;
    for i in 0..config.n_samples {
        let t = t_near + (i as f32 + 0.5) * dt;
        let p = origin + dir * t;
        let (albedo, sigma) = reflectance_sigma(p);
        evals += 1;
        let alpha = 1.0 - (-sigma.max(0.0) * dt).exp();
        if alpha > 1e-5 {
            let light_t = transmittance_to_light(p, light.position, shadow_steps, &mut sigma_only);
            evals += shadow_steps;
            // Isotropic phase: 1/(4 pi); fold the constant into intensity.
            let in_scatter = Vec3::new(
                albedo.x * light.intensity.x,
                albedo.y * light.intensity.y,
                albedo.z * light.intensity.z,
            ) * light_t;
            color = color + in_scatter * (transmittance * alpha);
        }
        transmittance *= 1.0 - alpha;
        if transmittance < config.early_stop_transmittance {
            break;
        }
    }
    ScatteredRay { color, transmittance, field_evals: evals }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIGHT: PointLight =
        PointLight { position: Vec3::new(0.5, 2.0, 0.5), intensity: Vec3::new(1.0, 1.0, 1.0) };

    #[test]
    fn vacuum_transmittance_is_one() {
        let t = transmittance_to_light(Vec3::splat(0.5), LIGHT.position, 16, |_| 0.0);
        assert!((t - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transmittance_matches_beer_lambert_in_uniform_medium() {
        let sigma = 2.0f32;
        let p = Vec3::new(0.5, 0.0, 0.5);
        let dist = (LIGHT.position - p).length();
        let t = transmittance_to_light(p, LIGHT.position, 256, |_| sigma);
        assert!((t - (-sigma * dist).exp()).abs() < 1e-3);
    }

    #[test]
    fn occluded_points_are_darker() {
        // A dense slab between the point and the light.
        let slab = |q: Vec3| if (0.9..1.1).contains(&q.y) { 50.0 } else { 0.0 };
        let lit = transmittance_to_light(Vec3::new(0.5, 1.5, 0.5), LIGHT.position, 64, slab);
        let shadowed = transmittance_to_light(Vec3::new(0.5, 0.5, 0.5), LIGHT.position, 64, slab);
        assert!(lit > 0.9);
        assert!(shadowed < 0.1);
    }

    #[test]
    fn empty_volume_scatters_nothing() {
        let cfg = RaymarchConfig::default();
        let out = scatter_ray(
            Vec3::new(0.5, 0.5, -1.0),
            Vec3::new(0.0, 0.0, 1.0),
            0.0,
            2.0,
            &cfg,
            &LIGHT,
            8,
            |_| (Vec3::new(1.0, 1.0, 1.0), 0.0),
            |_| 0.0,
        );
        assert_eq!(out.color, Vec3::ZERO);
        assert!((out.transmittance - 1.0).abs() < 1e-6);
    }

    #[test]
    fn side_facing_light_is_brighter() {
        // A dense ball: samples on the light side scatter more than the
        // far side; compare two rays skimming opposite sides.
        let ball = |q: Vec3| {
            let d = (q - Vec3::splat(0.5)).length();
            if d < 0.25 {
                8.0
            } else {
                0.0
            }
        };
        let cfg = RaymarchConfig { n_samples: 64, early_stop_transmittance: 0.0 };
        let render_y = |y: f32| {
            scatter_ray(
                Vec3::new(0.5, y, -1.0),
                Vec3::new(0.0, 0.0, 1.0),
                0.5,
                2.0,
                &cfg,
                &LIGHT, // light is above (+y)
                32,
                |p| (Vec3::new(0.9, 0.9, 0.9), ball(p)),
                ball,
            )
        };
        let top = render_y(0.68);
        let bottom = render_y(0.32);
        assert!(
            top.color.x > bottom.color.x,
            "light side {:?} should outshine shadow side {:?}",
            top.color,
            bottom.color
        );
    }

    #[test]
    fn field_eval_accounting_includes_shadow_rays() {
        let cfg = RaymarchConfig { n_samples: 10, early_stop_transmittance: 0.0 };
        let out = scatter_ray(
            Vec3::new(0.5, 0.5, -1.0),
            Vec3::new(0.0, 0.0, 1.0),
            0.0,
            1.0,
            &cfg,
            &LIGHT,
            4,
            |_| (Vec3::new(1.0, 1.0, 1.0), 1.0),
            |_| 1.0,
        );
        // 10 primary + 10 x 4 shadow samples.
        assert_eq!(out.field_evals, 10 + 40);
    }
}
