//! Image buffers, quality metrics (MSE/PSNR) and PPM output.

use std::io::Write as _;
use std::path::Path;

use crate::error::{NgError, Result};
use crate::math::Vec3;

/// Frame resolutions referenced throughout the paper (Fig. 14's horizontal
/// lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// 1280 x 720.
    Hd,
    /// 1920 x 1080 ("FHD", the profiling resolution of Fig. 5).
    Fhd,
    /// 2560 x 1440.
    Qhd,
    /// 3840 x 2160 (the paper's "4k Ultra HD"; its Fig. 14 text prints 3820).
    Uhd4k,
    /// 5120 x 2880.
    FiveK,
    /// 7680 x 4320.
    Uhd8k,
}

impl Resolution {
    /// All resolutions, smallest to largest.
    pub const ALL: [Resolution; 6] = [
        Resolution::Hd,
        Resolution::Fhd,
        Resolution::Qhd,
        Resolution::Uhd4k,
        Resolution::FiveK,
        Resolution::Uhd8k,
    ];

    /// `(width, height)` in pixels.
    pub fn dims(self) -> (usize, usize) {
        match self {
            Resolution::Hd => (1280, 720),
            Resolution::Fhd => (1920, 1080),
            Resolution::Qhd => (2560, 1440),
            Resolution::Uhd4k => (3840, 2160),
            Resolution::FiveK => (5120, 2880),
            Resolution::Uhd8k => (7680, 4320),
        }
    }

    /// Total pixel count.
    pub fn pixels(self) -> u64 {
        let (w, h) = self.dims();
        (w * h) as u64
    }

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Resolution::Hd => "HD",
            Resolution::Fhd => "FHD",
            Resolution::Qhd => "QHD/2k",
            Resolution::Uhd4k => "4k UHD",
            Resolution::FiveK => "5k",
            Resolution::Uhd8k => "8k UHD",
        }
    }
}

/// A row-major RGB float image.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageBuffer {
    width: usize,
    height: usize,
    pixels: Vec<Vec3>,
}

impl ImageBuffer {
    /// A black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        ImageBuffer { width, height, pixels: vec![Vec3::ZERO; width * height] }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> Vec3 {
        assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Set a pixel.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_pixel(&mut self, x: usize, y: usize, c: Vec3) {
        assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = c;
    }

    /// Fill each pixel from a closure over normalized coordinates
    /// (`u` right, `v` down, both in `[0,1)` at pixel centers).
    pub fn fill_from<F>(&mut self, mut f: F)
    where
        F: FnMut(f32, f32) -> Vec3,
    {
        for y in 0..self.height {
            let v = (y as f32 + 0.5) / self.height as f32;
            for x in 0..self.width {
                let u = (x as f32 + 0.5) / self.width as f32;
                self.pixels[y * self.width + x] = f(u, v);
            }
        }
    }

    /// Mean squared error against another image of the same size.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn mse(&self, other: &ImageBuffer) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let mut acc = 0.0f64;
        for (a, b) in self.pixels.iter().zip(&other.pixels) {
            let d = *a - *b;
            acc += (d.x * d.x + d.y * d.y + d.z * d.z) as f64;
        }
        acc / (3.0 * self.pixels.len() as f64)
    }

    /// Peak signal-to-noise ratio in dB against a reference (peak 1.0).
    /// Returns `f64::INFINITY` for identical images.
    pub fn psnr(&self, reference: &ImageBuffer) -> f64 {
        let mse = self.mse(reference);
        if mse <= 0.0 {
            f64::INFINITY
        } else {
            10.0 * (1.0 / mse).log10()
        }
    }

    /// Write as a binary PPM (P6) file.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::Io`] on filesystem errors.
    pub fn write_ppm(&self, path: &Path) -> Result<()> {
        let file = std::fs::File::create(path).map_err(NgError::from)?;
        let mut w = std::io::BufWriter::new(file);
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width * 3);
        for y in 0..self.height {
            row.clear();
            for x in 0..self.width {
                let c = self.pixels[y * self.width + x];
                for ch in [c.x, c.y, c.z] {
                    row.push((ch.clamp(0.0, 1.0) * 255.0).round() as u8);
                }
            }
            w.write_all(&row)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Render as coarse ASCII art (for terminal demos): one character per
    /// `cell` x `cell` pixel block, darker pixels map to denser glyphs.
    pub fn to_ascii(&self, cell: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let cell = cell.max(1);
        let mut out = String::new();
        let mut y = 0;
        while y < self.height {
            let mut x = 0;
            while x < self.width {
                let mut lum = 0.0f32;
                let mut n = 0;
                for yy in y..(y + cell).min(self.height) {
                    for xx in x..(x + cell).min(self.width) {
                        let c = self.pixels[yy * self.width + xx];
                        lum += 0.2126 * c.x + 0.7152 * c.y + 0.0722 * c.z;
                        n += 1;
                    }
                }
                lum /= n as f32;
                let idx = ((lum.clamp(0.0, 1.0)) * (RAMP.len() - 1) as f32).round() as usize;
                out.push(RAMP[idx] as char);
                x += cell;
            }
            out.push('\n');
            y += cell;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolutions_match_paper() {
        assert_eq!(Resolution::Fhd.pixels(), 1920 * 1080);
        assert_eq!(Resolution::Uhd4k.pixels(), 3840 * 2160);
        assert_eq!(Resolution::Uhd8k.pixels(), 7680 * 4320);
    }

    #[test]
    fn identical_images_have_infinite_psnr() {
        let mut a = ImageBuffer::new(8, 8);
        a.fill_from(|u, v| Vec3::new(u, v, 0.5));
        let b = a.clone();
        assert_eq!(a.psnr(&b), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let mut a = ImageBuffer::new(16, 16);
        a.fill_from(|u, v| Vec3::new(u, v, 0.5));
        let mut slightly = a.clone();
        let mut very = a.clone();
        for y in 0..16 {
            for x in 0..16 {
                let p = a.pixel(x, y);
                slightly.set_pixel(x, y, p + Vec3::splat(0.01));
                very.set_pixel(x, y, p + Vec3::splat(0.2));
            }
        }
        assert!(a.psnr(&slightly) > a.psnr(&very));
        assert!((a.psnr(&slightly) - 40.0).abs() < 0.5); // 20*log10(1/0.01)
    }

    #[test]
    fn fill_from_uses_pixel_centers() {
        let mut img = ImageBuffer::new(2, 2);
        img.fill_from(|u, v| Vec3::new(u, v, 0.0));
        assert!((img.pixel(0, 0).x - 0.25).abs() < 1e-6);
        assert!((img.pixel(1, 1).x - 0.75).abs() < 1e-6);
    }

    #[test]
    fn ppm_round_trip_header() {
        let dir = std::env::temp_dir().join("ng_neural_test_ppm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.ppm");
        let mut img = ImageBuffer::new(4, 3);
        img.fill_from(|u, v| Vec3::new(u, v, 1.0));
        img.write_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(bytes.len(), "P6\n4 3\n255\n".len() + 4 * 3 * 3);
    }

    #[test]
    fn ascii_has_rows() {
        let mut img = ImageBuffer::new(8, 8);
        img.fill_from(|u, _| Vec3::splat(u));
        let art = img.to_ascii(2);
        assert_eq!(art.lines().count(), 4);
        assert!(art.lines().all(|l| l.len() == 4));
    }
}
