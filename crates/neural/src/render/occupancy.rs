//! Occupancy-grid acceleration for ray marching (instant-NGP's
//! empty-space skipping).
//!
//! The renderers the paper profiles do not march blindly: a coarse binary
//! occupancy grid marks cells whose density exceeds a threshold, and the
//! ray marcher only evaluates the field inside occupied cells. This is
//! what keeps the effective samples-per-pixel low (the `samples_per_pixel`
//! constants of `ng-gpu`'s workload model) and it belongs to the "rest of
//! the kernels" that stay on the GPU in the NGPC system.

use crate::math::Vec3;
use crate::render::volume::{CompositedRay, RaymarchConfig};

/// A binary occupancy grid over `[0,1]^3`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyGrid {
    resolution: usize,
    bits: Vec<bool>,
}

impl OccupancyGrid {
    /// Build a grid of `resolution^3` cells by sampling `sigma` at each
    /// cell center (plus jittered corners for robustness) and marking
    /// cells whose density exceeds `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero or absurdly large (> 512).
    pub fn build<F>(resolution: usize, threshold: f32, mut sigma: F) -> Self
    where
        F: FnMut(Vec3) -> f32,
    {
        assert!(resolution > 0 && resolution <= 512, "resolution out of range");
        let mut bits = vec![false; resolution * resolution * resolution];
        let inv = 1.0 / resolution as f32;
        for z in 0..resolution {
            for y in 0..resolution {
                for x in 0..resolution {
                    let idx = (z * resolution + y) * resolution + x;
                    // Center + 4 staggered probes catch thin features.
                    let base = Vec3::new(x as f32, y as f32, z as f32) * inv;
                    let probes = [
                        Vec3::new(0.5, 0.5, 0.5),
                        Vec3::new(0.25, 0.25, 0.75),
                        Vec3::new(0.75, 0.25, 0.25),
                        Vec3::new(0.25, 0.75, 0.25),
                        Vec3::new(0.75, 0.75, 0.75),
                    ];
                    bits[idx] = probes.iter().any(|p| sigma(base + *p * inv) > threshold);
                }
            }
        }
        OccupancyGrid { resolution, bits }
    }

    /// Grid resolution (cells per axis).
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Fraction of cells marked occupied.
    pub fn occupancy_fraction(&self) -> f64 {
        self.bits.iter().filter(|&&b| b).count() as f64 / self.bits.len() as f64
    }

    /// Whether the cell containing `p` is occupied (out-of-range points
    /// count as empty).
    #[inline]
    pub fn occupied(&self, p: Vec3) -> bool {
        let r = self.resolution as f32;
        let (x, y, z) = (p.x * r, p.y * r, p.z * r);
        if !(0.0..r).contains(&x) || !(0.0..r).contains(&y) || !(0.0..r).contains(&z) {
            return false;
        }
        let idx = ((z as usize) * self.resolution + y as usize) * self.resolution + x as usize;
        self.bits[idx]
    }
}

/// Composite a ray like [`crate::render::volume::composite_ray`], but
/// skip field evaluations in unoccupied cells. Sample positions are kept
/// identical to the dense marcher, so in fully occupied space the result
/// matches it exactly.
pub fn composite_ray_occupancy<F>(
    origin: Vec3,
    dir: Vec3,
    t_near: f32,
    t_far: f32,
    config: &RaymarchConfig,
    grid: &OccupancyGrid,
    mut field: F,
) -> CompositedRay
where
    F: FnMut(Vec3) -> (Vec3, f32),
{
    debug_assert!(t_far >= t_near);
    let dt = (t_far - t_near) / config.n_samples as f32;
    let mut color = Vec3::ZERO;
    let mut transmittance = 1.0f32;
    let mut evaluated = 0usize;
    for i in 0..config.n_samples {
        let t = t_near + (i as f32 + 0.5) * dt;
        let p = origin + dir * t;
        if !grid.occupied(p) {
            continue; // empty space: no field evaluation, no absorption
        }
        let (c, sigma) = field(p);
        evaluated += 1;
        let alpha = 1.0 - (-sigma.max(0.0) * dt).exp();
        color = color + c * (transmittance * alpha);
        transmittance *= 1.0 - alpha;
        if transmittance < config.early_stop_transmittance {
            break;
        }
    }
    CompositedRay { color, transmittance, samples_evaluated: evaluated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::volume_scene::VolumeScene;
    use crate::render::volume::composite_ray;

    fn demo_sigma(scene: &VolumeScene) -> impl FnMut(Vec3) -> f32 + '_ {
        move |p| scene.sigma(p)
    }

    #[test]
    fn fully_occupied_grid_matches_dense_marcher() {
        let grid = OccupancyGrid::build(8, -1.0, |_| 1.0); // everything occupied
        let cfg = RaymarchConfig { n_samples: 64, early_stop_transmittance: 0.0 };
        let field = |p: Vec3| (Vec3::new(p.z, 0.5, 1.0 - p.z), 2.0 + p.z);
        let o = Vec3::new(0.5, 0.5, 0.01);
        let d = Vec3::new(0.0, 0.0, 1.0);
        let dense = composite_ray(o, d, 0.0, 0.95, &cfg, field);
        let fast = composite_ray_occupancy(o, d, 0.0, 0.95, &cfg, &grid, field);
        assert_eq!(dense.color, fast.color);
        assert_eq!(dense.transmittance, fast.transmittance);
        assert_eq!(dense.samples_evaluated, fast.samples_evaluated);
    }

    #[test]
    fn empty_space_is_skipped() {
        let scene = VolumeScene::demo();
        let grid = OccupancyGrid::build(16, 0.5, demo_sigma(&scene));
        assert!(grid.occupancy_fraction() < 0.9, "demo scene should have empty space");
        let cfg = RaymarchConfig { n_samples: 128, early_stop_transmittance: 1e-3 };
        let o = Vec3::new(0.5, 0.5, 0.0);
        let d = Vec3::new(0.0, 0.0, 1.0);
        let dense = composite_ray(o, d, 0.0, 1.0, &cfg, |p| scene.sample(p, d));
        let fast = composite_ray_occupancy(o, d, 0.0, 1.0, &cfg, &grid, |p| scene.sample(p, d));
        assert!(
            fast.samples_evaluated < dense.samples_evaluated,
            "occupancy skipping saved nothing: {} vs {}",
            fast.samples_evaluated,
            dense.samples_evaluated
        );
        // Quality: colors stay close (skipped cells carry little density).
        assert!(
            (fast.color - dense.color).length() < 0.12,
            "color drifted: {:?} vs {:?}",
            fast.color,
            dense.color
        );
    }

    #[test]
    fn occupied_lookup_handles_out_of_range() {
        let grid = OccupancyGrid::build(4, -1.0, |_| 1.0);
        assert!(!grid.occupied(Vec3::new(-0.1, 0.5, 0.5)));
        assert!(!grid.occupied(Vec3::new(0.5, 1.5, 0.5)));
        assert!(grid.occupied(Vec3::new(0.5, 0.5, 0.5)));
    }

    #[test]
    fn threshold_controls_occupancy() {
        let scene = VolumeScene::demo();
        let loose = OccupancyGrid::build(8, 0.1, demo_sigma(&scene));
        let tight = OccupancyGrid::build(8, 5.0, demo_sigma(&scene));
        assert!(loose.occupancy_fraction() >= tight.occupancy_fraction());
    }

    #[test]
    fn build_is_deterministic() {
        let scene = VolumeScene::demo();
        let a = OccupancyGrid::build(8, 1.0, demo_sigma(&scene));
        let b = OccupancyGrid::build(8, 1.0, demo_sigma(&scene));
        assert_eq!(a, b);
    }
}
