//! Error types shared across the neural-graphics substrate.

use std::fmt;

/// Convenience alias used by all fallible public functions in this crate.
pub type Result<T> = std::result::Result<T, NgError>;

/// Errors produced by the neural-graphics substrate.
///
/// All variants carry enough context to diagnose the failure without a
/// debugger; the `Display` representation is lowercase and concise per the
/// Rust API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq)]
pub enum NgError {
    /// An input slice had a different length than the component expected.
    DimensionMismatch {
        /// What was being checked (e.g. `"encoding input"`).
        context: &'static str,
        /// Length the component expected.
        expected: usize,
        /// Length the caller provided.
        actual: usize,
    },
    /// A configuration value was outside its legal range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A numerical routine failed to converge or produced non-finite values.
    Numerical {
        /// Description of where the numerical failure occurred.
        message: String,
    },
    /// An I/O error (e.g. writing a PPM image), stringified to keep the
    /// error type `Clone` + `PartialEq`.
    Io {
        /// Stringified `std::io::Error`.
        message: String,
    },
}

impl fmt::Display for NgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NgError::DimensionMismatch { context, expected, actual } => {
                write!(f, "dimension mismatch in {context}: expected {expected}, got {actual}")
            }
            NgError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            NgError::Numerical { message } => write!(f, "numerical error: {message}"),
            NgError::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for NgError {}

impl From<std::io::Error> for NgError {
    fn from(err: std::io::Error) -> Self {
        NgError::Io { message: err.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = NgError::DimensionMismatch { context: "encoding input", expected: 3, actual: 2 };
        let text = err.to_string();
        assert!(text.starts_with("dimension mismatch"));
        assert!(text.contains("expected 3"));
        assert!(text.contains("got 2"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: NgError = io.into();
        assert!(matches!(err, NgError::Io { .. }));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NgError>();
    }
}
