//! Fixed-size 2D/3D vectors used by cameras, rays and analytic scenes.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 2-component single-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
}

/// A 3-component single-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Vec2 {
    /// Construct from components.
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f32 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Components as a slice-compatible array.
    #[inline]
    pub fn to_array(self) -> [f32; 2] {
        [self.x, self.y]
    }
}

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// The all-same-component vector.
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Zero vector.
    pub const ZERO: Vec3 = Vec3::splat(0.0);

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit-length copy of this vector.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector is (near) zero length.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 1e-12, "cannot normalize near-zero vector");
        self / len
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise maximum with another vector.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise minimum with another vector.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Components as an array (useful for feeding encoders).
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Convert spherical viewing angles (theta = polar from +z,
    /// phi = azimuth in the xy-plane) to a unit direction.
    pub fn from_spherical(theta: f32, phi: f32) -> Vec3 {
        let st = theta.sin();
        Vec3::new(st * phi.cos(), st * phi.sin(), theta.cos())
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<[f32; 2]> for Vec2 {
    fn from(a: [f32; 2]) -> Self {
        Vec2::new(a[0], a[1])
    }
}

macro_rules! impl_binop3 {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Vec3 {
            type Output = Vec3;
            #[inline]
            fn $method(self, rhs: Vec3) -> Vec3 {
                Vec3::new(self.x $op rhs.x, self.y $op rhs.y, self.z $op rhs.z)
            }
        }
    };
}

impl_binop3!(Add, add, +);
impl_binop3!(Sub, sub, -);
impl_binop3!(Mul, mul, *);

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-4);
        assert!(c.dot(b).abs() < 1e-4);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn spherical_round_trip_poles() {
        let up = Vec3::from_spherical(0.0, 0.0);
        assert!((up.z - 1.0).abs() < 1e-6);
        let down = Vec3::from_spherical(std::f32::consts::PI, 0.0);
        assert!((down.z + 1.0).abs() < 1e-6);
    }

    #[test]
    fn spherical_is_unit_length() {
        for i in 0..16 {
            for j in 0..16 {
                let theta = std::f32::consts::PI * i as f32 / 15.0;
                let phi = 2.0 * std::f32::consts::PI * j as f32 / 15.0;
                let d = Vec3::from_spherical(theta, phi);
                assert!((d.length() - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(a + Vec3::ZERO, a);
        assert_eq!(a - a, Vec3::ZERO);
        assert_eq!(a * 1.0, a);
        assert_eq!(-(-a), a);
        assert_eq!((a / 2.0) * 2.0, a);
    }
}
