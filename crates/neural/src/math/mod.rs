//! Small math utilities: fixed-size vectors, activations and a seedable RNG.

pub mod activation;
pub mod half;
pub mod rng;
pub mod vecn;

pub use activation::Activation;
pub use rng::Pcg32;
pub use vecn::{Vec2, Vec3};

/// Linearly interpolate between `a` and `b` by `t` (`t = 0` yields `a`).
///
/// ```
/// assert_eq!(ng_neural::math::lerp(2.0, 4.0, 0.5), 3.0);
/// ```
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Clamp `x` into `[lo, hi]`.
///
/// # Panics
///
/// Panics in debug builds if `lo > hi`.
#[inline]
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    debug_assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
    x.max(lo).min(hi)
}

/// Smoothstep interpolation (0 at `e0`, 1 at `e1`, C1-continuous).
#[inline]
pub fn smoothstep(e0: f32, e1: f32, x: f32) -> f32 {
    let t = clamp((x - e0) / (e1 - e0), 0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// FNV-1a over a string, 64-bit — the workspace's shared content-hash
/// for cache keys and model fingerprints (`ng-dse`'s point cache,
/// `ng-gpu`'s calibration store).
///
/// ```
/// assert_eq!(ng_neural::math::fnv1a64(""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(ng_neural::math::fnv1a64("a"), ng_neural::math::fnv1a64("b"));
/// ```
pub fn fnv1a64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(1.0, 5.0, 0.0), 1.0);
        assert_eq!(lerp(1.0, 5.0, 1.0), 5.0);
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(-1.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(2.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(0.25, 0.0, 1.0), 0.25);
    }

    #[test]
    fn smoothstep_monotone() {
        let mut prev = smoothstep(0.0, 1.0, 0.0);
        for i in 1..=100 {
            let v = smoothstep(0.0, 1.0, i as f32 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
        assert!((smoothstep(0.0, 1.0, 1.0) - 1.0).abs() < 1e-6);
    }
}
