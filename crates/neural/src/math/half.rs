//! IEEE 754 binary16 ("fp16") conversion, implemented from scratch.
//!
//! tiny-cuda-nn stores grid tables and MLP weights in fp16; every byte
//! count in the NGPC paper (the 1 MB grid SRAM sizing, Table III traffic)
//! assumes 2-byte parameters. This module provides the conversions so the
//! substrate can quantify what fp16 storage does to accuracy.

/// Convert an `f32` to its nearest IEEE binary16 bit pattern
/// (round-to-nearest-even), with overflow mapping to infinity.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN: preserve a NaN payload bit.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Re-bias: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal f16.
        let exp16 = (unbiased + 15) as u32;
        let mant16 = mant >> 13;
        let rest = mant & 0x1FFF;
        let mut out = (exp16 << 10) | mant16;
        // Round to nearest even.
        if rest > 0x1000 || (rest == 0x1000 && (mant16 & 1) == 1) {
            out += 1; // may carry into the exponent, which is correct
        }
        return sign | out as u16;
    }
    if unbiased >= -24 {
        // Subnormal f16: m = (1.mant) * 2^(unbiased + 24), i.e. the full
        // 24-bit significand shifted right by (-unbiased - 1).
        let shift = (-unbiased - 1) as u32;
        let full = mant | 0x0080_0000; // implicit leading 1
        let mant16 = full >> shift;
        let rest = full & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut out = mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    sign // underflow -> signed zero
}

/// Convert an IEEE binary16 bit pattern to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m * 2^-24. Normalise around the leading
            // set bit at position p: value = 2^(p-24) * (1 + frac).
            let p = 31 - m.leading_zeros();
            let exp32 = p + 127 - 24;
            let mant32 = (m << (23 - p)) & 0x007F_FFFF;
            sign | (exp32 << 23) | mant32
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Round-trip an `f32` through fp16 precision.
pub fn quantize_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Quantize a slice in place (what storing a grid table at fp16 does).
pub fn quantize_slice_f16(xs: &mut [f32]) {
    for x in xs {
        *x = quantize_f16(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.25, -0.75, 65504.0] {
            assert_eq!(quantize_f16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16 max
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(quantize_f16(1e6), f32::INFINITY);
        assert_eq!(quantize_f16(-1e6), f32::NEG_INFINITY);
    }

    #[test]
    fn tiny_values_flush_to_subnormals_or_zero() {
        // Smallest f16 subnormal ~5.96e-8.
        assert_eq!(quantize_f16(1e-10), 0.0);
        let sub = quantize_f16(6e-8);
        assert!(sub > 0.0 && sub < 1e-7);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(quantize_f16(f32::NAN).is_nan());
    }

    #[test]
    fn relative_error_within_half_ulp() {
        // 11-bit significand -> relative error <= 2^-11 for normals.
        let mut x = 1.0e-4f32;
        while x < 1.0e4 {
            let q = quantize_f16(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= 1.0 / 2048.0 + 1e-9, "{x}: rel err {rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and the next f16 (1 + 2^-10);
        // ties go to even (1.0).
        let tie = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(quantize_f16(tie), 1.0);
        // Just above the tie rounds up.
        let above = 1.0 + 2.0_f32.powi(-11) + 2.0_f32.powi(-13);
        assert_eq!(quantize_f16(above), 1.0 + 2.0_f32.powi(-10));
    }

    #[test]
    fn subnormal_f16_to_f32_exact() {
        // 0x0001 = 2^-24.
        assert_eq!(f16_bits_to_f32(0x0001), 2.0_f32.powi(-24));
        // 0x03FF = largest subnormal.
        assert_eq!(f16_bits_to_f32(0x03FF), 1023.0 * 2.0_f32.powi(-24));
    }

    #[test]
    fn slice_quantization() {
        let mut xs = [0.1f32, 0.2, 0.3];
        quantize_slice_f16(&mut xs);
        for (q, orig) in xs.iter().zip([0.1f32, 0.2, 0.3]) {
            assert!((q - orig).abs() < 2e-4);
            assert_eq!(*q, quantize_f16(orig));
        }
    }

    #[test]
    fn exhaustive_f16_round_trip() {
        // Every finite f16 value must survive f16 -> f32 -> f16 exactly.
        for h in 0..=0xFFFFu16 {
            let exp = (h >> 10) & 0x1F;
            if exp == 0x1F {
                continue; // inf/nan
            }
            let f = f16_bits_to_f32(h);
            let back = f32_to_f16_bits(f);
            assert_eq!(back, h, "bits 0x{h:04X} -> {f} -> 0x{back:04X}");
        }
    }
}
