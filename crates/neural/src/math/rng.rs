//! A small, fast, deterministic PCG32 random number generator.
//!
//! Every stochastic component in this workspace (weight init, batch
//! sampling, procedural scene synthesis) is seeded explicitly so that
//! experiments are bit-reproducible across runs and machines. We implement
//! PCG-XSH-RR 64/32 directly rather than pulling `rand`'s generators into
//! hot loops; `rand` is still used at API boundaries where distributions
//! are convenient.

/// PCG-XSH-RR 64/32 generator (O'Neill 2014).
///
/// ```
/// use ng_neural::math::Pcg32;
/// let mut a = Pcg32::new(42);
/// let mut b = Pcg32::new(42);
/// assert_eq!(a.next_u32(), b.next_u32()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_DEFAULT_STREAM: u64 = 1442695040888963407;

impl Pcg32 {
    /// Create a generator from a seed, using the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, PCG_DEFAULT_STREAM)
    }

    /// Create a generator with an explicit stream selector; different
    /// streams produce statistically independent sequences for the same
    /// seed, which we use to decorrelate e.g. weight init from sampling.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 { state: 0, inc: (stream << 1) | 1 };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64-bit output (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of randomness.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn bounded(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bounded(0) is meaningless");
        loop {
            let x = self.next_u32();
            let m = (x as u64).wrapping_mul(bound as u64);
            let low = m as u32;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 32) as u32;
            }
        }
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Avoid log(0) by nudging u1 away from zero.
        let u1 = self.next_f32().max(1e-12);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Fill `out` with uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out {
            *v = self.range_f32(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::new(7);
        let mut b = Pcg32::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "seeds 1 and 2 produced {same}/32 identical draws");
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg32::with_stream(1, 10);
        let mut b = Pcg32::with_stream(1, 11);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Pcg32::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut rng = Pcg32::new(5);
        for _ in 0..10_000 {
            assert!(rng.bounded(17) < 17);
        }
    }

    #[test]
    fn bounded_hits_every_value() {
        let mut rng = Pcg32::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.bounded(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_mean_and_variance_roughly_standard() {
        let mut rng = Pcg32::new(13);
        let n = 50_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let x = rng.normal() as f64;
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "bounded(0)")]
    fn bounded_zero_panics() {
        Pcg32::new(1).bounded(0);
    }
}
