//! Activation functions used by neural-graphics MLPs.
//!
//! Hidden layers of the fully-fused MLPs always use ReLU (as in
//! tiny-cuda-nn); the output activation depends on the application:
//! sigmoid for colors, exponential for NeRF density, and identity for
//! signed distances.

use serde::{Deserialize, Serialize};

/// An elementwise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (used for signed-distance outputs).
    #[default]
    None,
    /// Rectified linear unit (hidden layers).
    Relu,
    /// Logistic sigmoid (color outputs in `[0, 1]`).
    Sigmoid,
    /// Exponential (NeRF density output; guarantees non-negative sigma).
    Exp,
    /// Softplus, a smooth non-negative alternative for densities.
    Softplus,
}

impl Activation {
    /// Apply the activation to a single value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            // Clamp to keep exp from overflowing during early training.
            Activation::Exp => x.clamp(-15.0, 15.0).exp(),
            Activation::Softplus => {
                if x > 15.0 {
                    x
                } else {
                    (1.0 + x.exp()).ln()
                }
            }
        }
    }

    /// Derivative of the activation expressed in terms of the *pre*-activation
    /// input `x` and the already-computed output `y = apply(x)`.
    ///
    /// Using `y` where possible avoids recomputing transcendentals in the
    /// backward pass.
    #[inline]
    pub fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::None => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Exp => {
                if (-15.0..=15.0).contains(&x) {
                    y
                } else {
                    0.0
                }
            }
            Activation::Softplus => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Apply in place over a slice.
    pub fn apply_slice(self, xs: &mut [f32]) {
        if self == Activation::None {
            return;
        }
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(act: Activation, x: f32) -> f32 {
        let h = 1e-3;
        (act.apply(x + h) - act.apply(x - h)) / (2.0 * h)
    }

    #[test]
    fn relu_basic() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-6);
        for x in [-20.0, -1.0, 0.0, 1.0, 20.0] {
            let y = s.apply(x);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn exp_non_negative_and_clamped() {
        let e = Activation::Exp;
        assert!(e.apply(-100.0) > 0.0);
        assert!(e.apply(100.0).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        for act in [Activation::None, Activation::Sigmoid, Activation::Exp, Activation::Softplus] {
            for x in [-2.0f32, -0.5, 0.1, 1.0, 2.0] {
                let y = act.apply(x);
                let analytic = act.derivative(x, y);
                let numeric = finite_diff(act, x);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "{act:?} at {x}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_sides() {
        let r = Activation::Relu;
        assert_eq!(r.derivative(-1.0, 0.0), 0.0);
        assert_eq!(r.derivative(1.0, 1.0), 1.0);
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut xs = [-1.0, 0.0, 1.0, 2.0];
        Activation::Sigmoid.apply_slice(&mut xs);
        for (i, x) in [-1.0f32, 0.0, 1.0, 2.0].iter().enumerate() {
            assert_eq!(xs[i], Activation::Sigmoid.apply(*x));
        }
    }

    #[test]
    fn softplus_positive() {
        for x in [-30.0f32, -1.0, 0.0, 1.0, 30.0] {
            assert!(Activation::Softplus.apply(x) >= 0.0);
        }
    }
}
