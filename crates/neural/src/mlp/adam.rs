//! Adam optimizer (Kingma & Ba), the optimizer used by instant-NGP and the
//! paper's training runs.

use serde::{Deserialize, Serialize};

use crate::error::{NgError, Result};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Exponential decay of the first moment.
    pub beta1: f32,
    /// Exponential decay of the second moment.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub epsilon: f32,
    /// Decoupled L2 weight decay (0 disables it).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    /// instant-NGP's defaults: lr 1e-2, betas (0.9, 0.99), eps 1e-15.
    fn default() -> Self {
        AdamConfig {
            learning_rate: 1e-2,
            beta1: 0.9,
            beta2: 0.99,
            epsilon: 1e-15,
            weight_decay: 0.0,
        }
    }
}

/// Adam state for one flat parameter chunk.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    step: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Create optimizer state for `param_count` parameters.
    pub fn new(config: AdamConfig, param_count: usize) -> Self {
        Adam { config, step: 0, m: vec![0.0; param_count], v: vec![0.0; param_count] }
    }

    /// Number of update steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Override the learning rate (used for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.config.learning_rate = lr;
    }

    /// Apply one Adam update: `params -= lr * m_hat / (sqrt(v_hat) + eps)`.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::DimensionMismatch`] if slice lengths differ from
    /// the state size.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) -> Result<()> {
        if params.len() != self.m.len() || grads.len() != self.m.len() {
            return Err(NgError::DimensionMismatch {
                context: "adam step",
                expected: self.m.len(),
                actual: if params.len() != self.m.len() { params.len() } else { grads.len() },
            });
        }
        self.step += 1;
        let t = self.step as f32;
        let AdamConfig { learning_rate, beta1, beta2, epsilon, weight_decay } = self.config;
        let bias1 = 1.0 - beta1.powf(t);
        let bias2 = 1.0 - beta2.powf(t);
        for i in 0..params.len() {
            let mut g = grads[i];
            if weight_decay != 0.0 {
                g += weight_decay * params[i];
            }
            self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
            self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= learning_rate * m_hat / (v_hat.sqrt() + epsilon);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic() {
        // f(x) = (x - 3)^2, grad = 2(x - 3).
        let mut adam = Adam::new(AdamConfig { learning_rate: 0.1, ..AdamConfig::default() }, 1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g).unwrap();
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "converged to {}", x[0]);
    }

    #[test]
    fn minimises_rosenbrock_slowly_but_surely() {
        let mut adam = Adam::new(AdamConfig { learning_rate: 2e-2, ..AdamConfig::default() }, 2);
        let mut p = [-1.0f32, 1.0];
        let f = |p: &[f32]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let start = f(&p);
        for _ in 0..2_000 {
            let g = [
                -2.0 * (1.0 - p[0]) - 400.0 * p[0] * (p[1] - p[0] * p[0]),
                200.0 * (p[1] - p[0] * p[0]),
            ];
            adam.step(&mut p, &g).unwrap();
        }
        assert!(f(&p) < start * 0.01, "f went {start} -> {}", f(&p));
    }

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the very first Adam step has magnitude ~lr.
        let mut adam = Adam::new(AdamConfig { learning_rate: 0.5, ..AdamConfig::default() }, 1);
        let mut x = [0.0f32];
        adam.step(&mut x, &[123.0]).unwrap();
        assert!((x[0].abs() - 0.5).abs() < 1e-3, "step was {}", x[0]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let cfg = AdamConfig { learning_rate: 0.01, weight_decay: 1.0, ..AdamConfig::default() };
        let mut adam = Adam::new(cfg, 1);
        let mut x = [10.0f32];
        for _ in 0..100 {
            adam.step(&mut x, &[0.0]).unwrap();
        }
        assert!(x[0] < 10.0);
    }

    #[test]
    fn size_mismatch_errors() {
        let mut adam = Adam::new(AdamConfig::default(), 4);
        let mut p = [0.0f32; 3];
        assert!(adam.step(&mut p, &[0.0; 4]).is_err());
    }

    #[test]
    fn step_counter_advances() {
        let mut adam = Adam::new(AdamConfig::default(), 1);
        assert_eq!(adam.steps_taken(), 0);
        adam.step(&mut [0.0], &[1.0]).unwrap();
        assert_eq!(adam.steps_taken(), 1);
    }
}
