//! Training losses for neural-graphics regression.

use serde::{Deserialize, Serialize};

/// Pointwise regression losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error.
    #[default]
    Mse,
    /// Mean absolute error.
    L1,
    /// Relative L2 (instant-NGP's NeRF loss): `(y - t)^2 / (y^2 + 0.01)`,
    /// which equalises gradient magnitude across dynamic range.
    RelativeL2,
}

impl Loss {
    /// Loss value for one prediction/target pair.
    #[inline]
    pub fn value(self, prediction: f32, target: f32) -> f32 {
        let d = prediction - target;
        match self {
            Loss::Mse => d * d,
            Loss::L1 => d.abs(),
            Loss::RelativeL2 => d * d / (prediction * prediction + 0.01),
        }
    }

    /// `d loss / d prediction` for one pair.
    #[inline]
    pub fn gradient(self, prediction: f32, target: f32) -> f32 {
        let d = prediction - target;
        match self {
            Loss::Mse => 2.0 * d,
            Loss::L1 => {
                if d > 0.0 {
                    1.0
                } else if d < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            // Treat the denominator as a constant (instant-NGP does the
            // same); the full quotient-rule derivative destabilises
            // training.
            Loss::RelativeL2 => 2.0 * d / (prediction * prediction + 0.01),
        }
    }

    /// Mean loss over a batch, writing per-element gradients (already
    /// divided by the element count) into `grad`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ or are empty.
    pub fn batch(self, predictions: &[f32], targets: &[f32], grad: &mut [f32]) -> f32 {
        assert_eq!(predictions.len(), targets.len());
        assert_eq!(predictions.len(), grad.len());
        assert!(!predictions.is_empty());
        let inv_n = 1.0 / predictions.len() as f32;
        let mut total = 0.0;
        for i in 0..predictions.len() {
            total += self.value(predictions[i], targets[i]);
            grad[i] = self.gradient(predictions[i], targets[i]) * inv_n;
        }
        total * inv_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_at_target() {
        for loss in [Loss::Mse, Loss::L1, Loss::RelativeL2] {
            assert_eq!(loss.value(0.7, 0.7), 0.0);
            assert_eq!(loss.gradient(0.7, 0.7), 0.0);
        }
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let (p, t) = (0.4f32, 0.9f32);
        let h = 1e-3;
        let numeric = (Loss::Mse.value(p + h, t) - Loss::Mse.value(p - h, t)) / (2.0 * h);
        assert!((numeric - Loss::Mse.gradient(p, t)).abs() < 1e-3);
    }

    #[test]
    fn relative_l2_gradient_matches_its_definition() {
        // RelativeL2 deliberately treats the denominator as constant (as
        // instant-NGP does), so the gradient is 2 d / (p^2 + 0.01), not
        // the full quotient rule.
        let (p, t) = (0.4f32, 0.9f32);
        let expected = 2.0 * (p - t) / (p * p + 0.01);
        assert!((Loss::RelativeL2.gradient(p, t) - expected).abs() < 1e-6);
    }

    #[test]
    fn l1_gradient_is_sign() {
        assert_eq!(Loss::L1.gradient(1.0, 0.0), 1.0);
        assert_eq!(Loss::L1.gradient(-1.0, 0.0), -1.0);
    }

    #[test]
    fn batch_reduces_mean() {
        let p = [1.0f32, 2.0, 3.0];
        let t = [0.0f32, 0.0, 0.0];
        let mut g = [0.0f32; 3];
        let v = Loss::Mse.batch(&p, &t, &mut g);
        assert!((v - (1.0 + 4.0 + 9.0) / 3.0).abs() < 1e-6);
        assert!((g[2] - 2.0 * 3.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn relative_l2_downweights_bright_regions() {
        let dim = Loss::RelativeL2.value(10.0, 9.0);
        let bright_grad = Loss::RelativeL2.gradient(10.0, 9.0).abs();
        let dark_grad = Loss::RelativeL2.gradient(0.1, -0.9).abs();
        assert!(dim < 1.0);
        assert!(dark_grad > bright_grad);
    }
}
