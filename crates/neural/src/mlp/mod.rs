//! Fully-fused-style multi-layer perceptrons.
//!
//! Neural-graphics MLPs are tiny — 2 to 4 hidden layers of 64 neurons —
//! and, following tiny-cuda-nn's `FullyFusedMLP`, carry **no explicit
//! biases** (the grid encoding's trainable features absorb constant
//! offsets). The small width is exactly why the paper's analysis finds the
//! GPU memory-bound on these kernels (compute `O(M^2)` vs traffic `O(M)`
//! per layer), and why the NFP dedicates a 64x64 MAC array to them.
//!
//! [`Mlp`] keeps all weight matrices in one flat, row-major buffer so
//! optimizers can treat the network as a single parameter chunk and so the
//! hardware model can stream weights in deterministic order.

pub mod adam;
pub mod loss;

pub use adam::{Adam, AdamConfig};
pub use loss::Loss;

use serde::{Deserialize, Serialize};

use crate::error::{NgError, Result};
use crate::math::{Activation, Pcg32};

/// Topology and activations of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Width of the input feature vector.
    pub input_dim: usize,
    /// Neurons per hidden layer (64 in every Table I configuration).
    pub hidden_dim: usize,
    /// Number of hidden layers (Table I `layers`).
    pub hidden_layers: usize,
    /// Width of the output vector.
    pub output_dim: usize,
    /// Activation applied to the output layer.
    pub output_activation: Activation,
}

impl MlpConfig {
    /// Standard neural-graphics MLP: 64-wide hidden layers, ReLU.
    pub fn neural_graphics(
        input_dim: usize,
        hidden_layers: usize,
        output_dim: usize,
        output_activation: Activation,
    ) -> Self {
        MlpConfig { input_dim, hidden_dim: 64, hidden_layers, output_dim, output_activation }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::InvalidConfig`] on zero-sized dimensions or an
    /// unreasonable layer count.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("input_dim", self.input_dim),
            ("hidden_dim", self.hidden_dim),
            ("output_dim", self.output_dim),
        ] {
            if v == 0 || v > 4096 {
                return Err(NgError::InvalidConfig {
                    parameter: name,
                    message: format!("must be 1..=4096, got {v}"),
                });
            }
        }
        if self.hidden_layers == 0 || self.hidden_layers > 16 {
            return Err(NgError::InvalidConfig {
                parameter: "hidden_layers",
                message: format!("must be 1..=16, got {}", self.hidden_layers),
            });
        }
        Ok(())
    }

    /// Number of weight matrices (hidden layers + output layer).
    pub fn n_matrices(&self) -> usize {
        self.hidden_layers + 1
    }

    /// Shape `(rows, cols)` of weight matrix `m` (`y = W x`).
    pub fn matrix_shape(&self, m: usize) -> (usize, usize) {
        let rows = if m == self.hidden_layers { self.output_dim } else { self.hidden_dim };
        let cols = if m == 0 { self.input_dim } else { self.hidden_dim };
        (rows, cols)
    }

    /// Total number of weights.
    pub fn param_count(&self) -> usize {
        (0..self.n_matrices())
            .map(|m| {
                let (r, c) = self.matrix_shape(m);
                r * c
            })
            .sum()
    }

    /// Multiply–accumulate operations for a single forward inference.
    pub fn macs_per_inference(&self) -> usize {
        self.param_count()
    }
}

/// Intermediate activations retained for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct MlpTrace {
    /// Pre-activation values per layer (including output layer).
    pub pre: Vec<Vec<f32>>,
    /// Post-activation values per layer (including output layer).
    pub post: Vec<Vec<f32>>,
}

/// A bias-free multi-layer perceptron with ReLU hidden activations.
///
/// ```
/// use ng_neural::mlp::{Mlp, MlpConfig};
/// use ng_neural::math::Activation;
///
/// # fn main() -> ng_neural::Result<()> {
/// let cfg = MlpConfig::neural_graphics(32, 3, 1, Activation::None);
/// let mlp = Mlp::new(cfg, 7)?;
/// let y = mlp.forward(&vec![0.1; 32])?;
/// assert_eq!(y.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    weights: Vec<f32>,
    offsets: Vec<usize>,
}

impl Mlp {
    /// Allocate and He-initialise the weights.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: MlpConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let mut offsets = Vec::with_capacity(config.n_matrices() + 1);
        let mut total = 0usize;
        for m in 0..config.n_matrices() {
            offsets.push(total);
            let (r, c) = config.matrix_shape(m);
            total += r * c;
        }
        offsets.push(total);
        let mut weights = vec![0.0f32; total];
        let mut rng = Pcg32::with_stream(seed, 0x3a7f);
        for m in 0..config.n_matrices() {
            let (r, c) = config.matrix_shape(m);
            // He initialisation for ReLU nets: std = sqrt(2 / fan_in).
            let std = (2.0 / c as f32).sqrt();
            for w in &mut weights[offsets[m]..offsets[m] + r * c] {
                *w = rng.normal() * std;
            }
        }
        Ok(Mlp { config, weights, offsets })
    }

    /// The topology this network was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// All weights as one flat parameter chunk.
    pub fn params(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable access to the flat parameter chunk (for optimizers).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Number of trainable weights.
    pub fn param_count(&self) -> usize {
        self.weights.len()
    }

    /// Weight matrix `m` as a row-major slice.
    pub fn matrix(&self, m: usize) -> &[f32] {
        &self.weights[self.offsets[m]..self.offsets[m + 1]]
    }

    /// `y = act(W x)` into `out` for matrix `m`.
    fn gemv(&self, m: usize, x: &[f32], out: &mut [f32]) {
        let (rows, cols) = self.config.matrix_shape(m);
        debug_assert_eq!(x.len(), cols);
        debug_assert_eq!(out.len(), rows);
        let w = self.matrix(m);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &w[r * cols..(r + 1) * cols];
            let mut acc = 0.0f32;
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *o = acc;
        }
    }

    /// Forward inference.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::DimensionMismatch`] if `input` has the wrong
    /// length.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>> {
        let mut out = vec![0.0; self.config.output_dim];
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    /// Forward inference into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::DimensionMismatch`] on wrong slice lengths.
    pub fn forward_into(&self, input: &[f32], out: &mut [f32]) -> Result<()> {
        if input.len() != self.config.input_dim {
            return Err(NgError::DimensionMismatch {
                context: "mlp input",
                expected: self.config.input_dim,
                actual: input.len(),
            });
        }
        if out.len() != self.config.output_dim {
            return Err(NgError::DimensionMismatch {
                context: "mlp output",
                expected: self.config.output_dim,
                actual: out.len(),
            });
        }
        let mut cur = input.to_vec();
        for m in 0..self.config.hidden_layers {
            let mut next = vec![0.0; self.config.hidden_dim];
            self.gemv(m, &cur, &mut next);
            Activation::Relu.apply_slice(&mut next);
            cur = next;
        }
        self.gemv(self.config.hidden_layers, &cur, out);
        self.config.output_activation.apply_slice(out);
        Ok(())
    }

    /// Forward pass retaining every layer's pre/post activations.
    ///
    /// # Errors
    ///
    /// Returns [`NgError::DimensionMismatch`] if `input` has the wrong
    /// length.
    pub fn forward_traced(&self, input: &[f32]) -> Result<MlpTrace> {
        if input.len() != self.config.input_dim {
            return Err(NgError::DimensionMismatch {
                context: "mlp input",
                expected: self.config.input_dim,
                actual: input.len(),
            });
        }
        let n = self.config.n_matrices();
        let mut trace = MlpTrace { pre: Vec::with_capacity(n), post: Vec::with_capacity(n) };
        let mut cur = input.to_vec();
        for m in 0..n {
            let (rows, _) = self.config.matrix_shape(m);
            let mut pre = vec![0.0; rows];
            self.gemv(m, &cur, &mut pre);
            let act = if m == self.config.hidden_layers {
                self.config.output_activation
            } else {
                Activation::Relu
            };
            let mut post = pre.clone();
            act.apply_slice(&mut post);
            trace.pre.push(pre);
            cur = post.clone();
            trace.post.push(post);
        }
        Ok(trace)
    }

    /// Backward pass for one sample.
    ///
    /// Accumulates `dL/dW` into `d_weights` (same layout as
    /// [`Mlp::params`]) and returns `dL/d input` (needed to train the grid
    /// encoding feeding this network).
    ///
    /// # Errors
    ///
    /// Returns [`NgError::DimensionMismatch`] on inconsistent sizes.
    pub fn backward(
        &self,
        input: &[f32],
        trace: &MlpTrace,
        d_output: &[f32],
        d_weights: &mut [f32],
    ) -> Result<Vec<f32>> {
        if d_output.len() != self.config.output_dim {
            return Err(NgError::DimensionMismatch {
                context: "mlp backward d_output",
                expected: self.config.output_dim,
                actual: d_output.len(),
            });
        }
        if d_weights.len() != self.weights.len() {
            return Err(NgError::DimensionMismatch {
                context: "mlp backward d_weights",
                expected: self.weights.len(),
                actual: d_weights.len(),
            });
        }
        let n = self.config.n_matrices();
        // delta = dL/d pre-activation of the current layer.
        let mut delta: Vec<f32> = d_output
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let pre = trace.pre[n - 1][i];
                let post = trace.post[n - 1][i];
                g * self.config.output_activation.derivative(pre, post)
            })
            .collect();
        for m in (0..n).rev() {
            let (rows, cols) = self.config.matrix_shape(m);
            let below: &[f32] = if m == 0 { input } else { &trace.post[m - 1] };
            debug_assert_eq!(below.len(), cols);
            // dW += delta (outer) below
            let dw = &mut d_weights[self.offsets[m]..self.offsets[m + 1]];
            for r in 0..rows {
                let d = delta[r];
                if d != 0.0 {
                    let row = &mut dw[r * cols..(r + 1) * cols];
                    for (slot, b) in row.iter_mut().zip(below) {
                        *slot += d * b;
                    }
                }
            }
            // d below = W^T delta, through the activation derivative of the
            // layer below (ReLU), unless we've reached the input.
            let w = self.matrix(m);
            let mut d_below = vec![0.0f32; cols];
            for r in 0..rows {
                let d = delta[r];
                if d != 0.0 {
                    let row = &w[r * cols..(r + 1) * cols];
                    for (slot, wv) in d_below.iter_mut().zip(row) {
                        *slot += d * wv;
                    }
                }
            }
            if m == 0 {
                return Ok(d_below);
            }
            let pre_below = &trace.pre[m - 1];
            let post_below = &trace.post[m - 1];
            for (i, slot) in d_below.iter_mut().enumerate() {
                *slot *= Activation::Relu.derivative(pre_below[i], post_below[i]);
            }
            delta = d_below;
        }
        unreachable!("loop always returns at m == 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Mlp {
        Mlp::new(MlpConfig::neural_graphics(8, 2, 3, Activation::Sigmoid), 11).unwrap()
    }

    #[test]
    fn table1_param_counts() {
        // NeRF density model: 32 -> 64x3 -> 1... actually ->16 latent; see apps.
        let cfg = MlpConfig::neural_graphics(32, 3, 16, Activation::None);
        assert_eq!(cfg.param_count(), 32 * 64 + 64 * 64 * 2 + 64 * 16);
    }

    #[test]
    fn forward_shapes() {
        let mlp = small();
        let y = mlp.forward(&[0.5; 8]).unwrap();
        assert_eq!(y.len(), 3);
        assert!(y.iter().all(|v| (0.0..=1.0).contains(v))); // sigmoid output
    }

    #[test]
    fn forward_rejects_bad_input() {
        let mlp = small();
        assert!(mlp.forward(&[0.0; 7]).is_err());
    }

    #[test]
    fn traced_forward_matches_plain() {
        let mlp = small();
        let x: Vec<f32> = (0..8).map(|i| (i as f32) / 8.0 - 0.3).collect();
        let y = mlp.forward(&x).unwrap();
        let trace = mlp.forward_traced(&x).unwrap();
        assert_eq!(trace.post.last().unwrap(), &y);
        assert_eq!(trace.pre.len(), mlp.config().n_matrices());
    }

    #[test]
    fn zero_weights_give_zero_preactivation() {
        let mut mlp = small();
        mlp.params_mut().iter_mut().for_each(|w| *w = 0.0);
        let y = mlp.forward(&[1.0; 8]).unwrap();
        // Sigmoid(0) = 0.5 at the output.
        assert!(y.iter().all(|v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn weight_gradients_match_finite_difference() {
        let mut mlp = Mlp::new(MlpConfig::neural_graphics(5, 2, 2, Activation::None), 3).unwrap();
        let x = [0.3f32, -0.2, 0.8, 0.1, -0.6];
        // Loss = sum(outputs).
        let trace = mlp.forward_traced(&x).unwrap();
        let d_out = vec![1.0f32; 2];
        let mut analytic = vec![0.0f32; mlp.param_count()];
        mlp.backward(&x, &trace, &d_out, &mut analytic).unwrap();

        let loss = |m: &Mlp| -> f32 { m.forward(&x).unwrap().iter().sum() };
        let h = 1e-3f32;
        // Probe a spread of parameters across matrices.
        let probes = [0usize, 7, 64, 200, mlp.param_count() - 1];
        for &idx in &probes {
            let orig = mlp.params()[idx];
            mlp.params_mut()[idx] = orig + h;
            let plus = loss(&mlp);
            mlp.params_mut()[idx] = orig - h;
            let minus = loss(&mlp);
            mlp.params_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * h);
            assert!(
                (analytic[idx] - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "w[{idx}]: analytic {} vs numeric {numeric}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn input_gradients_match_finite_difference() {
        let mlp = Mlp::new(MlpConfig::neural_graphics(4, 2, 2, Activation::Sigmoid), 9).unwrap();
        let x = [0.25f32, -0.5, 0.75, 0.1];
        let trace = mlp.forward_traced(&x).unwrap();
        let d_out = vec![1.0f32; 2];
        let mut dw = vec![0.0f32; mlp.param_count()];
        let d_in = mlp.backward(&x, &trace, &d_out, &mut dw).unwrap();

        let loss = |x: &[f32]| -> f32 { mlp.forward(x).unwrap().iter().sum() };
        let h = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let numeric = (loss(&xp) - loss(&xm)) / (2.0 * h);
            assert!(
                (d_in[i] - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{i}]: analytic {} vs numeric {numeric}",
                d_in[i]
            );
        }
    }

    #[test]
    fn macs_equal_params_for_biasfree_net() {
        let cfg = MlpConfig::neural_graphics(32, 4, 3, Activation::Sigmoid);
        assert_eq!(cfg.macs_per_inference(), cfg.param_count());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Mlp::new(MlpConfig::neural_graphics(0, 2, 3, Activation::None), 0).is_err());
        assert!(Mlp::new(MlpConfig::neural_graphics(8, 0, 3, Activation::None), 0).is_err());
        assert!(Mlp::new(MlpConfig::neural_graphics(8, 20, 3, Activation::None), 0).is_err());
    }

    #[test]
    fn deterministic_init() {
        let a = Mlp::new(MlpConfig::neural_graphics(8, 2, 3, Activation::None), 42).unwrap();
        let b = Mlp::new(MlpConfig::neural_graphics(8, 2, 3, Activation::None), 42).unwrap();
        assert_eq!(a.params(), b.params());
    }
}
