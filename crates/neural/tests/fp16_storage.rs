//! fp16 table storage: the paper's byte accounting (1 MB grid SRAM,
//! Table III traffic) assumes 2-byte parameters, as tiny-cuda-nn stores
//! them. These tests quantify that storing the trained grid at fp16
//! preserves reconstruction quality — the premise behind the NFP's SRAM
//! sizing.

use ng_neural::apps::gia::GiaModel;
use ng_neural::apps::EncodingKind;
use ng_neural::data::procedural::ProceduralImage;
use ng_neural::encoding::Encoding;
use ng_neural::math::half::{quantize_f16, quantize_slice_f16};
use ng_neural::train::{TrainConfig, Trainer};

#[test]
fn quantized_grid_encoding_error_is_fp16_small() {
    use ng_neural::encoding::{GridConfig, MultiResGrid};
    let mut grid = MultiResGrid::new(GridConfig::hashgrid(3, 10, 1.5), 4).unwrap();
    // Give the table realistic trained magnitudes.
    let mut scale = 0.37f32;
    for p in grid.params_mut() {
        *p *= 1.0 + scale;
        scale = (scale * 1.618).fract();
    }
    let probe = [0.41f32, 0.27, 0.83];
    let exact = grid.encode(&probe).unwrap();
    quantize_slice_f16(grid.params_mut());
    let quantized = grid.encode(&probe).unwrap();
    for (e, q) in exact.iter().zip(&quantized) {
        // fp16 relative precision is 2^-11; interpolation is convex so
        // the output error cannot exceed the per-entry error.
        assert!((e - q).abs() <= e.abs() / 1024.0 + 1e-6, "fp16 storage changed {e} to {q}");
    }
}

#[test]
fn trained_gia_survives_fp16_storage() {
    let image = ProceduralImage::new(5);
    let mut model = GiaModel::new(EncodingKind::MultiResHashGrid, 11);
    let cfg = TrainConfig { steps: 120, batch_size: 1024, ..TrainConfig::default() };
    Trainer::new(cfg).train_gia(&mut model, &image);

    // Reference reconstruction error at f32.
    let mse = |model: &GiaModel| {
        let mut acc = 0.0f64;
        let n = 24;
        for i in 0..n {
            for j in 0..n {
                let (u, v) = ((i as f32 + 0.5) / n as f32, (j as f32 + 0.5) / n as f32);
                let truth = image.color_at(u, v);
                let got = model.color_at(u, v).unwrap();
                let d = got - truth;
                acc += (d.dot(d)) as f64;
            }
        }
        acc / (3 * n * n) as f64
    };
    let f32_mse = mse(&model);

    // Quantize the grid tables and the MLP weights to fp16.
    quantize_slice_f16(model.field_mut().encoding.params_mut());
    quantize_slice_f16(model.field_mut().mlp.params_mut());
    let f16_mse = mse(&model);

    let f32_psnr = 10.0 * (1.0 / f32_mse).log10();
    let f16_psnr = 10.0 * (1.0 / f16_mse).log10();
    assert!(
        f16_psnr > f32_psnr - 1.0,
        "fp16 storage cost {:.2} dB (f32 {f32_psnr:.2} vs f16 {f16_psnr:.2})",
        f32_psnr - f16_psnr
    );
}

#[test]
fn quantization_is_idempotent() {
    for v in [0.123f32, -4.56, 1e-3, 300.0] {
        let once = quantize_f16(v);
        assert_eq!(once, quantize_f16(once));
    }
}
