//! Property-based tests of the neural substrate's core invariants.

use ng_neural::encoding::hash::{dense_index, dense_vertex_count, spatial_hash};
use ng_neural::encoding::{encode_batch, Encoding, GridConfig, GridKind, MultiResGrid};
use ng_neural::math::{Activation, Pcg32};
use ng_neural::mlp::{Loss, Mlp, MlpConfig};
use proptest::prelude::*;

fn arb_grid_kind() -> impl Strategy<Value = GridKind> {
    prop_oneof![Just(GridKind::Hash), Just(GridKind::Dense), Just(GridKind::Tiled)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_encoding_deterministic_and_finite(
        kind in arb_grid_kind(),
        x in 0.0f32..1.0,
        y in 0.0f32..1.0,
        seed in 0u64..20,
    ) {
        let cfg = GridConfig {
            dim: 2,
            n_levels: 4,
            features_per_level: 2,
            log2_table_size: 8,
            base_resolution: 8,
            growth_factor: 1.6,
            kind,
        };
        let grid = MultiResGrid::new(cfg, seed).unwrap();
        let a = grid.encode(&[x, y]).unwrap();
        let b = grid.encode(&[x, y]).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| v.is_finite()));
        prop_assert_eq!(a.len(), 8);
    }

    #[test]
    fn batch_encode_equals_pointwise(
        pts in prop::collection::vec(0.0f32..1.0, 6..30),
    ) {
        let n = pts.len() / 3 * 3;
        let pts = &pts[..n];
        let grid = MultiResGrid::new(GridConfig::hashgrid(3, 8, 1.4), 1).unwrap();
        let batch = encode_batch(&grid, pts).unwrap();
        for (i, p) in pts.chunks_exact(3).enumerate() {
            let single = grid.encode(p).unwrap();
            prop_assert_eq!(&batch[i * 32..(i + 1) * 32], &single[..]);
        }
    }

    #[test]
    fn grid_backward_gradient_mass_is_bounded(
        x in 0.0f32..1.0,
        y in 0.0f32..1.0,
        z in 0.0f32..1.0,
    ) {
        // With unit upstream gradients, scatter mass per level equals F
        // (partition of unity), so total = L * F.
        let grid = MultiResGrid::new(GridConfig::hashgrid(3, 8, 1.4), 2).unwrap();
        let d_out = vec![1.0f32; grid.output_dim()];
        let mut d_params = vec![0.0f32; grid.param_count()];
        grid.backward(&[x, y, z], &d_out, &mut d_params).unwrap();
        let total: f32 = d_params.iter().sum();
        prop_assert!((total - grid.output_dim() as f32).abs() < 1e-2);
        prop_assert!(d_params.iter().all(|g| *g >= -1e-6));
    }

    #[test]
    fn hash_never_escapes_table(cs in prop::collection::vec(0u32..1_000_000, 3), log2 in 2u32..24) {
        prop_assert!(spatial_hash(&cs, log2) < (1u32 << log2));
    }

    #[test]
    fn dense_index_is_injective_within_grid(
        res in 1u32..20,
        a in prop::collection::vec(0u32..21, 3),
        b in prop::collection::vec(0u32..21, 3),
    ) {
        let clamp = |v: &[u32]| [v[0].min(res), v[1].min(res), v[2].min(res)];
        let (ca, cb) = (clamp(&a), clamp(&b));
        let (ia, ib) = (dense_index(&ca, res), dense_index(&cb, res));
        prop_assert!(ia < dense_vertex_count(res, 3));
        if ca != cb {
            prop_assert_ne!(ia, ib);
        } else {
            prop_assert_eq!(ia, ib);
        }
    }

    #[test]
    fn mlp_forward_is_deterministic_and_finite(
        xs in prop::collection::vec(-2.0f32..2.0, 8),
        seed in 0u64..30,
    ) {
        let mlp = Mlp::new(MlpConfig::neural_graphics(8, 2, 3, Activation::Sigmoid), seed).unwrap();
        let a = mlp.forward(&xs).unwrap();
        prop_assert_eq!(&a, &mlp.forward(&xs).unwrap());
        prop_assert!(a.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
    }

    #[test]
    fn relu_network_is_positive_homogeneous_in_scale(
        xs in prop::collection::vec(-1.0f32..1.0, 4),
        scale in 0.1f32..4.0,
    ) {
        // Bias-free ReLU nets with identity output are positively
        // homogeneous: f(s * x) = s * f(x) for s > 0.
        let mlp = Mlp::new(MlpConfig::neural_graphics(4, 2, 2, Activation::None), 3).unwrap();
        let base = mlp.forward(&xs).unwrap();
        let scaled_in: Vec<f32> = xs.iter().map(|v| v * scale).collect();
        let scaled_out = mlp.forward(&scaled_in).unwrap();
        for (b, s) in base.iter().zip(&scaled_out) {
            prop_assert!((b * scale - s).abs() < 1e-3 * (1.0 + s.abs()), "{b} * {scale} vs {s}");
        }
    }

    #[test]
    fn losses_are_nonnegative_and_zero_at_target(
        p in -10.0f32..10.0,
        t in -10.0f32..10.0,
    ) {
        for loss in [Loss::Mse, Loss::L1, Loss::RelativeL2] {
            prop_assert!(loss.value(p, t) >= 0.0);
            prop_assert_eq!(loss.value(t, t), 0.0);
            // Gradient sign matches the error direction.
            let g = loss.gradient(p, t);
            if p > t { prop_assert!(g >= 0.0); }
            if p < t { prop_assert!(g <= 0.0); }
        }
    }

    #[test]
    fn activations_are_monotone(
        a in -5.0f32..5.0,
        delta in 0.0f32..5.0,
    ) {
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Exp, Activation::Softplus] {
            prop_assert!(act.apply(a + delta) + 1e-6 >= act.apply(a), "{act:?}");
        }
    }

    #[test]
    fn rng_bounded_is_uniformish(seed in 0u64..1000) {
        let mut rng = Pcg32::new(seed);
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            counts[rng.bounded(4) as usize] += 1;
        }
        for c in counts {
            prop_assert!(c > 40, "bucket count {c} too skewed");
        }
    }
}
