//! Accelergy-style per-access energy accounting at 45 nm.

use serde::{Deserialize, Serialize};

use crate::mapping::MappingCost;

/// Per-access energies (picojoules per 16-bit word / operation), in the
/// range Accelergy's 45 nm plug-ins report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// One fp16 MAC.
    pub mac_pj: f64,
    /// One register-file word access.
    pub regfile_pj: f64,
    /// One global-buffer word access.
    pub buffer_pj: f64,
    /// One DRAM word access.
    pub dram_pj: f64,
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable { mac_pj: 1.1, regfile_pj: 0.18, buffer_pj: 6.0, dram_pj: 200.0 }
    }
}

/// Total energy of an evaluated mapping, in microjoules.
pub fn mapping_energy_uj(cost: &MappingCost, table: &EnergyTable) -> f64 {
    let pj = cost.macs as f64 * table.mac_pj
        + cost.regfile_accesses as f64 * table.regfile_pj
        + cost.buffer_reads as f64 * table.buffer_pj
        + cost.dram_words as f64 * table.dram_pj;
    pj * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::PeArray;
    use crate::mapping::{Dataflow, Mapping};
    use crate::problem::Gemm;

    #[test]
    fn dram_dominates_naive_mappings() {
        let table = EnergyTable::default();
        assert!(table.dram_pj > 20.0 * table.buffer_pj);
        assert!(table.buffer_pj > 10.0 * table.regfile_pj);
    }

    #[test]
    fn weight_stationary_saves_energy_on_large_batches() {
        let arch = PeArray::nfp_mlp_engine();
        let g = Gemm::new(100_000, 64, 64);
        let table = EnergyTable::default();
        let ws = Mapping { spatial_n: 64, spatial_k: 64, dataflow: Dataflow::WeightStationary }
            .evaluate(&g, &arch);
        let os = Mapping { spatial_n: 64, spatial_k: 64, dataflow: Dataflow::OutputStationary }
            .evaluate(&g, &arch);
        assert!(mapping_energy_uj(&ws, &table) < mapping_energy_uj(&os, &table));
    }

    #[test]
    fn energy_is_positive_and_scales_with_work() {
        let arch = PeArray::nfp_mlp_engine();
        let table = EnergyTable::default();
        let small = Mapping { spatial_n: 64, spatial_k: 64, dataflow: Dataflow::WeightStationary }
            .evaluate(&Gemm::new(100, 64, 64), &arch);
        let big = Mapping { spatial_n: 64, spatial_k: 64, dataflow: Dataflow::WeightStationary }
            .evaluate(&Gemm::new(10_000, 64, 64), &arch);
        let e_small = mapping_energy_uj(&small, &table);
        let e_big = mapping_energy_uj(&big, &table);
        assert!(e_small > 0.0);
        assert!(e_big > 10.0 * e_small);
    }
}
