//! End-to-end evaluation of an MLP on the PE array: map each layer with
//! the mapper, sum cycles and energy. This is the number compared against
//! the `ngpc` MLP engine's own cycle model (paper Fig. 13's "mlp imp TA"
//! dotted lines, which agree within ~7 %).

use serde::{Deserialize, Serialize};

use crate::arch::PeArray;
use crate::energy::EnergyTable;
use crate::mapper::best_mapping;
use crate::problem::Gemm;

/// Result of evaluating a full MLP over a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpEvaluation {
    /// Total cycles across all layers, including per-layer staging
    /// overhead (weight swap between layers).
    pub cycles: u64,
    /// Total MACs.
    pub macs: u64,
    /// Total energy in microjoules.
    pub energy_uj: f64,
    /// Execution time in nanoseconds at the array clock.
    pub time_ns: f64,
    /// Per-layer cycles.
    pub layer_cycles: Vec<u64>,
}

/// Cycles spent re-staging weights between layers (drain + refill of the
/// array's weight registers from the weight SRAM).
pub const LAYER_SWAP_CYCLES: u64 = 64;

/// Evaluate a batch of `batch` inferences of a bias-free MLP
/// (`input -> hidden x layers -> output`) on `arch`.
pub fn evaluate_mlp(
    arch: &PeArray,
    table: &EnergyTable,
    batch: u64,
    input: u64,
    hidden: u64,
    hidden_layers: u64,
    output: u64,
) -> MlpEvaluation {
    let layers = Gemm::mlp_layers(batch, input, hidden, hidden_layers, output);
    let mut cycles = 0u64;
    let mut macs = 0u64;
    let mut energy_uj = 0.0;
    let mut layer_cycles = Vec::with_capacity(layers.len());
    for layer in &layers {
        let r = best_mapping(layer, arch, table);
        cycles += r.cost.cycles + LAYER_SWAP_CYCLES;
        macs += r.cost.macs;
        energy_uj += r.energy_uj;
        layer_cycles.push(r.cost.cycles);
    }
    let time_ns = cycles as f64 / arch.clock_ghz;
    MlpEvaluation { cycles, macs, energy_uj, time_ns, layer_cycles }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mlp_takes_one_cycle_per_layer_per_query() {
        // 64-wide layers fully occupy the 64x64 array: a 4-hidden-layer
        // MLP is 5 GEMMs -> ~5 cycles per query plus staging.
        let arch = PeArray::nfp_mlp_engine();
        let batch = 100_000u64;
        let eval = evaluate_mlp(&arch, &EnergyTable::default(), batch, 32, 64, 4, 3);
        let per_query = eval.cycles as f64 / batch as f64;
        assert!((per_query - 5.0).abs() < 0.1, "per-query cycles {per_query}");
    }

    #[test]
    fn energy_scales_with_batch() {
        let arch = PeArray::nfp_mlp_engine();
        let t = EnergyTable::default();
        let e1 = evaluate_mlp(&arch, &t, 1_000, 32, 64, 3, 16).energy_uj;
        let e2 = evaluate_mlp(&arch, &t, 2_000, 32, 64, 3, 16).energy_uj;
        assert!(e2 > 1.8 * e1 && e2 < 2.2 * e1);
    }

    #[test]
    fn layer_count_matches_topology() {
        let arch = PeArray::nfp_mlp_engine();
        let eval = evaluate_mlp(&arch, &EnergyTable::default(), 10, 32, 64, 4, 1);
        assert_eq!(eval.layer_cycles.len(), 5);
    }

    #[test]
    fn macs_match_analytic_count() {
        let arch = PeArray::nfp_mlp_engine();
        let eval = evaluate_mlp(&arch, &EnergyTable::default(), 7, 32, 64, 3, 16);
        let expected = 7 * (32 * 64 + 64 * 64 * 2 + 64 * 16);
        assert_eq!(eval.macs, expected);
    }
}
