//! The mapping search: exhaustively enumerate power-of-two spatial tiles
//! and both dataflows, pick the best by delay then energy (Timeloop's
//! default optimisation metric order for latency-focused runs).

use crate::arch::PeArray;
use crate::energy::{mapping_energy_uj, EnergyTable};
use crate::mapping::{Dataflow, Mapping, MappingCost};
use crate::problem::Gemm;

/// A search result: the winning mapping and its cost/energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its cycle/access cost.
    pub cost: MappingCost,
    /// Its energy in microjoules.
    pub energy_uj: f64,
    /// Number of candidate mappings evaluated.
    pub candidates: u32,
}

/// Power-of-two tiles up to `limit`, plus `limit` itself when it is not
/// a power of two — so the full-array tile (the NFP's fixed dataflow)
/// is always in the mapspace even on non-power-of-two arrays, and the
/// search can never return a mapping worse than the fixed tiling.
fn pow2_tiles(limit: u64) -> impl Iterator<Item = u64> {
    (0..=limit.ilog2()).map(|s| 1u64 << s).chain((!limit.is_power_of_two()).then_some(limit))
}

/// Search all valid mappings of `problem` on `arch`, minimising cycles
/// first and energy as the tie-breaker.
pub fn best_mapping(problem: &Gemm, arch: &PeArray, table: &EnergyTable) -> SearchResult {
    let _span = ng_obs::span("mapsearch");
    let mut best: Option<SearchResult> = None;
    let mut candidates = 0;
    for spatial_n in pow2_tiles(arch.rows as u64) {
        for spatial_k in pow2_tiles(arch.cols as u64) {
            for dataflow in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
                let mapping = Mapping { spatial_n, spatial_k, dataflow };
                if !mapping.is_valid(arch) {
                    continue;
                }
                candidates += 1;
                let cost = mapping.evaluate(problem, arch);
                let energy_uj = mapping_energy_uj(&cost, table);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        cost.cycles < b.cost.cycles
                            || (cost.cycles == b.cost.cycles && energy_uj < b.energy_uj)
                    }
                };
                if better {
                    best = Some(SearchResult { mapping, cost, energy_uj, candidates });
                }
            }
        }
    }
    let mut result = best.expect("at least one valid mapping exists");
    result.candidates = candidates;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_mapping_saturates_array_for_64_wide_layers() {
        let arch = PeArray::nfp_mlp_engine();
        let g = Gemm::new(4096, 64, 64);
        let r = best_mapping(&g, &arch, &EnergyTable::default());
        assert_eq!(r.mapping.spatial_n, 64);
        assert_eq!(r.mapping.spatial_k, 64);
        assert_eq!(r.cost.cycles, 4096);
    }

    #[test]
    fn narrow_output_layer_still_tiles_k() {
        // NSDF output layer: N=1, K=64 — the mapper should spread K.
        let arch = PeArray::nfp_mlp_engine();
        let g = Gemm::new(1000, 1, 64);
        let r = best_mapping(&g, &arch, &EnergyTable::default());
        assert_eq!(r.mapping.spatial_k, 64);
        assert_eq!(r.cost.cycles, 1000);
    }

    #[test]
    fn search_space_is_exhaustive() {
        let arch = PeArray::nfp_mlp_engine();
        let r = best_mapping(&Gemm::new(10, 64, 64), &arch, &EnergyTable::default());
        // 7 x 7 power-of-two tiles x 2 dataflows.
        assert_eq!(r.candidates, 7 * 7 * 2);
    }

    #[test]
    fn non_pow2_arrays_still_reach_the_full_array_tile() {
        // A 48x48 array's best mapping of a 48-wide layer must use the
        // whole array (one tile per query), not the largest power of
        // two below it — the fixed dataflow is always in the mapspace.
        let arch = PeArray { rows: 48, cols: 48, ..PeArray::nfp_mlp_engine() };
        let r = best_mapping(&Gemm::new(1000, 48, 48), &arch, &EnergyTable::default());
        assert_eq!((r.mapping.spatial_n, r.mapping.spatial_k), (48, 48));
        assert_eq!(r.cost.cycles, 1000);
    }

    #[test]
    fn ties_broken_by_energy() {
        // For big batches both dataflows reach the same cycles at full
        // tiling; weight-stationary must win on energy.
        let arch = PeArray::nfp_mlp_engine();
        let g = Gemm::new(100_000, 64, 64);
        let r = best_mapping(&g, &arch, &EnergyTable::default());
        assert_eq!(r.mapping.dataflow, Dataflow::WeightStationary);
    }
}
