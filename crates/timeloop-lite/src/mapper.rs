//! The mapping search: exhaustively enumerate power-of-two spatial tiles
//! and both dataflows, pick the best by delay then energy (Timeloop's
//! default optimisation metric order for latency-focused runs).

use crate::arch::PeArray;
use crate::energy::{mapping_energy_uj, EnergyTable};
use crate::mapping::{Dataflow, Mapping, MappingCost};
use crate::problem::Gemm;

/// A search result: the winning mapping and its cost/energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its cycle/access cost.
    pub cost: MappingCost,
    /// Its energy in microjoules.
    pub energy_uj: f64,
    /// Number of candidate mappings evaluated.
    pub candidates: u32,
}

fn pow2_tiles(limit: u64) -> impl Iterator<Item = u64> {
    (0..=limit.ilog2()).map(|s| 1u64 << s)
}

/// Search all valid mappings of `problem` on `arch`, minimising cycles
/// first and energy as the tie-breaker.
pub fn best_mapping(problem: &Gemm, arch: &PeArray, table: &EnergyTable) -> SearchResult {
    let mut best: Option<SearchResult> = None;
    let mut candidates = 0;
    for spatial_n in pow2_tiles(arch.rows as u64) {
        for spatial_k in pow2_tiles(arch.cols as u64) {
            for dataflow in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
                let mapping = Mapping { spatial_n, spatial_k, dataflow };
                if !mapping.is_valid(arch) {
                    continue;
                }
                candidates += 1;
                let cost = mapping.evaluate(problem, arch);
                let energy_uj = mapping_energy_uj(&cost, table);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        cost.cycles < b.cost.cycles
                            || (cost.cycles == b.cost.cycles && energy_uj < b.energy_uj)
                    }
                };
                if better {
                    best = Some(SearchResult { mapping, cost, energy_uj, candidates });
                }
            }
        }
    }
    let mut result = best.expect("at least one valid mapping exists");
    result.candidates = candidates;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_mapping_saturates_array_for_64_wide_layers() {
        let arch = PeArray::nfp_mlp_engine();
        let g = Gemm::new(4096, 64, 64);
        let r = best_mapping(&g, &arch, &EnergyTable::default());
        assert_eq!(r.mapping.spatial_n, 64);
        assert_eq!(r.mapping.spatial_k, 64);
        assert_eq!(r.cost.cycles, 4096);
    }

    #[test]
    fn narrow_output_layer_still_tiles_k() {
        // NSDF output layer: N=1, K=64 — the mapper should spread K.
        let arch = PeArray::nfp_mlp_engine();
        let g = Gemm::new(1000, 1, 64);
        let r = best_mapping(&g, &arch, &EnergyTable::default());
        assert_eq!(r.mapping.spatial_k, 64);
        assert_eq!(r.cost.cycles, 1000);
    }

    #[test]
    fn search_space_is_exhaustive() {
        let arch = PeArray::nfp_mlp_engine();
        let r = best_mapping(&Gemm::new(10, 64, 64), &arch, &EnergyTable::default());
        // 7 x 7 power-of-two tiles x 2 dataflows.
        assert_eq!(r.candidates, 7 * 7 * 2);
    }

    #[test]
    fn ties_broken_by_energy() {
        // For big batches both dataflows reach the same cycles at full
        // tiling; weight-stationary must win on energy.
        let arch = PeArray::nfp_mlp_engine();
        let g = Gemm::new(100_000, 64, 64);
        let r = best_mapping(&g, &arch, &EnergyTable::default());
        assert_eq!(r.mapping.dataflow, Dataflow::WeightStationary);
    }
}
