//! The accelerator architecture being mapped onto: a 2D PE array with a
//! register file per PE, a shared global buffer, and DRAM behind it —
//! the three-level hierarchy Timeloop models for systolic designs.

use serde::{Deserialize, Serialize};

/// A PE-array accelerator description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeArray {
    /// Array rows (spatial N dimension).
    pub rows: u32,
    /// Array columns (spatial K dimension).
    pub cols: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Global buffer capacity in bytes (weights + activations).
    pub buffer_bytes: u64,
    /// Register-file words per PE.
    pub regfile_words: u32,
}

impl PeArray {
    /// The NFP MLP engine: a 64x64 MAC grid at 1 GHz with the dedicated
    /// weight/activation SRAMs of the paper's Fig. 9-b.
    pub fn nfp_mlp_engine() -> Self {
        PeArray {
            rows: 64,
            cols: 64,
            clock_ghz: 1.0,
            buffer_bytes: (128 + 32) * 1024,
            regfile_words: 8,
        }
    }

    /// The PE array one [`ngpc::NfpConfig`]'s MLP engine presents to
    /// the mapper: the MAC grid is the spatial array, the engine's
    /// dedicated weight/activation SRAMs (provisioned with the array by
    /// [`ngpc::NfpConfig::floorplan`]) are the global buffer, and the
    /// register-file depth matches [`PeArray::nfp_mlp_engine`]. At the
    /// paper's NFP this reproduces `nfp_mlp_engine()` exactly — the
    /// test below pins it — so `dse --map-search` and the standalone
    /// Fig. 13 cross-validation map onto the same machine.
    pub fn from_nfp(nfp: &ngpc::NfpConfig) -> Self {
        let plan = nfp.floorplan();
        PeArray {
            rows: nfp.mac_rows,
            cols: nfp.mac_cols,
            clock_ghz: nfp.clock_ghz,
            buffer_bytes: plan.weight_sram_bytes + plan.activation_sram_bytes,
            regfile_words: 8,
        }
    }

    /// Total PEs.
    pub fn pes(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Peak MACs per second.
    pub fn peak_macs_per_s(&self) -> f64 {
        self.pes() as f64 * self.clock_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nfp_engine_is_64x64_at_1ghz() {
        let a = PeArray::nfp_mlp_engine();
        assert_eq!(a.pes(), 4096);
        assert!((a.peak_macs_per_s() - 4.096e12).abs() < 1e6);
    }

    #[test]
    fn from_nfp_reproduces_the_paper_engine() {
        let paper = PeArray::from_nfp(&ngpc::NfpConfig::default());
        assert_eq!(paper, PeArray::nfp_mlp_engine());
        // Off-paper arrays carry their proportional buffering with them.
        let half = ngpc::NfpConfig { mac_rows: 32, mac_cols: 32, ..ngpc::NfpConfig::default() };
        let a = PeArray::from_nfp(&half);
        assert_eq!((a.rows, a.cols), (32, 32));
        assert_eq!(a.buffer_bytes, (128 + 32) * 1024 / 4);
    }
}
