//! The accelerator architecture being mapped onto: a 2D PE array with a
//! register file per PE, a shared global buffer, and DRAM behind it —
//! the three-level hierarchy Timeloop models for systolic designs.

use serde::{Deserialize, Serialize};

/// A PE-array accelerator description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeArray {
    /// Array rows (spatial N dimension).
    pub rows: u32,
    /// Array columns (spatial K dimension).
    pub cols: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Global buffer capacity in bytes (weights + activations).
    pub buffer_bytes: u64,
    /// Register-file words per PE.
    pub regfile_words: u32,
}

impl PeArray {
    /// The NFP MLP engine: a 64x64 MAC grid at 1 GHz with the dedicated
    /// weight/activation SRAMs of the paper's Fig. 9-b.
    pub fn nfp_mlp_engine() -> Self {
        PeArray {
            rows: 64,
            cols: 64,
            clock_ghz: 1.0,
            buffer_bytes: (128 + 32) * 1024,
            regfile_words: 8,
        }
    }

    /// Total PEs.
    pub fn pes(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Peak MACs per second.
    pub fn peak_macs_per_s(&self) -> f64 {
        self.pes() as f64 * self.clock_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nfp_engine_is_64x64_at_1ghz() {
        let a = PeArray::nfp_mlp_engine();
        assert_eq!(a.pes(), 4096);
        assert!((a.peak_macs_per_s() - 4.096e12).abs() < 1e6);
    }
}
