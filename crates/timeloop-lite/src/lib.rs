//! # ng-timeloop — Timeloop/Accelergy-lite
//!
//! The paper cross-validates its MLP-engine performance model with
//! Timeloop (loop-nest mapping search) and Accelergy (per-component
//! energy), reporting agreement within ~7 % (the "mlp imp TA" lines of
//! Fig. 13). This crate is a from-scratch miniature of that flow:
//!
//! * [`problem`] — GEMM workload descriptions (the MLP layers),
//! * [`arch`] — the PE-array + buffer hierarchy being mapped onto,
//! * [`mapping`] — a loop-nest mapping (spatial/temporal tiling +
//!   dataflow),
//! * [`mapper`] — exhaustive search over valid mappings,
//! * [`energy`] — Accelergy-style per-access energy accounting,
//! * [`model`] — end-to-end evaluation of an MLP on the array, the
//!   numbers compared against the `ngpc` MLP engine.

pub mod arch;
pub mod energy;
pub mod mapper;
pub mod mapping;
pub mod model;
pub mod problem;

pub use arch::PeArray;
pub use energy::EnergyTable;
pub use mapper::{best_mapping, SearchResult};
pub use mapping::{Dataflow, Mapping, MappingCost};
pub use model::{evaluate_mlp, MlpEvaluation};
pub use problem::Gemm;

/// The mapping problem one MLP layer of shape `(rows, cols)` poses on
/// one NFP configuration: the layer's GEMM over `batch` queries plus
/// the PE array the NFP's MLP engine presents — the stable constructor
/// `dse --map-search` builds its per-layer searches from.
///
/// # Panics
///
/// Panics if `batch`, `rows` or `cols` is zero.
pub fn layer_problem(
    nfp: &ngpc::NfpConfig,
    rows: usize,
    cols: usize,
    batch: u64,
) -> (Gemm, PeArray) {
    (Gemm::from_layer(batch, rows, cols), PeArray::from_nfp(nfp))
}
