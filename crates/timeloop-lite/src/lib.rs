//! # ng-timeloop — Timeloop/Accelergy-lite
//!
//! The paper cross-validates its MLP-engine performance model with
//! Timeloop (loop-nest mapping search) and Accelergy (per-component
//! energy), reporting agreement within ~7 % (the "mlp imp TA" lines of
//! Fig. 13). This crate is a from-scratch miniature of that flow:
//!
//! * [`problem`] — GEMM workload descriptions (the MLP layers),
//! * [`arch`] — the PE-array + buffer hierarchy being mapped onto,
//! * [`mapping`] — a loop-nest mapping (spatial/temporal tiling +
//!   dataflow),
//! * [`mapper`] — exhaustive search over valid mappings,
//! * [`energy`] — Accelergy-style per-access energy accounting,
//! * [`model`] — end-to-end evaluation of an MLP on the array, the
//!   numbers compared against the `ngpc` MLP engine.

pub mod arch;
pub mod energy;
pub mod mapper;
pub mod mapping;
pub mod model;
pub mod problem;

pub use mapper::best_mapping;
pub use model::{evaluate_mlp, MlpEvaluation};
pub use problem::Gemm;
