//! Loop-nest mappings: how a GEMM's iteration space is tiled across the
//! PE array (spatially) and time (temporally), and which operand stays
//! stationary.

use serde::{Deserialize, Serialize};

use crate::arch::PeArray;
use crate::problem::Gemm;

/// Which operand is held stationary in the PE register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weights stay in the PEs; activations stream (the NFP engine's
    /// dataflow — one layer's weights are staged, the batch streams).
    WeightStationary,
    /// Partial sums stay; weights and activations stream.
    OutputStationary,
}

/// A concrete mapping of a GEMM onto the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// Spatial tile of the N (output-neuron) dimension (<= array rows).
    pub spatial_n: u64,
    /// Spatial tile of the K (input-neuron) dimension (<= array cols).
    pub spatial_k: u64,
    /// Dataflow choice.
    pub dataflow: Dataflow,
}

/// Cycle/access counts of one evaluated mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingCost {
    /// Total execution cycles.
    pub cycles: u64,
    /// MAC operations (equals the GEMM's MACs — work conservation).
    pub macs: u64,
    /// Words read from the global buffer.
    pub buffer_reads: u64,
    /// Words read/written at the register files.
    pub regfile_accesses: u64,
    /// Words exchanged with DRAM.
    pub dram_words: u64,
    /// Fraction of PE-cycles doing useful work.
    pub utilization: f64,
}

impl Mapping {
    /// Whether this mapping is legal for the given array.
    pub fn is_valid(&self, arch: &PeArray) -> bool {
        self.spatial_n >= 1
            && self.spatial_k >= 1
            && self.spatial_n <= arch.rows as u64
            && self.spatial_k <= arch.cols as u64
    }

    /// Evaluate the mapping on a problem.
    ///
    /// Temporal loops cover the remainder: `ceil(n/spatial_n)` x
    /// `ceil(k/spatial_k)` tiles, each streaming the `m` batch elements
    /// one per cycle.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the mapping is invalid for the array.
    pub fn evaluate(&self, problem: &Gemm, arch: &PeArray) -> MappingCost {
        debug_assert!(self.is_valid(arch));
        let n_tiles = problem.n.div_ceil(self.spatial_n);
        let k_tiles = problem.k.div_ceil(self.spatial_k);
        let cycles = n_tiles * k_tiles * problem.m;
        let macs = problem.macs();
        let active_pes = self.spatial_n * self.spatial_k;
        let utilization = macs as f64 / (cycles as f64 * arch.pes() as f64).max(1.0)
            * (arch.pes() as f64 / active_pes.max(1) as f64).min(1.0);

        let (buffer_reads, regfile_accesses, dram_words) = match self.dataflow {
            Dataflow::WeightStationary => {
                // Weights loaded once per (n,k) tile; activations read
                // per cycle per active column; psums spilled per n-tile.
                let weight_loads = problem.n * problem.k;
                let act_reads = cycles * self.spatial_k;
                let psum_traffic = problem.m * problem.n * k_tiles;
                (
                    weight_loads + act_reads,
                    macs + psum_traffic,
                    problem.n * problem.k + problem.m * problem.k + problem.m * problem.n,
                )
            }
            Dataflow::OutputStationary => {
                // Weights and activations both stream every cycle; psums
                // never leave the PEs until done.
                let weight_reads = cycles * active_pes;
                let act_reads = cycles * self.spatial_k;
                (
                    weight_reads + act_reads,
                    macs,
                    problem.n * problem.k + problem.m * problem.k + problem.m * problem.n,
                )
            }
        };
        MappingCost { cycles, macs, buffer_reads, regfile_accesses, dram_words, utilization }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> PeArray {
        PeArray::nfp_mlp_engine()
    }

    #[test]
    fn full_array_mapping_of_64x64_layer() {
        let g = Gemm::new(1000, 64, 64);
        let m = Mapping { spatial_n: 64, spatial_k: 64, dataflow: Dataflow::WeightStationary };
        let cost = m.evaluate(&g, &arch());
        // One tile, one batch element per cycle.
        assert_eq!(cost.cycles, 1000);
        assert_eq!(cost.macs, g.macs());
        assert!(cost.utilization > 0.99);
    }

    #[test]
    fn undersized_spatial_tiles_take_longer() {
        let g = Gemm::new(1000, 64, 64);
        let small = Mapping { spatial_n: 16, spatial_k: 16, dataflow: Dataflow::WeightStationary };
        let cost = small.evaluate(&g, &arch());
        assert_eq!(cost.cycles, 4 * 4 * 1000);
    }

    #[test]
    fn validity_respects_array_bounds() {
        let a = arch();
        assert!(Mapping { spatial_n: 64, spatial_k: 64, dataflow: Dataflow::WeightStationary }
            .is_valid(&a));
        assert!(!Mapping { spatial_n: 65, spatial_k: 1, dataflow: Dataflow::WeightStationary }
            .is_valid(&a));
    }

    #[test]
    fn weight_stationary_reads_weights_once() {
        let g = Gemm::new(10_000, 64, 64);
        let ws = Mapping { spatial_n: 64, spatial_k: 64, dataflow: Dataflow::WeightStationary }
            .evaluate(&g, &arch());
        let os = Mapping { spatial_n: 64, spatial_k: 64, dataflow: Dataflow::OutputStationary }
            .evaluate(&g, &arch());
        assert!(
            ws.buffer_reads < os.buffer_reads,
            "weight-stationary should read the buffer less: {} vs {}",
            ws.buffer_reads,
            os.buffer_reads
        );
    }

    #[test]
    fn work_is_conserved_across_mappings() {
        let g = Gemm::new(777, 64, 32);
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            for (n, k) in [(64u64, 32u64), (32, 32), (8, 16)] {
                let cost =
                    Mapping { spatial_n: n, spatial_k: k, dataflow: df }.evaluate(&g, &arch());
                assert_eq!(cost.macs, g.macs());
            }
        }
    }
}
