//! Workload descriptions: the MLP layers as GEMM problems.

use serde::{Deserialize, Serialize};

/// A dense matrix multiply `C[M,N] = A[M,K] x B[K,N]`.
///
/// For a bias-free MLP layer over a batch: `M` = batch size, `N` =
/// output neurons, `K` = input neurons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gemm {
    /// Batch dimension.
    pub m: u64,
    /// Output-neuron dimension.
    pub n: u64,
    /// Input-neuron dimension.
    pub k: u64,
}

impl Gemm {
    /// Construct, validating non-zero dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(m: u64, n: u64, k: u64) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "gemm dims must be nonzero");
        Gemm { m, n, k }
    }

    /// The GEMM one MLP weight matrix of shape `(rows, cols)` (`y = W x`,
    /// the convention of `ng_neural::mlp::MlpConfig::matrix_shape` and
    /// `ngpc::mlp_layer_shapes`) poses over a batch of queries: `N` =
    /// output neurons = rows, `K` = input neurons = cols.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn from_layer(batch: u64, rows: usize, cols: usize) -> Self {
        Gemm::new(batch, rows as u64, cols as u64)
    }

    /// Total multiply–accumulate operations.
    pub fn macs(&self) -> u64 {
        self.m * self.n * self.k
    }

    /// The layers of a bias-free MLP as GEMMs over a batch.
    pub fn mlp_layers(
        batch: u64,
        input: u64,
        hidden: u64,
        hidden_layers: u64,
        output: u64,
    ) -> Vec<Gemm> {
        assert!(hidden_layers >= 1);
        let mut layers = vec![Gemm::new(batch, hidden, input)];
        for _ in 1..hidden_layers {
            layers.push(Gemm::new(batch, hidden, hidden));
        }
        layers.push(Gemm::new(batch, output, hidden));
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_product() {
        assert_eq!(Gemm::new(10, 64, 32).macs(), 10 * 64 * 32);
    }

    #[test]
    fn mlp_layers_shape() {
        // Table I NSDF MLP: 32 -> 64 x4 -> 1.
        let layers = Gemm::mlp_layers(1000, 32, 64, 4, 1);
        assert_eq!(layers.len(), 5);
        assert_eq!(layers[0], Gemm::new(1000, 64, 32));
        assert_eq!(layers[3], Gemm::new(1000, 64, 64));
        assert_eq!(layers[4], Gemm::new(1000, 1, 64));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dim_panics() {
        Gemm::new(0, 1, 1);
    }
}
