//! Property-based tests of the mapping search.

use ng_timeloop::arch::PeArray;
use ng_timeloop::best_mapping;
use ng_timeloop::energy::EnergyTable;
use ng_timeloop::mapping::{Dataflow, Mapping};
use ng_timeloop::Gemm;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn best_mapping_never_loses_to_any_candidate(
        m in 1u64..5000,
        n in 1u64..128,
        k in 1u64..128,
        tile_n_log2 in 0u32..7,
        tile_k_log2 in 0u32..7,
    ) {
        let arch = PeArray::nfp_mlp_engine();
        let table = EnergyTable::default();
        let problem = Gemm::new(m, n, k);
        let best = best_mapping(&problem, &arch, &table);
        let candidate = Mapping {
            spatial_n: 1 << tile_n_log2,
            spatial_k: 1 << tile_k_log2,
            dataflow: Dataflow::WeightStationary,
        };
        if candidate.is_valid(&arch) {
            let cost = candidate.evaluate(&problem, &arch);
            prop_assert!(best.cost.cycles <= cost.cycles,
                "search missed a better mapping: {} > {}", best.cost.cycles, cost.cycles);
        }
    }

    #[test]
    fn cycles_lower_bounded_by_work_over_pes(
        m in 1u64..10_000,
        n in 1u64..256,
        k in 1u64..256,
    ) {
        let arch = PeArray::nfp_mlp_engine();
        let problem = Gemm::new(m, n, k);
        let best = best_mapping(&problem, &arch, &EnergyTable::default());
        let ideal = problem.macs().div_ceil(arch.pes());
        prop_assert!(best.cost.cycles >= ideal);
        prop_assert_eq!(best.cost.macs, problem.macs());
    }

    #[test]
    fn utilization_is_a_fraction(
        m in 1u64..1000,
        n in 1u64..64,
        k in 1u64..64,
    ) {
        let arch = PeArray::nfp_mlp_engine();
        let best = best_mapping(&Gemm::new(m, n, k), &arch, &EnergyTable::default());
        prop_assert!(best.cost.utilization > 0.0 && best.cost.utilization <= 1.0 + 1e-9);
        prop_assert!(best.energy_uj > 0.0);
    }
}
