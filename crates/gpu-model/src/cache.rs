//! L2 cache behaviour model for grid-table lookups.
//!
//! Grid lookups are the paper's dominant encoding cost because fine-level
//! tables miss in L2 (Section IV: "the lookup tables for all the
//! resolution levels do not entirely fit on the L2 cache of RTX3090").
//! We model per-level hit rates with a capacity heuristic: a level
//! competing for a cache of size `C` together with other levels keeps a
//! resident fraction proportional to its share, and spatially-coherent
//! rays give neighbouring queries high reuse on coarse levels.

use ng_neural::encoding::GridLayout;

/// Per-level and aggregate hit statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheModel {
    per_level_hit_rate: Vec<f64>,
    aggregate_hit_rate: f64,
}

impl CacheModel {
    /// Estimate hit rates for all levels of `grid` under an L2 of
    /// `l2_bytes`, given `bytes_per_param` storage. Takes the table
    /// *layout* — the model reads shapes, never weights, so callers
    /// need not materialise (and RNG-fill) the actual tables.
    pub fn estimate(grid: &GridLayout, l2_bytes: u64, bytes_per_param: usize) -> Self {
        let f = grid.config().features_per_level;
        let footprints: Vec<u64> = (0..grid.levels().len())
            .map(|l| (grid.levels()[l].entries * f * bytes_per_param) as u64)
            .collect();
        let total: u64 = footprints.iter().sum();
        // Greedy residency: small (coarse, hot) levels become fully
        // resident first — they are touched just as often as large levels
        // but occupy far less space, so any reasonable replacement policy
        // keeps them. Remaining capacity is split evenly among the
        // still-unsatisfied levels.
        let mut order: Vec<usize> = (0..footprints.len()).collect();
        order.sort_by_key(|&i| footprints[i]);
        let mut residency = vec![0.0f64; footprints.len()];
        let mut budget = l2_bytes as f64;
        for (rank, &i) in order.iter().enumerate() {
            let remaining_levels = (order.len() - rank) as f64;
            let alloc = (budget / remaining_levels).min(footprints[i] as f64);
            residency[i] = if footprints[i] == 0 { 1.0 } else { alloc / footprints[i] as f64 };
            budget -= alloc;
        }
        let mut per_level = Vec::with_capacity(footprints.len());
        for (i, &fp) in footprints.iter().enumerate() {
            let hit = if total <= l2_bytes || fp == 0 {
                // Everything resident after warm-up.
                0.99
            } else {
                // Coherent access: even non-resident levels hit on
                // recently-fetched lines shared by neighbouring corners.
                let coherence_floor = 0.35;
                (coherence_floor + (0.99 - coherence_floor) * residency[i]).min(0.99)
            };
            per_level.push(hit);
        }
        // Aggregate weighted by lookup volume (uniform across levels: each
        // query touches every level once).
        let aggregate = per_level.iter().sum::<f64>() / per_level.len().max(1) as f64;
        CacheModel { per_level_hit_rate: per_level, aggregate_hit_rate: aggregate }
    }

    /// Hit rate of a specific level.
    pub fn level_hit_rate(&self, level: usize) -> f64 {
        self.per_level_hit_rate[level]
    }

    /// Volume-weighted aggregate hit rate.
    pub fn aggregate_hit_rate(&self) -> f64 {
        self.aggregate_hit_rate
    }

    /// Fraction of lookups that go to DRAM.
    pub fn miss_rate(&self) -> f64 {
        1.0 - self.aggregate_hit_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ng_neural::encoding::GridConfig;

    #[test]
    fn small_table_hits_everywhere() {
        let grid = GridLayout::new(GridConfig::hashgrid(3, 10, 1.4)).unwrap();
        let model = CacheModel::estimate(&grid, 6 * 1024 * 1024, 2);
        assert!(model.aggregate_hit_rate() > 0.95);
    }

    #[test]
    fn nerf_hashgrid_misses_substantially() {
        // 12 hashed levels x 2 MiB = 24 MiB >> 6 MiB L2.
        let grid = GridLayout::new(GridConfig::hashgrid(3, 19, 1.51572)).unwrap();
        let model = CacheModel::estimate(&grid, 6 * 1024 * 1024, 2);
        assert!(model.miss_rate() > 0.25, "miss rate {}", model.miss_rate());
    }

    #[test]
    fn coarse_levels_hit_better_than_fine() {
        let grid = GridLayout::new(GridConfig::hashgrid(3, 19, 1.51572)).unwrap();
        let model = CacheModel::estimate(&grid, 6 * 1024 * 1024, 2);
        let coarse = model.level_hit_rate(0);
        let fine = model.level_hit_rate(grid.levels().len() - 1);
        assert!(coarse > fine, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn bigger_cache_hits_more() {
        let grid = GridLayout::new(GridConfig::hashgrid(3, 19, 1.51572)).unwrap();
        let small = CacheModel::estimate(&grid, 2 * 1024 * 1024, 2);
        let large = CacheModel::estimate(&grid, 48 * 1024 * 1024, 2);
        assert!(large.aggregate_hit_rate() > small.aggregate_hit_rate());
    }

    #[test]
    fn hit_rates_are_probabilities() {
        let grid = GridLayout::new(GridConfig::densegrid(3, 19)).unwrap();
        let model = CacheModel::estimate(&grid, 6 * 1024 * 1024, 2);
        for l in 0..grid.levels().len() {
            let h = model.level_hit_rate(l);
            assert!((0.0..=1.0).contains(&h));
        }
    }
}
