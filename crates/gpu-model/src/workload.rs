//! Per-frame workload derivation from the Table I configurations.
//!
//! Everything here is counted, not guessed: MAC counts come from the
//! actual MLP topologies, lookup counts from the grid dimensionality and
//! level count, and table footprints from the exact
//! [`ng_neural::encoding::GridLayout`] a real
//! [`ng_neural::encoding::MultiResGrid`](ng_neural::encoding::MultiResGrid)
//! would allocate (shapes only — deriving a workload does not
//! materialise the tables).

use ng_neural::apps::{table1, AppKind, EncodingKind};
use ng_neural::encoding::GridLayout;
use serde::{Deserialize, Serialize};

/// Bytes per stored feature parameter (tiny-cuda-nn stores fp16 tables).
pub const BYTES_PER_PARAM: usize = 2;

/// Average field evaluations ("samples") per pixel for each application,
/// matching the instant-NGP renderers the paper profiles: NeRF marches
/// rays through occupancy-pruned space (~16 live samples), NSDF sphere
/// traces (~6 steps at convergence), GIA is a single lookup, NVR marches
/// a bounded volume (~8 samples).
pub fn samples_per_pixel(app: AppKind) -> u32 {
    match app {
        AppKind::Nerf => 16,
        AppKind::Nsdf => 6,
        AppKind::Gia => 1,
        AppKind::Nvr => 8,
    }
}

/// Operation/byte counts of one rendered frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameWorkload {
    /// Application.
    pub app: AppKind,
    /// Encoding scheme.
    pub encoding: EncodingKind,
    /// Pixels in the frame.
    pub pixels: u64,
    /// Field evaluations (pixels x samples per pixel).
    pub queries: u64,
    /// Grid levels per query.
    pub levels: u32,
    /// Corner lookups per query (levels x 2^d).
    pub lookups_per_query: u32,
    /// Bytes fetched per corner lookup (F features x fp16).
    pub bytes_per_lookup: u32,
    /// Hash evaluations per query (hashed levels x 2^d corners).
    pub hashes_per_query: u32,
    /// Interpolation MACs per query (levels x 2^d x F plus weight products).
    pub interp_macs_per_query: u32,
    /// MLP multiply-accumulates per query (all networks).
    pub mlp_macs_per_query: u64,
    /// MLP activation bytes streamed per query (inputs + hidden + outputs,
    /// fp16).
    pub mlp_act_bytes_per_query: u64,
    /// Total encoding-table footprint in bytes.
    pub table_bytes: u64,
    /// Bytes of encoded features written by the encoding kernel and
    /// re-read by the MLP kernel (the round trip the NFP fusion removes).
    pub intermediate_bytes: u64,
    /// Per-query cost of the remaining kernels (ray gen, sampling,
    /// compositing), in FP32 FLOPs.
    pub rest_flops_per_query: u32,
}

impl FrameWorkload {
    /// Derive the workload of one frame at `pixels` resolution.
    pub fn derive(app: AppKind, encoding: EncodingKind, pixels: u64) -> Self {
        let params = table1(app, encoding);
        let grid = GridLayout::new(params.grid).expect("table1 configs are valid");
        let d = params.grid.dim as u32;
        let corners = 1u32 << d;
        let levels = params.grid.n_levels as u32;
        let f = params.grid.features_per_level as u32;

        let hashed_levels = grid.levels().iter().filter(|l| l.hashed).count() as u32;
        let queries = pixels * samples_per_pixel(app) as u64;

        let mut mlp_macs = params.mlp.macs_per_inference() as u64;
        let mut act_elems = (params.mlp.input_dim
            + params.mlp.hidden_dim * params.mlp.hidden_layers
            + params.mlp.output_dim) as u64;
        if let Some(color) = params.color_mlp {
            mlp_macs += color.macs_per_inference() as u64;
            act_elems += (color.input_dim
                + color.hidden_dim * color.hidden_layers
                + color.output_dim) as u64;
        }

        let enc_out = params.grid.output_dim() as u64;
        FrameWorkload {
            app,
            encoding,
            pixels,
            queries,
            levels,
            lookups_per_query: levels * corners,
            bytes_per_lookup: f * BYTES_PER_PARAM as u32,
            hashes_per_query: hashed_levels * corners,
            // Per level: 2^d weight products (d muls each) + 2^d * F
            // feature MACs.
            interp_macs_per_query: levels * corners * (d + f),
            mlp_macs_per_query: mlp_macs,
            mlp_act_bytes_per_query: act_elems * BYTES_PER_PARAM as u64,
            table_bytes: grid.footprint_bytes(BYTES_PER_PARAM) as u64,
            intermediate_bytes: queries * enc_out * BYTES_PER_PARAM as u64,
            rest_flops_per_query: match app {
                // Ray generation + stratified sampling + compositing.
                AppKind::Nerf => 96,
                AppKind::Nvr => 96,
                // Sphere-tracing loop bookkeeping + shading.
                AppKind::Nsdf => 64,
                // Tone map / output conversion only.
                AppKind::Gia => 24,
            },
        }
    }

    /// Total bytes the encoding kernel requests from the memory hierarchy
    /// (corner feature fetches).
    pub fn encoding_fetch_bytes(&self) -> u64 {
        self.queries * self.lookups_per_query as u64 * self.bytes_per_lookup as u64
    }

    /// Total MLP MACs per frame.
    pub fn mlp_macs(&self) -> u64 {
        self.queries * self.mlp_macs_per_query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nerf_hashgrid_counts() {
        let w = FrameWorkload::derive(AppKind::Nerf, EncodingKind::MultiResHashGrid, 1920 * 1080);
        assert_eq!(w.levels, 16);
        assert_eq!(w.lookups_per_query, 16 * 8);
        assert_eq!(w.bytes_per_lookup, 4); // F=2 x fp16
        assert!(w.hashes_per_query > 0);
        // Density (32->64x3->16) + color (32->64x4->3) MACs.
        let density = 32 * 64 + 64 * 64 * 2 + 64 * 16;
        let color = 32 * 64 + 64 * 64 * 3 + 64 * 3;
        assert_eq!(w.mlp_macs_per_query, (density + color) as u64);
    }

    #[test]
    fn dense_grids_never_hash() {
        for app in AppKind::ALL {
            let w = FrameWorkload::derive(app, EncodingKind::MultiResDenseGrid, 1000);
            assert_eq!(w.hashes_per_query, 0);
            let w = FrameWorkload::derive(app, EncodingKind::LowResDenseGrid, 1000);
            assert_eq!(w.hashes_per_query, 0);
        }
    }

    #[test]
    fn gia_is_2d_single_sample() {
        let w = FrameWorkload::derive(AppKind::Gia, EncodingKind::MultiResHashGrid, 1000);
        assert_eq!(w.queries, 1000);
        assert_eq!(w.lookups_per_query, 16 * 4); // 2^2 corners
    }

    #[test]
    fn nerf_table_exceeds_l2() {
        // The paper's Section IV observation: hashgrid tables for all
        // levels don't fit the 6 MB L2.
        let w = FrameWorkload::derive(AppKind::Nerf, EncodingKind::MultiResHashGrid, 1920 * 1080);
        assert!(w.table_bytes > 6 * 1024 * 1024, "table {} bytes", w.table_bytes);
    }

    #[test]
    fn queries_scale_linearly_with_pixels() {
        let a = FrameWorkload::derive(AppKind::Nvr, EncodingKind::MultiResHashGrid, 1000);
        let b = FrameWorkload::derive(AppKind::Nvr, EncodingKind::MultiResHashGrid, 4000);
        assert_eq!(b.queries, 4 * a.queries);
        assert_eq!(b.encoding_fetch_bytes(), 4 * a.encoding_fetch_bytes());
    }

    #[test]
    fn intermediate_traffic_matches_encoding_width() {
        let w = FrameWorkload::derive(AppKind::Nsdf, EncodingKind::MultiResHashGrid, 100);
        // 32 features x 2 bytes x queries.
        assert_eq!(w.intermediate_bytes, w.queries * 64);
    }
}
