//! Profile outputs: the paper's Fig. 5 kernel breakdown and Table II
//! utilization data.
//!
//! Table II is printed in full in the paper, so it is reproduced here as
//! reference data; alongside it the cost model produces its own estimated
//! utilizations so the two can be compared (that comparison is part of
//! `EXPERIMENTS.md`).

use ng_neural::apps::{AppKind, EncodingKind};
use serde::{Deserialize, Serialize};

use crate::calibrate::{fractions, KernelFractions};
use crate::cost::estimate_frame;
use crate::spec::GpuSpec;
use crate::workload::FrameWorkload;

/// Fig. 5 row: one application's kernel breakdown (percent of cycles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Application.
    pub app: AppKind,
    /// Percent of application cycles in the input-encoding kernel.
    pub encoding_pct: f64,
    /// Percent of application cycles in the MLP kernel.
    pub mlp_pct: f64,
    /// Percent of application cycles in all remaining kernels.
    pub rest_pct: f64,
}

/// The full Fig. 5 panel for one encoding type, plus averages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownFigure {
    /// Encoding type of this panel.
    pub encoding: EncodingKind,
    /// Per-application rows.
    pub rows: Vec<BreakdownRow>,
    /// Cross-application average encoding percentage.
    pub avg_encoding_pct: f64,
    /// Cross-application average MLP percentage.
    pub avg_mlp_pct: f64,
}

/// Compute the Fig. 5 panel for one encoding type.
pub fn breakdown_figure(encoding: EncodingKind) -> BreakdownFigure {
    let rows: Vec<BreakdownRow> = AppKind::ALL
        .iter()
        .map(|&app| {
            let f: KernelFractions = fractions(app, encoding);
            BreakdownRow {
                app,
                encoding_pct: f.encoding * 100.0,
                mlp_pct: f.mlp * 100.0,
                rest_pct: f.rest * 100.0,
            }
        })
        .collect();
    let avg_encoding_pct = rows.iter().map(|r| r.encoding_pct).sum::<f64>() / rows.len() as f64;
    let avg_mlp_pct = rows.iter().map(|r| r.mlp_pct).sum::<f64>() / rows.len() as f64;
    BreakdownFigure { encoding, rows, avg_encoding_pct, avg_mlp_pct }
}

/// One Table II row (per-kernel utilization), as measured by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRow {
    /// Application.
    pub app: AppKind,
    /// Encoding type.
    pub encoding: EncodingKind,
    /// `true` for the encoding kernel, `false` for the MLP kernel.
    pub is_encoding_kernel: bool,
    /// CUDA grid dimensions of the kernel launch.
    pub grid: (u32, u32, u32),
    /// CUDA block dimensions.
    pub block: (u32, u32, u32),
    /// Compute utilization per kernel call (percent).
    pub compute_util_per_call: f64,
    /// Memory utilization per kernel call (percent).
    pub memory_util_per_call: f64,
    /// Number of kernel calls per frame.
    pub kernel_calls: u32,
    /// Compute utilization averaged across the application (percent).
    pub compute_util_avg: f64,
    /// Memory utilization averaged across the application (percent).
    pub memory_util_avg: f64,
}

/// The paper's Table II, verbatim (Nsight Compute measurements on the
/// RTX 3090). Used as reference data for comparison against the model.
pub fn table2_reference() -> Vec<UtilizationRow> {
    use AppKind::*;
    use EncodingKind::*;
    let row = |app,
               encoding,
               is_enc,
               gx: u32,
               gy: u32,
               cu: f64,
               mu: f64,
               calls: u32,
               cua: f64,
               mua: f64| UtilizationRow {
        app,
        encoding,
        is_encoding_kernel: is_enc,
        grid: (gx, gy, 1),
        block: (512, 1, 1),
        compute_util_per_call: cu,
        memory_util_per_call: mu,
        kernel_calls: calls,
        compute_util_avg: cua,
        memory_util_avg: mua,
    };
    vec![
        row(Nerf, MultiResHashGrid, true, 3853, 16, 61.73, 72.85, 59, 40.63, 72.02),
        row(Nerf, MultiResHashGrid, false, 3853, 16, 34.3, 65.2, 118, 33.36, 63.07),
        row(Nsdf, MultiResHashGrid, true, 1823, 16, 73.08, 43.54, 256, 15.97, 30.8),
        row(Nsdf, MultiResHashGrid, false, 1823, 16, 38.13, 71.74, 256, 9.76, 18.28),
        row(Nvr, MultiResHashGrid, true, 403, 16, 52.5, 59.03, 48, 18.67, 30.36),
        row(Nvr, MultiResHashGrid, false, 403, 16, 36.51, 67.01, 48, 11.51, 21.05),
        row(Gia, MultiResHashGrid, true, 4050, 16, 82.87, 62.23, 1, 82.87, 62.23),
        row(Gia, MultiResHashGrid, false, 4050, 16, 39.1, 72.22, 1, 39.1, 72.22),
        row(Nerf, MultiResDenseGrid, true, 3966, 8, 71.39, 91.81, 45, 57.37, 72.31),
        row(Nerf, MultiResDenseGrid, false, 3966, 8, 39.53, 68.4, 90, 34.51, 62.31),
        row(Nsdf, MultiResDenseGrid, true, 1823, 8, 76.1, 48.25, 244, 18.38, 21.28),
        row(Nsdf, MultiResDenseGrid, false, 1823, 8, 41.66, 73.49, 244, 11.06, 19.41),
        row(Nvr, MultiResDenseGrid, true, 403, 8, 57.38, 56.8, 48, 17.41, 22.43),
        row(Nvr, MultiResDenseGrid, false, 403, 8, 39.83, 67.67, 48, 12.17, 20.59),
        row(Gia, MultiResDenseGrid, true, 4050, 8, 78.53, 65.83, 1, 78.53, 65.83),
        row(Gia, MultiResDenseGrid, false, 4050, 8, 42.89, 73.07, 1, 42.89, 73.07),
        row(Nerf, LowResDenseGrid, true, 3980, 2, 53.83, 49.74, 43, 31.17, 59.57),
        row(Nerf, LowResDenseGrid, false, 3980, 2, 39.41, 68.17, 86, 35.5, 64.1),
        row(Nsdf, LowResDenseGrid, true, 1823, 2, 55.88, 45.52, 260, 7.21, 20.07),
        row(Nsdf, LowResDenseGrid, false, 1823, 2, 41.37, 72.98, 260, 10.34, 18.14),
        row(Nvr, LowResDenseGrid, true, 403, 2, 22.71, 69.16, 48, 6.29, 22.71),
        row(Nvr, LowResDenseGrid, false, 403, 2, 39.2, 66.58, 48, 12.11, 20.48),
        row(Gia, LowResDenseGrid, true, 4050, 2, 66.15, 59.12, 1, 66.15, 59.12),
        row(Gia, LowResDenseGrid, false, 4050, 2, 42.87, 73.02, 1, 42.87, 73.02),
    ]
}

/// Model-estimated utilizations for comparison with Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelUtilization {
    /// Application.
    pub app: AppKind,
    /// Encoding type.
    pub encoding: EncodingKind,
    /// Cost-model compute utilization of the encoding kernel (percent).
    pub encoding_compute_pct: f64,
    /// Cost-model memory utilization of the encoding kernel (percent).
    pub encoding_memory_pct: f64,
    /// Cost-model compute utilization of the MLP kernel (percent).
    pub mlp_compute_pct: f64,
    /// Cost-model memory utilization of the MLP kernel (percent).
    pub mlp_memory_pct: f64,
}

/// Estimate kernel utilizations with the cost model at FHD.
pub fn model_utilization(gpu: &GpuSpec, app: AppKind, encoding: EncodingKind) -> ModelUtilization {
    let est = estimate_frame(gpu, &FrameWorkload::derive(app, encoding, 1920 * 1080));
    ModelUtilization {
        app,
        encoding,
        encoding_compute_pct: est.encoding.compute_util * 100.0,
        encoding_memory_pct: est.encoding.memory_util * 100.0,
        mlp_compute_pct: est.mlp.compute_util * 100.0,
        mlp_memory_pct: est.mlp.memory_util * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::rtx3090;

    #[test]
    fn fig5_averages_match_paper() {
        let f = breakdown_figure(EncodingKind::MultiResHashGrid);
        assert!((f.avg_encoding_pct - 40.24).abs() < 0.2, "{}", f.avg_encoding_pct);
        assert!((f.avg_mlp_pct - 32.12).abs() < 0.2, "{}", f.avg_mlp_pct);
        let f = breakdown_figure(EncodingKind::MultiResDenseGrid);
        assert!((f.avg_encoding_pct - 24.63).abs() < 0.2);
        assert!((f.avg_mlp_pct - 35.37).abs() < 0.2);
        let f = breakdown_figure(EncodingKind::LowResDenseGrid);
        assert!((f.avg_encoding_pct - 24.15).abs() < 0.2);
    }

    #[test]
    fn fig5_rows_sum_to_hundred() {
        for enc in EncodingKind::ALL {
            for row in breakdown_figure(enc).rows {
                let sum = row.encoding_pct + row.mlp_pct + row.rest_pct;
                assert!((sum - 100.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn table2_reference_is_complete() {
        let t = table2_reference();
        assert_eq!(t.len(), 24); // 4 apps x 3 encodings x 2 kernels
                                 // Every app/encoding pair appears exactly twice.
        for app in AppKind::ALL {
            for enc in EncodingKind::ALL {
                let n = t.iter().filter(|r| r.app == app && r.encoding == enc).count();
                assert_eq!(n, 2, "{app}/{enc}");
            }
        }
    }

    #[test]
    fn table2_mlp_memory_exceeds_compute_everywhere() {
        // The paper's Section IV claim, checkable in its own data.
        for r in table2_reference().iter().filter(|r| !r.is_encoding_kernel) {
            assert!(
                r.memory_util_per_call > r.compute_util_per_call,
                "{}/{}",
                r.app,
                r.encoding.abbrev()
            );
        }
    }

    #[test]
    fn model_agrees_mlp_is_memory_heavy() {
        let gpu = rtx3090();
        for app in AppKind::ALL {
            let m = model_utilization(&gpu, app, EncodingKind::MultiResHashGrid);
            assert!(m.mlp_memory_pct > m.mlp_compute_pct, "{app}");
        }
    }

    #[test]
    fn gia_hashgrid_kernel_calls_is_one() {
        let t = table2_reference();
        let gia = t
            .iter()
            .find(|r| {
                r.app == AppKind::Gia
                    && r.encoding == EncodingKind::MultiResHashGrid
                    && r.is_encoding_kernel
            })
            .unwrap();
        assert_eq!(gia.kernel_calls, 1);
    }
}
