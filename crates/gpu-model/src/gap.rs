//! The paper's headline motivation numbers: the gap between GPU
//! performance and real-time targets (Section I / III), and the AR/VR
//! power gap.

use ng_neural::apps::{AppKind, EncodingKind};
use serde::{Deserialize, Serialize};

use crate::calibrate::frame_time_ms;
use crate::spec::GpuSpec;

/// A rendering target: resolution and refresh rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderTarget {
    /// Pixels per frame.
    pub pixels: u64,
    /// Frames per second.
    pub fps: f64,
}

impl RenderTarget {
    /// The paper's headline target: 4k Ultra HD at 60 FPS.
    pub const UHD4K_60: RenderTarget = RenderTarget { pixels: 3840 * 2160, fps: 60.0 };

    /// Frame-time budget in milliseconds.
    pub fn budget_ms(&self) -> f64 {
        1000.0 / self.fps
    }
}

/// Performance gap of one application against a target: how many times
/// slower than required the GPU is (`<= 1` means the target is met).
pub fn performance_gap(app: AppKind, encoding: EncodingKind, target: RenderTarget) -> f64 {
    frame_time_ms(app, encoding, target.pixels) / target.budget_ms()
}

/// Whether the GPU meets the target for this application.
pub fn meets_target(app: AppKind, encoding: EncodingKind, target: RenderTarget) -> bool {
    performance_gap(app, encoding, target) <= 1.0
}

/// AR/VR power-gap estimate in orders of magnitude (paper Section I:
/// "2-4 orders of magnitude between the desired performance and the
/// required system power").
///
/// An untethered AR/VR headset budgets ~1 W for rendering; meeting the
/// performance target by scaling the GPU would require
/// `gap x TDP` watts. The returned value is `log10` of the ratio of that
/// requirement to the headset budget.
pub fn ar_vr_power_gap_oom(
    gpu: &GpuSpec,
    app: AppKind,
    encoding: EncodingKind,
    target: RenderTarget,
    headset_budget_watts: f64,
) -> f64 {
    let gap = performance_gap(app, encoding, target).max(1.0);
    let required_watts = gap * gpu.tdp_watts;
    (required_watts / headset_budget_watts).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::rtx3090;

    #[test]
    fn headline_gaps_match_paper() {
        let t = RenderTarget::UHD4K_60;
        let hg = EncodingKind::MultiResHashGrid;
        assert!((performance_gap(AppKind::Nerf, hg, t) - 55.50).abs() < 0.1);
        assert!((performance_gap(AppKind::Nsdf, hg, t) - 6.68).abs() < 0.05);
        assert!((performance_gap(AppKind::Nvr, hg, t) - 1.51).abs() < 0.02);
        assert!(meets_target(AppKind::Gia, hg, t));
        assert!(!meets_target(AppKind::Nerf, hg, t));
    }

    #[test]
    fn gap_range_spans_paper_interval() {
        // Paper: "a gap of ~1.51x to 55.50x".
        let t = RenderTarget::UHD4K_60;
        let hg = EncodingKind::MultiResHashGrid;
        let gaps: Vec<f64> = [AppKind::Nerf, AppKind::Nsdf, AppKind::Nvr]
            .iter()
            .map(|&a| performance_gap(a, hg, t))
            .collect();
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        let min = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 55.50).abs() < 0.1);
        assert!((min - 1.51).abs() < 0.02);
    }

    #[test]
    fn ar_vr_gap_is_two_to_four_oom() {
        // Paper Section I: 2-4 orders of magnitude for AR/VR.
        let gpu = rtx3090();
        let t = RenderTarget::UHD4K_60;
        for app in AppKind::ALL {
            let oom = ar_vr_power_gap_oom(&gpu, app, EncodingKind::MultiResHashGrid, t, 1.0);
            assert!((2.0..=4.5).contains(&oom), "{app}: {oom} OOM");
        }
    }

    #[test]
    fn higher_fps_widens_gap() {
        let t60 = RenderTarget { pixels: 3840 * 2160, fps: 60.0 };
        let t120 = RenderTarget { pixels: 3840 * 2160, fps: 120.0 };
        let hg = EncodingKind::MultiResHashGrid;
        assert!(performance_gap(AppKind::Nsdf, hg, t120) > performance_gap(AppKind::Nsdf, hg, t60));
    }
}
