//! Operation-level breakdown inside the input-encoding kernel (paper
//! Fig. 8).
//!
//! The paper labels the five most expensive operations: grid lookups,
//! the hash function, the (integer) modulo, interpolation, and the
//! position-to-fraction conversion. Cycle weights are derived from the
//! workload counts and per-operation latency estimates, with memory
//! stalls ("long scoreboard" waits in the paper's analysis) attributed to
//! the operation that issues the load — exactly how Nsight attributes
//! them.

use ng_neural::apps::{table1, AppKind, EncodingKind};
use ng_neural::encoding::GridLayout;
use serde::{Deserialize, Serialize};

use crate::cache::CacheModel;
use crate::spec::GpuSpec;
use crate::workload::{FrameWorkload, BYTES_PER_PARAM};

/// The operations the paper's Fig. 8 labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncodingOp {
    /// Feature-table reads (including the memory stalls they cause).
    GridLookup,
    /// The spatial hash of Eq. 1 (zero for dense/tiled grids).
    HashFunction,
    /// The integer modulo reducing indices into the table.
    Modulo,
    /// d-linear interpolation of corner features.
    Interpolation,
    /// Converting normalized positions to cell base + fraction.
    PosFract,
    /// Everything else (loop bookkeeping, output writes).
    Other,
}

impl EncodingOp {
    /// All tracked operations.
    pub const ALL: [EncodingOp; 6] = [
        EncodingOp::GridLookup,
        EncodingOp::HashFunction,
        EncodingOp::Modulo,
        EncodingOp::Interpolation,
        EncodingOp::PosFract,
        EncodingOp::Other,
    ];

    /// Display name as in Fig. 8.
    pub fn name(self) -> &'static str {
        match self {
            EncodingOp::GridLookup => "grid lookups",
            EncodingOp::HashFunction => "hash function",
            EncodingOp::Modulo => "modulo",
            EncodingOp::Interpolation => "interpolation",
            EncodingOp::PosFract => "pos_fract",
            EncodingOp::Other => "other",
        }
    }
}

/// Cycle share of each operation within the encoding kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpBreakdown {
    /// Encoding type this breakdown describes.
    pub encoding: EncodingKind,
    /// `(operation, percent of encoding-kernel cycles)`, descending.
    pub shares: Vec<(EncodingOp, f64)>,
}

impl OpBreakdown {
    /// Percentage share of a given op (0 if absent).
    pub fn share(&self, op: EncodingOp) -> f64 {
        self.shares.iter().find(|(o, _)| *o == op).map(|(_, s)| *s).unwrap_or(0.0)
    }

    /// The top-5 operations, as plotted in Fig. 8.
    pub fn top5(&self) -> Vec<(EncodingOp, f64)> {
        self.shares.iter().take(5).copied().collect()
    }
}

/// Relative per-occurrence cycle weights (issue + exposed latency).
const LOOKUP_HIT_CYCLES: f64 = 30.0; // L2 round trip amortised over warp
const LOOKUP_MISS_CYCLES: f64 = 220.0; // DRAM long-scoreboard stall
const HASH_CYCLES: f64 = 9.0; // d multiplies + xors
const HASH_STALL_CYCLES: f64 = 14.0; // issue stalls waiting on loads (paper Sec. IV)
const MODULO_CYCLES: f64 = 22.0; // general integer modulo path
const INTERP_MAC_CYCLES: f64 = 1.0;
const POS_FRACT_CYCLES: f64 = 6.0; // scale, floor, subtract per dim
const OTHER_CYCLES_PER_QUERY: f64 = 24.0;

/// Derive the Fig. 8 breakdown for one app/encoding pair averaged over a
/// frame.
pub fn op_breakdown(gpu: &GpuSpec, app: AppKind, encoding: EncodingKind) -> OpBreakdown {
    let w = FrameWorkload::derive(app, encoding, 1920 * 1080);
    let grid = GridLayout::new(table1(app, encoding).grid).expect("valid");
    let cache = CacheModel::estimate(&grid, gpu.l2_bytes, BYTES_PER_PARAM);

    let q = w.queries as f64;
    let lookups = q * w.lookups_per_query as f64;
    let lookup_cycles = lookups
        * (cache.aggregate_hit_rate() * LOOKUP_HIT_CYCLES + cache.miss_rate() * LOOKUP_MISS_CYCLES);
    let hash_cycles = q * w.hashes_per_query as f64 * (HASH_CYCLES + HASH_STALL_CYCLES);
    // Every lookup's index is reduced modulo the table size (the paper
    // notes the compiler emits the general integer modulo even though the
    // size is a power of two) — on hashed *and* wrapped tiled levels; for
    // purely dense levels there is still a bounds reduction, modelled at
    // half cost.
    let d = table1(app, encoding).grid.dim as f64;
    let modulo_cycles = lookups * MODULO_CYCLES * 0.75;
    let interp_cycles = q * w.interp_macs_per_query as f64 * INTERP_MAC_CYCLES;
    let pos_fract_cycles = q * w.levels as f64 * d * POS_FRACT_CYCLES;
    let other_cycles = q * OTHER_CYCLES_PER_QUERY;

    let total = lookup_cycles
        + hash_cycles
        + modulo_cycles
        + interp_cycles
        + pos_fract_cycles
        + other_cycles;
    let mut shares = vec![
        (EncodingOp::GridLookup, 100.0 * lookup_cycles / total),
        (EncodingOp::HashFunction, 100.0 * hash_cycles / total),
        (EncodingOp::Modulo, 100.0 * modulo_cycles / total),
        (EncodingOp::Interpolation, 100.0 * interp_cycles / total),
        (EncodingOp::PosFract, 100.0 * pos_fract_cycles / total),
        (EncodingOp::Other, 100.0 * other_cycles / total),
    ];
    shares.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    OpBreakdown { encoding, shares }
}

/// The Fig. 8 panel: breakdown averaged across the four applications.
pub fn op_breakdown_average(gpu: &GpuSpec, encoding: EncodingKind) -> OpBreakdown {
    let mut acc: Vec<(EncodingOp, f64)> = EncodingOp::ALL.iter().map(|&op| (op, 0.0)).collect();
    for app in AppKind::ALL {
        let b = op_breakdown(gpu, app, encoding);
        for (op, share) in &mut acc {
            *share += b.share(*op) / 4.0;
        }
    }
    acc.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    OpBreakdown { encoding, shares: acc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::rtx3090;

    #[test]
    fn shares_sum_to_hundred() {
        let gpu = rtx3090();
        for enc in EncodingKind::ALL {
            let b = op_breakdown_average(&gpu, enc);
            let sum: f64 = b.shares.iter().map(|(_, s)| s).sum();
            assert!((sum - 100.0).abs() < 1e-6, "{enc}: {sum}");
        }
    }

    #[test]
    fn grid_lookups_dominate_every_encoding() {
        // Paper: "grid lookups take significant amount of cycles across
        // all three input encoding types" — they are the top op.
        let gpu = rtx3090();
        for enc in EncodingKind::ALL {
            let b = op_breakdown_average(&gpu, enc);
            assert_eq!(b.shares[0].0, EncodingOp::GridLookup, "{enc}");
            assert!(b.shares[0].1 > 25.0);
        }
    }

    #[test]
    fn hash_is_zero_for_dense_grids() {
        // Paper: "the breakdown shows zero cycles for the hash function"
        // for both densegrid types.
        let gpu = rtx3090();
        for enc in [EncodingKind::MultiResDenseGrid, EncodingKind::LowResDenseGrid] {
            let b = op_breakdown_average(&gpu, enc);
            assert_eq!(b.share(EncodingOp::HashFunction), 0.0, "{enc}");
        }
    }

    #[test]
    fn hash_is_significant_for_hashgrid() {
        let gpu = rtx3090();
        let b = op_breakdown_average(&gpu, EncodingKind::MultiResHashGrid);
        assert!(b.share(EncodingOp::HashFunction) > 3.0);
    }

    #[test]
    fn modulo_is_expensive_for_all_encodings() {
        // Paper Section IV: "the integer mapped modulo operation is one of
        // the most expensive operations for all three input encoding
        // types".
        let gpu = rtx3090();
        for enc in EncodingKind::ALL {
            let b = op_breakdown_average(&gpu, enc);
            let rank = b.shares.iter().position(|(o, _)| *o == EncodingOp::Modulo).unwrap();
            assert!(rank <= 2, "{enc}: modulo ranked {rank}");
            assert!(b.share(EncodingOp::Modulo) > 8.0);
        }
    }

    #[test]
    fn top5_has_five_entries() {
        let gpu = rtx3090();
        let b = op_breakdown_average(&gpu, EncodingKind::MultiResHashGrid);
        assert_eq!(b.top5().len(), 5);
    }
}
