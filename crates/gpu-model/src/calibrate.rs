//! The calibrated GPU profile layer: every number the paper publishes
//! about the GPU baseline, in one place.
//!
//! The paper's emulator (Fig. 11) takes the *measured* kernel-level
//! breakdown of each application as an input. We cannot re-measure an
//! RTX 3090, so this module pins the breakdown to the published data:
//!
//! * FHD frame times for multiresolution hashgrid (Section III):
//!   NeRF 231 ms, NSDF 27.87 ms, GIA 2.12 ms, NVR 6.32 ms.
//! * Cross-application average kernel fractions (Section III / Fig. 5):
//!   hashgrid 40.24 % encoding + 32.12 % MLP, densegrid 24.63 % + 35.37 %,
//!   low-res densegrid 24.15 % + 35.37 %.
//! * The per-application split of those averages is not printed in the
//!   paper (it is only drawn in Fig. 5), so the per-app fractions below
//!   are **derived**: they are the unique assignment consistent with the
//!   published averages *and* with every NGPC speedup the paper reports
//!   (Fig. 12 averages, the plateau points, and the 58.36x "up to"
//!   number) under the paper's own Amdahl analysis with its 9.94x fused
//!   rest-kernel speedup. See EXPERIMENTS.md for the derivation.
//!
//! Frame times for the two densegrid encodings are not published; they
//! are derived by scaling the hashgrid anchor with the first-principles
//! cost-model ratio ([`crate::cost`]).

use std::sync::OnceLock;

use ng_neural::apps::{AppKind, EncodingKind};
use serde::{Deserialize, Serialize};

use crate::cost::estimate_frame;
use crate::spec::rtx3090;
use crate::workload::FrameWorkload;

/// Pixels in the paper's profiling resolution (1920 x 1080).
pub const FHD_PIXELS: u64 = 1920 * 1080;

/// Published FHD frame times (ms) for multiresolution hashgrid.
pub const FHD_HASHGRID_MS: [(AppKind, f64); 4] =
    [(AppKind::Nerf, 231.0), (AppKind::Nsdf, 27.87), (AppKind::Gia, 2.12), (AppKind::Nvr, 6.32)];

/// Kernel time fractions of one application/encoding pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelFractions {
    /// Fraction of frame time in the input-encoding kernel.
    pub encoding: f64,
    /// Fraction of frame time in the MLP kernel.
    pub mlp: f64,
    /// Fraction of frame time in all remaining kernels.
    pub rest: f64,
}

impl KernelFractions {
    /// Encoding + MLP fraction (the NGPC-accelerated share).
    pub fn accelerated(&self) -> f64 {
        self.encoding + self.mlp
    }
}

/// Per-application kernel fractions, derived as documented in the module
/// docs. Order: NeRF, NSDF, GIA, NVR.
fn fraction_table(encoding: EncodingKind) -> [(AppKind, KernelFractions); 4] {
    match encoding {
        EncodingKind::MultiResHashGrid => [
            (AppKind::Nerf, KernelFractions { encoding: 0.4345, mlp: 0.3005, rest: 0.2650 }),
            (AppKind::Nsdf, KernelFractions { encoding: 0.3751, mlp: 0.3299, rest: 0.2950 }),
            (AppKind::Gia, KernelFractions { encoding: 0.5000, mlp: 0.3297, rest: 0.1703 }),
            (AppKind::Nvr, KernelFractions { encoding: 0.3000, mlp: 0.3251, rest: 0.3749 }),
        ],
        EncodingKind::MultiResDenseGrid => [
            (AppKind::Nerf, KernelFractions { encoding: 0.2600, mlp: 0.3528, rest: 0.3872 }),
            (AppKind::Nsdf, KernelFractions { encoding: 0.2300, mlp: 0.3500, rest: 0.4200 }),
            (AppKind::Gia, KernelFractions { encoding: 0.3000, mlp: 0.4272, rest: 0.2728 }),
            (AppKind::Nvr, KernelFractions { encoding: 0.1952, mlp: 0.2848, rest: 0.5200 }),
        ],
        EncodingKind::LowResDenseGrid => [
            (AppKind::Nerf, KernelFractions { encoding: 0.2400, mlp: 0.3500, rest: 0.4100 }),
            (AppKind::Nsdf, KernelFractions { encoding: 0.2200, mlp: 0.3700, rest: 0.4100 }),
            (AppKind::Gia, KernelFractions { encoding: 0.3100, mlp: 0.4284, rest: 0.2616 }),
            (AppKind::Nvr, KernelFractions { encoding: 0.1960, mlp: 0.2840, rest: 0.5200 }),
        ],
    }
}

/// Kernel fractions for one application/encoding pair.
pub fn fractions(app: AppKind, encoding: EncodingKind) -> KernelFractions {
    fraction_table(encoding)
        .iter()
        .find(|(a, _)| *a == app)
        .map(|(_, f)| *f)
        .expect("all apps present")
}

fn hashgrid_fhd_ms(app: AppKind) -> f64 {
    FHD_HASHGRID_MS.iter().find(|(a, _)| *a == app).map(|(_, t)| *t).expect("all apps present")
}

/// Compute the ratio table in-process (the ~1 s cold path: every
/// Table I grid is instantiated and run through the roofline model).
fn compute_ratio_table() -> Vec<((AppKind, EncodingKind), f64)> {
    let gpu = rtx3090();
    let mut out = Vec::new();
    for a in AppKind::ALL {
        let base = estimate_frame(
            &gpu,
            &FrameWorkload::derive(a, EncodingKind::MultiResHashGrid, FHD_PIXELS),
        )
        .total_ms();
        for e in EncodingKind::ALL {
            let t = estimate_frame(&gpu, &FrameWorkload::derive(a, e, FHD_PIXELS)).total_ms();
            out.push(((a, e), t / base));
        }
    }
    out
}

/// Cost-model frame-time ratio of `encoding` relative to hashgrid, per
/// app, memoised because instantiating the NeRF hash tables is not free.
/// The table is additionally persisted through [`crate::store`] (keyed
/// by a fingerprint of every calibration input), so only the first
/// process on a machine — or the first after a model change — pays the
/// in-process computation; everyone else reads twelve floats back
/// bit-exactly.
fn model_ratio(app: AppKind, encoding: EncodingKind) -> f64 {
    static CACHE: OnceLock<Vec<((AppKind, EncodingKind), f64)>> = OnceLock::new();
    let table = CACHE.get_or_init(|| {
        // The span lands on whichever thread first needs a ratio —
        // usually a pool worker mid-sweep, so it shows up as its own
        // root in a trace while the charged wall time stays inside the
        // main thread's `evaluate` span (which is waiting on this).
        let _span = ng_obs::span("calib-ratios");
        match crate::store::default_dir() {
            Some(dir) => {
                let fp = crate::store::calibration_fingerprint();
                match crate::store::load_ratios(&dir, fp) {
                    Some(out) => {
                        ng_obs::counter("calib.store_hits").incr();
                        out
                    }
                    None => {
                        ng_obs::counter("calib.computes").incr();
                        let out = compute_ratio_table();
                        // Persistence failure (read-only dir, ...)
                        // downgrades to in-process-only memoisation,
                        // never to an error.
                        let _ = crate::store::save_ratios(&dir, fp, &out);
                        out
                    }
                }
            }
            None => {
                ng_obs::counter("calib.computes").incr();
                compute_ratio_table()
            }
        }
    });
    table
        .iter()
        .find(|((a, e), _)| *a == app && *e == encoding)
        .map(|(_, r)| *r)
        .expect("all pairs present")
}

/// Calibrated GPU frame time in milliseconds for `pixels` rendered pixels.
///
/// Hashgrid times are anchored to the published FHD measurements and
/// scale linearly with pixel count (which exactly reproduces the paper's
/// published 4k@60 gaps). Densegrid times apply the cost-model ratio.
pub fn frame_time_ms(app: AppKind, encoding: EncodingKind, pixels: u64) -> f64 {
    let base = hashgrid_fhd_ms(app) * model_ratio(app, encoding);
    base * pixels as f64 / FHD_PIXELS as f64
}

/// Absolute per-kernel times of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelBreakdown {
    /// Application.
    pub app: AppKind,
    /// Encoding scheme.
    pub encoding: EncodingKind,
    /// Frame pixel count.
    pub pixels: u64,
    /// Input-encoding kernel time (ms).
    pub encoding_ms: f64,
    /// MLP kernel time (ms).
    pub mlp_ms: f64,
    /// Remaining kernel time (ms).
    pub rest_ms: f64,
}

impl KernelBreakdown {
    /// Total frame time (ms).
    pub fn total_ms(&self) -> f64 {
        self.encoding_ms + self.mlp_ms + self.rest_ms
    }

    /// The fractions this breakdown was built from.
    pub fn fractions(&self) -> KernelFractions {
        fractions(self.app, self.encoding)
    }
}

/// The calibrated kernel breakdown of one frame — the emulator's input
/// (paper Fig. 11, "kernel level breakdown of the performance of the
/// neural graphics application on the GPU").
pub fn kernel_breakdown(app: AppKind, encoding: EncodingKind, pixels: u64) -> KernelBreakdown {
    let total = frame_time_ms(app, encoding, pixels);
    let f = fractions(app, encoding);
    KernelBreakdown {
        app,
        encoding,
        pixels,
        encoding_ms: total * f.encoding,
        mlp_ms: total * f.mlp,
        rest_ms: total * f.rest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        for enc in EncodingKind::ALL {
            for app in AppKind::ALL {
                let f = fractions(app, enc);
                assert!(
                    (f.encoding + f.mlp + f.rest - 1.0).abs() < 1e-9,
                    "{app}/{enc} sums to {}",
                    f.encoding + f.mlp + f.rest
                );
            }
        }
    }

    #[test]
    fn average_fractions_match_paper_section3() {
        // hashgrid: 40.24% encoding, 32.12% MLP (72.37% combined);
        // densegrid: 24.63% / 35.37% (60.0%); low-res: 24.15% enc.
        let avg = |enc: EncodingKind| {
            let mut e = 0.0;
            let mut m = 0.0;
            for app in AppKind::ALL {
                let f = fractions(app, enc);
                e += f.encoding / 4.0;
                m += f.mlp / 4.0;
            }
            (e, m)
        };
        let (e, m) = avg(EncodingKind::MultiResHashGrid);
        assert!((e - 0.4024).abs() < 0.002, "hashgrid encoding avg {e}");
        assert!((m - 0.3212).abs() < 0.002, "hashgrid mlp avg {m}");
        let (e, m) = avg(EncodingKind::MultiResDenseGrid);
        assert!((e - 0.2463).abs() < 0.002, "densegrid encoding avg {e}");
        assert!((m - 0.3537).abs() < 0.002, "densegrid mlp avg {m}");
        let (e, _) = avg(EncodingKind::LowResDenseGrid);
        assert!((e - 0.2415).abs() < 0.002, "low-res encoding avg {e}");
    }

    #[test]
    fn fhd_hashgrid_times_match_paper() {
        assert_eq!(frame_time_ms(AppKind::Nerf, EncodingKind::MultiResHashGrid, FHD_PIXELS), 231.0);
        assert_eq!(frame_time_ms(AppKind::Nsdf, EncodingKind::MultiResHashGrid, FHD_PIXELS), 27.87);
    }

    #[test]
    fn four_k_at_sixty_gaps_match_paper() {
        // 4k = 3840x2160, 60 FPS budget = 16.667 ms. Paper: gaps of
        // 55.50x (NeRF), 6.68x (NSDF), 1.51x (NVR); GIA meets target.
        let budget = 1000.0 / 60.0;
        let gap = |app| frame_time_ms(app, EncodingKind::MultiResHashGrid, 3840 * 2160) / budget;
        assert!((gap(AppKind::Nerf) - 55.50).abs() < 0.1, "{}", gap(AppKind::Nerf));
        assert!((gap(AppKind::Nsdf) - 6.68).abs() < 0.05, "{}", gap(AppKind::Nsdf));
        assert!((gap(AppKind::Nvr) - 1.51).abs() < 0.02, "{}", gap(AppKind::Nvr));
        assert!(gap(AppKind::Gia) < 1.0, "GIA must meet 4k@60");
    }

    #[test]
    fn densegrid_frames_are_cheaper_than_hashgrid() {
        for app in AppKind::ALL {
            let hg = frame_time_ms(app, EncodingKind::MultiResHashGrid, FHD_PIXELS);
            let dg = frame_time_ms(app, EncodingKind::MultiResDenseGrid, FHD_PIXELS);
            assert!(dg < hg, "{app}: densegrid {dg} >= hashgrid {hg}");
        }
    }

    #[test]
    fn breakdown_reassembles_total() {
        for enc in EncodingKind::ALL {
            for app in AppKind::ALL {
                let b = kernel_breakdown(app, enc, FHD_PIXELS);
                let total = frame_time_ms(app, enc, FHD_PIXELS);
                assert!((b.total_ms() - total).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn persisted_ratio_table_round_trips_the_real_computation() {
        // The disk path must be indistinguishable from the in-process
        // path: the real computed table, saved and re-loaded, is
        // bit-identical.
        let table = compute_ratio_table();
        let dir =
            std::env::temp_dir().join(format!("ngpc-calibrate-roundtrip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fp = crate::store::calibration_fingerprint();
        crate::store::save_ratios(&dir, fp, &table).unwrap();
        assert_eq!(crate::store::load_ratios(&dir, fp).unwrap(), table);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn linear_pixel_scaling() {
        let t1 = frame_time_ms(AppKind::Nvr, EncodingKind::LowResDenseGrid, 1_000_000);
        let t2 = frame_time_ms(AppKind::Nvr, EncodingKind::LowResDenseGrid, 2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
