//! Roofline timing model for the three kernel classes.
//!
//! This is the first-principles layer: given a [`FrameWorkload`] and a
//! [`GpuSpec`], estimate per-kernel times as
//! `max(compute_time / eff_c, memory_time / eff_m) + launch overhead`.
//! Efficiency factors encode well-known GPU realities (gather-heavy
//! kernels run far below peak bandwidth; tiny MLP batches underutilise
//! tensor cores). Tests pin the qualitative findings of the paper
//! (Section IV): encoding is memory-bound, MLP memory utilisation exceeds
//! its compute utilisation, NeRF is by far the most expensive app.

use ng_neural::apps::table1;
use serde::{Deserialize, Serialize};

use crate::cache::CacheModel;
use crate::spec::GpuSpec;
use crate::workload::{FrameWorkload, BYTES_PER_PARAM};
use ng_neural::encoding::GridLayout;

/// A kernel-time estimate with its limiting resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelEstimate {
    /// Estimated execution time in milliseconds.
    pub time_ms: f64,
    /// Estimated fraction of peak compute used.
    pub compute_util: f64,
    /// Estimated fraction of peak DRAM bandwidth used.
    pub memory_util: f64,
}

impl KernelEstimate {
    /// Whether the kernel is memory-bound under this estimate.
    pub fn memory_bound(&self) -> bool {
        self.memory_util >= self.compute_util
    }
}

/// Model-level timing for one frame: the three kernel classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameEstimate {
    /// Input-encoding kernel.
    pub encoding: KernelEstimate,
    /// MLP kernel(s).
    pub mlp: KernelEstimate,
    /// All remaining kernels (ray gen, sampling, compositing).
    pub rest: KernelEstimate,
}

impl FrameEstimate {
    /// Total frame time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.encoding.time_ms + self.mlp.time_ms + self.rest.time_ms
    }

    /// Fraction of the frame spent in the encoding kernel.
    pub fn encoding_fraction(&self) -> f64 {
        self.encoding.time_ms / self.total_ms()
    }

    /// Fraction of the frame spent in the MLP kernel.
    pub fn mlp_fraction(&self) -> f64 {
        self.mlp.time_ms / self.total_ms()
    }
}

/// Achievable fraction of peak DRAM bandwidth for gather (random-access)
/// traffic. Scattered 4-byte reads drag entire 32-byte sectors through
/// the hierarchy.
const GATHER_BW_EFFICIENCY: f64 = 0.30;
/// DRAM sector size: every miss fetches at least this many bytes.
const SECTOR_BYTES: f64 = 32.0;
/// Achievable fraction of peak tensor throughput for 64-wide MLPs (the
/// paper's Section IV: tiny layers leave most tensor-core capacity idle).
const SMALL_MLP_COMPUTE_EFFICIENCY: f64 = 0.35;
/// Achievable fraction of peak for the streaming rest-kernels.
const STREAM_EFFICIENCY: f64 = 0.55;
/// Integer-pipe cost of one spatial hash + modulo, in FP32-equivalent ops.
const HASH_COST_OPS: f64 = 12.0;

/// Estimate all three kernel classes of one frame.
pub fn estimate_frame(gpu: &GpuSpec, workload: &FrameWorkload) -> FrameEstimate {
    let grid = GridLayout::new(table1(workload.app, workload.encoding).grid).expect("valid");
    let cache = CacheModel::estimate(&grid, gpu.l2_bytes, BYTES_PER_PARAM);

    // --- Encoding kernel ---
    let lookups = workload.queries as f64 * workload.lookups_per_query as f64;
    // Each miss transfers a full sector from DRAM.
    let dram_bytes = lookups * cache.miss_rate() * SECTOR_BYTES;
    let mem_time_s = dram_bytes / (gpu.dram_bw_gbps * 1e9 * GATHER_BW_EFFICIENCY);
    let hash_ops = workload.queries as f64 * workload.hashes_per_query as f64 * HASH_COST_OPS;
    let interp_ops = workload.queries as f64 * workload.interp_macs_per_query as f64 * 2.0;
    let addr_ops = lookups * 6.0; // scale, floor, index arithmetic
    let compute_time_s = (hash_ops + interp_ops + addr_ops) / (gpu.fp32_tflops() * 1e12 * 0.5);
    let enc_time_s = mem_time_s.max(compute_time_s) + gpu.launch_overhead_us * 1e-6;
    let encoding = KernelEstimate {
        time_ms: enc_time_s * 1e3,
        compute_util: (compute_time_s / enc_time_s).min(1.0),
        memory_util: (mem_time_s / enc_time_s).min(1.0),
    };

    // --- MLP kernel ---
    let macs = workload.mlp_macs() as f64;
    let mlp_compute_s =
        macs * 2.0 / (gpu.fp16_tensor_tflops() * 1e12 * SMALL_MLP_COMPUTE_EFFICIENCY);
    // Traffic: encoded inputs re-read from DRAM plus per-layer activation
    // round trips. The paper's Table II measurements show the MLP kernel
    // memory-util above compute-util on every configuration — at 64-wide
    // layers the measured behaviour matches activations travelling
    // through the memory hierarchy rather than staying in registers.
    let mlp_bytes = workload.intermediate_bytes as f64
        + workload.queries as f64 * workload.mlp_act_bytes_per_query as f64;
    let mlp_mem_s = mlp_bytes / (gpu.dram_bw_gbps * 1e9 * STREAM_EFFICIENCY);
    let mlp_time_s = mlp_compute_s.max(mlp_mem_s) + gpu.launch_overhead_us * 1e-6;
    let mlp = KernelEstimate {
        time_ms: mlp_time_s * 1e3,
        compute_util: (mlp_compute_s / mlp_time_s).min(1.0),
        memory_util: (mlp_mem_s / mlp_time_s).min(1.0),
    };

    // --- Rest kernels ---
    let rest_ops = workload.queries as f64 * workload.rest_flops_per_query as f64;
    let rest_compute_s = rest_ops / (gpu.fp32_tflops() * 1e12 * STREAM_EFFICIENCY);
    // Ray/sample state streamed per query (positions, dirs, accumulators).
    let rest_bytes = workload.queries as f64 * 48.0;
    let rest_mem_s = rest_bytes / (gpu.dram_bw_gbps * 1e9 * STREAM_EFFICIENCY);
    let rest_time_s = rest_compute_s.max(rest_mem_s) + 3.0 * gpu.launch_overhead_us * 1e-6;
    let rest = KernelEstimate {
        time_ms: rest_time_s * 1e3,
        compute_util: (rest_compute_s / rest_time_s).min(1.0),
        memory_util: (rest_mem_s / rest_time_s).min(1.0),
    };

    FrameEstimate { encoding, mlp, rest }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::rtx3090;
    use ng_neural::apps::{AppKind, EncodingKind};

    const FHD: u64 = 1920 * 1080;

    fn frame(app: AppKind, enc: EncodingKind) -> FrameEstimate {
        estimate_frame(&rtx3090(), &FrameWorkload::derive(app, enc, FHD))
    }

    #[test]
    fn encoding_is_memory_bound_for_hashgrid_nerf() {
        // Paper Section IV / Table II: encoding memory util > compute util.
        let est = frame(AppKind::Nerf, EncodingKind::MultiResHashGrid);
        assert!(est.encoding.memory_bound());
    }

    #[test]
    fn mlp_memory_util_exceeds_compute_util() {
        // The paper's key MLP observation: tiny MLPs are traffic-limited.
        for app in AppKind::ALL {
            let est = frame(app, EncodingKind::MultiResHashGrid);
            assert!(
                est.mlp.memory_util > est.mlp.compute_util,
                "{app}: mem {} vs comp {}",
                est.mlp.memory_util,
                est.mlp.compute_util
            );
        }
    }

    #[test]
    fn nerf_is_most_expensive_app() {
        let nerf = frame(AppKind::Nerf, EncodingKind::MultiResHashGrid).total_ms();
        for app in [AppKind::Nsdf, AppKind::Gia, AppKind::Nvr] {
            let other = frame(app, EncodingKind::MultiResHashGrid).total_ms();
            assert!(nerf > other, "{app} {other} >= NeRF {nerf}");
        }
    }

    #[test]
    fn gia_is_cheapest_volumetric_aside() {
        let gia = frame(AppKind::Gia, EncodingKind::MultiResHashGrid).total_ms();
        let nvr = frame(AppKind::Nvr, EncodingKind::MultiResHashGrid).total_ms();
        assert!(gia < nvr);
    }

    #[test]
    fn encoding_plus_mlp_dominate_hashgrid() {
        // Paper: 72.37% on average for hashgrid. The pure model should put
        // the combination clearly above half.
        let mut total_frac = 0.0;
        for app in AppKind::ALL {
            let est = frame(app, EncodingKind::MultiResHashGrid);
            total_frac += est.encoding_fraction() + est.mlp_fraction();
        }
        let avg = total_frac / 4.0;
        assert!(avg > 0.5, "avg enc+mlp fraction {avg}");
    }

    #[test]
    fn hashgrid_encoding_costs_more_than_densegrid() {
        // 16 levels with hashing and L2 misses vs 8 dense levels.
        let hg = frame(AppKind::Nerf, EncodingKind::MultiResHashGrid).encoding.time_ms;
        let dg = frame(AppKind::Nerf, EncodingKind::MultiResDenseGrid).encoding.time_ms;
        assert!(hg > dg, "hashgrid {hg} <= densegrid {dg}");
    }

    #[test]
    fn times_scale_with_resolution() {
        let w1 = FrameWorkload::derive(AppKind::Nvr, EncodingKind::MultiResHashGrid, FHD);
        let w4 = FrameWorkload::derive(AppKind::Nvr, EncodingKind::MultiResHashGrid, 4 * FHD);
        let t1 = estimate_frame(&rtx3090(), &w1).total_ms();
        let t4 = estimate_frame(&rtx3090(), &w4).total_ms();
        assert!(t4 > 3.5 * t1 && t4 < 4.5 * t1, "t1 {t1} t4 {t4}");
    }

    #[test]
    fn nerf_fhd_magnitude_is_plausible() {
        // The pure model should land within ~3x of the measured 231 ms
        // (the calibrated layer pins it exactly).
        let t = frame(AppKind::Nerf, EncodingKind::MultiResHashGrid).total_ms();
        assert!(t > 231.0 / 3.0 && t < 231.0 * 3.0, "NeRF FHD model time {t} ms");
    }
}
