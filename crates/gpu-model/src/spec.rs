//! GPU hardware specification (the paper's baseline is an Nvidia RTX 3090
//! running CUDA 11.7).

use serde::{Deserialize, Serialize};

/// Parameters of the modelled GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// FP32 FMA lanes per SM (CUDA cores / SM).
    pub fp32_lanes_per_sm: u32,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Die area in mm^2 (used for Fig. 15 normalisation).
    pub die_area_mm2: f64,
    /// Board power in watts (used for Fig. 15 normalisation).
    pub tdp_watts: f64,
    /// Process node in nm (Samsung 8N for GA102).
    pub process_nm: f64,
    /// Kernel launch overhead in microseconds (driver + dispatch).
    pub launch_overhead_us: f64,
}

impl GpuSpec {
    /// Peak FP32 throughput in TFLOP/s (2 FLOPs per FMA).
    pub fn fp32_tflops(&self) -> f64 {
        self.sm_count as f64 * self.fp32_lanes_per_sm as f64 * self.clock_ghz * 2.0 / 1e3
    }

    /// Peak FP16 throughput in TFLOP/s; tiny-cuda-nn's fully-fused MLP
    /// uses tensor-core HMMA which GA102 runs at ~4x FP32 FMA rate.
    pub fn fp16_tensor_tflops(&self) -> f64 {
        self.fp32_tflops() * 4.0
    }

    /// Clock period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }
}

/// The paper's baseline GPU: Nvidia GeForce RTX 3090.
///
/// Numbers from the paper's reference \[1\] (TechPowerUp): 82 SMs, 1.695 GHz
/// boost, 128 FP32 lanes/SM, 6 MB L2, 936.2 GB/s GDDR6X, 628.4 mm^2 die,
/// 350 W.
pub fn rtx3090() -> GpuSpec {
    GpuSpec {
        name: "NVIDIA GeForce RTX 3090".to_string(),
        sm_count: 82,
        clock_ghz: 1.695,
        fp32_lanes_per_sm: 128,
        l2_bytes: 6 * 1024 * 1024,
        dram_bw_gbps: 936.2,
        die_area_mm2: 628.4,
        tdp_watts: 350.0,
        process_nm: 8.0,
        launch_overhead_us: 5.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3090_peak_flops_matches_datasheet() {
        // Datasheet: 35.58 TFLOPS FP32.
        let gpu = rtx3090();
        assert!((gpu.fp32_tflops() - 35.58).abs() < 0.2, "{}", gpu.fp32_tflops());
    }

    #[test]
    fn rtx3090_bandwidth_is_papers_number() {
        // The paper quotes 936.2 GB/s in Section VI.
        assert_eq!(rtx3090().dram_bw_gbps, 936.2);
    }

    #[test]
    fn cycle_time_sub_nanosecond() {
        let gpu = rtx3090();
        assert!(gpu.cycle_ns() < 1.0 && gpu.cycle_ns() > 0.5);
    }
}
