//! Persistent on-disk store for the calibration tables.
//!
//! Building [`crate::calibrate`]'s frame-time ratio table means
//! instantiating every Table I encoding grid (the NeRF hash tables
//! alone are tens of MiB) and running the roofline model over all
//! twelve app/encoding pairs — about a second of wall time that every
//! cold process pays before its first `kernel_breakdown` call. The
//! table itself is twelve `f64`s, so this module persists it:
//!
//! * **Location** — `$NGPC_CALIB_CACHE_DIR` if set, else
//!   `$XDG_CACHE_HOME/ngpc`, else `~/.cache/ngpc`, else a
//!   `ngpc-calib` directory under the system temp dir. Set
//!   `NGPC_CALIB_CACHE=off` (or `0`) to disable persistence entirely.
//! * **Invalidation** — the file name carries a fingerprint hashed
//!   from every *input* of the calibration (the GPU spec, the Table I
//!   configurations, the per-app sample counts, the storage width) plus
//!   [`CALIBRATION_SCHEME`], a hand-bumped tag covering the roofline
//!   formulas themselves. A model change lands in a different file and
//!   the stale one is simply never read again.
//! * **Integrity** — values round-trip bit-exactly (shortest
//!   round-trip `f64` display); a missing, truncated or unparseable
//!   file degrades to in-process computation, never to an error.

use std::fs;
use std::io;
use std::path::PathBuf;

use ng_neural::apps::{AppKind, EncodingKind};
use ng_neural::math::fnv1a64;

use crate::spec::rtx3090;
use crate::workload::{samples_per_pixel, BYTES_PER_PARAM};

/// Version tag of the calibration *formulas* (the roofline efficiency
/// constants and kernel cost model in [`crate::cost`]). Bump together
/// with any change to those formulas — the data inputs (GPU spec,
/// Table I) are fingerprinted automatically, the code is not.
pub const CALIBRATION_SCHEME: &str = "roofline-v1";

/// Fingerprint of everything the ratio table is computed *from*: cheap
/// to evaluate (no grids are instantiated), stable across processes.
pub fn calibration_fingerprint() -> u64 {
    let mut text = format!("{CALIBRATION_SCHEME};bytes_per_param={BYTES_PER_PARAM};");
    text.push_str(&format!("gpu={:?};", rtx3090()));
    for app in AppKind::ALL {
        text.push_str(&format!("spp[{app:?}]={};", samples_per_pixel(app)));
        for enc in EncodingKind::ALL {
            text.push_str(&format!(
                "table1[{app:?},{enc:?}]={:?};",
                ng_neural::apps::table1(app, enc)
            ));
        }
    }
    fnv1a64(&text)
}

/// The resolved cache directory, or `None` when persistence is
/// disabled via `NGPC_CALIB_CACHE=off`/`0`.
pub fn default_dir() -> Option<PathBuf> {
    match std::env::var("NGPC_CALIB_CACHE") {
        Ok(v) if v == "off" || v == "0" => return None,
        _ => {}
    }
    if let Ok(dir) = std::env::var("NGPC_CALIB_CACHE_DIR") {
        return Some(PathBuf::from(dir));
    }
    if let Ok(xdg) = std::env::var("XDG_CACHE_HOME") {
        return Some(PathBuf::from(xdg).join("ngpc"));
    }
    if let Ok(home) = std::env::var("HOME") {
        return Some(PathBuf::from(home).join(".cache").join("ngpc"));
    }
    Some(std::env::temp_dir().join("ngpc-calib"))
}

fn parse_app_tag(s: &str) -> Option<AppKind> {
    AppKind::ALL.into_iter().find(|a| format!("{a:?}") == s)
}

fn parse_encoding_tag(s: &str) -> Option<EncodingKind> {
    EncodingKind::ALL.into_iter().find(|e| format!("{e:?}") == s)
}

/// The file one fingerprint's ratio table lives in.
pub fn ratio_path(dir: &std::path::Path, fingerprint: u64) -> PathBuf {
    dir.join(format!("grid-ratios-{fingerprint:016x}.csv"))
}

/// Load the ratio table for `fingerprint` from `dir`, if present and
/// complete (one row per app/encoding pair). Any corruption is a miss.
pub fn load_ratios(
    dir: &std::path::Path,
    fingerprint: u64,
) -> Option<Vec<((AppKind, EncodingKind), f64)>> {
    let text = fs::read_to_string(ratio_path(dir, fingerprint)).ok()?;
    let mut out = Vec::with_capacity(12);
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let app = parse_app_tag(fields.next()?)?;
        let enc = parse_encoding_tag(fields.next()?)?;
        let ratio: f64 = fields.next()?.parse().ok()?;
        if fields.next().is_some() || !ratio.is_finite() || ratio <= 0.0 {
            return None;
        }
        out.push(((app, enc), ratio));
    }
    // Every pair must be present exactly once, in the canonical order
    // the computation emits — anything else is a torn or stale file.
    let expected: Vec<(AppKind, EncodingKind)> =
        AppKind::ALL.iter().flat_map(|&a| EncodingKind::ALL.iter().map(move |&e| (a, e))).collect();
    if out.iter().map(|(k, _)| *k).collect::<Vec<_>>() != expected {
        return None;
    }
    Some(out)
}

/// Persist the ratio table (write-then-rename; best effort — callers
/// treat failure as "run uncached").
///
/// The tmp name carries the pid *and* a per-call counter: two threads
/// of one process saving concurrently must not share a tmp file, or
/// one thread's rename can ship the other's half-written body (or fail
/// outright on the vanished path).
pub fn save_ratios(
    dir: &std::path::Path,
    fingerprint: u64,
    ratios: &[((AppKind, EncodingKind), f64)],
) -> io::Result<()> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    fs::create_dir_all(dir)?;
    let mut body = format!(
        "# ngpc calibration cache | scheme {CALIBRATION_SCHEME} | fingerprint {fingerprint:016x}\n"
    );
    for ((app, enc), ratio) in ratios {
        body.push_str(&format!("{app:?},{enc:?},{ratio}\n"));
    }
    let path = ratio_path(dir, fingerprint);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
    if ng_fault::take_calib_partial_write() {
        // `calib:partial-write` fault: persist a torn table — the bytes
        // a writer killed between `write` and `rename` would leave if
        // the rename raced through anyway. `load_ratios` must treat the
        // result as a miss and recompute, never error.
        body.truncate(body.len() / 2);
    }
    fs::write(&tmp, body)?;
    fs::rename(&tmp, &path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Vec<((AppKind, EncodingKind), f64)> {
        AppKind::ALL
            .iter()
            .flat_map(|&a| EncodingKind::ALL.iter().map(move |&e| (a, e)))
            .enumerate()
            .map(|(i, k)| (k, 0.1 + i as f64 * 0.07 + 1.0 / 3.0))
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ngpc-calib-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ratios_round_trip_bit_exactly() {
        let dir = tmpdir("roundtrip");
        let table = sample_table();
        let fp = calibration_fingerprint();
        assert!(load_ratios(&dir, fp).is_none(), "cold store");
        save_ratios(&dir, fp, &table).unwrap();
        assert_eq!(load_ratios(&dir, fp).unwrap(), table);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_fingerprint_is_a_miss() {
        let dir = tmpdir("stale");
        let table = sample_table();
        save_ratios(&dir, 0xdead_beef, &table).unwrap();
        assert!(load_ratios(&dir, calibration_fingerprint()).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_incomplete_files_are_misses() {
        let dir = tmpdir("corrupt");
        let fp = 42u64;
        let table = sample_table();
        save_ratios(&dir, fp, &table[..5]).unwrap();
        assert!(load_ratios(&dir, fp).is_none(), "incomplete");
        fs::write(ratio_path(&dir, fp), "Nerf,MultiResHashGrid,not-a-number\n").unwrap();
        assert!(load_ratios(&dir, fp).is_none(), "unparseable");
        fs::write(ratio_path(&dir, fp), "garbage\n").unwrap();
        assert!(load_ratios(&dir, fp).is_none(), "garbage");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_persisted_table_degrades_to_recompute() {
        // The `calib:partial-write` fault shape: a save that shipped
        // only a prefix of the table (crash mid-write, full disk). The
        // loader must treat the torn file as a miss — the caller then
        // recomputes and a later save replaces the damage — never
        // serve a partial table.
        let dir = tmpdir("torn");
        let fp = calibration_fingerprint();
        let table = sample_table();
        save_ratios(&dir, fp, &table).unwrap();
        let path = ratio_path(&dir, fp);
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(load_ratios(&dir, fp).is_none(), "torn table must miss");
        // Recompute-and-save heals the store in place.
        save_ratios(&dir, fp, &table).unwrap();
        assert_eq!(load_ratios(&dir, fp).unwrap(), table);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(calibration_fingerprint(), calibration_fingerprint());
    }

    #[test]
    fn concurrent_saves_in_one_process_never_collide() {
        // Same pid, many threads: unique tmp names mean every save
        // either fully lands or is fully replaced — the final file is
        // always one complete, loadable table.
        let dir = tmpdir("concurrent-save");
        let table = sample_table();
        let fp = 7u64;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (dir, table) = (&dir, &table);
                scope.spawn(move || {
                    for _ in 0..25 {
                        save_ratios(dir, fp, table).unwrap();
                    }
                });
            }
        });
        assert_eq!(load_ratios(&dir, fp).expect("complete table"), table);
        // No orphaned tmp files: every writer renamed its own.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "orphaned tmp files: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
