//! # ng-gpu — GPU baseline performance model
//!
//! The NGPC paper profiles the four neural-graphics applications on an
//! RTX 3090 with Nsight Compute and feeds the resulting *kernel-level
//! breakdown* into its evaluation emulator (paper Fig. 11). This crate is
//! the substitute for that profiling step: it models the GPU and the
//! workloads analytically and reproduces the published breakdowns.
//!
//! Two layers:
//!
//! * a **first-principles layer** ([`workload`], [`cache`], [`cost`]):
//!   operation and byte counts derived from the exact Table I
//!   configurations, an L2 capacity model, and a roofline timing model.
//!   This layer predicts *which* kernels dominate and why (encoding is
//!   memory-bound, the tiny MLPs are traffic-bound), and is validated by
//!   tests against the paper's qualitative findings.
//! * a **calibrated layer** ([`calibrate`]): the per-application kernel
//!   time fractions and FHD frame times anchored to every number the
//!   paper publishes (231 ms / 27.87 ms / 2.12 ms / 6.32 ms frame times,
//!   the 72.37 / 60.0 / 59.96 % encoding+MLP averages, the 55.50x /
//!   6.68x / 1.51x 4k@60 gaps). The `ngpc` emulator consumes this layer,
//!   exactly as the paper's emulator consumes measured profiles.
//!
//! The calibrated layer's derived ratio table (the ~1 s per-process
//! warm-up) is persisted across processes by [`store`], keyed by a
//! fingerprint of every calibration input.

pub mod cache;
pub mod calibrate;
pub mod cost;
pub mod gap;
pub mod ops;
pub mod profile;
pub mod spec;
pub mod store;
pub mod workload;

pub use calibrate::{frame_time_ms, kernel_breakdown, KernelBreakdown};
pub use spec::{rtx3090, GpuSpec};
pub use workload::FrameWorkload;
