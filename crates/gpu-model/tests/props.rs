//! Property-based tests of the GPU performance model.

use ng_gpu::cache::CacheModel;
use ng_gpu::cost::estimate_frame;
use ng_gpu::{frame_time_ms, kernel_breakdown, rtx3090, FrameWorkload};
use ng_neural::apps::{AppKind, EncodingKind};
use ng_neural::encoding::{GridConfig, GridLayout};
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = AppKind> {
    prop_oneof![Just(AppKind::Nerf), Just(AppKind::Nsdf), Just(AppKind::Gia), Just(AppKind::Nvr)]
}

fn arb_enc() -> impl Strategy<Value = EncodingKind> {
    prop_oneof![
        Just(EncodingKind::MultiResHashGrid),
        Just(EncodingKind::MultiResDenseGrid),
        Just(EncodingKind::LowResDenseGrid)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn frame_time_is_positive_and_linear_in_pixels(
        app in arb_app(),
        enc in arb_enc(),
        px in 10_000u64..10_000_000,
    ) {
        let t1 = frame_time_ms(app, enc, px);
        let t2 = frame_time_ms(app, enc, 2 * px);
        prop_assert!(t1 > 0.0);
        prop_assert!((t2 / t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn breakdown_components_sum_to_total(
        app in arb_app(),
        enc in arb_enc(),
        px in 100_000u64..5_000_000,
    ) {
        let b = kernel_breakdown(app, enc, px);
        prop_assert!((b.encoding_ms + b.mlp_ms + b.rest_ms - b.total_ms()).abs() < 1e-9);
        prop_assert!(b.encoding_ms >= 0.0 && b.mlp_ms >= 0.0 && b.rest_ms >= 0.0);
        prop_assert!((b.total_ms() - frame_time_ms(app, enc, px)).abs() < 1e-9);
    }

    #[test]
    fn cost_model_times_scale_with_resolution(
        app in arb_app(),
        px in 100_000u64..2_000_000,
    ) {
        let gpu = rtx3090();
        let small = estimate_frame(&gpu, &FrameWorkload::derive(app, EncodingKind::MultiResDenseGrid, px));
        let large = estimate_frame(&gpu, &FrameWorkload::derive(app, EncodingKind::MultiResDenseGrid, 3 * px));
        prop_assert!(large.total_ms() > small.total_ms());
    }

    #[test]
    fn cache_hit_rates_are_probabilities_and_monotone_in_capacity(
        log2_t in 6u32..16,
        l2_mb in 1u64..32,
    ) {
        let grid = GridLayout::new(GridConfig::hashgrid(3, log2_t, 1.5)).unwrap();
        let small = CacheModel::estimate(&grid, l2_mb * 1024 * 1024, 2);
        let large = CacheModel::estimate(&grid, 2 * l2_mb * 1024 * 1024, 2);
        prop_assert!((0.0..=1.0).contains(&small.aggregate_hit_rate()));
        prop_assert!(large.aggregate_hit_rate() + 1e-9 >= small.aggregate_hit_rate());
    }

    #[test]
    fn workload_counts_are_consistent(
        app in arb_app(),
        enc in arb_enc(),
    ) {
        let w = FrameWorkload::derive(app, enc, 1_000_000);
        // Hashes never exceed lookups; everything nonzero where expected.
        prop_assert!(w.hashes_per_query <= w.lookups_per_query);
        prop_assert!(w.lookups_per_query > 0);
        prop_assert!(w.mlp_macs_per_query > 0);
        prop_assert_eq!(w.encoding_fetch_bytes(),
            w.queries * w.lookups_per_query as u64 * w.bytes_per_lookup as u64);
    }
}
