//! # ng-fault — deterministic fault injection for the DSE pipeline
//!
//! The distributed sweep backend promises that crashed workers, torn
//! shard tails and flaky filesystems never change a sweep's output.
//! This crate makes that promise *testable*: a seeded [`FaultPlan`]
//! (parsed from the [`FAULTS_ENV`] environment variable or
//! `dse --faults`) arms injection sites threaded through the point
//! store, the obs ledger sink, the calibration store and the worker
//! evaluation loop — and the CI chaos matrix asserts that a faulted
//! run's CSV is byte-identical to the fault-free one.
//!
//! ## Plan syntax
//!
//! Faults are separated by `;` (or whitespace):
//!
//! | spec                        | effect |
//! |-----------------------------|--------|
//! | `seed=N`                    | seed for every probabilistic decision (default 0) |
//! | `append:io@p=P[,n=N]`       | point-store shard appends fail with probability `P` (at most `N` injections) |
//! | `ledger:io@p=P[,n=N]`       | JSONL ledger/heartbeat appends fail with probability `P` |
//! | `shard:torn-tail[@n=N]`     | the first `N` (default 1) store appends write a torn final row and report success |
//! | `mapmemo:torn-tail[@n=N]`   | the first `N` (default 1) mapping-memo appends write a torn final row and report success |
//! | `calib:partial-write[@n=N]` | the first `N` (default 1) calibration saves persist a truncated table |
//! | `worker:kill@point=N`       | a worker process aborts (SIGABRT) while evaluating its `N`-th point |
//! | `worker:hang@point=N`       | a worker process hangs forever at its `N`-th point |
//! | `heartbeat:delay=D`         | every worker heartbeat is delayed by `D` (`5s`, `300ms`, ...) |
//! | `compact:crash@stage=N`     | the store compactor dies at protocol stage `N` (1 = generation written but unverified, 2 = generation live but CSV not yet truncated, 3 = mid-truncation) |
//! | `append:enospc[@n=N]`       | point-store shard appends fail with a storage-exhaustion error (ENOSPC-shaped, never retried; at most `N` injections, default unlimited) |
//! | `signal:term@point=N`       | the process raises SIGTERM against itself at its `N`-th evaluation tick — the drain path a real Ctrl-C / `kill` exercises |
//!
//! `worker:*` and `heartbeat:*` faults fire only in processes that
//! called [`mark_worker`] (the `dse --worker-shard` entry point), so a
//! coordinator recovering a dead worker's slice locally — the last
//! resort the chaos matrix drives runs into — is never re-killed by
//! the same plan it passed to its children.
//!
//! ## Determinism
//!
//! Every probabilistic decision hashes `(seed, site, per-site
//! invocation count)` through SplitMix64 — no wall clock, no OS
//! randomness — so a plan replays identically given the same execution
//! order, and two workers with identical slices make identical
//! decisions. Backoff jitter ([`backoff_delay`]) is derived the same
//! way.
//!
//! The crate is dependency-free and every check is a relaxed atomic
//! load when no plan is installed.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// The environment variable a fault plan is read from.
pub const FAULTS_ENV: &str = "NG_DSE_FAULTS";

/// One fault in a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Point-store shard appends fail with probability `p`, at most
    /// `times` injections (`None` = unlimited).
    AppendIo {
        /// Per-append failure probability.
        p: f64,
        /// Injection cap.
        times: Option<u64>,
    },
    /// JSONL ledger/heartbeat appends fail with probability `p`.
    LedgerIo {
        /// Per-append failure probability.
        p: f64,
        /// Injection cap.
        times: Option<u64>,
    },
    /// The first `times` store appends write a torn final row and
    /// report success — the bytes a writer killed mid-`write_all`
    /// leaves behind.
    TornTail {
        /// How many appends to tear.
        times: u64,
    },
    /// The first `times` mapping-memo appends write a torn final row
    /// and report success — the same mid-`write_all` death as
    /// `shard:torn-tail`, aimed at the `--map-search` memo store.
    MapMemoTornTail {
        /// How many appends to tear.
        times: u64,
    },
    /// The first `times` calibration saves persist a truncated table.
    CalibPartialWrite {
        /// How many saves to truncate.
        times: u64,
    },
    /// A worker process aborts while evaluating its `point`-th point.
    WorkerKill {
        /// 1-based evaluation tick to die at.
        point: u64,
    },
    /// A worker process hangs forever at its `point`-th point.
    WorkerHang {
        /// 1-based evaluation tick to hang at.
        point: u64,
    },
    /// Every worker heartbeat is delayed by this much before it is
    /// appended — silence, as the coordinator's stall detector sees it.
    HeartbeatDelay {
        /// The injected delay.
        delay: Duration,
    },
    /// The store compactor dies at protocol stage `stage`, leaving the
    /// exact on-disk state a SIGKILL at that point would leave.
    CompactCrash {
        /// 1-based compaction protocol stage to die at.
        stage: u64,
    },
    /// Point-store shard appends fail with a storage-exhaustion error
    /// (the ENOSPC / EROFS / quota family — persistent, never retried,
    /// the trigger for the cache's degraded in-memory overlay).
    AppendEnospc {
        /// Injection cap (`None` = every append fails).
        times: Option<u64>,
    },
    /// The process raises SIGTERM against itself at its `point`-th
    /// evaluation tick. Unlike `worker:*` this is *not* role-gated: a
    /// plain `dse` sweep is exactly what the graceful-drain path and
    /// `dse resume` exist for.
    SignalTerm {
        /// 1-based evaluation tick to raise SIGTERM at.
        point: u64,
    },
}

/// A parsed, seeded fault plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parse a plan string (see the module docs for the syntax).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in text.split([';', ' ', '\t']).map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(seed) = token.strip_prefix("seed=") {
                plan.seed =
                    seed.parse().map_err(|_| format!("faults: seed `{seed}` is not a number"))?;
                continue;
            }
            let (class, spec) = token
                .split_once(':')
                .ok_or_else(|| format!("faults: `{token}` is not CLASS:KIND[@k=v,...]"))?;
            let (kind, params) = match spec.split_once('@') {
                Some((kind, params)) => (kind, parse_params(token, params)?),
                // `heartbeat:delay=5s` carries its value in the kind.
                None => match spec.split_once('=') {
                    Some((kind, value)) => (kind, vec![(kind.to_string(), value.to_string())]),
                    None => (spec, Vec::new()),
                },
            };
            let get = |key: &str| params.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
            let num = |key: &str| -> Result<Option<u64>, String> {
                get(key)
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|_| format!("faults: `{token}`: {key} `{v}` is not a number"))
                    })
                    .transpose()
            };
            let prob = || -> Result<f64, String> {
                let v = get("p").ok_or_else(|| format!("faults: `{token}` needs p=PROB"))?;
                let p: f64 =
                    v.parse().map_err(|_| format!("faults: `{token}`: p `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("faults: `{token}`: p must be in [0, 1]"));
                }
                Ok(p)
            };
            let fault = match (class, kind) {
                ("append", "io") => Fault::AppendIo { p: prob()?, times: num("n")? },
                ("append", "enospc") => Fault::AppendEnospc { times: num("n")? },
                ("signal", "term") => Fault::SignalTerm {
                    point: num("point")?
                        .ok_or_else(|| format!("faults: `{token}` needs point=N"))?,
                },
                ("ledger", "io") => Fault::LedgerIo { p: prob()?, times: num("n")? },
                ("shard", "torn-tail") => Fault::TornTail { times: num("n")?.unwrap_or(1) },
                ("mapmemo", "torn-tail") => {
                    Fault::MapMemoTornTail { times: num("n")?.unwrap_or(1) }
                }
                ("calib", "partial-write") => {
                    Fault::CalibPartialWrite { times: num("n")?.unwrap_or(1) }
                }
                ("worker", "kill") => Fault::WorkerKill {
                    point: num("point")?
                        .ok_or_else(|| format!("faults: `{token}` needs point=N"))?,
                },
                ("worker", "hang") => Fault::WorkerHang {
                    point: num("point")?
                        .ok_or_else(|| format!("faults: `{token}` needs point=N"))?,
                },
                ("compact", "crash") => Fault::CompactCrash {
                    stage: num("stage")?
                        .ok_or_else(|| format!("faults: `{token}` needs stage=N"))?,
                },
                ("heartbeat", "delay") => Fault::HeartbeatDelay {
                    delay: parse_duration(
                        get("delay")
                            .ok_or_else(|| format!("faults: `{token}` needs delay=DURATION"))?,
                    )
                    .ok_or_else(|| format!("faults: `{token}`: bad duration"))?,
                },
                _ => return Err(format!("faults: unknown fault `{token}`")),
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }
}

fn parse_params(token: &str, params: &str) -> Result<Vec<(String, String)>, String> {
    params
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| format!("faults: `{token}`: `{p}` is not k=v"))
        })
        .collect()
}

/// Parse `500ms`, `5s`, `1.5s` or a bare number of seconds.
fn parse_duration(s: &str) -> Option<Duration> {
    let (value, scale) = if let Some(ms) = s.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(secs) = s.strip_suffix('s') {
        (secs, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = value.trim().parse().ok()?;
    (v >= 0.0 && v.is_finite()).then(|| Duration::from_secs_f64(v * scale))
}

/// SplitMix64 — the deterministic hash behind every probabilistic
/// decision and every jitter sample.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a string — dependency-free site salting.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Whether `(seed, site, n)` decides to fire a probability-`p` fault.
fn decide(p: f64, seed: u64, site: &str, n: u64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let h = splitmix64(seed ^ fnv1a64(site) ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D));
    ((h >> 11) as f64 / (1u64 << 53) as f64) < p
}

/// The armed injector: a plan plus per-site invocation counters.
#[derive(Debug)]
struct Injector {
    plan: FaultPlan,
    append_checks: AtomicU64,
    append_injected: AtomicU64,
    ledger_checks: AtomicU64,
    ledger_injected: AtomicU64,
    torn_injected: AtomicU64,
    mapmemo_torn_injected: AtomicU64,
    calib_injected: AtomicU64,
    compact_injected: AtomicU64,
    enospc_injected: AtomicU64,
    signal_injected: AtomicU64,
    signals_raised: AtomicU64,
    eval_ticks: AtomicU64,
}

impl Injector {
    fn new(plan: FaultPlan) -> Self {
        Injector {
            plan,
            append_checks: AtomicU64::new(0),
            append_injected: AtomicU64::new(0),
            ledger_checks: AtomicU64::new(0),
            ledger_injected: AtomicU64::new(0),
            torn_injected: AtomicU64::new(0),
            mapmemo_torn_injected: AtomicU64::new(0),
            calib_injected: AtomicU64::new(0),
            compact_injected: AtomicU64::new(0),
            enospc_injected: AtomicU64::new(0),
            signal_injected: AtomicU64::new(0),
            signals_raised: AtomicU64::new(0),
            eval_ticks: AtomicU64::new(0),
        }
    }
}

static INJECTOR: OnceLock<Injector> = OnceLock::new();
static ARMED: AtomicBool = AtomicBool::new(false);
static WORKER: AtomicBool = AtomicBool::new(false);
static PAUSED: AtomicU64 = AtomicU64::new(0);

/// RAII guard from [`pause_injection`]: faults resume when it drops.
#[must_use = "injection resumes when the guard drops"]
pub struct InjectionPause(());

impl Drop for InjectionPause {
    fn drop(&mut self) {
        PAUSED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Suspend every injection site in this process until the returned
/// guard drops (nests). For internal bookkeeping work that must not
/// consume the plan's budgets or tick numbering: the model-fingerprint
/// probe sweep, for example, runs through the same evaluation pool as
/// user work, and without this a `signal:term@point=N` or
/// `worker:kill@point=N` would spend its death on a probe point before
/// the actual sweep ever starts. Process-global, so it also covers the
/// worker threads the paused section spawns.
pub fn pause_injection() -> InjectionPause {
    PAUSED.fetch_add(1, Ordering::Relaxed);
    InjectionPause(())
}

/// Install a plan for this process. At most one plan per process — a
/// second install is an error (the first plan's counters are already
/// moving).
pub fn install(plan: FaultPlan) -> Result<(), String> {
    let mut fresh = false;
    INJECTOR.get_or_init(|| {
        fresh = true;
        Injector::new(plan)
    });
    if !fresh {
        return Err("faults: a fault plan is already installed in this process".to_string());
    }
    ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Parse and install a plan string.
pub fn install_str(text: &str) -> Result<(), String> {
    install(FaultPlan::parse(text)?)
}

/// Install a plan from [`FAULTS_ENV`], if set and non-empty. A parse
/// error is returned rather than silently ignored — a typo'd chaos
/// plan that injects nothing would pass every assertion for the wrong
/// reason.
pub fn init_from_env() -> Result<bool, String> {
    let Ok(value) = std::env::var(FAULTS_ENV) else { return Ok(false) };
    let trimmed = value.trim();
    if trimmed.is_empty() || trimmed == "0" || trimmed.eq_ignore_ascii_case("off") {
        return Ok(false);
    }
    install_str(trimmed)?;
    Ok(true)
}

/// Whether a fault plan is armed in this process.
#[inline]
pub fn active() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Mark this process as a sweep worker, arming the `worker:*` and
/// `heartbeat:*` fault classes (see the module docs for why they are
/// role-gated).
pub fn mark_worker() {
    WORKER.store(true, Ordering::Relaxed);
}

/// Whether this process is a marked worker.
pub fn is_worker() -> bool {
    WORKER.load(Ordering::Relaxed)
}

fn injector() -> Option<&'static Injector> {
    if !active() || PAUSED.load(Ordering::Relaxed) > 0 {
        return None;
    }
    INJECTOR.get()
}

fn injected_io_error(site: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::Interrupted,
        format!("ng-fault: injected transient i/o error ({site})"),
    )
}

/// Whether `e` is one of this crate's injected errors.
pub fn is_injected(e: &io::Error) -> bool {
    e.to_string().starts_with("ng-fault:")
}

fn injected_exhaustion_error(site: &str) -> io::Error {
    io::Error::other(format!("ng-fault: injected storage exhaustion ({site})"))
}

/// Whether `e` is a resource-exhaustion failure — out of space
/// (ENOSPC), over quota (EDQUOT), a read-only filesystem (EROFS), or
/// an unwritable store (EACCES/EPERM). These are persistent: waiting
/// never frees the disk, so [`is_retryable`] refuses them and the
/// point-store degrades to its in-memory overlay instead.
pub fn is_exhaustion(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(28 | 30 | 122)) // ENOSPC, EROFS, EDQUOT
        || e.kind() == io::ErrorKind::PermissionDenied
        || e.to_string().contains("injected storage exhaustion")
}

fn io_site(
    faults: &FaultPlan,
    pick: impl Fn(&Fault) -> Option<(f64, Option<u64>)>,
    checks: &AtomicU64,
    injected: &AtomicU64,
    seed: u64,
    site: &str,
) -> Option<io::Error> {
    let (p, times) = faults.faults.iter().find_map(pick)?;
    let n = checks.fetch_add(1, Ordering::Relaxed);
    if !decide(p, seed, site, n) {
        return None;
    }
    if let Some(cap) = times {
        // Cap enforcement must be race-free: reserve a slot, refund on
        // overshoot.
        if injected.fetch_add(1, Ordering::Relaxed) >= cap {
            injected.fetch_sub(1, Ordering::Relaxed);
            return None;
        }
    } else {
        injected.fetch_add(1, Ordering::Relaxed);
    }
    Some(injected_io_error(site))
}

/// `append:io` — an injected error for a point-store shard append, when
/// the plan fires.
pub fn store_append_error() -> Option<io::Error> {
    let inj = injector()?;
    io_site(
        &inj.plan,
        |f| match f {
            Fault::AppendIo { p, times } => Some((*p, *times)),
            _ => None,
        },
        &inj.append_checks,
        &inj.append_injected,
        inj.plan.seed,
        "append:io",
    )
}

/// `append:enospc` — an injected storage-exhaustion error for a
/// point-store shard append, when the plan arms one. Unlike
/// `append:io` this is not probabilistic: exhaustion is a state, not
/// an event, so every append fails until the optional `n` cap runs
/// out.
pub fn store_append_exhaustion() -> Option<io::Error> {
    let inj = injector()?;
    let times = inj.plan.faults.iter().find_map(|f| match f {
        Fault::AppendEnospc { times } => Some(*times),
        _ => None,
    })?;
    if let Some(cap) = times {
        if inj.enospc_injected.fetch_add(1, Ordering::Relaxed) >= cap {
            inj.enospc_injected.fetch_sub(1, Ordering::Relaxed);
            return None;
        }
    } else {
        inj.enospc_injected.fetch_add(1, Ordering::Relaxed);
    }
    Some(injected_exhaustion_error("append:enospc"))
}

/// `ledger:io` — an injected error for a JSONL ledger/heartbeat append.
pub fn ledger_append_error() -> Option<io::Error> {
    let inj = injector()?;
    io_site(
        &inj.plan,
        |f| match f {
            Fault::LedgerIo { p, times } => Some((*p, *times)),
            _ => None,
        },
        &inj.ledger_checks,
        &inj.ledger_injected,
        inj.plan.seed,
        "ledger:io",
    )
}

fn take_budgeted(
    faults: &FaultPlan,
    budget: impl Fn(&Fault) -> Option<u64>,
    used: &AtomicU64,
) -> bool {
    let Some(times) = faults.faults.iter().find_map(budget) else { return false };
    if used.fetch_add(1, Ordering::Relaxed) >= times {
        used.fetch_sub(1, Ordering::Relaxed);
        return false;
    }
    true
}

/// `shard:torn-tail` — whether this store append should write a torn
/// final row (consumes one of the plan's `n` tears).
pub fn take_store_torn_tail() -> bool {
    let Some(inj) = injector() else { return false };
    take_budgeted(
        &inj.plan,
        |f| match f {
            Fault::TornTail { times } => Some(*times),
            _ => None,
        },
        &inj.torn_injected,
    )
}

/// `mapmemo:torn-tail` — whether this mapping-memo append should write
/// a torn final row (consumes one of the plan's `n` tears).
pub fn take_mapmemo_torn_tail() -> bool {
    let Some(inj) = injector() else { return false };
    take_budgeted(
        &inj.plan,
        |f| match f {
            Fault::MapMemoTornTail { times } => Some(*times),
            _ => None,
        },
        &inj.mapmemo_torn_injected,
    )
}

/// `calib:partial-write` — whether this calibration save should persist
/// a truncated table (consumes one of the plan's `n` truncations).
pub fn take_calib_partial_write() -> bool {
    let Some(inj) = injector() else { return false };
    take_budgeted(
        &inj.plan,
        |f| match f {
            Fault::CalibPartialWrite { times } => Some(*times),
            _ => None,
        },
        &inj.calib_injected,
    )
}

/// `compact:crash` — the injected death of the store compactor at
/// protocol stage `stage` (1-based, see the module table). The caller
/// returns the error *without any cleanup*, so the on-disk state is
/// exactly what a process SIGKILLed at that stage would leave behind —
/// which is the state the crash-safety tests assert readers survive.
/// Not worker-gated: compaction runs in the coordinator / CLI process.
pub fn compact_crash_at(stage: u64) -> Option<io::Error> {
    let inj = injector()?;
    let named = inj
        .plan
        .faults
        .iter()
        .any(|f| matches!(f, Fault::CompactCrash { stage: s } if *s == stage));
    if !named {
        return None;
    }
    inj.compact_injected.fetch_add(1, Ordering::Relaxed);
    Some(io::Error::other(format!("ng-fault: injected compaction crash (stage {stage})")))
}

/// `worker:kill` / `worker:hang` / `signal:term` — called once per
/// point from the evaluation pool, *before* the point is evaluated.
/// In a marked worker process whose plan names this tick, the process
/// aborts (the SIGKILL-shaped death the lease recovery path exists
/// for) or hangs forever (the livelock the progress-stall detector
/// exists for). `signal:term` fires in *any* process — it raises a
/// real SIGTERM against the process itself, so whatever drain handler
/// is installed sees exactly what a `kill` from outside would send.
pub fn on_eval_tick() {
    let Some(inj) = injector() else { return };
    let tick = inj.eval_ticks.fetch_add(1, Ordering::Relaxed) + 1;
    // Claiming a tick and raising its signal are two steps, and the
    // claimant can be preempted between them — on a loaded one-core
    // box the *other* pool workers could then finish every remaining
    // point before the SIGTERM lands, turning a deterministic
    // "interrupt at point N" plan into a completed run. Later ticks
    // therefore wait until every signal due at an earlier tick has
    // actually been raised.
    let due = inj
        .plan
        .faults
        .iter()
        .filter(|f| matches!(f, Fault::SignalTerm { point } if *point < tick))
        .count() as u64;
    while inj.signals_raised.load(Ordering::Acquire) < due {
        std::thread::yield_now();
    }
    for f in &inj.plan.faults {
        match f {
            Fault::SignalTerm { point } if *point == tick => {
                inj.signal_injected.fetch_add(1, Ordering::Relaxed);
                eprintln!("ng-fault: raising SIGTERM at evaluation tick {tick}");
                raise_sigterm();
                inj.signals_raised.fetch_add(1, Ordering::Release);
            }
            Fault::WorkerKill { point } if is_worker() && *point == tick => {
                eprintln!("ng-fault: worker abort at evaluation tick {tick}");
                std::process::abort();
            }
            Fault::WorkerHang { point } if is_worker() && *point == tick => {
                eprintln!("ng-fault: worker hanging at evaluation tick {tick}");
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            _ => {}
        }
    }
}

/// Raise SIGTERM against this process. Declared directly against the
/// C runtime std already links — this crate stays dependency-free.
#[cfg(unix)]
fn raise_sigterm() {
    extern "C" {
        fn raise(sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        raise(SIGTERM);
    }
}

#[cfg(not(unix))]
fn raise_sigterm() {}

/// `heartbeat:delay` — the delay to impose before each worker
/// heartbeat append, when armed in a marked worker.
pub fn heartbeat_delay() -> Option<Duration> {
    let inj = injector()?;
    if !is_worker() {
        return None;
    }
    inj.plan.faults.iter().find_map(|f| match f {
        Fault::HeartbeatDelay { delay } => Some(*delay),
        _ => None,
    })
}

/// How many faults of `site` (`append:io`, `ledger:io`, `torn-tail`,
/// `calib`) this process has injected — test observability.
pub fn injected_count(site: &str) -> u64 {
    let Some(inj) = INJECTOR.get() else { return 0 };
    match site {
        "append:io" => inj.append_injected.load(Ordering::Relaxed),
        "ledger:io" => inj.ledger_injected.load(Ordering::Relaxed),
        "torn-tail" => inj.torn_injected.load(Ordering::Relaxed),
        "mapmemo:torn-tail" => inj.mapmemo_torn_injected.load(Ordering::Relaxed),
        "calib" => inj.calib_injected.load(Ordering::Relaxed),
        "compact" => inj.compact_injected.load(Ordering::Relaxed),
        "append:enospc" => inj.enospc_injected.load(Ordering::Relaxed),
        "signal:term" => inj.signal_injected.load(Ordering::Relaxed),
        _ => 0,
    }
}

/// Retries (beyond the first attempt) [`with_retries`] performs before
/// giving up: 4 retries, ~0.5/1/2/4 ms apart plus deterministic jitter
/// (< 12 ms worst case on a persistently failing site).
pub const MAX_RETRIES: u32 = 4;

/// The backoff before retry number `attempt` (0-based): exponential
/// from 500 µs, with deterministic jitter of up to +50% derived from
/// `(salt, attempt)` — spread without wall-clock or OS randomness.
pub fn backoff_delay(attempt: u32, salt: u64) -> Duration {
    let base_us = 500u64 << attempt.min(6);
    let jitter_us = splitmix64(salt ^ (attempt as u64).wrapping_mul(0x9E37)) % (base_us / 2 + 1);
    Duration::from_micros(base_us + jitter_us)
}

/// Whether an error is worth retrying: everything except
/// `Unsupported`, which signals a structural capability gap (e.g. a
/// filesystem without locks) that no amount of waiting fixes, and the
/// [`is_exhaustion`] family — a full or read-only disk does not drain
/// in four backoff windows, and retrying just quadruples the time to
/// reach the degraded-overlay path.
pub fn is_retryable(e: &io::Error) -> bool {
    e.kind() != io::ErrorKind::Unsupported && !is_exhaustion(e)
}

/// Run `f`, retrying transient failures up to [`MAX_RETRIES`] times
/// with [`backoff_delay`] between attempts. Returns the final result
/// plus how many retries were spent — callers feed that into their obs
/// counters (`store.retries`, `ledger.retries`).
pub fn with_retries<T>(site: &str, mut f: impl FnMut() -> io::Result<T>) -> (io::Result<T>, u32) {
    let salt = fnv1a64(site);
    let mut retries = 0;
    loop {
        match f() {
            Ok(v) => return (Ok(v), retries),
            Err(e) if retries < MAX_RETRIES && is_retryable(&e) => {
                std::thread::sleep(backoff_delay(retries, salt));
                retries += 1;
            }
            Err(e) => return (Err(e), retries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_documented_fault() {
        let plan = FaultPlan::parse(
            "seed=7;append:io@p=0.01,n=3;ledger:io@p=0.5;shard:torn-tail;\
             mapmemo:torn-tail@n=2;calib:partial-write@n=2;worker:kill@point=500;\
             worker:hang@point=3;heartbeat:delay=5s;compact:crash@stage=2;\
             append:enospc@n=4;signal:term@point=6",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.faults,
            vec![
                Fault::AppendIo { p: 0.01, times: Some(3) },
                Fault::LedgerIo { p: 0.5, times: None },
                Fault::TornTail { times: 1 },
                Fault::MapMemoTornTail { times: 2 },
                Fault::CalibPartialWrite { times: 2 },
                Fault::WorkerKill { point: 500 },
                Fault::WorkerHang { point: 3 },
                Fault::HeartbeatDelay { delay: Duration::from_secs(5) },
                Fault::CompactCrash { stage: 2 },
                Fault::AppendEnospc { times: Some(4) },
                Fault::SignalTerm { point: 6 },
            ]
        );
        // Bare `append:enospc` (no cap) also parses.
        assert_eq!(
            FaultPlan::parse("append:enospc").unwrap().faults,
            vec![Fault::AppendEnospc { times: None }]
        );
    }

    #[test]
    fn whitespace_separators_and_ms_durations_parse() {
        let plan = FaultPlan::parse("heartbeat:delay=300ms worker:kill@point=2").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault::HeartbeatDelay { delay: Duration::from_millis(300) },
                Fault::WorkerKill { point: 2 },
            ]
        );
    }

    #[test]
    fn bad_plans_are_loud() {
        for bad in [
            "explode",
            "append:io",            // missing p
            "append:io@p=2",        // p out of range
            "worker:kill",          // missing point
            "compact:crash",        // missing stage
            "signal:term",          // missing point
            "heartbeat:delay=fast", // bad duration
            "seed=x",
            "whatever:io@p=0.1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_roughly_calibrated() {
        let fire: Vec<bool> = (0..10_000).map(|n| decide(0.1, 42, "append:io", n)).collect();
        let again: Vec<bool> = (0..10_000).map(|n| decide(0.1, 42, "append:io", n)).collect();
        assert_eq!(fire, again, "same seed, same site, same sequence");
        let rate = fire.iter().filter(|f| **f).count() as f64 / fire.len() as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate} far from p=0.1");
        // A different seed decides differently.
        let other: Vec<bool> = (0..10_000).map(|n| decide(0.1, 43, "append:io", n)).collect();
        assert_ne!(fire, other);
        assert!(!decide(0.0, 1, "s", 1));
        assert!(decide(1.0, 1, "s", 1));
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        let mut calls = 0;
        let (result, retries) = with_retries("test", || -> io::Result<()> {
            calls += 1;
            Err(injected_io_error("test"))
        });
        assert!(result.is_err());
        assert_eq!(retries, MAX_RETRIES);
        assert_eq!(calls, MAX_RETRIES as usize + 1);

        // Success after two failures spends exactly two retries.
        let mut calls = 0;
        let (result, retries) = with_retries("test", || {
            calls += 1;
            if calls < 3 {
                Err(injected_io_error("test"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(result.unwrap(), 3);
        assert_eq!(retries, 2);

        // Unsupported is structural: no retries at all.
        let (result, retries) = with_retries("test", || -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "no locks here"))
        });
        assert!(result.is_err());
        assert_eq!(retries, 0);
    }

    #[test]
    fn backoff_grows_and_is_deterministic() {
        for attempt in 0..MAX_RETRIES {
            let d = backoff_delay(attempt, 1);
            assert_eq!(d, backoff_delay(attempt, 1));
            let base = Duration::from_micros(500u64 << attempt);
            assert!(d >= base && d <= base + base / 2 + Duration::from_micros(1), "{d:?}");
        }
        assert!(backoff_delay(3, 1) > backoff_delay(0, 1));
    }

    #[test]
    fn paused_injection_consumes_no_budget_or_ticks() {
        // Pausing gates the injector lookup itself, so no site fires
        // and no per-site counter moves while a guard is alive. (This
        // test does not install a plan — installation is once per
        // process — it checks the gate directly.)
        let before = PAUSED.load(Ordering::Relaxed);
        {
            let _outer = pause_injection();
            let _inner = pause_injection();
            assert_eq!(PAUSED.load(Ordering::Relaxed), before + 2, "guards nest");
            assert!(injector().is_none(), "no site can fire while paused");
        }
        assert_eq!(PAUSED.load(Ordering::Relaxed), before, "drop restores");
    }

    #[test]
    fn injected_errors_are_recognisable() {
        assert!(is_injected(&injected_io_error("x")));
        assert!(!is_injected(&io::Error::other("disk on fire")));
        assert!(is_retryable(&injected_io_error("x")));
    }

    #[test]
    fn exhaustion_errors_are_persistent_not_transient() {
        let injected = injected_exhaustion_error("append:enospc");
        assert!(is_injected(&injected));
        assert!(is_exhaustion(&injected));
        assert!(!is_retryable(&injected), "exhaustion must not burn retries");
        for errno in [28, 30, 122] {
            let real = io::Error::from_raw_os_error(errno);
            assert!(is_exhaustion(&real), "errno {errno}");
            assert!(!is_retryable(&real), "errno {errno}");
        }
        let denied = io::Error::new(io::ErrorKind::PermissionDenied, "store owned by root");
        assert!(is_exhaustion(&denied));
        // Transient flakes still retry.
        assert!(!is_exhaustion(&injected_io_error("append:io")));
        let (result, retries) = with_retries("test", || -> io::Result<()> {
            Err(injected_exhaustion_error("append:enospc"))
        });
        assert!(result.is_err());
        assert_eq!(retries, 0, "exhaustion short-circuits the backoff loop");
    }
}
