//! Property-based tests of the NGPC hardware model.

use ng_neural::apps::nsdf::NsdfModel;
use ng_neural::apps::EncodingKind;
use ngpc::emulator::{emulate, EmulatorInput};
use ngpc::engine::FusedNfp;
use ngpc::sched::{frame_stream, overlapped_makespan_ms};
use ngpc::NfpConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn emulator_output_relations_hold(
        n in 1u32..512,
        clock in 0.2f64..4.0,
    ) {
        let r = emulate(&EmulatorInput {
            nfp_units: n,
            nfp: NfpConfig { clock_ghz: clock, ..NfpConfig::default() },
            ..EmulatorInput::default()
        });
        // A sufficiently starved NGPC (one slow NFP) may lose to the GPU;
        // the definition of speedup must still be self-consistent.
        prop_assert!((r.speedup - r.gpu_ms / r.ngpc_frame_ms).abs() < 1e-9);
        prop_assert!(r.speedup <= r.amdahl_bound + 1e-9);
        prop_assert!((r.gpu_accel_ms + r.gpu_rest_ms - r.gpu_ms).abs() < 1e-9);
        // Plateaued iff the fused-rest stage dominates.
        prop_assert_eq!(r.plateaued, r.ngpc_accel_ms <= r.fused_rest_ms);
    }

    #[test]
    fn fused_nfp_matches_reference_for_random_sram_configs(
        sram_kb in 64usize..4096,
        banks_log2 in 0u32..5,
        x in 0.0f32..1.0,
        y in 0.0f32..1.0,
        z in 0.0f32..1.0,
    ) {
        // Functional output must be independent of SRAM capacity/banking
        // (those only change timing).
        let model = NsdfModel::new(EncodingKind::LowResDenseGrid, 3);
        let cfg = NfpConfig {
            grid_sram_bytes: sram_kb * 1024,
            grid_sram_banks: 1 << banks_log2,
            ..NfpConfig::default()
        };
        let mut nfp = FusedNfp::from_field(cfg, model.field()).unwrap();
        let p = [x, y, z];
        prop_assert_eq!(nfp.query(&p).unwrap(), model.field().forward(&p).unwrap());
    }

    #[test]
    fn frame_streams_always_validate_and_conserve_queries(
        queries in 1u64..10_000_000,
        batches in 1u64..100,
        table_bytes in 0u64..100_000_000,
    ) {
        let buf = frame_stream(
            ng_neural::apps::AppKind::Nvr,
            EncodingKind::MultiResDenseGrid,
            table_bytes,
            queries,
            batches,
        );
        prop_assert!(buf.validate().is_ok());
        prop_assert_eq!(buf.dispatched_queries(), queries);
    }

    #[test]
    fn overlap_monotone_in_stage_times(
        a in 0.01f64..5.0,
        b in 0.01f64..5.0,
        extra in 0.0f64..5.0,
        n in 1u64..50,
    ) {
        let base = overlapped_makespan_ms(n, a, b);
        prop_assert!(overlapped_makespan_ms(n, a + extra, b) + 1e-12 >= base);
        prop_assert!(overlapped_makespan_ms(n, a, b + extra) + 1e-12 >= base);
        prop_assert!(overlapped_makespan_ms(n + 1, a, b) > base);
    }

    #[test]
    fn bandwidth_rows_scale_and_stay_positive(
        px in 100_000u64..40_000_000,
        fps in 10.0f64..240.0,
    ) {
        use ngpc::bandwidth::bandwidth_row;
        for app in ng_neural::apps::AppKind::ALL {
            let r = bandwidth_row(app, px, fps);
            prop_assert!(r.input_gbps > 0.0 && r.output_gbps > 0.0);
            prop_assert!(r.total_gbps + 1e-9 >= r.input_gbps + r.output_gbps);
            prop_assert!(r.access_time_ms > 0.0);
        }
    }

    #[test]
    fn more_macs_or_engines_never_decrease_throughput(
        mac_rows in 1u32..256,
        mac_cols in 1u32..256,
        engines in 1u32..64,
        extra_rows in 1u32..256,
        extra_cols in 1u32..256,
        extra_engines in 1u32..32,
    ) {
        use ngpc::emulator::per_sample_cycles;
        for enc in EncodingKind::ALL {
            for app in ng_neural::apps::AppKind::ALL {
                let base = NfpConfig {
                    mac_rows, mac_cols, encoding_engines: engines, ..NfpConfig::default()
                };
                let c0 = per_sample_cycles(app, enc, &base);
                // Growing any of the three axes never increases the
                // per-query issue interval (= never decreases modelled
                // throughput), individually or together.
                let grown = [
                    NfpConfig { mac_rows: mac_rows + extra_rows, ..base },
                    NfpConfig { mac_cols: mac_cols + extra_cols, ..base },
                    NfpConfig { encoding_engines: engines + extra_engines, ..base },
                    NfpConfig {
                        mac_rows: mac_rows + extra_rows,
                        mac_cols: mac_cols + extra_cols,
                        encoding_engines: engines + extra_engines,
                        ..base
                    },
                ];
                for g in grown {
                    let c1 = per_sample_cycles(app, enc, &g);
                    prop_assert!(
                        c1 <= c0 + 1e-12,
                        "{app}/{enc}: {c1} > {c0} ({base:?} -> {g:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn default_layer_mapping_equals_legacy_tile_model(
        mac_rows in 1u32..=1024,
        mac_cols in 1u32..=1024,
        engines in 1u32..=64,
        lanes in 1u32..=16,
        fifo in 1u32..=4096,
        banks_log2 in 0u32..7,
        sram_kb in 4usize..4096,
        clock in 0.1f64..5.0,
    ) {
        // ISSUE-10 acceptance: the pluggable default mapping reproduces
        // the legacy `rows.div_ceil(mac_rows) * cols.div_ceil(mac_cols)`
        // tile model bit-exactly for every valid NfpConfig — both at the
        // per-layer level and through the fused per-query interval.
        use ngpc::emulator::{mlp_layer_shapes, per_sample_cycles, per_sample_cycles_with};
        use ngpc::{FixedTiling, LayerMapping};
        let nfp = NfpConfig {
            mac_rows,
            mac_cols,
            encoding_engines: engines,
            lanes_per_engine: lanes,
            input_fifo_depth: fifo,
            grid_sram_banks: 1 << banks_log2,
            grid_sram_bytes: sram_kb * 1024,
            clock_ghz: clock,
        };
        prop_assert!(nfp.validate().is_ok());
        for enc in EncodingKind::ALL {
            for app in ng_neural::apps::AppKind::ALL {
                for (rows, cols) in mlp_layer_shapes(app, enc) {
                    let legacy = (rows.div_ceil(mac_rows as usize)
                        * cols.div_ceil(mac_cols as usize)) as f64;
                    prop_assert_eq!(FixedTiling.layer_cycles(rows, cols, &nfp), legacy);
                }
                prop_assert_eq!(
                    per_sample_cycles_with(app, enc, &nfp, &FixedTiling),
                    per_sample_cycles(app, enc, &nfp),
                    "{}/{}", app, enc
                );
            }
        }
    }

    #[test]
    fn mac_engine_axes_monotone_in_end_to_end_speedup(
        n in 1u32..128,
        mac_shift in 0u32..3,
        engine_shift in 0u32..3,
    ) {
        use ngpc::emulator::mac_engine_factor;
        // End to end: a bigger MAC array or engine gang never slows a
        // configuration down (speedup is monotone through the factor,
        // the SRAM-pressure coupling, and the Amdahl cap).
        let dims = [32u32, 64, 128];
        let engines = [8u32, 16, 32];
        for enc in EncodingKind::ALL {
            for app in ng_neural::apps::AppKind::ALL {
                let small = NfpConfig {
                    mac_rows: dims[mac_shift as usize],
                    mac_cols: dims[mac_shift as usize],
                    encoding_engines: engines[engine_shift as usize],
                    ..NfpConfig::default()
                };
                let factor = mac_engine_factor(app, enc, &small);
                prop_assert!(factor.is_finite() && factor > 0.0);
                let lo = emulate(&EmulatorInput {
                    app, encoding: enc, nfp_units: n, nfp: small,
                    ..EmulatorInput::default()
                });
                let hi = emulate(&EmulatorInput {
                    app, encoding: enc, nfp_units: n,
                    nfp: NfpConfig {
                        mac_rows: 128, mac_cols: 128, encoding_engines: 32,
                        ..NfpConfig::default()
                    },
                    ..EmulatorInput::default()
                });
                prop_assert!(
                    hi.speedup + 1e-9 >= lo.speedup,
                    "{app}/{enc} N={n}: {} < {}", hi.speedup, lo.speedup
                );
            }
        }
    }
}

#[test]
fn compositional_model_equals_legacy_slopes_at_paper_nfp() {
    // ISSUE-3 acceptance: at the paper's NFP (16 engines, 64x64 MACs,
    // 1 GHz) the compositional model reproduces the calibrated legacy
    // slopes for every (app, encoding) pair — checked through the
    // emulator's public surface against the pinned paper-preset
    // outputs: the MAC/engine factor must be *exactly* 1.0 so that
    // every published number is byte-identical.
    use ngpc::emulator::{mac_engine_factor, per_sample_cycles};
    let paper = NfpConfig::default();
    for enc in EncodingKind::ALL {
        for app in ng_neural::apps::AppKind::ALL {
            let factor = mac_engine_factor(app, enc, &paper);
            assert!((factor - 1.0).abs() < 1e-9, "{app}/{enc}: {factor}");
            assert_eq!(factor, 1.0, "{app}/{enc}: must be exact, not just close");
            assert!(per_sample_cycles(app, enc, &paper) >= 1.0);
        }
    }
}
