//! NGPC input/output bandwidth and data access time (paper Table III).
//!
//! The NGPC exchanges query inputs and results with the GPU through the
//! shared L2/DRAM. NeRF's two-network pipeline streams its working set
//! twice (density pass + color pass), doubling its total traffic; the
//! other applications stream once. Access time is the per-frame traffic
//! served at the GPU's DRAM bandwidth — with the paper's constants this
//! reproduces Table III's 4.126 ms (NeRF) and 1.238 ms (others).

use ng_neural::apps::AppKind;
use serde::{Deserialize, Serialize};

/// DRAM bandwidth of the host GPU (RTX 3090), GB/s.
pub const GPU_DRAM_BW_GBPS: f64 = 936.2;

/// The 4k frame / 60 FPS operating point Table III is quoted at.
pub const TABLE3_PIXELS: u64 = 3840 * 2160;
/// Frames per second of the Table III operating point.
pub const TABLE3_FPS: f64 = 60.0;

/// Input bytes per pixel streamed to the NGPC (positions + view
/// directions for the frame's samples).
fn input_bytes_per_pixel(app: AppKind) -> f64 {
    match app {
        // 16 samples x (3 coords + 2 angles) fp16 ~ 140 B.
        AppKind::Nerf => 139.7,
        // One streaming pass of ~70 B of sample state per pixel.
        _ => 69.85,
    }
}

/// Output bytes per pixel streamed back from the NGPC.
fn output_bytes_per_pixel(app: AppKind) -> f64 {
    match app {
        // 16 samples x (RGB, sigma) fp16 minus early-terminated tails.
        AppKind::Nerf => 93.13,
        _ => 69.85,
    }
}

/// Streaming passes over the working set (NeRF: density + color).
fn streaming_passes(app: AppKind) -> f64 {
    match app {
        AppKind::Nerf => 2.0,
        _ => 1.0,
    }
}

/// One Table III row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthRow {
    /// Application.
    pub app: AppKind,
    /// Input bandwidth in GB/s.
    pub input_gbps: f64,
    /// Output bandwidth in GB/s.
    pub output_gbps: f64,
    /// Total bandwidth in GB/s (all streaming passes).
    pub total_gbps: f64,
    /// Data access time per frame in ms at the GPU's DRAM bandwidth.
    pub access_time_ms: f64,
}

/// Compute a Table III row for an arbitrary operating point.
pub fn bandwidth_row(app: AppKind, pixels: u64, fps: f64) -> BandwidthRow {
    let px = pixels as f64;
    let input_gbps = input_bytes_per_pixel(app) * px * fps / 1e9;
    let output_gbps = output_bytes_per_pixel(app) * px * fps / 1e9;
    let total_gbps = streaming_passes(app) * (input_gbps + output_gbps);
    let per_frame_gb = total_gbps / fps;
    let access_time_ms = per_frame_gb / GPU_DRAM_BW_GBPS * 1e3;
    BandwidthRow { app, input_gbps, output_gbps, total_gbps, access_time_ms }
}

/// The full Table III (4k @ 60 FPS).
pub fn table3() -> Vec<BandwidthRow> {
    AppKind::ALL.iter().map(|&app| bandwidth_row(app, TABLE3_PIXELS, TABLE3_FPS)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(app: AppKind) -> BandwidthRow {
        bandwidth_row(app, TABLE3_PIXELS, TABLE3_FPS)
    }

    #[test]
    fn nerf_matches_table3() {
        let r = row(AppKind::Nerf);
        assert!((r.input_gbps - 69.523).abs() < 0.15, "in {}", r.input_gbps);
        assert!((r.output_gbps - 46.349).abs() < 0.15, "out {}", r.output_gbps);
        assert!((r.total_gbps - 231.743).abs() < 0.5, "total {}", r.total_gbps);
        assert!((r.access_time_ms - 4.126).abs() < 0.02, "access {}", r.access_time_ms);
    }

    #[test]
    fn other_apps_match_table3() {
        for app in [AppKind::Nsdf, AppKind::Gia, AppKind::Nvr] {
            let r = row(app);
            assert!((r.input_gbps - 34.761).abs() < 0.1, "{app} in {}", r.input_gbps);
            assert!((r.output_gbps - 34.761).abs() < 0.1, "{app} out {}", r.output_gbps);
            assert!((r.total_gbps - 69.523).abs() < 0.2, "{app} total {}", r.total_gbps);
            assert!((r.access_time_ms - 1.238).abs() < 0.01, "{app} t {}", r.access_time_ms);
        }
    }

    #[test]
    fn bandwidth_well_below_gpu_dram_bandwidth() {
        // Paper: "~24% of the GPU memory bandwidth for NeRF and only ~7%
        // for NSDF, NVR and GIA".
        let nerf_frac = row(AppKind::Nerf).total_gbps / GPU_DRAM_BW_GBPS;
        assert!((nerf_frac - 0.247).abs() < 0.01, "{nerf_frac}");
        let nsdf_frac = row(AppKind::Nsdf).total_gbps / GPU_DRAM_BW_GBPS;
        assert!((nsdf_frac - 0.0742).abs() < 0.005, "{nsdf_frac}");
    }

    #[test]
    fn bandwidth_scales_with_fps_and_pixels() {
        let base = bandwidth_row(AppKind::Gia, TABLE3_PIXELS, 60.0);
        let double_fps = bandwidth_row(AppKind::Gia, TABLE3_PIXELS, 120.0);
        assert!((double_fps.total_gbps / base.total_gbps - 2.0).abs() < 1e-9);
        // Access time per frame is fps-independent but pixel-dependent.
        assert!((double_fps.access_time_ms - base.access_time_ms).abs() < 1e-9);
        let half_px = bandwidth_row(AppKind::Gia, TABLE3_PIXELS / 2, 60.0);
        assert!((half_px.access_time_ms * 2.0 - base.access_time_ms).abs() < 1e-6);
    }

    #[test]
    fn table3_has_all_apps() {
        assert_eq!(table3().len(), 4);
    }
}
