//! Per-layer MLP tilings as first-class, pluggable mappings.
//!
//! Until ISSUE 10 the MLP engine's tiling was a constant baked into
//! [`crate::emulator::per_sample_cycles`]: every layer matrix costs
//! `rows.div_ceil(mac_rows) * cols.div_ceil(mac_cols)` cycles — the
//! paper's fixed weight-stationary dataflow, one full-array tile per
//! cycle. That is still the default ([`FixedTiling`], reproduced
//! bit-exactly), but the timing stack now takes the tiling as a
//! [`LayerMapping`] value, so an external mapping search (`ng-timeloop`
//! via `dse --map-search`) can feed a better per-layer schedule back
//! into the end-to-end model without forking the emulator.
//!
//! The contract a mapping must honour: [`LayerMapping::layer_cycles`]
//! returns the *per-query* MAC-array occupancy (cycles one query of a
//! `rows x cols` weight matrix holds the array), the same unit
//! [`FixedTiling`] charges. Everything downstream — stage fusion, the
//! MAC/engine factor ratio, the end-to-end slope — is unit-agnostic.

use ng_neural::mlp::MlpConfig;

use crate::config::NfpConfig;

/// A per-layer tiling policy: cycles one query of a `rows x cols`
/// weight matrix occupies the `mac_rows x mac_cols` MAC array.
pub trait LayerMapping {
    /// Per-query cycles for one layer matrix of shape `(rows, cols)`
    /// on `nfp`'s MLP engine.
    fn layer_cycles(&self, rows: usize, cols: usize, nfp: &NfpConfig) -> f64;
}

/// The paper's fixed dataflow: the array computes one full
/// `mac_rows x mac_cols` tile per cycle, so a layer matrix costs
/// `rows.div_ceil(mac_rows) * cols.div_ceil(mac_cols)` cycles —
/// bit-exactly the constant the emulator charged before mappings were
/// pluggable (the property test in `tests/mapping_props.rs` pins this
/// for every valid [`NfpConfig`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedTiling;

impl LayerMapping for FixedTiling {
    fn layer_cycles(&self, rows: usize, cols: usize, nfp: &NfpConfig) -> f64 {
        let (mac_rows, mac_cols) = (nfp.mac_rows.max(1) as usize, nfp.mac_cols.max(1) as usize);
        (rows.div_ceil(mac_rows) * cols.div_ceil(mac_cols)) as f64
    }
}

/// A table of searched per-layer cycle counts keyed by layer shape,
/// with [`FixedTiling`] as the fallback for shapes the table does not
/// cover. This is the bridge an external mapper uses: `dse
/// --map-search` fills one table per NFP configuration from
/// `ng_timeloop::best_mapping` results (memoized in its mapping-memo
/// store) and evaluates the point through
/// [`crate::emulator::emulate_with_mapping`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MappingTable {
    entries: Vec<((usize, usize), f64)>,
}

impl MappingTable {
    /// An empty table (pure [`FixedTiling`] behaviour).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the per-query cycles of layer shape `(rows, cols)`
    /// (replacing any previous entry for that shape).
    pub fn set(&mut self, rows: usize, cols: usize, cycles: f64) {
        match self.entries.iter_mut().find(|(shape, _)| *shape == (rows, cols)) {
            Some((_, c)) => *c = cycles,
            None => self.entries.push(((rows, cols), cycles)),
        }
    }

    /// The table's entry for a shape, if any.
    pub fn get(&self, rows: usize, cols: usize) -> Option<f64> {
        self.entries.iter().find(|(shape, _)| *shape == (rows, cols)).map(|(_, c)| *c)
    }

    /// Number of shapes covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table covers no shapes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl LayerMapping for MappingTable {
    fn layer_cycles(&self, rows: usize, cols: usize, nfp: &NfpConfig) -> f64 {
        self.get(rows, cols).unwrap_or_else(|| FixedTiling.layer_cycles(rows, cols, nfp))
    }
}

/// Total per-query MAC-array cycles of one MLP under a mapping: the sum
/// of [`LayerMapping::layer_cycles`] over the network's weight
/// matrices. The mapping-aware generalisation of the emulator's legacy
/// `mlp_tile_cycles`.
pub fn mlp_cycles(mlp: &MlpConfig, nfp: &NfpConfig, mapping: &dyn LayerMapping) -> f64 {
    (0..mlp.n_matrices())
        .map(|m| {
            let (rows, cols) = mlp.matrix_shape(m);
            mapping.layer_cycles(rows, cols, nfp)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_tiling_is_the_legacy_formula() {
        let nfp = NfpConfig::default();
        assert_eq!(FixedTiling.layer_cycles(64, 64, &nfp), 1.0);
        assert_eq!(FixedTiling.layer_cycles(65, 64, &nfp), 2.0);
        assert_eq!(FixedTiling.layer_cycles(128, 128, &nfp), 4.0);
        let narrow = NfpConfig { mac_rows: 16, mac_cols: 16, ..NfpConfig::default() };
        assert_eq!(FixedTiling.layer_cycles(64, 64, &narrow), 16.0);
    }

    #[test]
    fn table_overrides_only_its_shapes() {
        let nfp = NfpConfig::default();
        let mut table = MappingTable::new();
        assert!(table.is_empty());
        table.set(64, 64, 0.5);
        table.set(64, 64, 0.25); // replace, not duplicate
        assert_eq!(table.len(), 1);
        assert_eq!(table.layer_cycles(64, 64, &nfp), 0.25);
        // Uncovered shapes fall back to the fixed tiling.
        assert_eq!(table.layer_cycles(128, 64, &nfp), FixedTiling.layer_cycles(128, 64, &nfp));
    }

    #[test]
    fn mlp_cycles_sums_layer_matrices() {
        // Table I NSDF MLP: 32 -> 64 x4 -> 1 on the paper's 64x64 array:
        // every matrix is one tile.
        let mlp = MlpConfig::neural_graphics(32, 4, 1, ng_neural::math::Activation::None);
        let nfp = NfpConfig::default();
        assert_eq!(mlp_cycles(&mlp, &nfp, &FixedTiling), 5.0);
    }
}
