//! # ngpc — the Neural Graphics Processing Cluster
//!
//! This crate implements the paper's contribution: the **Neural Fields
//! Processor (NFP)** — an input-encoding engine fused with an MLP engine
//! (paper Fig. 9) — the **NGPC** cluster of N NFPs attached to a GPU
//! (Fig. 10), and the **evaluation emulator** (Fig. 11) that estimates
//! end-to-end application performance, area and power.
//!
//! Hardware components are modelled at two levels simultaneously:
//!
//! * **Functional** — bit-exact behaviour validated against the
//!   `ng-neural` reference implementation (the shift/mask modulo of the
//!   `grid_index` module is exact because table sizes are powers of two).
//! * **Timing/energy** — cycle accounting per module, SRAM bank conflict
//!   modelling, and pipeline composition, feeding the emulator.
//!
//! ## Quickstart
//!
//! ```
//! use ngpc::emulator::{emulate, EmulatorInput};
//! use ng_neural::apps::{AppKind, EncodingKind};
//!
//! let result = emulate(&EmulatorInput {
//!     app: AppKind::Nerf,
//!     encoding: EncodingKind::MultiResHashGrid,
//!     pixels: 1920 * 1080,
//!     nfp_units: 64,
//!     ..EmulatorInput::default()
//! });
//! assert!(result.speedup > 30.0);
//! assert!(result.speedup <= result.amdahl_bound + 1e-9);
//! ```

pub mod bandwidth;
pub mod cluster;
pub mod config;
pub mod emulator;
pub mod engine;
pub mod error;
pub mod kernels;
pub mod mapping;
pub mod pixels;
pub mod sched;

pub use config::{NfpConfig, NgpcConfig};
pub use emulator::{
    emulate, emulate_batched, emulate_many, emulate_with_mapping, mac_engine_factor,
    mac_engine_factor_with, mlp_layer_shapes, mlp_query_cycles, per_sample_cycles,
    per_sample_cycles_with, EmulationContext, EmulationResult, EmulatorInput, EmulatorInputBuilder,
};
pub use error::{NgpcError, Result};
pub use mapping::{mlp_cycles, FixedTiling, LayerMapping, MappingTable};
