//! Hardware configuration of the NFP and the NGPC cluster.

use serde::{Deserialize, Serialize};

use crate::error::{NgpcError, Result};

/// Configuration of a single Neural Fields Processor (paper Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NfpConfig {
    /// Number of input-encoding engines (16 — the maximum level count of
    /// the studied encodings).
    pub encoding_engines: u32,
    /// Grid SRAM per encoding engine in bytes (1 MB: sized so one
    /// resolution level's table fits on-chip).
    pub grid_sram_bytes: usize,
    /// SRAM banks per grid SRAM; with `2^d` banks all corners of a cell
    /// can be fetched in one cycle.
    pub grid_sram_banks: u32,
    /// Query lanes per encoding engine (parallel corner-fetch pipelines).
    pub lanes_per_engine: u32,
    /// MAC array rows of the MLP engine.
    pub mac_rows: u32,
    /// MAC array columns of the MLP engine.
    pub mac_cols: u32,
    /// Input FIFO depth in entries.
    pub input_fifo_depth: u32,
    /// Operating frequency in GHz.
    pub clock_ghz: f64,
}

impl Default for NfpConfig {
    /// The paper's NFP: 16 engines, 1 MB grid SRAMs, 64x64 MACs, 1 GHz.
    fn default() -> Self {
        NfpConfig {
            encoding_engines: 16,
            grid_sram_bytes: 1 << 20,
            grid_sram_banks: 8,
            lanes_per_engine: 1,
            mac_rows: 64,
            mac_cols: 64,
            input_fifo_depth: 64,
            clock_ghz: 1.0,
        }
    }
}

impl NfpConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::InvalidConfig`] for zero-sized or absurd
    /// values.
    pub fn validate(&self) -> Result<()> {
        if self.encoding_engines == 0 || self.encoding_engines > 64 {
            return Err(NgpcError::InvalidConfig {
                parameter: "encoding_engines",
                message: format!("must be 1..=64, got {}", self.encoding_engines),
            });
        }
        if self.grid_sram_bytes < 4096 {
            return Err(NgpcError::InvalidConfig {
                parameter: "grid_sram_bytes",
                message: format!("must be >= 4096, got {}", self.grid_sram_bytes),
            });
        }
        if !self.grid_sram_banks.is_power_of_two() {
            return Err(NgpcError::InvalidConfig {
                parameter: "grid_sram_banks",
                message: format!("must be a power of two, got {}", self.grid_sram_banks),
            });
        }
        if self.mac_rows == 0 || self.mac_cols == 0 {
            return Err(NgpcError::InvalidConfig {
                parameter: "mac_array",
                message: "MAC array dimensions must be nonzero".to_string(),
            });
        }
        if self.mac_rows > 1024 || self.mac_cols > 1024 {
            return Err(NgpcError::InvalidConfig {
                parameter: "mac_array",
                message: format!(
                    "MAC array dimensions must be <= 1024, got {}x{}",
                    self.mac_rows, self.mac_cols
                ),
            });
        }
        if self.input_fifo_depth == 0 || self.input_fifo_depth > 4096 {
            return Err(NgpcError::InvalidConfig {
                parameter: "input_fifo_depth",
                message: format!("must be 1..=4096, got {}", self.input_fifo_depth),
            });
        }
        if !(0.1..=5.0).contains(&self.clock_ghz) {
            return Err(NgpcError::InvalidConfig {
                parameter: "clock_ghz",
                message: format!("must be in [0.1, 5.0], got {}", self.clock_ghz),
            });
        }
        if self.lanes_per_engine == 0 || self.lanes_per_engine > 16 {
            return Err(NgpcError::InvalidConfig {
                parameter: "lanes_per_engine",
                message: format!("must be 1..=16, got {}", self.lanes_per_engine),
            });
        }
        Ok(())
    }

    /// Total MAC units in the MLP engine.
    pub fn mac_count(&self) -> u32 {
        self.mac_rows * self.mac_cols
    }

    /// Clock period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// The equivalent floorplan for the area/power substrate. The MLP
    /// engine's weight and activation SRAMs are provisioned
    /// proportionally to the MAC array (the paper's 128 KiB / 32 KiB at
    /// 64x64 set the per-MAC ratio), so sweeping the array resizes its
    /// buffering with it; floored at one 4 KiB macro.
    pub fn floorplan(&self) -> ng_hw::NfpFloorplan {
        let macs = self.mac_count() as u64;
        ng_hw::NfpFloorplan {
            encoding_engines: self.encoding_engines,
            lanes_per_engine: self.lanes_per_engine,
            grid_sram_bytes: self.grid_sram_bytes as u64,
            grid_sram_banks: self.grid_sram_banks,
            mac_rows: self.mac_rows,
            mac_cols: self.mac_cols,
            weight_sram_bytes: (128 * 1024 * macs / 4096).max(4096),
            activation_sram_bytes: (32 * 1024 * macs / 4096).max(4096),
            input_fifo_depth: self.input_fifo_depth,
            clock_ghz: self.clock_ghz,
        }
    }
}

/// Configuration of a Neural Graphics Processing Cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NgpcConfig {
    /// Number of NFP units — the paper's "scaling factor" (8/16/32/64).
    pub nfp_units: u32,
    /// Per-NFP configuration.
    pub nfp: NfpConfig,
}

impl NgpcConfig {
    /// The paper's evaluated scaling factors.
    pub const SCALING_FACTORS: [u32; 4] = [8, 16, 32, 64];

    /// An NGPC with `nfp_units` default NFPs.
    pub fn with_units(nfp_units: u32) -> Self {
        NgpcConfig { nfp_units, nfp: NfpConfig::default() }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::InvalidConfig`] if the unit count is zero or
    /// the NFP configuration is invalid.
    pub fn validate(&self) -> Result<()> {
        if self.nfp_units == 0 || self.nfp_units > 1024 {
            return Err(NgpcError::InvalidConfig {
                parameter: "nfp_units",
                message: format!("must be 1..=1024, got {}", self.nfp_units),
            });
        }
        self.nfp.validate()
    }
}

impl Default for NgpcConfig {
    fn default() -> Self {
        NgpcConfig::with_units(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = NfpConfig::default();
        assert_eq!(c.encoding_engines, 16);
        assert_eq!(c.grid_sram_bytes, 1 << 20);
        assert_eq!(c.mac_count(), 4096);
        assert_eq!(c.clock_ghz, 1.0);
        c.validate().unwrap();
    }

    #[test]
    fn scaling_factors_are_the_papers() {
        assert_eq!(NgpcConfig::SCALING_FACTORS, [8, 16, 32, 64]);
        for n in NgpcConfig::SCALING_FACTORS {
            NgpcConfig::with_units(n).validate().unwrap();
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = NfpConfig { encoding_engines: 0, ..NfpConfig::default() };
        assert!(bad.validate().is_err());
        let bad = NfpConfig { grid_sram_banks: 3, ..NfpConfig::default() };
        assert!(bad.validate().is_err());
        let bad = NfpConfig { clock_ghz: 99.0, ..NfpConfig::default() };
        assert!(bad.validate().is_err());
        let bad = NfpConfig { mac_rows: 0, ..NfpConfig::default() };
        assert!(bad.validate().is_err());
        let bad = NfpConfig { mac_cols: 2048, ..NfpConfig::default() };
        assert!(bad.validate().is_err());
        let bad = NfpConfig { input_fifo_depth: 0, ..NfpConfig::default() };
        assert!(bad.validate().is_err());
        assert!(NgpcConfig { nfp_units: 0, nfp: NfpConfig::default() }.validate().is_err());
    }

    #[test]
    fn floorplan_mirrors_config() {
        let c = NfpConfig::default();
        let f = c.floorplan();
        assert_eq!(f.encoding_engines, 16);
        assert_eq!(f.lanes_per_engine, 1);
        assert_eq!(f.input_fifo_depth, 64);
        assert_eq!(f.grid_sram_bytes, 1 << 20);
        assert_eq!(f.mac_rows * f.mac_cols, 4096);
        // The paper's MLP buffering is reproduced exactly at 64x64...
        assert_eq!(f.weight_sram_bytes, 128 * 1024);
        assert_eq!(f.activation_sram_bytes, 32 * 1024);
        // ... and scales with the array elsewhere (floored at 4 KiB).
        let wide = NfpConfig { mac_rows: 128, mac_cols: 128, ..c }.floorplan();
        assert_eq!(wide.weight_sram_bytes, 4 * 128 * 1024);
        let tiny = NfpConfig { mac_rows: 8, mac_cols: 8, ..c }.floorplan();
        assert_eq!(tiny.activation_sram_bytes, 4096);
    }
}
