//! The Neural Fields Processor engines (paper Fig. 9).
//!
//! The input-encoding engine is a pipeline of the hardware modules the
//! paper names — input FIFO ([`fifo`]), `grid_scale` ([`grid_scale`]),
//! `pos_fract` ([`pos_fract`]), `grid_index` ([`grid_index`]) backed by
//! the per-engine grid SRAM ([`sram`]), and `interpol_weights` (folded
//! into [`encoding_engine`]). The MLP engine ([`mlp_engine`]) is a 64x64
//! MAC array computing one layer at a time. [`fusion`] composes both into
//! a fused NFP whose encoding outputs feed the MLP input memory directly,
//! eliminating the DRAM round trip of the GPU implementation (Fig. 7).

pub mod encoding_engine;
pub mod fifo;
pub mod fusion;
pub mod grid_index;
pub mod grid_scale;
pub mod mlp_engine;
pub mod pos_fract;
pub mod sram;

pub use encoding_engine::{EncodingCluster, EncodingEngine};
pub use fusion::{FusedNfp, FusedStats};
pub use mlp_engine::MlpEngine;
