//! The MLP engine: a 64x64 grid of MAC units computing one layer of the
//! multi-layer perceptron at a time, with a dedicated small SRAM for the
//! intermediate features (paper Fig. 9-b).

use ng_neural::math::Activation;
use ng_neural::mlp::Mlp;

use crate::config::NfpConfig;
use crate::error::{NgpcError, Result};

/// Execution statistics of the MLP engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MlpEngineStats {
    /// Multiply-accumulate operations issued.
    pub macs: u64,
    /// Layer passes executed.
    pub layer_passes: u64,
    /// Total cycles consumed.
    pub cycles: u64,
}

/// One staged weight matrix.
#[derive(Debug, Clone)]
struct StagedLayer {
    rows: usize,
    cols: usize,
    weights: Vec<f32>,
    /// ReLU for hidden layers, the network's output activation for the
    /// final layer (always `None` for the raw-output app models).
    activation: Activation,
}

/// The 64x64 MAC array with staged weights.
#[derive(Debug, Clone)]
pub struct MlpEngine {
    mac_rows: usize,
    mac_cols: usize,
    layers: Vec<StagedLayer>,
    stats: MlpEngineStats,
}

impl MlpEngine {
    /// Create an engine from the NFP configuration.
    pub fn new(config: &NfpConfig) -> Self {
        MlpEngine {
            mac_rows: config.mac_rows as usize,
            mac_cols: config.mac_cols as usize,
            layers: Vec::new(),
            stats: MlpEngineStats::default(),
        }
    }

    /// Stage the weights of `mlp` into the engine's weight SRAM.
    pub fn load_weights(&mut self, mlp: &Mlp) {
        let cfg = *mlp.config();
        self.layers = (0..cfg.n_matrices())
            .map(|m| {
                let (rows, cols) = cfg.matrix_shape(m);
                StagedLayer {
                    rows,
                    cols,
                    weights: mlp.matrix(m).to_vec(),
                    activation: if m == cfg.hidden_layers {
                        cfg.output_activation
                    } else {
                        Activation::Relu
                    },
                }
            })
            .collect();
    }

    /// Whether weights are staged.
    pub fn is_loaded(&self) -> bool {
        !self.layers.is_empty()
    }

    /// Forward one feature vector through the staged network.
    ///
    /// Bit-identical to [`Mlp::forward`]: each output row accumulates in
    /// increasing input order, exactly as the reference GEMV does, so the
    /// f32 results match exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::ProgrammingModel`] if no weights are staged,
    /// or a dimension error for bad input width.
    pub fn forward(&mut self, input: &[f32]) -> Result<Vec<f32>> {
        if self.layers.is_empty() {
            return Err(NgpcError::ProgrammingModel {
                message: "mlp engine used before weights were loaded".to_string(),
            });
        }
        if input.len() != self.layers[0].cols {
            return Err(NgpcError::Neural(ng_neural::NgError::DimensionMismatch {
                context: "mlp engine input",
                expected: self.layers[0].cols,
                actual: input.len(),
            }));
        }
        let mut cur = input.to_vec();
        let n_layers = self.layers.len();
        let mac_rows = self.mac_rows;
        let mac_cols = self.mac_cols;
        let mut macs = 0u64;
        let mut passes = 0u64;
        let mut cycles = 0u64;
        for layer in &self.layers {
            let mut next = vec![0.0f32; layer.rows];
            // The array computes tiles of mac_rows outputs x mac_cols
            // inputs per cycle; iterating k-tiles in increasing order
            // keeps the accumulation order identical to the reference.
            let row_tiles = layer.rows.div_ceil(mac_rows);
            let col_tiles = layer.cols.div_ceil(mac_cols);
            for rt in 0..row_tiles {
                let row_end = ((rt + 1) * mac_rows).min(layer.rows);
                for (r, slot) in next[rt * mac_rows..row_end].iter_mut().enumerate() {
                    let r = rt * mac_rows + r;
                    let row = &layer.weights[r * layer.cols..(r + 1) * layer.cols];
                    let mut acc = 0.0f32;
                    for (w, x) in row.iter().zip(&cur) {
                        acc += w * x;
                    }
                    *slot = acc;
                }
            }
            macs += (layer.rows * layer.cols) as u64;
            passes += 1;
            // One batch element occupies the array for row_tiles x
            // col_tiles cycles per layer (64x64 MACs fire per cycle).
            cycles += (row_tiles * col_tiles) as u64;
            layer.activation.apply_slice(&mut next);
            cur = next;
        }
        self.stats.macs += macs;
        self.stats.layer_passes += passes;
        self.stats.cycles += cycles + n_layers as u64; // activation latch per layer
        Ok(cur)
    }

    /// Cycle model for a batch of `n` queries: the array processes one
    /// query-layer tile per cycle, pipelined back-to-back, one layer at a
    /// time over the whole batch (intermediate activations stay in the
    /// dedicated SRAM).
    pub fn batch_cycles(&self, n: u64) -> u64 {
        let per_query: u64 = self
            .layers
            .iter()
            .map(|l| (l.rows.div_ceil(self.mac_rows) * l.cols.div_ceil(self.mac_cols)) as u64)
            .sum();
        let pipeline_fill = 8;
        n * per_query.max(1) + pipeline_fill
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MlpEngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ng_neural::mlp::MlpConfig;

    fn reference(input_dim: usize, layers: usize, out: usize) -> Mlp {
        Mlp::new(MlpConfig::neural_graphics(input_dim, layers, out, Activation::None), 5).unwrap()
    }

    #[test]
    fn forward_matches_reference_bit_exactly() {
        let mlp = reference(32, 4, 3);
        let mut engine = MlpEngine::new(&NfpConfig::default());
        engine.load_weights(&mlp);
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        let hw = engine.forward(&x).unwrap();
        let sw = mlp.forward(&x).unwrap();
        assert_eq!(hw, sw);
    }

    #[test]
    fn forward_matches_for_wide_layers_spanning_tiles() {
        // 100-wide input exercises multi-tile accumulation.
        let mlp = Mlp::new(
            MlpConfig {
                input_dim: 100,
                hidden_dim: 96,
                hidden_layers: 2,
                output_dim: 7,
                output_activation: Activation::Sigmoid,
            },
            9,
        )
        .unwrap();
        let mut engine = MlpEngine::new(&NfpConfig::default());
        engine.load_weights(&mlp);
        let x: Vec<f32> = (0..100).map(|i| (i as f32 * 0.13).cos()).collect();
        assert_eq!(engine.forward(&x).unwrap(), mlp.forward(&x).unwrap());
    }

    #[test]
    fn unloaded_engine_errors() {
        let mut engine = MlpEngine::new(&NfpConfig::default());
        assert!(engine.forward(&[0.0; 32]).is_err());
    }

    #[test]
    fn wrong_width_errors() {
        let mlp = reference(32, 2, 1);
        let mut engine = MlpEngine::new(&NfpConfig::default());
        engine.load_weights(&mlp);
        assert!(engine.forward(&[0.0; 16]).is_err());
    }

    #[test]
    fn batch_cycles_linear_in_batch() {
        let mlp = reference(32, 3, 16);
        let mut engine = MlpEngine::new(&NfpConfig::default());
        engine.load_weights(&mlp);
        let c1 = engine.batch_cycles(1_000);
        let c2 = engine.batch_cycles(2_000);
        assert!(c2 > c1 && c2 < 2 * c1 + 100);
    }

    #[test]
    fn sixty_four_wide_layers_take_one_tile_each() {
        // Table I MLPs (<=64 wide) occupy exactly one tile per layer: a
        // 4-hidden-layer net = 5 matrices = 5 cycles per query.
        let mlp = reference(64, 4, 64);
        let mut engine = MlpEngine::new(&NfpConfig::default());
        engine.load_weights(&mlp);
        assert_eq!(engine.batch_cycles(1000), 1000 * 5 + 8);
    }

    #[test]
    fn stats_accumulate_macs() {
        let mlp = reference(32, 2, 4);
        let mut engine = MlpEngine::new(&NfpConfig::default());
        engine.load_weights(&mlp);
        engine.forward(&[0.1; 32]).unwrap();
        assert_eq!(engine.stats().macs as usize, mlp.config().macs_per_inference());
    }
}
