//! The `pos_fract` module: converts normalized input coordinates to
//! absolute grid coordinates — integer cell base plus fractional offset
//! (paper Fig. 9-a).

use ng_neural::encoding::interp::CellPosition;

/// The position/fraction decomposition stage.
///
/// Stateless combinational logic; the struct exists to carry cycle and
/// operation accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PosFractUnit {
    ops: u64,
}

impl PosFractUnit {
    /// New unit with zeroed counters.
    pub fn new() -> Self {
        PosFractUnit::default()
    }

    /// Decompose normalized coordinates at the given grid scale.
    ///
    /// This is the identical computation to the software reference
    /// ([`CellPosition::from_normalized`]): multiply by scale, floor,
    /// subtract — one multiply/floor/subtract triple per dimension.
    pub fn decompose(&mut self, x: &[f32], scale: u32) -> CellPosition {
        self.ops += x.len() as u64;
        CellPosition::from_normalized(x, scale)
    }

    /// Per-dimension operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Pipeline latency of this stage in cycles (multiply + floor +
    /// subtract, pipelined).
    pub const LATENCY_CYCLES: u64 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_decomposition() {
        let mut unit = PosFractUnit::new();
        let x = [0.37f32, 0.62, 0.91];
        let hw = unit.decompose(&x, 16);
        let sw = CellPosition::from_normalized(&x, 16);
        assert_eq!(hw, sw);
    }

    #[test]
    fn counts_operations() {
        let mut unit = PosFractUnit::new();
        unit.decompose(&[0.1, 0.2, 0.3], 8);
        unit.decompose(&[0.1, 0.2], 8);
        assert_eq!(unit.ops(), 5);
    }
}
