//! The `grid_scale` module: computes each level's grid resolution from
//! the base resolution and growth factor (paper Fig. 9-a).
//!
//! In hardware the per-level scales are computed once at configuration
//! time and latched; queries then read the latched value. The arithmetic
//! must agree exactly with the software reference
//! ([`ng_neural::encoding::GridConfig::level_resolution`]) or indices
//! would diverge.

use ng_neural::encoding::GridConfig;

/// Latched per-level grid scales.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridScaleUnit {
    scales: Vec<u32>,
}

impl GridScaleUnit {
    /// Compute and latch scales for every level of `config`.
    pub fn configure(config: &GridConfig) -> Self {
        let scales = (0..config.n_levels).map(|l| config.level_resolution(l)).collect();
        GridScaleUnit { scales }
    }

    /// The latched scale (resolution `N_l`) of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn scale(&self, level: usize) -> u32 {
        self.scales[level]
    }

    /// Number of configured levels.
    pub fn levels(&self) -> usize {
        self.scales.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_resolutions() {
        let cfg = GridConfig::hashgrid(3, 19, 1.51572);
        let unit = GridScaleUnit::configure(&cfg);
        for l in 0..cfg.n_levels {
            assert_eq!(unit.scale(l), cfg.level_resolution(l), "level {l}");
        }
    }

    #[test]
    fn growth_one_keeps_resolution_constant() {
        let cfg = GridConfig::low_res_densegrid(3, 19);
        let unit = GridScaleUnit::configure(&cfg);
        assert_eq!(unit.scale(0), 128);
        assert_eq!(unit.scale(1), 128);
    }

    #[test]
    fn scales_are_monotone_for_growth_above_one() {
        let cfg = GridConfig::densegrid(3, 19);
        let unit = GridScaleUnit::configure(&cfg);
        for l in 1..unit.levels() {
            assert!(unit.scale(l) >= unit.scale(l - 1));
        }
    }
}
