//! Engine fusion: the encoding engines write their outputs directly into
//! the MLP engine's input memory (paper Section V), eliminating the
//! DRAM round trip of the GPU implementation (Fig. 7) where the encoding
//! kernel writes to device memory and the MLP kernel reads it back.

use ng_neural::apps::FieldModel;
use ng_neural::encoding::Encoding;

use super::encoding_engine::EncodingCluster;
use super::mlp_engine::MlpEngine;
use crate::config::NfpConfig;
use crate::error::Result;

/// Timing/traffic statistics of a fused batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusedStats {
    /// Queries processed.
    pub queries: u64,
    /// Encoding-stage cycles for the batch.
    pub encoding_cycles: u64,
    /// MLP-stage cycles for the batch.
    pub mlp_cycles: u64,
    /// Fused pipeline cycles (stages overlap; the slower stage wins).
    pub fused_cycles: u64,
    /// DRAM bytes the fusion avoided (the encoded-feature round trip the
    /// GPU implementation pays, at fp16).
    pub dram_bytes_saved: u64,
}

/// A fused Neural Fields Processor: encoding cluster + MLP engine.
#[derive(Debug)]
pub struct FusedNfp {
    config: NfpConfig,
    encoding: EncodingCluster,
    mlp: MlpEngine,
    feature_dim: usize,
    input_dim: usize,
    output_dim: usize,
}

impl FusedNfp {
    /// Configure an NFP for a trained encoding + MLP pair.
    ///
    /// # Errors
    ///
    /// Returns configuration errors if the grid does not map onto the
    /// engine gang.
    pub fn from_field(config: NfpConfig, field: &FieldModel) -> Result<Self> {
        Self::from_field_shared(
            config,
            field,
            &std::sync::Arc::new(field.encoding.params().to_vec()),
        )
    }

    /// Like [`FusedNfp::from_field`], sharing one copy of the grid tables
    /// (used by [`crate::cluster::Ngpc`] so N NFPs don't hold N copies).
    ///
    /// # Errors
    ///
    /// Returns configuration errors if the grid does not map onto the
    /// engine gang.
    pub fn from_field_shared(
        config: NfpConfig,
        field: &FieldModel,
        table: &std::sync::Arc<Vec<f32>>,
    ) -> Result<Self> {
        config.validate()?;
        let mut encoding = EncodingCluster::new(&config);
        encoding.configure_shared(&field.encoding, table)?;
        let mut mlp = MlpEngine::new(&config);
        mlp.load_weights(&field.mlp);
        Ok(FusedNfp {
            config,
            encoding,
            mlp,
            feature_dim: field.encoding.output_dim(),
            input_dim: field.encoding.input_dim(),
            output_dim: field.mlp.config().output_dim,
        })
    }

    /// Query dimensionality (2 or 3).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Raw output width.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Run one query through the fused pipeline.
    ///
    /// Functionally bit-identical to `FieldModel::forward` — the features
    /// never leave the chip.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn query(&mut self, x: &[f32]) -> Result<Vec<f32>> {
        let mut features = vec![0.0f32; self.feature_dim];
        self.encoding.encode_into(x, &mut features)?;
        self.mlp.forward(&features)
    }

    /// Run a batch laid out row-major (`n x input_dim`), returning the
    /// outputs (`n x output_dim`) and the fused timing statistics.
    ///
    /// # Errors
    ///
    /// Propagates engine and dimension errors.
    pub fn run_batch(&mut self, inputs: &[f32]) -> Result<(Vec<f32>, FusedStats)> {
        let d = self.input_dim;
        if d == 0 || !inputs.len().is_multiple_of(d) {
            return Err(crate::error::NgpcError::Neural(ng_neural::NgError::DimensionMismatch {
                context: "fused batch input",
                expected: d,
                actual: inputs.len(),
            }));
        }
        let n = (inputs.len() / d) as u64;
        let mut out = Vec::with_capacity(n as usize * self.output_dim);
        for q in inputs.chunks_exact(d) {
            out.extend_from_slice(&self.query(q)?);
        }
        let encoding_cycles = self.encoding.batch_cycles(n);
        let mlp_cycles = self.mlp.batch_cycles(n);
        let stats = FusedStats {
            queries: n,
            encoding_cycles,
            mlp_cycles,
            // Fused: the two engines pipeline; the batch drains at the
            // slower stage's rate.
            fused_cycles: encoding_cycles.max(mlp_cycles),
            dram_bytes_saved: n * self.feature_dim as u64 * 2 * 2, // write + read, fp16
        };
        Ok((out, stats))
    }

    /// Batch latency in nanoseconds under the fused cycle model.
    pub fn batch_time_ns(&self, n: u64) -> f64 {
        let cycles = self.encoding.batch_cycles(n).max(self.mlp.batch_cycles(n));
        cycles as f64 * self.config.cycle_ns()
    }

    /// Batch latency without fusion (stages serialise and the feature
    /// round trip costs DRAM latency) — used by the fusion ablation.
    pub fn batch_time_unfused_ns(&self, n: u64, dram_bw_gbps: f64) -> f64 {
        let cycles = self.encoding.batch_cycles(n) + self.mlp.batch_cycles(n);
        let round_trip_bytes = n as f64 * self.feature_dim as f64 * 2.0 * 2.0;
        cycles as f64 * self.config.cycle_ns() + round_trip_bytes / dram_bw_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ng_neural::apps::gia::GiaModel;
    use ng_neural::apps::nsdf::NsdfModel;
    use ng_neural::apps::EncodingKind;

    #[test]
    fn fused_query_matches_field_model_exactly() {
        let model = NsdfModel::new(EncodingKind::MultiResDenseGrid, 3);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        for &(x, y, z) in &[(0.1f32, 0.5, 0.9), (0.33, 0.66, 0.2), (0.77, 0.12, 0.05)] {
            let hw = nfp.query(&[x, y, z]).unwrap();
            let sw = model.field().forward(&[x, y, z]).unwrap();
            assert_eq!(hw, sw, "divergence at ({x},{y},{z})");
        }
    }

    #[test]
    fn fused_batch_matches_reference_for_gia() {
        let model = GiaModel::new(EncodingKind::LowResDenseGrid, 8);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        let inputs = [0.1f32, 0.2, 0.5, 0.5, 0.9, 0.8];
        let (out, stats) = nfp.run_batch(&inputs).unwrap();
        assert_eq!(stats.queries, 3);
        for (i, q) in inputs.chunks_exact(2).enumerate() {
            let sw = model.field().forward(q).unwrap();
            assert_eq!(&out[i * 3..(i + 1) * 3], &sw[..]);
        }
    }

    #[test]
    fn fusion_is_never_slower_than_serial() {
        let model = NsdfModel::new(EncodingKind::LowResDenseGrid, 2);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        let (_, stats) = nfp.run_batch(&[0.5f32; 30]).unwrap();
        assert!(stats.fused_cycles <= stats.encoding_cycles + stats.mlp_cycles);
        assert!(stats.fused_cycles >= stats.encoding_cycles.max(stats.mlp_cycles));
    }

    #[test]
    fn fusion_saves_the_feature_round_trip() {
        let model = NsdfModel::new(EncodingKind::MultiResDenseGrid, 2);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        let (_, stats) = nfp.run_batch(&[0.5f32; 30]).unwrap();
        // 10 queries x 16 features x 2 bytes x (write + read).
        assert_eq!(stats.dram_bytes_saved, 10 * 16 * 2 * 2);
    }

    #[test]
    fn unfused_time_exceeds_fused_time() {
        let model = NsdfModel::new(EncodingKind::MultiResDenseGrid, 4);
        let nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        assert!(nfp.batch_time_unfused_ns(10_000, 936.2) > nfp.batch_time_ns(10_000));
    }

    #[test]
    fn ragged_batch_rejected() {
        let model = NsdfModel::new(EncodingKind::LowResDenseGrid, 2);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).unwrap();
        assert!(nfp.run_batch(&[0.5f32; 31]).is_err());
    }
}
