//! The input-encoding engine: one per resolution level, 16 per NFP
//! (paper Fig. 9-a), plus the cluster that gangs them together.

use ng_neural::encoding::{Encoding, MultiResGrid};

use super::grid_index::{GridIndexUnit, IndexMode};
use super::grid_scale::GridScaleUnit;
use super::pos_fract::PosFractUnit;
use super::sram::GridSram;
use crate::config::NfpConfig;
use crate::error::{NgpcError, Result};

/// Metadata of the level an engine is configured for.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LevelMeta {
    resolution: u32,
    features: usize,
    dim: usize,
    /// Streaming passes per batch when the table exceeds the SRAM.
    passes: u32,
}

/// One input-encoding engine: FIFO -> grid_scale -> pos_fract ->
/// grid_index -> grid SRAM -> interpol_weights.
#[derive(Debug, Clone)]
pub struct EncodingEngine {
    sram: GridSram,
    index_unit: GridIndexUnit,
    pos_fract: PosFractUnit,
    level: Option<LevelMeta>,
    busy_cycles: u64,
}

impl EncodingEngine {
    /// Create an engine with the given SRAM capacity and banking.
    pub fn new(sram_bytes: usize, banks: u32) -> Self {
        EncodingEngine {
            sram: GridSram::new(sram_bytes, banks),
            index_unit: GridIndexUnit::new(IndexMode::Dense),
            pos_fract: PosFractUnit::new(),
            level: None,
            busy_cycles: 0,
        }
    }

    /// Configure the engine for one level of `grid`: caches the level's
    /// table in the grid SRAM and programs the index mode.
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::InvalidConfig`] for an out-of-range level.
    pub fn configure(&mut self, grid: &MultiResGrid, level_idx: usize) -> Result<()> {
        self.configure_shared(grid, &std::sync::Arc::new(grid.params().to_vec()), level_idx)
    }

    /// Like [`EncodingEngine::configure`], but reading the level's slice
    /// from a shared copy of the grid's parameter buffer (so gangs of
    /// engines don't duplicate large tables).
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::InvalidConfig`] for an out-of-range level.
    pub fn configure_shared(
        &mut self,
        grid: &MultiResGrid,
        table: &std::sync::Arc<Vec<f32>>,
        level_idx: usize,
    ) -> Result<()> {
        let level = *grid.levels().get(level_idx).ok_or_else(|| NgpcError::InvalidConfig {
            parameter: "level_idx",
            message: format!("grid has {} levels, asked for {level_idx}", grid.levels().len()),
        })?;
        let cfg = grid.config();
        let f = cfg.features_per_level;
        let passes = self.sram.load_table_shared(
            std::sync::Arc::clone(table),
            level.offset,
            level.entries,
            f,
        );
        self.index_unit = GridIndexUnit::new(if level.hashed {
            IndexMode::Hashed { log2_table_size: cfg.log2_table_size }
        } else if level.wrapped {
            IndexMode::Wrapped { log2_table_size: cfg.log2_table_size }
        } else {
            IndexMode::Dense
        });
        self.level =
            Some(LevelMeta { resolution: level.resolution, features: f, dim: cfg.dim, passes });
        Ok(())
    }

    /// Encode one query's features for the configured level into `out`,
    /// returning the cycles consumed.
    ///
    /// Bit-identical to the software reference: the same corner order,
    /// the same zero-weight skip, the same accumulation order.
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::ProgrammingModel`] if the engine is not
    /// configured, or a dimension error for bad slice lengths.
    pub fn encode_into(&mut self, x: &[f32], out: &mut [f32]) -> Result<u64> {
        let meta = self.level.ok_or_else(|| NgpcError::ProgrammingModel {
            message: "encoding engine used before configure".to_string(),
        })?;
        if x.len() != meta.dim || out.len() != meta.features {
            return Err(NgpcError::Neural(ng_neural::NgError::DimensionMismatch {
                context: "encoding engine query",
                expected: meta.dim,
                actual: x.len(),
            }));
        }
        out.iter_mut().for_each(|o| *o = 0.0);
        let cell = self.pos_fract.decompose(x, meta.resolution);
        let mut entries = [0usize; 8];
        let corners = cell.corner_count();
        for (corner, slot) in entries.iter_mut().enumerate().take(corners) {
            let coords = cell.corner_coords(corner);
            *slot = self.index_unit.index(&coords[..meta.dim], meta.resolution);
        }
        let burst = self.sram.burst_cycles(&entries[..corners]);
        for (corner, &entry) in entries.iter().enumerate().take(corners) {
            let w = cell.corner_weight(corner);
            if w == 0.0 {
                continue;
            }
            let feats = self.sram.read(entry);
            for (o, feat) in out.iter_mut().zip(feats) {
                *o += w * feat;
            }
        }
        // Pipeline issue interval: the SRAM burst dominates; streaming
        // levels multiply by the number of table passes.
        let cycles = burst * meta.passes as u64;
        self.busy_cycles += cycles;
        Ok(cycles)
    }

    /// Cycles this engine has been busy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Access statistics of the engine's grid SRAM.
    pub fn sram_stats(&self) -> super::sram::SramStats {
        self.sram.stats()
    }

    /// Streaming passes per batch of the configured level (1 = table
    /// fully resident).
    pub fn streaming_passes(&self) -> u32 {
        self.level.map_or(0, |l| l.passes)
    }
}

/// The gang of 16 encoding engines of one NFP, with the level-to-engine
/// assignment of the paper: hashgrid (16 levels) uses one engine per
/// level; densegrid (8 levels) processes 2 inputs in parallel; low-res
/// densegrid (2 levels) processes 8 inputs in parallel.
#[derive(Debug)]
pub struct EncodingCluster {
    engines: Vec<EncodingEngine>,
    scale_unit: Option<GridScaleUnit>,
    levels: usize,
    features: usize,
}

impl EncodingCluster {
    /// Create the cluster for an NFP configuration.
    pub fn new(config: &NfpConfig) -> Self {
        let engines = (0..config.encoding_engines)
            .map(|_| EncodingEngine::new(config.grid_sram_bytes, config.grid_sram_banks))
            .collect();
        EncodingCluster { engines, scale_unit: None, levels: 0, features: 0 }
    }

    /// Configure every engine for its level of `grid`. Engines beyond the
    /// level count are assigned to additional parallel input lanes.
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::InvalidConfig`] if the grid has more levels
    /// than the cluster has engines.
    pub fn configure(&mut self, grid: &MultiResGrid) -> Result<()> {
        self.configure_shared(grid, &std::sync::Arc::new(grid.params().to_vec()))
    }

    /// Like [`EncodingCluster::configure`], sharing one copy of the grid
    /// tables across all engines (and callers can share it across NFPs).
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::InvalidConfig`] if the grid has more levels
    /// than the cluster has engines.
    pub fn configure_shared(
        &mut self,
        grid: &MultiResGrid,
        table: &std::sync::Arc<Vec<f32>>,
    ) -> Result<()> {
        let levels = grid.levels().len();
        if levels > self.engines.len() {
            return Err(NgpcError::InvalidConfig {
                parameter: "n_levels",
                message: format!(
                    "grid has {levels} levels but cluster has {} engines",
                    self.engines.len()
                ),
            });
        }
        for (i, engine) in self.engines.iter_mut().enumerate() {
            engine.configure_shared(grid, table, i % levels)?;
        }
        self.scale_unit = Some(GridScaleUnit::configure(grid.config()));
        self.levels = levels;
        self.features = grid.config().features_per_level;
        Ok(())
    }

    /// Parallel input lanes: how many queries enter per cycle (16 engines
    /// split across the level count).
    pub fn parallel_inputs(&self) -> usize {
        match self.engines.len().checked_div(self.levels) {
            None => 0,
            Some(per) => per.max(1),
        }
    }

    /// Encode one query across all levels into `out` (`levels x F` wide),
    /// returning the cycles consumed by the slowest engine.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; the cluster must be configured first.
    pub fn encode_into(&mut self, x: &[f32], out: &mut [f32]) -> Result<u64> {
        if self.levels == 0 {
            return Err(NgpcError::ProgrammingModel {
                message: "encoding cluster used before configure".to_string(),
            });
        }
        if out.len() != self.levels * self.features {
            return Err(NgpcError::Neural(ng_neural::NgError::DimensionMismatch {
                context: "encoding cluster output",
                expected: self.levels * self.features,
                actual: out.len(),
            }));
        }
        let mut worst = 0u64;
        for l in 0..self.levels {
            let cycles = self.engines[l]
                .encode_into(x, &mut out[l * self.features..(l + 1) * self.features])?;
            worst = worst.max(cycles);
        }
        Ok(worst)
    }

    /// Cycle model for a batch of `n` queries: queries issue at
    /// `parallel_inputs` per cycle (times any streaming factor), plus the
    /// pipeline fill latency.
    pub fn batch_cycles(&self, n: u64) -> u64 {
        let par = self.parallel_inputs().max(1) as u64;
        let passes = self.engines[..self.levels]
            .iter()
            .map(|e| e.streaming_passes() as u64)
            .max()
            .unwrap_or(1);
        let fill = PosFractUnit::LATENCY_CYCLES + 4;
        n.div_ceil(par) * passes + fill
    }

    /// Number of configured levels.
    pub fn levels(&self) -> usize {
        self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ng_neural::encoding::GridConfig;

    fn grid(kind: GridConfig) -> MultiResGrid {
        MultiResGrid::new(kind, 7).unwrap()
    }

    #[test]
    fn engine_matches_reference_per_level() {
        let g = grid(GridConfig::hashgrid(3, 12, 1.5));
        let mut cluster = EncodingCluster::new(&NfpConfig::default());
        cluster.configure(&g).unwrap();
        let x = [0.23f32, 0.71, 0.48];
        let mut hw = vec![0.0f32; g.output_dim()];
        cluster.encode_into(&x, &mut hw).unwrap();
        let sw = g.encode(&x).unwrap();
        assert_eq!(hw, sw, "hardware encoding must be bit-identical");
    }

    #[test]
    fn equivalence_across_all_table1_encodings() {
        for cfg in [
            GridConfig::hashgrid(3, 14, 1.51572),
            GridConfig::densegrid(3, 14),
            GridConfig::low_res_densegrid(3, 14),
            GridConfig::hashgrid(2, 12, 1.25992),
        ] {
            let g = grid(cfg);
            let mut cluster = EncodingCluster::new(&NfpConfig::default());
            cluster.configure(&g).unwrap();
            let x: Vec<f32> = (0..cfg.dim).map(|i| 0.1 + 0.3 * i as f32).collect();
            let mut hw = vec![0.0f32; g.output_dim()];
            cluster.encode_into(&x, &mut hw).unwrap();
            assert_eq!(hw, g.encode(&x).unwrap(), "{cfg:?}");
        }
    }

    #[test]
    fn parallel_inputs_match_paper() {
        // 16 engines: hashgrid (16 levels) -> 1 input; densegrid (8) ->
        // 2 inputs; low-res (2) -> 8 inputs in parallel.
        let cases = [
            (GridConfig::hashgrid(3, 12, 1.5), 1),
            (GridConfig::densegrid(3, 12), 2),
            (GridConfig::low_res_densegrid(3, 12), 8),
        ];
        for (cfg, expect) in cases {
            let g = grid(cfg);
            let mut cluster = EncodingCluster::new(&NfpConfig::default());
            cluster.configure(&g).unwrap();
            assert_eq!(cluster.parallel_inputs(), expect, "{cfg:?}");
        }
    }

    #[test]
    fn batch_cycles_scale_with_parallelism() {
        let mut hash_cluster = EncodingCluster::new(&NfpConfig::default());
        hash_cluster.configure(&grid(GridConfig::hashgrid(3, 12, 1.5))).unwrap();
        let mut lr_cluster = EncodingCluster::new(&NfpConfig::default());
        lr_cluster.configure(&grid(GridConfig::low_res_densegrid(3, 12))).unwrap();
        let n = 100_000;
        assert!(lr_cluster.batch_cycles(n) < hash_cluster.batch_cycles(n) / 4);
    }

    #[test]
    fn unconfigured_cluster_errors() {
        let mut cluster = EncodingCluster::new(&NfpConfig::default());
        let mut out = vec![0.0; 4];
        assert!(cluster.encode_into(&[0.5, 0.5, 0.5], &mut out).is_err());
    }

    #[test]
    fn oversized_level_streams_not_fails() {
        // A 2^19-entry hashed level at F=2 needs 2 MiB; the 1 MB SRAM
        // handles it in 2 passes.
        let g = grid(GridConfig::hashgrid(3, 19, 1.51572));
        let mut engine = EncodingEngine::new(1 << 20, 8);
        let last = g.levels().len() - 1;
        engine.configure(&g, last).unwrap();
        assert_eq!(engine.streaming_passes(), 2);
    }

    #[test]
    fn small_levels_resident_in_one_pass() {
        let g = grid(GridConfig::hashgrid(3, 12, 1.5));
        let mut engine = EncodingEngine::new(1 << 20, 8);
        engine.configure(&g, 0).unwrap();
        assert_eq!(engine.streaming_passes(), 1);
    }

    #[test]
    fn busy_cycles_accumulate() {
        let g = grid(GridConfig::densegrid(3, 12));
        let mut engine = EncodingEngine::new(1 << 20, 8);
        engine.configure(&g, 0).unwrap();
        let mut out = vec![0.0f32; 2];
        engine.encode_into(&[0.5, 0.5, 0.5], &mut out).unwrap();
        engine.encode_into(&[0.2, 0.4, 0.6], &mut out).unwrap();
        assert!(engine.busy_cycles() >= 2);
    }
}
