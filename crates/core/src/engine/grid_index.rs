//! The `grid_index` module: computes feature-table indices for corner
//! lookups (paper Fig. 9-a).
//!
//! Configurable to either hash the indices (multiresolution hashgrid) or
//! compute them directly (densegrid / low-res densegrid). The paper's key
//! hardware optimisation lives here: because hash-map sizes are always
//! powers of two, the expensive integer modulo is implemented as a
//! shift/mask. The mask is *exact* (not an approximation) for power-of-
//! two sizes, which is why this unit is bit-identical to the software
//! reference — the equivalence tests below prove it.

use ng_neural::encoding::hash::{dense_index, spatial_hash, table_mask};
use serde::{Deserialize, Serialize};

/// Index-computation mode of the unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexMode {
    /// Spatial hash into a `2^log2_table_size`-entry table.
    Hashed {
        /// log2 of the table size.
        log2_table_size: u32,
    },
    /// Row-major dense index (1:1 mapping).
    Dense,
    /// Dense index wrapped into a `2^log2_table_size`-entry table via the
    /// power-of-two mask.
    Wrapped {
        /// log2 of the table size.
        log2_table_size: u32,
    },
}

/// The index-computation stage with operation accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridIndexUnit {
    mode: IndexMode,
    hash_ops: u64,
    mask_ops: u64,
    index_ops: u64,
}

impl GridIndexUnit {
    /// Create a unit in the given mode.
    pub fn new(mode: IndexMode) -> Self {
        GridIndexUnit { mode, hash_ops: 0, mask_ops: 0, index_ops: 0 }
    }

    /// The configured mode.
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// Table entry for a corner at integer coordinates `coords` on a grid
    /// of `resolution` cells per axis.
    pub fn index(&mut self, coords: &[u32], resolution: u32) -> usize {
        self.index_ops += 1;
        match self.mode {
            IndexMode::Hashed { log2_table_size } => {
                self.hash_ops += 1;
                self.mask_ops += 1;
                spatial_hash(coords, log2_table_size) as usize
            }
            IndexMode::Dense => dense_index(coords, resolution) as usize,
            IndexMode::Wrapped { log2_table_size } => {
                self.mask_ops += 1;
                (dense_index(coords, resolution) as u32 & table_mask(log2_table_size)) as usize
            }
        }
    }

    /// Hash evaluations performed.
    pub fn hash_ops(&self) -> u64 {
        self.hash_ops
    }

    /// Shift/mask (modulo-replacement) operations performed.
    pub fn mask_ops(&self) -> u64 {
        self.mask_ops
    }

    /// Total index computations.
    pub fn index_ops(&self) -> u64 {
        self.index_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ng_neural::encoding::{GridConfig, MultiResGrid};

    #[test]
    fn hashed_mode_matches_reference_grid() {
        let grid = MultiResGrid::new(GridConfig::hashgrid(3, 14, 1.5), 0).unwrap();
        let level = *grid.levels().last().unwrap();
        assert!(level.hashed);
        let mut unit = GridIndexUnit::new(IndexMode::Hashed { log2_table_size: 14 });
        for c in [[0u32, 1, 2], [100, 200, 50], [999, 1, 77]] {
            assert_eq!(unit.index(&c, level.resolution), grid.vertex_entry(&level, &c));
        }
    }

    #[test]
    fn dense_mode_matches_reference_grid() {
        let grid = MultiResGrid::new(GridConfig::densegrid(3, 19), 0).unwrap();
        let level = grid.levels()[2];
        let mut unit = GridIndexUnit::new(IndexMode::Dense);
        for c in [[0u32, 0, 0], [3, 7, 11], [level.resolution, 0, 5]] {
            assert_eq!(unit.index(&c, level.resolution), grid.vertex_entry(&level, &c));
        }
    }

    #[test]
    fn wrapped_mode_matches_reference_grid() {
        let grid = MultiResGrid::new(GridConfig::low_res_densegrid(3, 19), 0).unwrap();
        let level = grid.levels()[0];
        assert!(level.wrapped);
        let mut unit = GridIndexUnit::new(IndexMode::Wrapped { log2_table_size: 19 });
        for c in [[0u32, 0, 0], [100, 100, 100], [128, 64, 32]] {
            assert_eq!(unit.index(&c, level.resolution), grid.vertex_entry(&level, &c));
        }
    }

    #[test]
    fn mask_equals_general_modulo() {
        // The paper "approximates" the modulo with a shift; for
        // power-of-two sizes the result is exact.
        let mut unit = GridIndexUnit::new(IndexMode::Wrapped { log2_table_size: 10 });
        for c in [[5u32, 9, 3], [1000, 1000, 1000]] {
            let idx = unit.index(&c, 2000);
            let full = dense_index(&c, 2000) % (1u64 << 10);
            assert_eq!(idx as u64, full);
        }
    }

    #[test]
    fn op_counters_track_mode() {
        let mut hashed = GridIndexUnit::new(IndexMode::Hashed { log2_table_size: 12 });
        hashed.index(&[1, 2, 3], 64);
        assert_eq!(hashed.hash_ops(), 1);
        assert_eq!(hashed.mask_ops(), 1);

        let mut dense = GridIndexUnit::new(IndexMode::Dense);
        dense.index(&[1, 2, 3], 64);
        assert_eq!(dense.hash_ops(), 0);
        assert_eq!(dense.mask_ops(), 0);
        assert_eq!(dense.index_ops(), 1);
    }
}
