//! The input FIFO: normalized coordinates are pre-fetched here before
//! entering the encoding pipeline (paper Fig. 9-a).

use std::collections::VecDeque;

/// Occupancy and stall statistics of a FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FifoStats {
    /// Successful pushes.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Pushes rejected because the FIFO was full (producer stalls).
    pub full_stalls: u64,
    /// Pops rejected because the FIFO was empty (consumer stalls).
    pub empty_stalls: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
}

/// A bounded FIFO of input coordinates (up to 3 per entry).
#[derive(Debug, Clone)]
pub struct InputFifo {
    depth: usize,
    entries: VecDeque<[f32; 3]>,
    stats: FifoStats,
}

impl InputFifo {
    /// Create a FIFO of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "fifo depth must be nonzero");
        InputFifo { depth, entries: VecDeque::with_capacity(depth), stats: FifoStats::default() }
    }

    /// Attempt to enqueue a coordinate; returns `false` (and records a
    /// stall) when full.
    pub fn push(&mut self, coord: [f32; 3]) -> bool {
        if self.entries.len() >= self.depth {
            self.stats.full_stalls += 1;
            return false;
        }
        self.entries.push_back(coord);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.entries.len());
        true
    }

    /// Attempt to dequeue; returns `None` (and records a stall) when
    /// empty.
    pub fn pop(&mut self) -> Option<[f32; 3]> {
        match self.entries.pop_front() {
            Some(c) => {
                self.stats.pops += 1;
                Some(c)
            }
            None => {
                self.stats.empty_stalls += 1;
                None
            }
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the FIFO holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FifoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_order() {
        let mut f = InputFifo::new(4);
        assert!(f.push([1.0, 0.0, 0.0]));
        assert!(f.push([2.0, 0.0, 0.0]));
        assert_eq!(f.pop().unwrap()[0], 1.0);
        assert_eq!(f.pop().unwrap()[0], 2.0);
    }

    #[test]
    fn full_fifo_stalls() {
        let mut f = InputFifo::new(2);
        assert!(f.push([0.0; 3]));
        assert!(f.push([0.0; 3]));
        assert!(!f.push([0.0; 3]));
        assert_eq!(f.stats().full_stalls, 1);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn empty_fifo_stalls() {
        let mut f = InputFifo::new(2);
        assert!(f.pop().is_none());
        assert_eq!(f.stats().empty_stalls, 1);
    }

    #[test]
    fn high_water_mark_tracks_peak() {
        let mut f = InputFifo::new(8);
        for _ in 0..5 {
            f.push([0.0; 3]);
        }
        for _ in 0..5 {
            f.pop();
        }
        f.push([0.0; 3]);
        assert_eq!(f.stats().max_occupancy, 5);
    }
}
