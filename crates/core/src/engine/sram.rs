//! The per-engine grid SRAM: caches one resolution level's lookup table
//! on-chip so grid lookups never pay the off-chip penalty (paper Fig. 9).
//!
//! Capacity accounting uses fp16 feature storage (2 bytes per parameter),
//! matching the paper's 1 MB sizing argument; values are kept as `f32`
//! internally so functional results stay bit-identical to the software
//! reference. The backing storage is an `Arc` so that the 16 engines of
//! an NFP (and the NFPs of a cluster) share one read-only copy of the
//! grid tables instead of duplicating hundreds of megabytes — purely an
//! implementation-level sharing; each engine still *models* its own SRAM.

use std::sync::Arc;

use crate::error::{NgpcError, Result};

/// Bytes per stored feature parameter for capacity accounting.
pub const SRAM_BYTES_PER_PARAM: usize = 2;

/// Access statistics of one grid SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SramStats {
    /// Total feature-vector reads.
    pub reads: u64,
    /// Table loads (level (re)configuration).
    pub loads: u64,
    /// Extra cycles lost to bank conflicts across corner bursts.
    pub bank_conflict_cycles: u64,
}

/// A banked on-chip SRAM holding one level's feature table.
#[derive(Debug, Clone)]
pub struct GridSram {
    capacity_bytes: usize,
    banks: u32,
    features_per_entry: usize,
    /// Shared backing storage (the whole grid's parameter buffer).
    table: Arc<Vec<f32>>,
    /// First feature-vector of this SRAM's level within `table`.
    base_entry: usize,
    /// Number of feature-vectors held.
    entries: usize,
    stats: SramStats,
}

impl GridSram {
    /// Create an empty SRAM of `capacity_bytes` with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two (address interleaving
    /// requires it).
    pub fn new(capacity_bytes: usize, banks: u32) -> Self {
        assert!(banks.is_power_of_two(), "banks must be a power of two");
        GridSram {
            capacity_bytes,
            banks,
            features_per_entry: 0,
            table: Arc::new(Vec::new()),
            base_entry: 0,
            entries: 0,
            stats: SramStats::default(),
        }
    }

    /// Load one level's table (entries x features, row-major), copying it
    /// into a private backing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::SramOverflow`] if the table does not fit at
    /// fp16 storage density.
    pub fn load_table(&mut self, table: &[f32], features_per_entry: usize) -> Result<()> {
        let bytes = table.len() * SRAM_BYTES_PER_PARAM;
        if bytes > self.capacity_bytes {
            return Err(NgpcError::SramOverflow { required: bytes, capacity: self.capacity_bytes });
        }
        self.table = Arc::new(table.to_vec());
        self.base_entry = 0;
        self.entries = table.len().checked_div(features_per_entry).unwrap_or(0);
        self.features_per_entry = features_per_entry;
        self.stats.loads += 1;
        Ok(())
    }

    /// Point the SRAM at a level slice of a shared grid buffer, returning
    /// the number of *streaming passes* needed per batch: a level larger
    /// than the SRAM is processed partition-by-partition, re-streaming
    /// each partition from L2 (paper levels with `T = 2^19, F = 2` occupy
    /// 2 MiB at fp16 — twice the 1 MB SRAM — and thus take two passes).
    /// Functional contents are exact because the full slice stays
    /// readable.
    pub fn load_table_shared(
        &mut self,
        table: Arc<Vec<f32>>,
        base_entry: usize,
        entries: usize,
        features_per_entry: usize,
    ) -> u32 {
        debug_assert!((base_entry + entries) * features_per_entry <= table.len());
        self.table = table;
        self.base_entry = base_entry;
        self.entries = entries;
        self.features_per_entry = features_per_entry;
        self.stats.loads += 1;
        let bytes = entries * features_per_entry * SRAM_BYTES_PER_PARAM;
        bytes.div_ceil(self.capacity_bytes).max(1) as u32
    }

    /// Number of loaded entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Feature vector at `entry`.
    ///
    /// # Panics
    ///
    /// Panics if the entry is out of range or no table is loaded.
    pub fn read(&mut self, entry: usize) -> &[f32] {
        self.stats.reads += 1;
        assert!(entry < self.entries, "sram read out of range");
        let f = self.features_per_entry;
        let at = (self.base_entry + entry) * f;
        &self.table[at..at + f]
    }

    /// Model a burst of corner reads issued in the same cycle: entries
    /// map to banks by low-order interleaving; the burst takes as many
    /// cycles as the most-loaded bank.
    pub fn burst_cycles(&mut self, entries: &[usize]) -> u64 {
        let mut per_bank = vec![0u64; self.banks as usize];
        for &e in entries {
            per_bank[e & (self.banks as usize - 1)] += 1;
        }
        let cycles = per_bank.iter().copied().max().unwrap_or(0).max(1);
        self.stats.bank_conflict_cycles += cycles - 1;
        cycles
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SramStats {
        self.stats
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_read_round_trip() {
        let mut sram = GridSram::new(1024, 8);
        let table = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        sram.load_table(&table, 2).unwrap();
        assert_eq!(sram.entries(), 3);
        assert_eq!(sram.read(1), &[3.0, 4.0]);
    }

    #[test]
    fn overflow_is_rejected() {
        let mut sram = GridSram::new(10, 2);
        let table = vec![0.0f32; 100];
        let err = sram.load_table(&table, 2).unwrap_err();
        assert!(matches!(err, NgpcError::SramOverflow { .. }));
    }

    #[test]
    fn shared_slice_reads_at_offset() {
        let mut sram = GridSram::new(1024, 4);
        let backing = Arc::new((0..20).map(|i| i as f32).collect::<Vec<f32>>());
        // Entries 3..7 of a 2-feature table.
        let passes = sram.load_table_shared(backing, 3, 4, 2);
        assert_eq!(passes, 1);
        assert_eq!(sram.entries(), 4);
        assert_eq!(sram.read(0), &[6.0, 7.0]);
        assert_eq!(sram.read(3), &[12.0, 13.0]);
    }

    #[test]
    fn one_mb_fits_a_2to19_level() {
        // The paper's sizing: T = 2^19 entries x F = 2 features x fp16
        // = 2 MiB... which does NOT fit 1 MB; such levels stream in two
        // passes. Check the boundary math.
        let mut sram = GridSram::new(1 << 20, 8);
        let small = Arc::new(vec![0.0f32; 1 << 19]); // 1 MiB at fp16
        assert_eq!(sram.load_table_shared(small, 0, 1 << 18, 2), 1);
        let big = Arc::new(vec![0.0f32; 1 << 20]); // 2 MiB at fp16
        assert_eq!(sram.load_table_shared(big, 0, 1 << 19, 2), 2);
    }

    #[test]
    fn conflict_free_burst_takes_one_cycle() {
        let mut sram = GridSram::new(1024, 8);
        sram.load_table(&[0.0; 32], 2).unwrap();
        // Eight distinct banks.
        let cycles = sram.burst_cycles(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(cycles, 1);
        assert_eq!(sram.stats().bank_conflict_cycles, 0);
    }

    #[test]
    fn same_bank_burst_serialises() {
        let mut sram = GridSram::new(1024, 8);
        sram.load_table(&vec![0.0; 64], 2).unwrap();
        // All entries congruent mod 8 -> same bank.
        let cycles = sram.burst_cycles(&[0, 8, 16, 24]);
        assert_eq!(cycles, 4);
        assert_eq!(sram.stats().bank_conflict_cycles, 3);
    }

    #[test]
    fn stats_count_reads_and_loads() {
        let mut sram = GridSram::new(1024, 2);
        sram.load_table(&[0.0; 8], 2).unwrap();
        sram.read(0);
        sram.read(1);
        assert_eq!(sram.stats().reads, 2);
        assert_eq!(sram.stats().loads, 1);
    }

    #[test]
    fn sharing_does_not_duplicate_backing() {
        let backing = Arc::new(vec![0.0f32; 1000]);
        let mut a = GridSram::new(1 << 20, 8);
        let mut b = GridSram::new(1 << 20, 8);
        a.load_table_shared(Arc::clone(&backing), 0, 100, 2);
        b.load_table_shared(Arc::clone(&backing), 100, 100, 2);
        assert_eq!(Arc::strong_count(&backing), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let mut sram = GridSram::new(1024, 2);
        sram.load_table(&[0.0; 8], 2).unwrap();
        sram.read(4);
    }
}
