//! The NGPC cluster: N neural fields processors sharing the GPU's L2
//! (paper Fig. 10-a), with batch distribution across units.

use ng_neural::apps::FieldModel;

use crate::config::NgpcConfig;
use crate::engine::{FusedNfp, FusedStats};
use crate::error::Result;

/// Aggregate statistics of a cluster batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Queries processed across all NFPs.
    pub queries: u64,
    /// Makespan in cycles (slowest NFP).
    pub makespan_cycles: u64,
    /// Total DRAM bytes saved by fusion across the cluster.
    pub dram_bytes_saved: u64,
}

/// A cluster of fused NFPs configured for the same field model.
#[derive(Debug)]
pub struct Ngpc {
    config: NgpcConfig,
    nfps: Vec<FusedNfp>,
}

impl Ngpc {
    /// Build and configure the cluster for a trained model.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the NFPs.
    pub fn new(config: NgpcConfig, field: &FieldModel) -> Result<Self> {
        config.validate()?;
        // One shared read-only copy of the grid tables for all NFPs.
        let table =
            std::sync::Arc::new(ng_neural::encoding::Encoding::params(&field.encoding).to_vec());
        let nfps = (0..config.nfp_units)
            .map(|_| FusedNfp::from_field_shared(config.nfp, field, &table))
            .collect::<Result<Vec<_>>>()?;
        Ok(Ngpc { config, nfps })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &NgpcConfig {
        &self.config
    }

    /// Number of NFP units.
    pub fn units(&self) -> usize {
        self.nfps.len()
    }

    /// Run a batch of queries (row-major `n x input_dim`) distributed
    /// round-robin in contiguous chunks across the NFPs. Returns outputs
    /// in input order plus cluster statistics.
    ///
    /// # Errors
    ///
    /// Propagates engine and dimension errors.
    pub fn run_batch(&mut self, inputs: &[f32]) -> Result<(Vec<f32>, ClusterStats)> {
        let d = self.nfps[0].input_dim();
        if d == 0 || !inputs.len().is_multiple_of(d) {
            return Err(crate::error::NgpcError::Neural(ng_neural::NgError::DimensionMismatch {
                context: "cluster batch input",
                expected: d,
                actual: inputs.len(),
            }));
        }
        let n = inputs.len() / d;
        let units = self.nfps.len();
        let chunk_queries = n.div_ceil(units);
        let mut outputs = Vec::with_capacity(n * self.nfps[0].output_dim());
        let mut stats = ClusterStats::default();
        for (u, chunk) in inputs.chunks(chunk_queries * d).enumerate() {
            let (out, s): (Vec<f32>, FusedStats) = self.nfps[u].run_batch(chunk)?;
            outputs.extend_from_slice(&out);
            stats.queries += s.queries;
            stats.makespan_cycles = stats.makespan_cycles.max(s.fused_cycles);
            stats.dram_bytes_saved += s.dram_bytes_saved;
        }
        Ok((outputs, stats))
    }

    /// Batch latency in nanoseconds: the slowest NFP's share of the work.
    pub fn batch_time_ns(&self, n_queries: u64) -> f64 {
        let per_unit = n_queries.div_ceil(self.nfps.len() as u64);
        self.nfps[0].batch_time_ns(per_unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ng_neural::apps::nsdf::NsdfModel;
    use ng_neural::apps::EncodingKind;

    fn cluster(units: u32) -> (Ngpc, NsdfModel) {
        let model = NsdfModel::new(EncodingKind::LowResDenseGrid, 5);
        let ngpc = Ngpc::new(NgpcConfig::with_units(units), model.field()).unwrap();
        (ngpc, model)
    }

    #[test]
    fn cluster_output_matches_reference_in_order() {
        let (mut ngpc, model) = cluster(4);
        let mut inputs = Vec::new();
        for i in 0..37 {
            let t = i as f32 / 37.0;
            inputs.extend_from_slice(&[t, 1.0 - t, 0.5]);
        }
        let (out, stats) = ngpc.run_batch(&inputs).unwrap();
        assert_eq!(stats.queries, 37);
        for (i, q) in inputs.chunks_exact(3).enumerate() {
            let sw = model.field().forward(q).unwrap();
            assert_eq!(out[i], sw[0], "query {i}");
        }
    }

    #[test]
    fn more_units_shrink_batch_time() {
        let (small, _) = cluster(2);
        let (large, _) = cluster(16);
        assert!(large.batch_time_ns(100_000) < small.batch_time_ns(100_000));
    }

    #[test]
    fn makespan_is_max_not_sum() {
        let (mut ngpc, _) = cluster(4);
        let inputs = vec![0.5f32; 3 * 64];
        let (_, stats) = ngpc.run_batch(&inputs).unwrap();
        // 64 queries over 4 units = 16 per unit; makespan must be far
        // below a serial execution of 64.
        let (mut solo, _) = cluster(1);
        let (_, solo_stats) = solo.run_batch(&inputs).unwrap();
        assert!(stats.makespan_cycles < solo_stats.makespan_cycles);
    }

    #[test]
    fn dram_savings_scale_with_queries() {
        let (mut ngpc, _) = cluster(2);
        let (_, s1) = ngpc.run_batch(&[0.5f32; 3 * 10]).unwrap();
        let (_, s2) = ngpc.run_batch(&vec![0.5f32; 3 * 20]).unwrap();
        assert_eq!(2 * s1.dram_bytes_saved, s2.dram_bytes_saved);
    }
}
