//! Error types for the NGPC hardware model.

use std::fmt;

/// Convenience alias for NGPC results.
pub type Result<T> = std::result::Result<T, NgpcError>;

/// Errors produced by the NGPC hardware model.
#[derive(Debug, Clone, PartialEq)]
pub enum NgpcError {
    /// A hardware configuration was outside its legal range.
    InvalidConfig {
        /// Offending parameter.
        parameter: &'static str,
        /// Violated constraint.
        message: String,
    },
    /// A command stream was malformed (e.g. dispatch before configure).
    ProgrammingModel {
        /// What went wrong.
        message: String,
    },
    /// A grid level did not fit the engine's SRAM.
    SramOverflow {
        /// Bytes required.
        required: usize,
        /// Bytes available.
        capacity: usize,
    },
    /// An error propagated from the neural substrate.
    Neural(ng_neural::NgError),
}

impl fmt::Display for NgpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NgpcError::InvalidConfig { parameter, message } => {
                write!(f, "invalid ngpc configuration for `{parameter}`: {message}")
            }
            NgpcError::ProgrammingModel { message } => {
                write!(f, "programming model violation: {message}")
            }
            NgpcError::SramOverflow { required, capacity } => {
                write!(f, "grid sram overflow: need {required} bytes, have {capacity}")
            }
            NgpcError::Neural(e) => write!(f, "neural substrate error: {e}"),
        }
    }
}

impl std::error::Error for NgpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NgpcError::Neural(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ng_neural::NgError> for NgpcError {
    fn from(e: ng_neural::NgError) -> Self {
        NgpcError::Neural(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NgpcError::SramOverflow { required: 100, capacity: 10 };
        assert!(e.to_string().contains("100"));
        let e = NgpcError::ProgrammingModel { message: "dispatch before configure".into() };
        assert!(e.to_string().contains("dispatch"));
    }

    #[test]
    fn neural_errors_convert() {
        let ne = ng_neural::NgError::Numerical { message: "nan".into() };
        let e: NgpcError = ne.into();
        assert!(matches!(e, NgpcError::Neural(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
