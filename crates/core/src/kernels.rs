//! Kernel-level speedups of the NGPC engines over the GPU baseline
//! (paper Fig. 13) and the rest-kernel fusion factor.

use ng_neural::apps::EncodingKind;
use serde::{Deserialize, Serialize};

/// Speedup of the fused "rest of the kernels" single-kernel
/// implementation over the prior optimised GPU implementation (paper
/// Sections I/VII: ~9.94x, "sufficient to remove this performance
/// bottleneck").
pub const REST_FUSION_SPEEDUP: f64 = 9.94;

/// Which accelerated kernel a speedup refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceleratedKernel {
    /// The input-encoding kernel on the encoding engines.
    InputEncoding,
    /// The MLP kernel on the MAC-array engine.
    Mlp,
}

/// Per-NFP standalone kernel speedup over the GPU kernel, by encoding
/// type. Multiplying by the NFP count gives the cluster speedup; at
/// NGPC-64 these reproduce the paper's Fig. 13 numbers exactly
/// (hashgrid 246x / 1232x, densegrid 379x / 1070x, low-res densegrid
/// 2353x / 1451x, averaged across the four applications).
///
/// The constants are the paper's published NGPC-64 values divided by 64;
/// the engine cycle models in [`crate::engine`] reproduce their *shape*
/// (MLP > encoding for hash/dense; low-res encoding far ahead thanks to
/// its 8-wide input parallelism) and are cross-validated against
/// `ng-timeloop` for the MLP engine.
pub fn per_nfp_kernel_speedup(encoding: EncodingKind, kernel: AcceleratedKernel) -> f64 {
    let (enc64, mlp64) = match encoding {
        EncodingKind::MultiResHashGrid => (246.0, 1232.0),
        EncodingKind::MultiResDenseGrid => (379.0, 1070.0),
        EncodingKind::LowResDenseGrid => (2353.0, 1451.0),
    };
    match kernel {
        AcceleratedKernel::InputEncoding => enc64 / 64.0,
        AcceleratedKernel::Mlp => mlp64 / 64.0,
    }
}

/// Cluster-level kernel speedup at a given scaling factor (Fig. 13 bars).
pub fn kernel_speedup(encoding: EncodingKind, kernel: AcceleratedKernel, nfp_units: u32) -> f64 {
    per_nfp_kernel_speedup(encoding, kernel) * nfp_units as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngpc64_matches_paper_fig13() {
        let e = |enc| kernel_speedup(enc, AcceleratedKernel::InputEncoding, 64);
        let m = |enc| kernel_speedup(enc, AcceleratedKernel::Mlp, 64);
        assert_eq!(e(EncodingKind::MultiResHashGrid), 246.0);
        assert_eq!(m(EncodingKind::MultiResHashGrid), 1232.0);
        assert_eq!(e(EncodingKind::MultiResDenseGrid), 379.0);
        assert_eq!(m(EncodingKind::MultiResDenseGrid), 1070.0);
        assert_eq!(e(EncodingKind::LowResDenseGrid), 2353.0);
        assert_eq!(m(EncodingKind::LowResDenseGrid), 1451.0);
    }

    #[test]
    fn speedup_scales_linearly_with_units() {
        let s8 = kernel_speedup(EncodingKind::MultiResHashGrid, AcceleratedKernel::Mlp, 8);
        let s16 = kernel_speedup(EncodingKind::MultiResHashGrid, AcceleratedKernel::Mlp, 16);
        assert!((s16 / s8 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mlp_beats_encoding_for_hash_and_dense() {
        for enc in [EncodingKind::MultiResHashGrid, EncodingKind::MultiResDenseGrid] {
            assert!(
                kernel_speedup(enc, AcceleratedKernel::Mlp, 64)
                    > kernel_speedup(enc, AcceleratedKernel::InputEncoding, 64)
            );
        }
    }

    #[test]
    fn low_res_encoding_speedup_is_largest() {
        // 8 parallel inputs (2 levels on 16 engines) makes the low-res
        // encoding engine the standout.
        let lr =
            kernel_speedup(EncodingKind::LowResDenseGrid, AcceleratedKernel::InputEncoding, 64);
        for enc in [EncodingKind::MultiResHashGrid, EncodingKind::MultiResDenseGrid] {
            assert!(lr > kernel_speedup(enc, AcceleratedKernel::InputEncoding, 64));
            assert!(lr > kernel_speedup(enc, AcceleratedKernel::Mlp, 64));
        }
    }

    #[test]
    fn fusion_factor_is_papers() {
        assert_eq!(REST_FUSION_SPEEDUP, 9.94);
    }
}
