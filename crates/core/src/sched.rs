//! The NGPC programming model (paper Fig. 10-b/c): the GPU command
//! buffer configures the NGPC, then streams batches; while the GPU
//! processes the rest-kernels of batch `i`, the NGPC computes
//! encoding + MLP for batch `i+1`.

use ng_neural::apps::{AppKind, EncodingKind};
use serde::{Deserialize, Serialize};

use crate::error::{NgpcError, Result};

/// Commands recorded into the GPU command buffer for the NGPC (the
/// pseudocode of paper Fig. 10-c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Program the NGPC for an application/encoding pair.
    Configure {
        /// Application to run.
        app: AppKind,
        /// Encoding scheme.
        encoding: EncodingKind,
    },
    /// Upload grid tables and MLP weights to the NFP SRAMs.
    LoadTables {
        /// Bytes uploaded.
        bytes: u64,
    },
    /// Dispatch one batch of queries to the NGPC.
    DispatchBatch {
        /// Queries in the batch.
        queries: u64,
    },
    /// Wait for all outstanding NGPC work.
    Synchronize,
}

/// A recorded command stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommandBuffer {
    commands: Vec<Command>,
}

impl CommandBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        CommandBuffer::default()
    }

    /// Record a command, returning `&mut self` for chaining.
    pub fn record(&mut self, cmd: Command) -> &mut Self {
        self.commands.push(cmd);
        self
    }

    /// Recorded commands.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Validate ordering rules: a `Configure` must precede the first
    /// `LoadTables`/`DispatchBatch`, tables must be loaded before the
    /// first dispatch, and the stream must end with `Synchronize`.
    ///
    /// # Errors
    ///
    /// Returns [`NgpcError::ProgrammingModel`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        let mut configured = false;
        let mut loaded = false;
        for (i, cmd) in self.commands.iter().enumerate() {
            match cmd {
                Command::Configure { .. } => {
                    configured = true;
                    loaded = false;
                }
                Command::LoadTables { .. } => {
                    if !configured {
                        return Err(NgpcError::ProgrammingModel {
                            message: format!("LoadTables at {i} before Configure"),
                        });
                    }
                    loaded = true;
                }
                Command::DispatchBatch { queries } => {
                    if !configured || !loaded {
                        return Err(NgpcError::ProgrammingModel {
                            message: format!("DispatchBatch at {i} before Configure/LoadTables"),
                        });
                    }
                    if *queries == 0 {
                        return Err(NgpcError::ProgrammingModel {
                            message: format!("empty batch at {i}"),
                        });
                    }
                }
                Command::Synchronize => {}
            }
        }
        match self.commands.last() {
            Some(Command::Synchronize) => Ok(()),
            _ => Err(NgpcError::ProgrammingModel {
                message: "command stream must end with Synchronize".to_string(),
            }),
        }
    }

    /// Total dispatched queries.
    pub fn dispatched_queries(&self) -> u64 {
        self.commands
            .iter()
            .map(|c| match c {
                Command::DispatchBatch { queries } => *queries,
                _ => 0,
            })
            .sum()
    }
}

/// Record the canonical frame stream of Fig. 10-c: configure, load,
/// `n_batches` dispatches, synchronize.
pub fn frame_stream(
    app: AppKind,
    encoding: EncodingKind,
    table_bytes: u64,
    queries: u64,
    n_batches: u64,
) -> CommandBuffer {
    let mut buf = CommandBuffer::new();
    buf.record(Command::Configure { app, encoding });
    buf.record(Command::LoadTables { bytes: table_bytes });
    let per = queries.div_ceil(n_batches.max(1)).max(1);
    let mut left = queries;
    while left > 0 {
        let q = per.min(left);
        buf.record(Command::DispatchBatch { queries: q });
        left -= q;
    }
    buf.record(Command::Synchronize);
    buf
}

/// Two-stage pipeline timing of the batch overlap (Fig. 10-b): the NGPC
/// stage takes `ngpc_ms` per batch, the GPU rest-kernel stage `gpu_ms`
/// per batch.
///
/// Classic pipeline makespan: `ngpc + (n-1) * max(ngpc, gpu) + gpu`.
pub fn overlapped_makespan_ms(n_batches: u64, ngpc_ms: f64, gpu_ms: f64) -> f64 {
    if n_batches == 0 {
        return 0.0;
    }
    ngpc_ms + (n_batches - 1) as f64 * ngpc_ms.max(gpu_ms) + gpu_ms
}

/// Serial (non-overlapped) makespan for the same work.
pub fn serial_makespan_ms(n_batches: u64, ngpc_ms: f64, gpu_ms: f64) -> f64 {
    n_batches as f64 * (ngpc_ms + gpu_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apps() -> (AppKind, EncodingKind) {
        (AppKind::Nerf, EncodingKind::MultiResHashGrid)
    }

    #[test]
    fn canonical_stream_validates() {
        let (app, enc) = apps();
        let buf = frame_stream(app, enc, 1 << 20, 1_000_000, 16);
        buf.validate().unwrap();
        assert_eq!(buf.dispatched_queries(), 1_000_000);
    }

    #[test]
    fn dispatch_before_configure_rejected() {
        let mut buf = CommandBuffer::new();
        buf.record(Command::DispatchBatch { queries: 10 });
        buf.record(Command::Synchronize);
        assert!(buf.validate().is_err());
    }

    #[test]
    fn dispatch_before_load_rejected() {
        let (app, enc) = apps();
        let mut buf = CommandBuffer::new();
        buf.record(Command::Configure { app, encoding: enc });
        buf.record(Command::DispatchBatch { queries: 10 });
        buf.record(Command::Synchronize);
        assert!(buf.validate().is_err());
    }

    #[test]
    fn missing_sync_rejected() {
        let (app, enc) = apps();
        let mut buf = CommandBuffer::new();
        buf.record(Command::Configure { app, encoding: enc });
        buf.record(Command::LoadTables { bytes: 100 });
        buf.record(Command::DispatchBatch { queries: 10 });
        assert!(buf.validate().is_err());
    }

    #[test]
    fn reconfigure_requires_reload() {
        let (app, enc) = apps();
        let mut buf = CommandBuffer::new();
        buf.record(Command::Configure { app, encoding: enc });
        buf.record(Command::LoadTables { bytes: 100 });
        buf.record(Command::DispatchBatch { queries: 10 });
        buf.record(Command::Configure { app, encoding: enc });
        buf.record(Command::DispatchBatch { queries: 10 });
        buf.record(Command::Synchronize);
        assert!(buf.validate().is_err(), "dispatch after reconfigure without reload");
    }

    #[test]
    fn empty_batches_rejected() {
        let (app, enc) = apps();
        let mut buf = CommandBuffer::new();
        buf.record(Command::Configure { app, encoding: enc });
        buf.record(Command::LoadTables { bytes: 100 });
        buf.record(Command::DispatchBatch { queries: 0 });
        buf.record(Command::Synchronize);
        assert!(buf.validate().is_err());
    }

    #[test]
    fn overlap_beats_serial() {
        let over = overlapped_makespan_ms(16, 1.0, 0.8);
        let serial = serial_makespan_ms(16, 1.0, 0.8);
        assert!(over < serial);
        // Steady state approaches max-stage rate.
        assert!((over - (1.0 + 15.0 * 1.0 + 0.8)).abs() < 1e-12);
    }

    #[test]
    fn single_batch_cannot_overlap() {
        assert_eq!(overlapped_makespan_ms(1, 2.0, 3.0), serial_makespan_ms(1, 2.0, 3.0));
    }

    #[test]
    fn makespan_matches_discrete_event_simulation() {
        // Property: the closed form equals an explicit two-stage pipeline
        // simulation for a spread of stage times.
        for &(a, b) in &[(1.0f64, 2.0f64), (2.0, 1.0), (0.5, 0.5), (3.7, 0.2)] {
            for n in [1u64, 2, 5, 33] {
                let mut stage1_free = 0.0f64;
                let mut stage2_free = 0.0f64;
                for _ in 0..n {
                    let s1 = stage1_free;
                    stage1_free = s1 + a;
                    let s2 = stage1_free.max(stage2_free);
                    stage2_free = s2 + b;
                }
                let sim = stage2_free;
                let closed = overlapped_makespan_ms(n, a, b);
                assert!((sim - closed).abs() < 1e-9, "a={a} b={b} n={n}: {sim} vs {closed}");
            }
        }
    }
}
