//! The NGPC evaluation emulator (paper Fig. 11).
//!
//! Inputs: the application parameters (Table I), the architecture
//! parameters (NFP count, clock, SRAM configuration), the GPU
//! kernel-level breakdown (from `ng-gpu`, substituting the paper's Nsight
//! measurements) and the frame resolution. Outputs: end-to-end
//! application time with encoding + MLP on the NGPC and the remaining
//! kernels fused on the GPU, plus the cluster's area and power.
//!
//! ## Timing model
//!
//! Per the programming model (paper Fig. 10-b), inputs are processed in
//! batches: while the GPU runs the fused rest-kernels for batch `i`, the
//! NGPC runs encoding + MLP for batch `i+1`. In steady state the frame
//! time is therefore the *maximum* of the two pipeline stages:
//!
//! ```text
//! T(N) = max( T_accel / (g * N),  T_rest / 9.94 )
//! ```
//!
//! `g` is the per-application *pipeline slope*: the end-to-end speedup
//! contributed per NFP, including the NGPC's L2 input/output traffic and
//! per-batch configuration/synchronisation — which is why it is far below
//! the standalone engine speedups of Fig. 13. The cap `T_rest / 9.94` is
//! the paper's Amdahl bound, and the reported speedup never exceeds it —
//! the paper's own sanity check.
//!
//! ## Compositional slope
//!
//! `g` is no longer a flat per-(app, encoding) lookup: it is composed
//! from the engine-level cycle accounting this crate already validates
//! bit-exactly ([`per_sample_cycles`]) and a per-(app, encoding)
//! *residual* calibrated once at the paper's NFP:
//!
//! ```text
//! g(nfp) = residual(app, enc)              # pins the paper's numbers
//!        * clock_ghz                       # frequency scaling
//!        * sram_capacity_factor            # grid-SRAM residency
//!        * bank_conflict_factor            # corner-fetch banking
//!        * mac_engine_factor               # cycles(paper) / cycles(nfp)
//! ```
//!
//! [`per_sample_cycles`] derives the fused pipeline's per-query issue
//! interval from the Table I workload shapes: MLP-engine tile cycles
//! (`rows.div_ceil(mac_rows) * cols.div_ceil(mac_cols)` per layer
//! matrix), encoding-engine occupancy (levels folded over the engine
//! gang; the grid-SRAM pressure of an engine multiplexing several
//! level tables is charged through `sram_capacity_factor`), and the
//! fusion-FIFO overlap between the two stages. Because the
//! MAC-array and engine-count axes enter as the *ratio* against the
//! paper's NFP, the factor is exactly 1.0 at 16 engines / 64x64 MACs —
//! every published number is reproduced byte-identically — while
//! off-paper configurations are now genuinely charged for their
//! datapath choices.

use ng_neural::apps::{table1, AppKind, EncodingKind};
use serde::{Deserialize, Serialize};

use crate::config::NfpConfig;
use crate::kernels::REST_FUSION_SPEEDUP;
use crate::mapping::{mlp_cycles, FixedTiling, LayerMapping};

/// Calibrated per-(application, encoding) residual of the compositional
/// timing model: the end-to-end speedup per NFP *at the paper's NFP*
/// (16 engines, 64x64 MACs, 1 GHz), absorbing everything the cycle
/// model does not derive — L2 input/output traffic, per-batch
/// configuration and synchronisation, kernel-launch overheads.
/// Order: NeRF, NSDF, GIA, NVR.
///
/// NOTE: changing any calibrated constant in this module changes sweep
/// results — bump `ng_dse::MODEL_VERSION` in the same commit so cached
/// design-space evaluations self-invalidate.
fn calibrated_residual(app: AppKind, encoding: EncodingKind) -> f64 {
    match encoding {
        EncodingKind::MultiResHashGrid => match app {
            AppKind::Nerf => 0.75,
            AppKind::Nsdf => 1.2206,
            AppKind::Gia => 1.585,
            AppKind::Nvr => 2.9144,
        },
        EncodingKind::MultiResDenseGrid => match app {
            AppKind::Nerf => 0.55,
            AppKind::Nsdf => 0.876,
            AppKind::Gia => 0.9343,
            AppKind::Nvr => 2.1647,
        },
        EncodingKind::LowResDenseGrid => match app {
            AppKind::Nerf => 0.60,
            AppKind::Nsdf => 0.9539,
            AppKind::Gia => 0.9164,
            AppKind::Nvr => 2.2147,
        },
    }
}

/// Bytes of the largest single-level grid table the encoding engines
/// must keep resident for full-rate corner fetches. The paper sizes the
/// 1 MB grid SRAM so one multiresolution level's table fits on-chip;
/// the two-level low-res encoding needs far less.
fn resident_table_bytes(encoding: EncodingKind) -> f64 {
    match encoding {
        EncodingKind::MultiResHashGrid | EncodingKind::MultiResDenseGrid => (1u64 << 20) as f64,
        EncodingKind::LowResDenseGrid => (64 * 1024) as f64,
    }
}

/// Grid-SRAM round-trip cost of a spilled corner fetch relative to an
/// on-chip hit (GPU-L2 service of the miss traffic).
const SPILL_PENALTY: f64 = 3.0;

/// Resolution levels an encoding folds over the engine gang (Table I:
/// 16 hashgrid, 8 densegrid, 2 low-res levels — app-independent).
fn encoding_levels(encoding: EncodingKind) -> u32 {
    match encoding {
        EncodingKind::MultiResHashGrid => 16,
        EncodingKind::MultiResDenseGrid => 8,
        EncodingKind::LowResDenseGrid => 2,
    }
}

/// Level tables one engine must keep serving: 1 with an engine per
/// level (the paper's gang), more when the level count exceeds the
/// engine count and engines multiplex levels.
fn tables_per_engine(nfp: &NfpConfig, encoding: EncodingKind) -> u32 {
    encoding_levels(encoding).div_ceil(nfp.encoding_engines.max(1))
}

/// Throughput factor for grid SRAMs smaller than the resident working
/// set — every level table the engine serves must stay resident for
/// full-rate corner fetches, so an engine multiplexing `k` levels needs
/// `k` tables on-chip. The uncovered fraction of corner fetches pays
/// [`SPILL_PENALTY`]. Exactly 1.0 at the paper's 1 MB / 16-engine
/// provision.
fn sram_capacity_factor(nfp: &NfpConfig, encoding: EncodingKind) -> f64 {
    let required = tables_per_engine(nfp, encoding) as f64 * resident_table_bytes(encoding);
    let have = nfp.grid_sram_bytes as f64;
    if have >= required {
        1.0
    } else {
        let miss = 1.0 - have / required;
        1.0 / (1.0 + miss * SPILL_PENALTY)
    }
}

/// Throughput factor for grid-SRAM banking: a `d`-dimensional cell has
/// `2^d` corners, and with fewer banks than corners the fetches
/// serialise over multiple cycles (the fused pipeline is rate-limited
/// by its encoding stage). Exactly 1.0 at the paper's 8 banks.
fn bank_conflict_factor(nfp: &NfpConfig, app: AppKind) -> f64 {
    let corners = 1u32 << app.spatial_dim();
    let cycles = corners.div_ceil(nfp.grid_sram_banks.min(corners).max(1));
    1.0 / cycles as f64
}

/// FIFO depth at which the fusion FIFO fully decouples the encoding and
/// MLP stages (the two stages overlap perfectly and the pipeline runs at
/// the slower stage's rate). Shallower FIFOs degrade toward serial
/// execution. The paper's 64-entry FIFO is comfortably past this knee.
const FULL_OVERLAP_FIFO_DEPTH: f64 = 16.0;

/// Per-query issue interval (cycles) of the fused NFP pipeline for one
/// Table I workload on one NFP configuration — the compositional core
/// of the timing model.
///
/// * **Encoding stage** — the level count folds over the engine gang:
///   with engines to spare, `engines / levels` queries issue per cycle
///   (the paper's 1/2/8 parallel inputs); with fewer engines than
///   levels each query takes `levels.div_ceil(engines)` sequential
///   rounds. (The grid-SRAM pressure of multiplexed level tables is
///   charged by `sram_capacity_factor`, not here.) Extra query lanes
///   multiply issue width.
/// * **MLP stage** — [`mlp_query_cycles`] over the app's MLP (both of
///   NeRF's, which share the array).
/// * **Fusion** — with a deep enough FIFO the stages overlap and the
///   pipeline runs at the slower stage's rate; shallow FIFOs slide
///   toward the serial sum.
pub fn per_sample_cycles(app: AppKind, encoding: EncodingKind, nfp: &NfpConfig) -> f64 {
    per_sample_cycles_with(app, encoding, nfp, &FixedTiling)
}

/// [`per_sample_cycles`] under an explicit [`LayerMapping`]: only the
/// MLP stage's per-query cycles change — the encoding fold and the
/// fusion-FIFO overlap are mapping-independent. With [`FixedTiling`]
/// this is bit-identical to [`per_sample_cycles`] (same expressions in
/// the same order).
pub fn per_sample_cycles_with(
    app: AppKind,
    encoding: EncodingKind,
    nfp: &NfpConfig,
    mapping: &dyn LayerMapping,
) -> f64 {
    let levels = encoding_levels(encoding);
    let engines = nfp.encoding_engines.max(1);
    let rounds = levels.div_ceil(engines);
    let parallel = (engines / levels).max(1) * nfp.lanes_per_engine.max(1);
    let enc = rounds as f64 / parallel as f64;

    let mlp = mlp_query_cycles(app, encoding, nfp, mapping);

    let overlap = (nfp.input_fifo_depth as f64 / FULL_OVERLAP_FIFO_DEPTH).min(1.0);
    enc.max(mlp) + enc.min(mlp) * (1.0 - overlap)
}

/// Per-query MAC-array cycles of one workload's full MLP stack (the
/// app's MLP plus NeRF's color MLP, which share the array) under a
/// mapping — the quantity an external mapping search optimises and the
/// denominator of the fixed-vs-searched comparison `dse --map-search`
/// reports.
pub fn mlp_query_cycles(
    app: AppKind,
    encoding: EncodingKind,
    nfp: &NfpConfig,
    mapping: &dyn LayerMapping,
) -> f64 {
    let params = table1(app, encoding);
    let mut mlp = mlp_cycles(&params.mlp, nfp, mapping);
    if let Some(color) = &params.color_mlp {
        mlp += mlp_cycles(color, nfp, mapping);
    }
    mlp
}

/// The `(rows, cols)` weight-matrix shapes of one workload's MLP stack,
/// in evaluation order — the per-layer problems an external mapper
/// searches. Shapes can repeat (hidden layers share one shape); the
/// list is exactly the matrices [`mlp_query_cycles`] sums over.
pub fn mlp_layer_shapes(app: AppKind, encoding: EncodingKind) -> Vec<(usize, usize)> {
    let params = table1(app, encoding);
    let mut shapes: Vec<(usize, usize)> =
        (0..params.mlp.n_matrices()).map(|m| params.mlp.matrix_shape(m)).collect();
    if let Some(color) = &params.color_mlp {
        shapes.extend((0..color.n_matrices()).map(|m| color.matrix_shape(m)));
    }
    shapes
}

/// Throughput factor of the MAC-array / engine-count / FIFO axes: the
/// paper NFP's per-query cycles over this configuration's. Exactly 1.0
/// at the paper's NFP (the ratio of a value with itself), above 1.0 for
/// configurations that retire queries in fewer cycles.
pub fn mac_engine_factor(app: AppKind, encoding: EncodingKind, nfp: &NfpConfig) -> f64 {
    per_sample_cycles(app, encoding, &NfpConfig::default()) / per_sample_cycles(app, encoding, nfp)
}

/// [`mac_engine_factor`] under an explicit mapping for the evaluated
/// configuration. The numerator stays the paper NFP under the *fixed*
/// tiling — the calibrated residuals absorb the paper's measured
/// behaviour under its own dataflow, so a searched mapping is credited
/// exactly for the cycles it saves relative to that baseline.
pub fn mac_engine_factor_with(
    app: AppKind,
    encoding: EncodingKind,
    nfp: &NfpConfig,
    mapping: &dyn LayerMapping,
) -> f64 {
    per_sample_cycles(app, encoding, &NfpConfig::default())
        / per_sample_cycles_with(app, encoding, nfp, mapping)
}

/// The end-to-end NFP throughput slope for one configuration: the
/// calibrated per-(app, encoding) residual, scaled by clock, by the
/// SRAM capacity/banking factors, and by the compositional MAC-array /
/// engine-count cycle ratio (all exactly 1.0 at the paper's NFP).
fn effective_slope(input: &EmulatorInput) -> f64 {
    calibrated_residual(input.app, input.encoding)
        * input.nfp.clock_ghz
        * sram_capacity_factor(&input.nfp, input.encoding)
        * bank_conflict_factor(&input.nfp, input.app)
        * mac_engine_factor(input.app, input.encoding, &input.nfp)
}

/// [`effective_slope`] with the MLP stage evaluated under an explicit
/// mapping instead of the fixed tiling.
fn effective_slope_with(input: &EmulatorInput, mapping: &dyn LayerMapping) -> f64 {
    calibrated_residual(input.app, input.encoding)
        * input.nfp.clock_ghz
        * sram_capacity_factor(&input.nfp, input.encoding)
        * bank_conflict_factor(&input.nfp, input.app)
        * mac_engine_factor_with(input.app, input.encoding, &input.nfp, mapping)
}

/// Emulator inputs (the four arrows into the paper's Fig. 11 box).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmulatorInput {
    /// Application under evaluation.
    pub app: AppKind,
    /// Input-encoding scheme.
    pub encoding: EncodingKind,
    /// Frame resolution in pixels.
    pub pixels: u64,
    /// NGPC scaling factor (NFP count).
    pub nfp_units: u32,
    /// NFP architecture parameters.
    pub nfp: NfpConfig,
}

impl Default for EmulatorInput {
    fn default() -> Self {
        EmulatorInput {
            app: AppKind::Nerf,
            encoding: EncodingKind::MultiResHashGrid,
            pixels: 1920 * 1080,
            nfp_units: 8,
            nfp: NfpConfig::default(),
        }
    }
}

impl EmulatorInput {
    /// Start building a point from the paper's default configuration.
    pub fn builder() -> EmulatorInputBuilder {
        EmulatorInputBuilder::default()
    }
}

/// Cheap, clonable point-builder for sweeps: every setter is a field
/// write on a `Copy` value, so design-space enumerators can fork a
/// partially-specified point per axis without allocation.
///
/// ```
/// use ngpc::emulator::EmulatorInput;
/// use ng_neural::apps::AppKind;
///
/// let base = EmulatorInput::builder().app(AppKind::Gia).clock_ghz(1.5);
/// let (a, b) = (base.clone().nfp_units(16).build(), base.nfp_units(64).build());
/// assert_eq!(a.nfp.clock_ghz, 1.5);
/// assert_eq!(b.nfp_units, 64);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct EmulatorInputBuilder {
    input: EmulatorInput,
}

impl EmulatorInputBuilder {
    /// Application under evaluation.
    pub fn app(mut self, app: AppKind) -> Self {
        self.input.app = app;
        self
    }

    /// Input-encoding scheme.
    pub fn encoding(mut self, encoding: EncodingKind) -> Self {
        self.input.encoding = encoding;
        self
    }

    /// Frame resolution in pixels.
    pub fn pixels(mut self, pixels: u64) -> Self {
        self.input.pixels = pixels;
        self
    }

    /// NGPC scaling factor (NFP count).
    pub fn nfp_units(mut self, nfp_units: u32) -> Self {
        self.input.nfp_units = nfp_units;
        self
    }

    /// Full NFP configuration (replaces any prior per-field setters).
    pub fn nfp(mut self, nfp: NfpConfig) -> Self {
        self.input.nfp = nfp;
        self
    }

    /// NFP clock in GHz.
    pub fn clock_ghz(mut self, clock_ghz: f64) -> Self {
        self.input.nfp.clock_ghz = clock_ghz;
        self
    }

    /// Grid SRAM per encoding engine in bytes.
    pub fn grid_sram_bytes(mut self, bytes: usize) -> Self {
        self.input.nfp.grid_sram_bytes = bytes;
        self
    }

    /// Banks per grid SRAM.
    pub fn grid_sram_banks(mut self, banks: u32) -> Self {
        self.input.nfp.grid_sram_banks = banks;
        self
    }

    /// Input-encoding engines per NFP.
    pub fn encoding_engines(mut self, engines: u32) -> Self {
        self.input.nfp.encoding_engines = engines;
        self
    }

    /// MAC array rows of the MLP engine.
    pub fn mac_rows(mut self, rows: u32) -> Self {
        self.input.nfp.mac_rows = rows;
        self
    }

    /// MAC array columns of the MLP engine.
    pub fn mac_cols(mut self, cols: u32) -> Self {
        self.input.nfp.mac_cols = cols;
        self
    }

    /// Query lanes per encoding engine.
    pub fn lanes_per_engine(mut self, lanes: u32) -> Self {
        self.input.nfp.lanes_per_engine = lanes;
        self
    }

    /// Fusion input-FIFO depth in entries.
    pub fn input_fifo_depth(mut self, depth: u32) -> Self {
        self.input.nfp.input_fifo_depth = depth;
        self
    }

    /// Finish the point.
    pub fn build(self) -> EmulatorInput {
        self.input
    }
}

/// Emulator outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationResult {
    /// GPU baseline frame time (ms).
    pub gpu_ms: f64,
    /// GPU time in the accelerated (encoding + MLP) kernels (ms).
    pub gpu_accel_ms: f64,
    /// GPU time in the remaining kernels (ms).
    pub gpu_rest_ms: f64,
    /// NGPC time for the accelerated kernels (ms).
    pub ngpc_accel_ms: f64,
    /// Fused rest-kernel time on the GPU (ms).
    pub fused_rest_ms: f64,
    /// End-to-end frame time with the NGPC (ms).
    pub ngpc_frame_ms: f64,
    /// End-to-end speedup over the GPU baseline.
    pub speedup: f64,
    /// The Amdahl bound (horizontal lines of Fig. 12).
    pub amdahl_bound: f64,
    /// Whether the configuration has hit its plateau (the rest-kernel
    /// stage dominates; more NFPs would not help).
    pub plateaued: bool,
    /// NGPC area as a percentage of the GPU die (Fig. 15).
    pub area_pct_of_gpu: f64,
    /// NGPC power as a percentage of GPU TDP (Fig. 15).
    pub power_pct_of_gpu: f64,
}

/// Compose the timing model from a precomputed GPU breakdown,
/// area/power report and effective slope (shared by [`emulate`] and
/// [`EmulationContext`]).
fn compose(
    input: &EmulatorInput,
    g: f64,
    breakdown: &ng_gpu::KernelBreakdown,
    hw: &ng_hw::AreaPowerReport,
) -> EmulationResult {
    let gpu_ms = breakdown.total_ms();
    let gpu_accel_ms = breakdown.encoding_ms + breakdown.mlp_ms;
    let gpu_rest_ms = breakdown.rest_ms;

    // Pipeline slope scaled by clock (relative to the paper's 1 GHz NFP)
    // and by the SRAM capacity/banking throughput factors.
    let ngpc_accel_ms = gpu_ms / (g * input.nfp_units as f64);
    let fused_rest_ms = gpu_rest_ms / REST_FUSION_SPEEDUP;
    let ngpc_frame_ms = ngpc_accel_ms.max(fused_rest_ms);
    let speedup = gpu_ms / ngpc_frame_ms;
    let amdahl_bound = gpu_ms / fused_rest_ms;

    EmulationResult {
        gpu_ms,
        gpu_accel_ms,
        gpu_rest_ms,
        ngpc_accel_ms,
        fused_rest_ms,
        ngpc_frame_ms,
        speedup,
        amdahl_bound,
        plateaued: ngpc_accel_ms <= fused_rest_ms,
        area_pct_of_gpu: hw.area_pct_of_gpu,
        power_pct_of_gpu: hw.power_pct_of_gpu,
    }
}

/// Run the emulator for one configuration.
pub fn emulate(input: &EmulatorInput) -> EmulationResult {
    let breakdown = ng_gpu::kernel_breakdown(input.app, input.encoding, input.pixels);
    let hw =
        ng_hw::ngpc_area_power_vs(&input.nfp.floorplan(), input.nfp_units, ng_hw::gpu_ref::RTX3090);
    compose(input, effective_slope(input), &breakdown, &hw)
}

/// [`emulate`] with the MLP stage scheduled by an explicit
/// [`LayerMapping`] — the entry point `dse --map-search` feeds a
/// searched per-layer tiling back through. Under
/// [`crate::mapping::FixedTiling`] this is bit-identical to
/// [`emulate`]; a mapping that retires queries in fewer cycles raises
/// the slope (and the unplateaued speedup) through the same
/// compositional factors.
pub fn emulate_with_mapping(input: &EmulatorInput, mapping: &dyn LayerMapping) -> EmulationResult {
    let breakdown = ng_gpu::kernel_breakdown(input.app, input.encoding, input.pixels);
    let hw =
        ng_hw::ngpc_area_power_vs(&input.nfp.floorplan(), input.nfp_units, ng_hw::gpu_ref::RTX3090);
    compose(input, effective_slope_with(input, mapping), &breakdown, &hw)
}

/// The NFP-architecture axes an [`NfpConfig`]'s derived quantities
/// (floorplan, slope factors) depend on — hashable, so the context can
/// key its memo tables on it.
type NfpKey = (u64, usize, u32, u32, u32, u32, u32, u32);

fn nfp_key(nfp: &NfpConfig) -> NfpKey {
    (
        nfp.clock_ghz.to_bits(),
        nfp.grid_sram_bytes,
        nfp.grid_sram_banks,
        nfp.encoding_engines,
        nfp.lanes_per_engine,
        nfp.mac_rows,
        nfp.mac_cols,
        nfp.input_fifo_depth,
    )
}

/// Reusable emulation state for sweeps: hoists every per-point invariant
/// out of the hot path. Memoized per context:
///
/// * the GPU kernel breakdown per `(app, encoding, pixels)` workload
///   (behind it, the encoding tables and the calibrated ratio layer);
/// * the area/power synthesis per floorplan (engine geometry and SRAM
///   bank layout through `ng_hw`);
/// * the effective pipeline slope per `(app, encoding, NFP config)` —
///   the SRAM-capacity and bank-conflict factors only change when those
///   axes do.
///
/// Results are bit-identical to [`emulate`]; a design-space sweep
/// touching `W` workloads and `F` floorplans pays for `W + F` model
/// builds no matter how many points it evaluates, and a sweep that
/// varies only clocks or resolution reuses all of the heavy setup.
#[derive(Debug, Default)]
pub struct EmulationContext {
    breakdowns: std::collections::HashMap<(AppKind, EncodingKind, u64), ng_gpu::KernelBreakdown>,
    hw: ng_hw::AreaPowerCache,
    floorplans: std::collections::HashMap<NfpKey, ng_hw::NfpFloorplan>,
    slopes: std::collections::HashMap<(AppKind, EncodingKind, NfpKey), f64>,
}

impl EmulationContext {
    /// A fresh context with empty memo tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate one point, reusing every previously built model input.
    pub fn eval(&mut self, input: &EmulatorInput) -> EmulationResult {
        let breakdown = *self
            .breakdowns
            .entry((input.app, input.encoding, input.pixels))
            .or_insert_with(|| ng_gpu::kernel_breakdown(input.app, input.encoding, input.pixels));
        let key = nfp_key(&input.nfp);
        let floorplan = *self.floorplans.entry(key).or_insert_with(|| input.nfp.floorplan());
        let hw = self.hw.lookup(&floorplan, input.nfp_units, ng_hw::gpu_ref::RTX3090);
        let g = *self
            .slopes
            .entry((input.app, input.encoding, key))
            .or_insert_with(|| effective_slope(input));
        compose(input, g, &breakdown, &hw)
    }

    /// [`EmulationContext::eval`] under an explicit [`LayerMapping`].
    /// Reuses the context's kernel-breakdown and area/power memos (both
    /// mapping-independent) but recomputes the slope each call — the
    /// mapping is caller state the context cannot key on.
    pub fn eval_with_mapping(
        &mut self,
        input: &EmulatorInput,
        mapping: &dyn LayerMapping,
    ) -> EmulationResult {
        let breakdown = *self
            .breakdowns
            .entry((input.app, input.encoding, input.pixels))
            .or_insert_with(|| ng_gpu::kernel_breakdown(input.app, input.encoding, input.pixels));
        let key = nfp_key(&input.nfp);
        let floorplan = *self.floorplans.entry(key).or_insert_with(|| input.nfp.floorplan());
        let hw = self.hw.lookup(&floorplan, input.nfp_units, ng_hw::gpu_ref::RTX3090);
        compose(input, effective_slope_with(input, mapping), &breakdown, &hw)
    }
}

/// Batch-evaluate a slice of points through one shared
/// [`EmulationContext`] — the entry point design-space sweeps feed
/// per-worker chunks through.
pub fn emulate_many(inputs: &[EmulatorInput]) -> Vec<EmulationResult> {
    let mut ctx = EmulationContext::new();
    inputs.iter().map(|input| ctx.eval(input)).collect()
}

/// Batched emulation: the same pipeline evaluated at finite batch
/// granularity through the Fig. 10-b schedule model instead of the
/// steady-state `max()`.
///
/// With `n_batches` double-buffered batches per frame, the makespan is
/// the classic two-stage pipeline `a + (n-1) max(a, b) + b`; as the batch
/// count grows this converges to the steady-state frame time reported by
/// [`emulate`] (a property the test-suite pins).
pub fn emulate_batched(input: &EmulatorInput, n_batches: u64) -> EmulationResult {
    let mut result = emulate(input);
    let n = n_batches.max(1);
    let a = result.ngpc_accel_ms / n as f64;
    let b = result.fused_rest_ms / n as f64;
    result.ngpc_frame_ms = crate::sched::overlapped_makespan_ms(n, a, b);
    result.speedup = result.gpu_ms / result.ngpc_frame_ms;
    result.plateaued = a <= b;
    result
}

/// Average end-to-end speedup across the four applications at one scaling
/// factor (the bars of Fig. 12).
pub fn average_speedup(encoding: EncodingKind, nfp_units: u32) -> f64 {
    AppKind::ALL
        .iter()
        .map(|&app| {
            emulate(&EmulatorInput { app, encoding, nfp_units, ..EmulatorInput::default() }).speedup
        })
        .sum::<f64>()
        / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NgpcConfig;

    #[test]
    fn fig12a_hashgrid_averages_match_paper() {
        // Paper: 12.94x / 20.85x / 33.73x / 39.04x for NGPC-8/16/32/64.
        let targets = [(8u32, 12.94f64), (16, 20.85), (32, 33.73), (64, 39.04)];
        for (n, t) in targets {
            let avg = average_speedup(EncodingKind::MultiResHashGrid, n);
            assert!((avg - t).abs() < t * 0.01, "NGPC-{n}: {avg} vs paper {t}");
        }
    }

    #[test]
    fn fig12b_densegrid_averages_match_paper() {
        // Paper: 9.05x / 14.22x / 22.57x / 26.22x.
        let targets = [(8u32, 9.05f64), (16, 14.22), (32, 22.57), (64, 26.22)];
        for (n, t) in targets {
            let avg = average_speedup(EncodingKind::MultiResDenseGrid, n);
            assert!((avg - t).abs() < t * 0.01, "NGPC-{n}: {avg} vs paper {t}");
        }
    }

    #[test]
    fn fig12c_low_res_averages_match_paper() {
        // Paper: 9.37x / 14.66x / 22.97x / 26.4x.
        let targets = [(8u32, 9.37f64), (16, 14.66), (32, 22.97), (64, 26.4)];
        for (n, t) in targets {
            let avg = average_speedup(EncodingKind::LowResDenseGrid, n);
            assert!((avg - t).abs() < t * 0.015, "NGPC-{n}: {avg} vs paper {t}");
        }
    }

    #[test]
    fn plateau_points_match_paper() {
        // Paper: NeRF plateaus at NGPC-64, NSDF at 32, NVR at 16, GIA at
        // 64 (hashgrid).
        let plateau_at = |app: AppKind| {
            for n in NgpcConfig::SCALING_FACTORS {
                let r = emulate(&EmulatorInput { app, nfp_units: n, ..EmulatorInput::default() });
                if r.plateaued {
                    return n;
                }
            }
            128
        };
        assert_eq!(plateau_at(AppKind::Nerf), 64);
        assert_eq!(plateau_at(AppKind::Nsdf), 32);
        assert_eq!(plateau_at(AppKind::Nvr), 16);
        assert_eq!(plateau_at(AppKind::Gia), 64);
    }

    #[test]
    fn up_to_58x_end_to_end() {
        // Paper: "NGPC gives up to 58.36x end-to-end application-level
        // performance improvement" — GIA at NGPC-64.
        let r = emulate(&EmulatorInput {
            app: AppKind::Gia,
            nfp_units: 64,
            ..EmulatorInput::default()
        });
        assert!((r.speedup - 58.36).abs() < 0.4, "{}", r.speedup);
    }

    #[test]
    fn speedup_never_exceeds_amdahl_bound() {
        // The paper's own sanity check (Fig. 12 horizontal lines).
        for enc in EncodingKind::ALL {
            for app in AppKind::ALL {
                for n in NgpcConfig::SCALING_FACTORS {
                    let r = emulate(&EmulatorInput {
                        app,
                        encoding: enc,
                        nfp_units: n,
                        ..EmulatorInput::default()
                    });
                    assert!(
                        r.speedup <= r.amdahl_bound + 1e-9,
                        "{app}/{enc} N={n}: {} > {}",
                        r.speedup,
                        r.amdahl_bound
                    );
                }
            }
        }
    }

    #[test]
    fn speedup_monotone_in_units() {
        for app in AppKind::ALL {
            let mut prev = 0.0;
            for n in NgpcConfig::SCALING_FACTORS {
                let r = emulate(&EmulatorInput { app, nfp_units: n, ..EmulatorInput::default() });
                assert!(r.speedup >= prev - 1e-9, "{app} regressed at N={n}");
                prev = r.speedup;
            }
        }
    }

    #[test]
    fn speedup_independent_of_resolution() {
        // Fractions are resolution-independent, so speedup is too —
        // which is what lets Fig. 14 scale pixels by the speedup.
        let base = emulate(&EmulatorInput::default()).speedup;
        let four_k =
            emulate(&EmulatorInput { pixels: 3840 * 2160, ..EmulatorInput::default() }).speedup;
        assert!((base - four_k).abs() < 1e-9);
    }

    #[test]
    fn faster_clock_raises_unplateaued_speedup() {
        let slow = emulate(&EmulatorInput::default());
        let fast = emulate(&EmulatorInput {
            nfp: NfpConfig { clock_ghz: 2.0, ..NfpConfig::default() },
            ..EmulatorInput::default()
        });
        assert!(fast.speedup > slow.speedup);
    }

    #[test]
    fn batched_emulation_converges_to_steady_state() {
        let input = EmulatorInput { nfp_units: 32, ..EmulatorInput::default() };
        let steady = emulate(&input);
        let coarse = emulate_batched(&input, 2);
        let fine = emulate_batched(&input, 4096);
        // Finite batching adds pipeline fill/drain, so it is never faster.
        assert!(coarse.ngpc_frame_ms >= steady.ngpc_frame_ms);
        assert!(fine.ngpc_frame_ms >= steady.ngpc_frame_ms);
        // ... and converges to the steady state as batches shrink.
        let rel = (fine.ngpc_frame_ms - steady.ngpc_frame_ms) / steady.ngpc_frame_ms;
        assert!(rel < 0.01, "batched did not converge: {rel}");
        assert!(coarse.ngpc_frame_ms > fine.ngpc_frame_ms);
    }

    #[test]
    fn single_batch_serialises_the_stages() {
        let input = EmulatorInput { nfp_units: 16, ..EmulatorInput::default() };
        let steady = emulate(&input);
        let one = emulate_batched(&input, 1);
        let expected = steady.ngpc_accel_ms + steady.fused_rest_ms;
        assert!((one.ngpc_frame_ms - expected).abs() < 1e-9);
    }

    #[test]
    fn paper_config_has_unit_timing_factors() {
        // The SRAM/banking factors are calibrated to 1.0 at the paper's
        // NFP, so every published number is unchanged by them.
        let nfp = NfpConfig::default();
        for enc in EncodingKind::ALL {
            assert_eq!(sram_capacity_factor(&nfp, enc), 1.0, "{enc}");
        }
        for app in AppKind::ALL {
            assert_eq!(bank_conflict_factor(&nfp, app), 1.0, "{app}");
        }
    }

    #[test]
    fn small_sram_and_few_banks_cost_speedup() {
        let base = emulate(&EmulatorInput { nfp_units: 64, ..EmulatorInput::default() });
        let starved = emulate(&EmulatorInput {
            nfp_units: 64,
            nfp: NfpConfig { grid_sram_bytes: 256 * 1024, ..NfpConfig::default() },
            ..EmulatorInput::default()
        });
        assert!(starved.speedup < base.speedup, "{} vs {}", starved.speedup, base.speedup);
        let banked = emulate(&EmulatorInput {
            nfp_units: 64,
            nfp: NfpConfig { grid_sram_banks: 2, ..NfpConfig::default() },
            ..EmulatorInput::default()
        });
        assert!(banked.speedup < base.speedup);
        // GIA cells are 2D (4 corners): 4 banks already suffice.
        let gia = |banks| {
            emulate(&EmulatorInput {
                app: AppKind::Gia,
                nfp_units: 8,
                nfp: NfpConfig { grid_sram_banks: banks, ..NfpConfig::default() },
                ..EmulatorInput::default()
            })
            .speedup
        };
        assert_eq!(gia(4), gia(8));
    }

    #[test]
    fn compositional_model_matches_legacy_slope_at_paper_nfp() {
        // The ISSUE-3 contract: at the paper's NFP the compositional
        // slope equals the calibrated residual (the legacy slope table)
        // to within 1e-9 — in fact bit-exactly, because the MAC/engine
        // factor is a ratio of a value with itself.
        let nfp = NfpConfig::default();
        for enc in EncodingKind::ALL {
            for app in AppKind::ALL {
                let factor = mac_engine_factor(app, enc, &nfp);
                assert_eq!(factor, 1.0, "{app}/{enc}: factor {factor}");
                let input = EmulatorInput { app, encoding: enc, ..EmulatorInput::default() };
                let g = effective_slope(&input);
                let legacy = calibrated_residual(app, enc);
                assert!((g - legacy).abs() < 1e-9, "{app}/{enc}: {g} vs {legacy}");
                assert_eq!(g, legacy, "paper-NFP slope must be byte-identical");
            }
        }
    }

    #[test]
    fn throughput_monotone_in_mac_dims_and_engines() {
        // More MACs or more engines never *increase* the per-query
        // cycles (never decrease modelled throughput).
        for enc in EncodingKind::ALL {
            for app in AppKind::ALL {
                let mut prev = f64::INFINITY;
                for dim in [8u32, 16, 32, 64, 128, 256] {
                    let nfp = NfpConfig { mac_rows: dim, mac_cols: dim, ..NfpConfig::default() };
                    let c = per_sample_cycles(app, enc, &nfp);
                    assert!(c <= prev + 1e-12, "{app}/{enc} mac {dim}: {c} > {prev}");
                    prev = c;
                }
                let mut prev = f64::INFINITY;
                for engines in [1u32, 2, 4, 8, 16, 32, 64] {
                    let nfp = NfpConfig { encoding_engines: engines, ..NfpConfig::default() };
                    let c = per_sample_cycles(app, enc, &nfp);
                    assert!(c <= prev + 1e-12, "{app}/{enc} engines {engines}: {c} > {prev}");
                    prev = c;
                }
            }
        }
    }

    #[test]
    fn small_mac_array_costs_unplateaued_speedup() {
        let base = emulate(&EmulatorInput { nfp_units: 8, ..EmulatorInput::default() });
        let narrow = emulate(&EmulatorInput {
            nfp_units: 8,
            nfp: NfpConfig { mac_rows: 16, mac_cols: 16, ..NfpConfig::default() },
            ..EmulatorInput::default()
        });
        assert!(narrow.speedup < base.speedup, "{} vs {}", narrow.speedup, base.speedup);
    }

    #[test]
    fn few_engines_pay_grid_sram_pressure() {
        // 8 engines under a 16-level hashgrid serve 2 level tables
        // each: the 1 MB grid SRAM now only covers half the working
        // set, and the spilled fetches cost end-to-end speedup.
        let halved = NfpConfig { encoding_engines: 8, ..NfpConfig::default() };
        assert!(sram_capacity_factor(&halved, EncodingKind::MultiResHashGrid) < 1.0);
        let base = emulate(&EmulatorInput { nfp_units: 8, ..EmulatorInput::default() });
        let starved =
            emulate(&EmulatorInput { nfp_units: 8, nfp: halved, ..EmulatorInput::default() });
        assert!(starved.speedup < base.speedup, "{} vs {}", starved.speedup, base.speedup);
        // The two-table low-res working set still fits easily: no
        // penalty beyond the lost parallel input lanes.
        assert_eq!(sram_capacity_factor(&halved, EncodingKind::LowResDenseGrid), 1.0);
        // Very few engines under many levels also serialise the rounds
        // hard enough to show up in the cycle model itself.
        let two = NfpConfig { encoding_engines: 2, ..NfpConfig::default() };
        let full =
            per_sample_cycles(AppKind::Nsdf, EncodingKind::MultiResHashGrid, &NfpConfig::default());
        let serialised = per_sample_cycles(AppKind::Nsdf, EncodingKind::MultiResHashGrid, &two);
        assert!(serialised > full, "{serialised} vs {full}");
    }

    #[test]
    fn shallow_fifo_slides_toward_serial_stages() {
        let app = AppKind::Nsdf;
        let enc = EncodingKind::MultiResHashGrid;
        let deep = per_sample_cycles(app, enc, &NfpConfig::default());
        let shallow =
            per_sample_cycles(app, enc, &NfpConfig { input_fifo_depth: 1, ..NfpConfig::default() });
        assert!(shallow > deep, "{shallow} vs {deep}");
        // Depth at (or past) the knee is exactly full overlap.
        let at_knee = per_sample_cycles(
            app,
            enc,
            &NfpConfig { input_fifo_depth: 16, ..NfpConfig::default() },
        );
        assert_eq!(at_knee, deep);
    }

    #[test]
    fn builder_round_trips_every_axis() {
        let p = EmulatorInput::builder()
            .app(AppKind::Nvr)
            .encoding(EncodingKind::LowResDenseGrid)
            .pixels(3840 * 2160)
            .nfp_units(32)
            .clock_ghz(1.5)
            .grid_sram_bytes(512 * 1024)
            .grid_sram_banks(4)
            .encoding_engines(8)
            .mac_rows(32)
            .mac_cols(128)
            .lanes_per_engine(2)
            .input_fifo_depth(32)
            .build();
        assert_eq!(p.app, AppKind::Nvr);
        assert_eq!(p.encoding, EncodingKind::LowResDenseGrid);
        assert_eq!(p.pixels, 3840 * 2160);
        assert_eq!(p.nfp_units, 32);
        assert_eq!(p.nfp.clock_ghz, 1.5);
        assert_eq!(p.nfp.grid_sram_bytes, 512 * 1024);
        assert_eq!(p.nfp.grid_sram_banks, 4);
        assert_eq!(p.nfp.encoding_engines, 8);
        assert_eq!(p.nfp.mac_rows, 32);
        assert_eq!(p.nfp.mac_cols, 128);
        assert_eq!(p.nfp.lanes_per_engine, 2);
        assert_eq!(p.nfp.input_fifo_depth, 32);
        // Unset axes keep the paper defaults.
        assert_eq!(EmulatorInput::builder().build().nfp.mac_rows, NfpConfig::default().mac_rows);
    }

    #[test]
    fn context_is_bit_identical_to_emulate() {
        let mut ctx = EmulationContext::new();
        let mut inputs = Vec::new();
        for app in AppKind::ALL {
            for enc in EncodingKind::ALL {
                for n in [8u32, 64] {
                    for clock in [1.0, 2.0] {
                        inputs.push(
                            EmulatorInput::builder()
                                .app(app)
                                .encoding(enc)
                                .nfp_units(n)
                                .clock_ghz(clock)
                                .build(),
                        );
                    }
                }
            }
        }
        for input in &inputs {
            assert_eq!(ctx.eval(input), emulate(input));
        }
        assert_eq!(emulate_many(&inputs), inputs.iter().map(emulate).collect::<Vec<_>>());
    }

    #[test]
    fn fixed_tiling_mapping_is_bit_identical_to_emulate() {
        // The ISSUE-10 contract: routing the timing stack through the
        // pluggable mapping changes nothing under the default tiling.
        let mut ctx = EmulationContext::new();
        for app in AppKind::ALL {
            for enc in EncodingKind::ALL {
                for n in [8u32, 64] {
                    let input =
                        EmulatorInput { app, encoding: enc, nfp_units: n, ..Default::default() };
                    let base = emulate(&input);
                    assert_eq!(emulate_with_mapping(&input, &crate::mapping::FixedTiling), base);
                    assert_eq!(ctx.eval_with_mapping(&input, &crate::mapping::FixedTiling), base);
                }
            }
        }
    }

    #[test]
    fn faster_mapping_raises_unplateaued_speedup() {
        // A mapping that halves every layer's cycles must speed up an
        // unplateaued point and never break the Amdahl bound.
        struct Half;
        impl crate::mapping::LayerMapping for Half {
            fn layer_cycles(&self, rows: usize, cols: usize, nfp: &NfpConfig) -> f64 {
                crate::mapping::FixedTiling.layer_cycles(rows, cols, nfp) / 2.0
            }
        }
        let input = EmulatorInput {
            app: AppKind::Nerf,
            nfp_units: 8,
            nfp: NfpConfig { mac_rows: 16, mac_cols: 16, ..NfpConfig::default() },
            ..EmulatorInput::default()
        };
        let fixed = emulate(&input);
        let mapped = emulate_with_mapping(&input, &Half);
        assert!(mapped.speedup > fixed.speedup, "{} vs {}", mapped.speedup, fixed.speedup);
        assert!(mapped.speedup <= mapped.amdahl_bound + 1e-9);
    }

    #[test]
    fn mlp_layer_shapes_match_the_cycle_sum() {
        for app in AppKind::ALL {
            for enc in EncodingKind::ALL {
                let nfp = NfpConfig { mac_rows: 16, mac_cols: 32, ..NfpConfig::default() };
                let from_shapes: f64 = mlp_layer_shapes(app, enc)
                    .into_iter()
                    .map(|(r, c)| crate::mapping::FixedTiling.layer_cycles(r, c, &nfp))
                    .sum();
                let direct = mlp_query_cycles(app, enc, &nfp, &crate::mapping::FixedTiling);
                assert_eq!(from_shapes, direct, "{app}/{enc}");
            }
        }
    }

    #[test]
    fn area_power_are_attached() {
        let r = emulate(&EmulatorInput { nfp_units: 8, ..EmulatorInput::default() });
        assert!(r.area_pct_of_gpu > 3.0 && r.area_pct_of_gpu < 6.0);
        assert!(r.power_pct_of_gpu > 1.5 && r.power_pct_of_gpu < 4.0);
    }
}
