//! Pixels renderable within an FPS budget, with and without the NGPC
//! (paper Fig. 14).

use ng_neural::apps::{AppKind, EncodingKind};
use ng_neural::render::image::Resolution;
use serde::{Deserialize, Serialize};

use crate::emulator::{emulate, EmulatorInput};

/// The FPS targets of Fig. 14.
pub const FPS_TARGETS: [f64; 4] = [30.0, 60.0, 90.0, 120.0];

/// One Fig. 14 bar: pixels renderable within the frame budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PixelBudget {
    /// Application.
    pub app: AppKind,
    /// FPS target.
    pub fps: f64,
    /// Pixels renderable on the GPU alone.
    pub gpu_pixels: u64,
    /// Pixels renderable with the NGPC.
    pub ngpc_pixels: u64,
}

impl PixelBudget {
    /// The largest standard resolution the GPU alone sustains.
    pub fn gpu_resolution(&self) -> Option<Resolution> {
        largest_resolution(self.gpu_pixels)
    }

    /// The largest standard resolution the NGPC sustains.
    pub fn ngpc_resolution(&self) -> Option<Resolution> {
        largest_resolution(self.ngpc_pixels)
    }
}

/// The largest standard frame that fits within `pixels`.
pub fn largest_resolution(pixels: u64) -> Option<Resolution> {
    Resolution::ALL.iter().rev().find(|r| r.pixels() <= pixels).copied()
}

/// Compute one Fig. 14 bar.
pub fn pixel_budget(app: AppKind, encoding: EncodingKind, nfp_units: u32, fps: f64) -> PixelBudget {
    let budget_ms = 1000.0 / fps;
    // GPU frame time scales linearly in pixels; anchor on 1M pixels.
    let anchor_px = 1_000_000u64;
    let gpu_ms_per_px = ng_gpu::frame_time_ms(app, encoding, anchor_px) / anchor_px as f64;
    let result = emulate(&EmulatorInput { app, encoding, nfp_units, ..EmulatorInput::default() });
    let gpu_pixels = (budget_ms / gpu_ms_per_px) as u64;
    let ngpc_pixels = (budget_ms * result.speedup / gpu_ms_per_px) as u64;
    PixelBudget { app, fps, gpu_pixels, ngpc_pixels }
}

/// The full Fig. 14 panel for one encoding at one scaling factor.
pub fn figure14(encoding: EncodingKind, nfp_units: u32) -> Vec<PixelBudget> {
    let mut rows = Vec::new();
    for app in AppKind::ALL {
        for fps in FPS_TARGETS {
            rows.push(pixel_budget(app, encoding, nfp_units, fps));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const HG: EncodingKind = EncodingKind::MultiResHashGrid;

    #[test]
    fn nerf_reaches_4k30_with_ngpc64() {
        // The paper's headline: "NGPC enables the rendering of 4k Ultra
        // HD resolution frames at 30 FPS for NeRF".
        let b = pixel_budget(AppKind::Nerf, HG, 64, 30.0);
        assert!(b.ngpc_pixels >= Resolution::Uhd4k.pixels(), "{}", b.ngpc_pixels);
        // ... but not 5k at 30.
        assert!(b.ngpc_pixels < Resolution::FiveK.pixels());
        assert_eq!(b.ngpc_resolution(), Some(Resolution::Uhd4k));
    }

    #[test]
    fn gia_and_nvr_reach_8k120_with_ngpc64() {
        for app in [AppKind::Gia, AppKind::Nvr] {
            let b = pixel_budget(app, HG, 64, 120.0);
            assert!(b.ngpc_pixels >= Resolution::Uhd8k.pixels(), "{app}: {} pixels", b.ngpc_pixels);
        }
    }

    #[test]
    fn nsdf_reaches_8k_at_60_with_ngpc64() {
        // Our calibration puts NSDF's plateau (Amdahl cap 33.7x) below
        // what 8k@120 needs (~54x); it still clears 8k at 60 FPS. The
        // paper's Fig. 14 claims 8k@120 — see EXPERIMENTS.md for why the
        // paper's own Fig. 12 numbers contradict that claim.
        let b = pixel_budget(AppKind::Nsdf, HG, 64, 60.0);
        assert!(b.ngpc_pixels >= Resolution::Uhd8k.pixels(), "{}", b.ngpc_pixels);
    }

    #[test]
    fn gpu_alone_fails_4k60_for_nerf() {
        let b = pixel_budget(AppKind::Nerf, HG, 64, 60.0);
        assert!(b.gpu_pixels < Resolution::Uhd4k.pixels());
    }

    #[test]
    fn gpu_alone_meets_4k60_for_gia() {
        let b = pixel_budget(AppKind::Gia, HG, 64, 60.0);
        assert!(b.gpu_pixels >= Resolution::Uhd4k.pixels());
    }

    #[test]
    fn higher_fps_lowers_budget() {
        let b30 = pixel_budget(AppKind::Nvr, HG, 64, 30.0);
        let b120 = pixel_budget(AppKind::Nvr, HG, 64, 120.0);
        assert!(b120.ngpc_pixels < b30.ngpc_pixels);
        assert!((b30.ngpc_pixels as f64 / b120.ngpc_pixels as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn figure14_is_complete() {
        let rows = figure14(HG, 64);
        assert_eq!(rows.len(), 16); // 4 apps x 4 FPS targets
        for r in rows {
            assert!(r.ngpc_pixels > r.gpu_pixels);
        }
    }

    #[test]
    fn largest_resolution_boundaries() {
        assert_eq!(largest_resolution(0), None);
        assert_eq!(largest_resolution(Resolution::Hd.pixels()), Some(Resolution::Hd));
        assert_eq!(largest_resolution(Resolution::Uhd8k.pixels() * 2), Some(Resolution::Uhd8k));
    }
}
