//! Offline stand-in for the `serde` facade.
//!
//! This workspace builds in a hermetic environment with no registry
//! access, and nothing in it performs real serialisation through serde's
//! data model — the `#[derive(Serialize, Deserialize)]` annotations on
//! config/result structs exist so the types stay serde-compatible for
//! downstream users. This crate keeps those derives compiling:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits with blanket
//!   impls, so bounds like `T: Serialize` are always satisfiable.
//! * The derive macros (from the sibling `serde_derive` stub) expand to
//!   nothing, which is sound precisely because the traits carry no
//!   methods.
//!
//! Crates that need actual on-disk formats (e.g. `ng-dse`'s CSV/JSON
//! results layer) hand-roll their emitters against concrete types
//! instead of going through this facade.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Sized {}
impl<T> DeserializeOwned for T {}

/// Mirror of serde's `de` module for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
