//! Offline mini-criterion.
//!
//! A registry-free stand-in for the `criterion` crate implementing the
//! subset of its API the `ng-bench` benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: after one warm-up call, the
//! iteration count is doubled until a run exceeds a fixed measurement
//! window, and the fastest observed per-iteration time is reported
//! (min-of-runs is robust to scheduler noise in the same way criterion's
//! lower quartile is). There is no statistical analysis, HTML report or
//! baseline comparison — the point is that `cargo bench` runs, prints
//! comparable ns/iter numbers, and exercises the benched code.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported so benches can use
/// `criterion::black_box` and `std::hint::black_box` interchangeably.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-run measurement window. Doubling iterations until a run exceeds
/// this bounds total time per bench to roughly 2x the window.
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(40);

/// Hard cap on iterations per run, for sub-nanosecond bodies.
const MAX_ITERS: u64 = 1 << 22;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`, keeping the fastest per-iteration time observed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up (and a correctness smoke-run)
        let mut iters: u64 = 1;
        let mut best = f64::INFINITY;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            best = best.min(elapsed.as_nanos() as f64 / iters as f64);
            if elapsed >= MEASUREMENT_WINDOW || iters >= MAX_ITERS {
                break;
            }
            iters *= 2;
        }
        self.best_ns_per_iter = best;
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(full_id: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{full_id:<50} time: {:>12}/iter{rate}", human_ns(ns_per_iter));
}

/// Top-level benchmark driver (mini version of criterion's).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, b.best_ns_per_iter, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string(), throughput: None }
    }
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the mini-harness sizes runs by
    /// wall-clock window, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (see [`Self::sample_size`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.best_ns_per_iter, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, Inp, F>(&mut self, id: I, input: &Inp, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &Inp),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.best_ns_per_iter, self.throughput);
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups (ignores harness CLI args).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.best_ns_per_iter.is_finite());
        assert!(b.best_ns_per_iter >= 0.0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 64).id, "f/64");
        assert_eq!(BenchmarkId::from_parameter("hash").id, "hash");
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4)).sample_size(10);
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(2), &2, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(5u32).pow(2)));
    }
}
