//! No-op derive macros backing the offline `serde` stub.
//!
//! The stub's `Serialize`/`Deserialize` traits are blanket-implemented
//! markers, so the derives have nothing to generate; they exist only so
//! `#[derive(Serialize, Deserialize)]` (and `#[serde(...)]` helper
//! attributes) parse exactly as they would against real serde.

use proc_macro::TokenStream;

/// Expands to nothing; the stub trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stub trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
