//! Offline mini-proptest.
//!
//! A registry-free stand-in for the `proptest` crate implementing the
//! subset of its API this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * range strategies over the primitive integer and float types,
//! * [`strategy::Just`], [`prop_oneof!`], `prop::collection::vec`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the
//! test name), so failures are reproducible run-to-run without a
//! persistence file. There is no shrinking: a failing case panics with
//! the generated values via the `prop_assert*` message, which for the
//! coarse-grained model properties tested here is enough to debug from.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    ///
    /// Unlike real proptest there is no intermediate value tree (no
    /// shrinking), so a strategy is just a generator.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy producing one fixed (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (the expansion of [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from the (non-empty) list of options.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )+};
    }
    float_range_strategy!(f32, f64);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`], converted from `usize` and ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only the case count is meaningful here.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xorshift64* RNG, seeded from the test name so every
    /// test sees a distinct but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name; force nonzero state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            // Multiply-shift rejection-free mapping; bias is negligible
            // for the small ranges used in tests.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the `prop` module alias from proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among strategies: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Assert inside a property (panics with the message; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tag {
        A,
        B,
    }

    fn arb_tag() -> impl Strategy<Value = Tag> {
        prop_oneof![Just(Tag::A), Just(Tag::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            n in 3u32..17,
            x in -2.0f64..5.0,
            v in prop::collection::vec(0usize..10, 4),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..5.0).contains(&x));
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_hits_all_options(t in arb_tag()) {
            prop_assert!(t == Tag::A || t == Tag::B);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
