//! # ng-obs — structured observability for the DSE pipeline
//!
//! The pipeline behind `dse` spans sweep → point cache → guided search
//! → multi-process workers; this crate is the one place all of it
//! reports *how* a run went, not just what it produced. It is
//! deliberately dependency-free (not even the vendored workspace
//! stubs): instrumentation must never constrain who can link it.
//!
//! Four pieces, composable but independently usable:
//!
//! * [`counter`] — process-global named counters
//!   ([`counter::counter`]): lock-free atomic adds on the hot path, a
//!   registry snapshot for end-of-run metrics, and the raw material for
//!   run invariants (`sweep.cache_hits + sweep.fresh_evals ==
//!   sweep.points`).
//! * [`span`] — hierarchical wall-clock spans ([`span::span`]): a
//!   thread-local stack tracks nesting, every span end folds into an
//!   in-process profile (call counts, total vs. *self* time), and —
//!   when recording is on — emits begin/end events to the ledger.
//! * [`sink`] — the recording layer: a crash-safe append-only JSONL
//!   event ledger using the same file discipline as the point store
//!   (exclusive advisory lock per append, every write a whole
//!   newline-terminated line, torn tails tolerated by readers).
//!   Enabled by [`sink::enable`] (the `dse --trace` path) or the
//!   `NG_DSE_TRACE` environment variable; a disabled sink costs one
//!   relaxed atomic load per would-be event.
//! * [`ledger`] — the read side: parse a ledger (tolerating a torn
//!   final line), rebuild the per-stage profile, check span balance,
//!   stage coverage and counter invariants, and export Chrome
//!   `trace.json` for chrome://tracing.
//!
//! [`progress`] is the small extra: a single-line stderr meter that
//! samples a counter in the background — long sweeps get a live
//! `done/total (rate)` line without the evaluation loop knowing
//! anything about terminals.
//!
//! ## Overhead budget
//!
//! Counters are one `AtomicU64::fetch_add` each (~1 ns); handles are
//! looked up once and hoisted out of loops. Spans cost two
//! `Instant::now` calls plus one short mutex section at end — they are
//! meant for *stages* (a sweep's lookup/evaluate/append phases), never
//! for per-point work. With recording off nothing touches a file; with
//! recording on, span begin/end and heartbeat events each pay one
//! locked append. The contract, guarded by `bench_dse
//! --check-overhead`: tracing off must keep cold sweep throughput
//! within noise of the tracked `BENCH_dse.json` trajectory.

pub mod counter;
pub mod ledger;
pub mod progress;
pub mod sink;
pub mod span;

pub use counter::{counter, Counter, CounterSnapshot};
pub use ledger::{Ledger, LedgerCheck, StageProfile};
pub use progress::{stderr_wants_progress, Meter};
pub use sink::{append_jsonl_line, emit_counters, emit_heartbeat, emit_lease, emit_meta};
pub use span::{profile_snapshot, span, SpanGuard};

/// Microseconds since the UNIX epoch — the wall-clock timestamp every
/// ledger event carries. Wall time (not a process-local monotonic
/// anchor) so events from coordinator and worker *processes* land on
/// one comparable axis; durations, by contrast, are always measured
/// with `Instant`.
pub fn epoch_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// A small process-stable thread id for trace events (`ThreadId` has no
/// stable numeric form): the first thread to ask is 0, the next 1, ...
pub fn trace_tid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
