//! Process-global named counters.
//!
//! A [`Counter`] is a clonable handle onto one shared `AtomicU64`;
//! incrementing it is a single relaxed `fetch_add`, cheap enough for
//! hot loops. Handles are created (and the registry mutex paid) once,
//! at setup time — callers hoist them out of loops or stash them in
//! `OnceLock`s.
//!
//! Counters are *cumulative for the process lifetime*. Callers that
//! want per-run numbers (the `--metrics` summary, `bench_dse`'s
//! per-phase snapshots) take a [`snapshot`] before and after and diff
//! with [`CounterSnapshot::delta_since`]. There is deliberately no
//! global reset: tests and benches run concurrently in one process,
//! and a reset would yank the rug from under every other reader.
//!
//! Naming convention: dotted lowercase paths, subsystem first —
//! `sweep.points`, `store.lock_wait_us`, `search.hill.accepted`.
//! Counters measuring time carry a `_us` suffix and count microseconds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A handle onto one named counter. Cloning shares the underlying
/// value.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Arc<AtomicU64>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arc<AtomicU64>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The handle for counter `name`, creating it (at zero) on first use.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().expect("counter registry never poisoned");
    let cell = reg.entry(name.to_string()).or_default().clone();
    Counter { cell }
}

/// A point-in-time copy of every registered counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: BTreeMap<String, u64>,
}

impl CounterSnapshot {
    /// The value of `name` in this snapshot (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Counters that grew since `earlier`, as `(name, growth)` — the
    /// per-run view of the cumulative registry. Counters absent from
    /// `earlier` count from zero; unchanged counters are omitted.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let values = self
            .values
            .iter()
            .filter_map(|(name, &now)| {
                let growth = now.saturating_sub(earlier.get(name));
                (growth > 0).then(|| (name.clone(), growth))
            })
            .collect();
        CounterSnapshot { values }
    }

    /// Whether the snapshot holds no counters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Snapshot every registered counter.
pub fn snapshot() -> CounterSnapshot {
    let reg = registry().lock().expect("counter registry never poisoned");
    CounterSnapshot {
        values: reg.iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_named_cell() {
        // Unique names: the registry is process-global and other tests
        // (and their counters) run in this same process.
        let a = counter("test.counter.shared");
        let b = counter("test.counter.shared");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn snapshot_and_delta() {
        let c = counter("test.counter.delta");
        let before = snapshot();
        c.add(7);
        let after = snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.get("test.counter.delta"), 7);
        // Unchanged counters are not in the delta.
        assert!(delta.iter().all(|(_, v)| v > 0));
        assert_eq!(after.get("test.counter.never-registered"), 0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_increments() {
        let threads = 8;
        let per_thread = 10_000u64;
        let before = counter("test.counter.stress").get();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let c = counter("test.counter.stress");
                    for _ in 0..per_thread {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(counter("test.counter.stress").get() - before, threads * per_thread);
    }
}
