//! A single-line stderr progress meter driven by counter sampling.
//!
//! The evaluation loop stays oblivious: it increments a [`Counter`]
//! per point exactly as it would for metrics, and a [`Meter`] watches
//! that counter from a background thread, redrawing one `\r`-rewritten
//! stderr line a few times a second:
//!
//! ```text
//! sweep: 34816/121680 points (174923/s)
//! ```
//!
//! Because the meter only ever writes to stderr, stdout emitters (CSV,
//! JSON, report tables) are byte-identical with and without it — the
//! `--quiet` contract the CLI tests pin down.
//!
//! Gating lives in [`stderr_wants_progress`]: on by default only when
//! stderr is a terminal, forced on/off by `NG_DSE_PROGRESS=1`/`0`
//! (how tests exercise the meter through a pipe), and `--quiet` wins
//! over everything.

use std::io::{IsTerminal, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::counter::Counter;

/// The environment variable overriding progress-meter gating:
/// `1` forces the meter on (even into a pipe), `0` forces it off.
pub const PROGRESS_ENV: &str = "NG_DSE_PROGRESS";

/// Whether a progress meter should draw: `--quiet` always suppresses;
/// otherwise `NG_DSE_PROGRESS=1` forces on, `0` forces off, and the
/// default is "stderr is a terminal".
pub fn stderr_wants_progress(quiet: bool) -> bool {
    if quiet {
        return false;
    }
    match std::env::var(PROGRESS_ENV).ok().as_deref().map(str::trim) {
        Some("1") => true,
        Some("0") => false,
        _ => std::io::stderr().is_terminal(),
    }
}

/// Shared stop flag: the mutex holds "stop requested", the condvar
/// wakes the sampler out of its wait the moment it flips.
type StopFlag = Arc<(Mutex<bool>, Condvar)>;

/// A live progress line. Construction spawns a sampler thread; drop
/// (or [`Meter::finish`]) stops it and wipes the line so subsequent
/// stderr output starts on a clean column.
pub struct Meter {
    stop: Option<(StopFlag, JoinHandle<()>)>,
}

impl Meter {
    /// Watch `counter` and draw `label: done/total unit (rate/s)`.
    /// `total == 0` means unknown, drawing `done unit` only. When
    /// `enabled` is false this is a no-op meter costing nothing — the
    /// caller can construct unconditionally and let gating decide.
    pub fn start(label: &str, counter: Counter, total: u64, unit: &str, enabled: bool) -> Meter {
        if !enabled {
            return Meter { stop: None };
        }
        // Condvar rather than sleep-and-poll: stopping must wake the
        // sampler immediately, or joining the meter would stretch every
        // short run out to one sampling period.
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::clone(&stop);
        let label = label.to_string();
        let unit = unit.to_string();
        let base = counter.get();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            // Draw first, then wait: even a run shorter than one
            // sampling period shows (and cleanly wipes) one line.
            loop {
                let done = counter.get().saturating_sub(base);
                let secs = started.elapsed().as_secs_f64();
                let rate = if secs > 0.0 { (done as f64 / secs) as u64 } else { 0 };
                let line = if total > 0 {
                    format!("{label}: {done}/{total} {unit} ({rate}/s)")
                } else {
                    format!("{label}: {done} {unit} ({rate}/s)")
                };
                // \r + pad-to-fixed-width keeps a shrinking line from
                // leaving stale characters behind.
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "\r{line:<70}");
                let _ = err.flush();
                drop(err);
                let (lock, cv) = &*flag;
                let stopped = cv
                    .wait_timeout_while(
                        lock.lock().expect("meter stop lock never poisoned"),
                        Duration::from_millis(100),
                        |stopped| !*stopped,
                    )
                    .expect("meter stop lock never poisoned")
                    .0;
                if *stopped {
                    break;
                }
            }
            // The loop drew at least once; leave the column clean.
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{:<70}\r", "");
            let _ = err.flush();
        });
        Meter { stop: Some((stop, handle)) }
    }

    /// Stop sampling and wipe the line. Equivalent to dropping.
    pub fn finish(self) {}
}

impl Drop for Meter {
    fn drop(&mut self) {
        if let Some((stop, handle)) = self.stop.take() {
            let (lock, cv) = &*stop;
            *lock.lock().expect("meter stop lock never poisoned") = true;
            cv.notify_all();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::counter;

    #[test]
    fn disabled_meter_is_inert() {
        let c = counter("test.progress.inert");
        let meter = Meter::start("sweep", c.clone(), 100, "points", false);
        c.add(50);
        meter.finish();
    }

    #[test]
    fn enabled_meter_starts_and_stops_cleanly() {
        let c = counter("test.progress.live");
        let meter = Meter::start("sweep", c.clone(), 10, "points", true);
        for _ in 0..10 {
            c.incr();
            std::thread::sleep(Duration::from_millis(15));
        }
        meter.finish();
    }
}
