//! The recording layer: a crash-safe append-only JSONL event ledger.
//!
//! One file, one JSON object per line, appended under an exclusive
//! advisory file lock — the exact discipline the point store uses, for
//! the exact reason: any number of threads *and processes* (a
//! coordinator plus its spawned workers all pointed at the same
//! `NG_DSE_TRACE` path) may interleave events without ever tearing a
//! line, and a crashed writer leaves at worst one torn final line,
//! which [`crate::ledger`] skips.
//!
//! Recording is process-global and off by default. [`enable`] turns it
//! on (the `dse --trace PATH` path); [`init_from_env`] turns it on
//! when `NG_DSE_TRACE` names a path. When off, every emit helper
//! returns after one relaxed atomic load.
//!
//! ## Event schema (one object per line)
//!
//! | `ev`   | meaning        | fields |
//! |--------|----------------|--------|
//! | `meta` | key/value info | `ts`, `pid`, `k`, `v` |
//! | `sb`   | span begin     | `ts`, `pid`, `tid`, `path` |
//! | `se`   | span end       | `ts`, `pid`, `tid`, `path`, `dur` (µs) |
//! | `ctr`  | counter value  | `ts`, `pid`, `name`, `val` (cumulative) |
//! | `hb`   | worker progress| `ts`, `pid`, `worker`, `of`, `done`, `total`, `state` |
//! | `lease`| slice lease change | `ts`, `pid`, `worker`, `act` (`grant`/`expire`/`kill`/`reassign`/`local`), `why` |
//!
//! `ts` is wall-clock microseconds since the epoch ([`crate::epoch_us`])
//! so multi-process events share one axis; `dur` is measured
//! monotonically. Counter events carry *cumulative* values — readers
//! take the last value per `(pid, name)`.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};

use crate::{epoch_us, json_escape, trace_tid};

static RECORDING: AtomicBool = AtomicBool::new(false);
static LEDGER_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Whether a ledger is being recorded. One relaxed load — the guard
/// every emit helper takes first.
#[inline]
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Start recording events to `path` (appending if it exists, so
/// coordinator and worker processes can share one ledger). Emits a
/// `meta` event marking the attach.
pub fn enable(path: impl Into<PathBuf>) -> io::Result<()> {
    let path = path.into();
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::create_dir_all(dir)?;
    }
    // Probe writability now, so a bad path fails the run loudly instead
    // of silently dropping every event later.
    fs::OpenOptions::new().create(true).append(true).open(&path)?;
    *LEDGER_PATH.lock().expect("ledger path lock never poisoned") = Some(path);
    RECORDING.store(true, Ordering::Relaxed);
    emit_meta("attach", &format!("pid {}", std::process::id()));
    Ok(())
}

/// Stop recording (the path is kept so a re-enable appends).
pub fn disable() {
    RECORDING.store(false, Ordering::Relaxed);
}

/// The environment variable naming the trace ledger path.
pub const TRACE_ENV: &str = "NG_DSE_TRACE";

/// Enable recording from `NG_DSE_TRACE` when it names a path (empty,
/// `0` and `off` mean disabled). Returns the path when enabled.
pub fn init_from_env() -> Option<PathBuf> {
    let value = std::env::var(TRACE_ENV).ok()?;
    let trimmed = value.trim();
    if trimmed.is_empty() || trimmed == "0" || trimmed.eq_ignore_ascii_case("off") {
        return None;
    }
    let path = PathBuf::from(trimmed);
    enable(&path).ok()?;
    Some(path)
}

/// The current ledger path, when recording.
pub fn ledger_path() -> Option<PathBuf> {
    LEDGER_PATH.lock().expect("ledger path lock never poisoned").clone()
}

/// Append one already-serialised JSON line to `path` under the file's
/// exclusive advisory lock. The write is a single `write_all` of
/// `line + '\n'` while the lock is held, so concurrent appenders —
/// threads or processes — never interleave mid-line; a filesystem
/// without lock support degrades to a plain append.
///
/// Transient failures (flaky filesystem, injected `ledger:io` fault)
/// are retried with jittered exponential backoff; spent retries are
/// counted as `ledger.retries`. The injection point precedes the
/// write, so a retried attempt never duplicates a line.
///
/// Public because it is also the transport for worker heartbeat files,
/// which live next to the point store rather than in the trace ledger.
pub fn append_jsonl_line(path: &Path, line: &str) -> io::Result<()> {
    let (result, retries) = ng_fault::with_retries("ledger:io", || {
        if let Some(e) = ng_fault::ledger_append_error() {
            return Err(e);
        }
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        if let Err(e) = file.lock() {
            if e.kind() != io::ErrorKind::Unsupported {
                return Err(e);
            }
        }
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let mut file = file;
        file.write_all(buf.as_bytes())
        // Lock released when `file` drops (kernel-released even on crash).
    });
    if retries > 0 {
        ledger_retries().add(retries as u64);
    }
    result
}

/// Hoisted `ledger.retries` counter handle (see the counter-hoisting
/// discipline in `ng-dse`'s `obs_counters`).
fn ledger_retries() -> &'static crate::Counter {
    static C: std::sync::OnceLock<crate::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| crate::counter("ledger.retries"))
}

/// Emit one event line to the ledger, if recording. Emission is best
/// effort: a transient I/O error drops the event rather than failing
/// the run — observability must never turn a working sweep into a
/// broken one. A *persistent* capacity error (ENOSPC/EROFS/quota —
/// [`ng_fault::is_exhaustion`]) instead reroutes the event line to
/// stderr as JSONL, so the trace of a degraded run survives even when
/// its disk does not; each later emit still tries the file first, so
/// recording recovers by itself once space frees up.
fn emit(line: &str) {
    if !is_recording() {
        return;
    }
    let Some(path) = ledger_path() else { return };
    match append_jsonl_line(&path, line) {
        Ok(()) => {}
        Err(e) if ng_fault::is_exhaustion(&e) => {
            static NOTICED: Once = Once::new();
            NOTICED.call_once(|| {
                eprintln!(
                    "ng-obs: ledger append failed ({e}); trace events now mirror to stderr JSONL"
                );
            });
            eprintln!("{line}");
        }
        Err(_) => {}
    }
}

/// Emit a `meta` key/value event.
pub fn emit_meta(key: &str, value: &str) {
    if !is_recording() {
        return;
    }
    emit(&format!(
        "{{\"ev\":\"meta\",\"ts\":{},\"pid\":{},\"k\":\"{}\",\"v\":\"{}\"}}",
        epoch_us(),
        std::process::id(),
        json_escape(key),
        json_escape(value),
    ));
}

/// Emit a span-begin event (called by [`crate::span`]).
pub(crate) fn emit_span_begin(path: &str) {
    emit(&format!(
        "{{\"ev\":\"sb\",\"ts\":{},\"pid\":{},\"tid\":{},\"path\":\"{}\"}}",
        epoch_us(),
        std::process::id(),
        trace_tid(),
        json_escape(path),
    ));
}

/// Emit a span-end event with its measured duration in microseconds.
pub(crate) fn emit_span_end(path: &str, dur_us: u64) {
    emit(&format!(
        "{{\"ev\":\"se\",\"ts\":{},\"pid\":{},\"tid\":{},\"path\":\"{}\",\"dur\":{}}}",
        epoch_us(),
        std::process::id(),
        trace_tid(),
        json_escape(path),
        dur_us,
    ));
}

/// Emit one `ctr` event per registered counter (cumulative values).
/// Call at end of run — `dse` does, right before reporting — so a
/// ledger always closes with the process's final counter state.
pub fn emit_counters() {
    if !is_recording() {
        return;
    }
    let ts = epoch_us();
    let pid = std::process::id();
    for (name, value) in crate::counter::snapshot().iter() {
        emit(&format!(
            "{{\"ev\":\"ctr\",\"ts\":{ts},\"pid\":{pid},\"name\":\"{}\",\"val\":{value}}}",
            json_escape(name),
        ));
    }
}

/// Serialise a worker progress/heartbeat event (without emitting it) —
/// the line format shared by the trace ledger and the per-store
/// heartbeat file the distributed backend maintains.
pub fn heartbeat_line(worker: usize, of: usize, done: usize, total: usize, state: &str) -> String {
    format!(
        "{{\"ev\":\"hb\",\"ts\":{},\"pid\":{},\"worker\":{worker},\"of\":{of},\
         \"done\":{done},\"total\":{total},\"state\":\"{}\"}}",
        epoch_us(),
        std::process::id(),
        json_escape(state),
    )
}

/// Emit a worker heartbeat into the trace ledger, if recording.
pub fn emit_heartbeat(worker: usize, of: usize, done: usize, total: usize, state: &str) {
    if !is_recording() {
        return;
    }
    emit(&heartbeat_line(worker, of, done, total, state));
}

/// Emit a slice-lease lifecycle event (`act` is one of `grant`,
/// `expire`, `kill`, `reassign`, `local`) — the distributed
/// coordinator's recovery decisions, made replayable from the ledger.
/// Readers that predate the kind simply skip it ([`crate::ledger`]
/// parses by field, not by a closed `ev` set).
pub fn emit_lease(worker: usize, act: &str, why: &str) {
    if !is_recording() {
        return;
    }
    emit(&format!(
        "{{\"ev\":\"lease\",\"ts\":{},\"pid\":{},\"worker\":{worker},\"act\":\"{}\",\"why\":\"{}\"}}",
        epoch_us(),
        std::process::id(),
        json_escape(act),
        json_escape(why),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_line_is_one_json_object() {
        let line = heartbeat_line(2, 5, 40, 100, "run");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"worker\":2"));
        assert!(line.contains("\"state\":\"run\""));
    }

    #[test]
    fn append_creates_and_appends_whole_lines() {
        let path = std::env::temp_dir().join(format!(
            "ng-obs-append-{}-{}",
            std::process::id(),
            crate::trace_tid()
        ));
        let _ = fs::remove_file(&path);
        append_jsonl_line(&path, "{\"a\":1}").unwrap();
        append_jsonl_line(&path, "{\"b\":2}").unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        fs::remove_file(&path).unwrap();
    }
}
