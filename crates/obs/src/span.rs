//! Hierarchical wall-clock spans.
//!
//! [`span`] opens a named span on the current thread and returns a
//! [`SpanGuard`]; dropping the guard closes it. A thread-local stack
//! tracks nesting, so a span opened while another is live becomes its
//! child and its duration is charged to the parent's *child time*. At
//! close, the span folds into a process-global profile keyed by its
//! `/`-joined path (`dse/sweep/evaluate`): call count, total time, and
//! *self* time (total minus time spent in children) — the number that
//! makes a profile sum to ~100% instead of double-counting nesting.
//!
//! When the [`crate::sink`] is recording, each span additionally emits
//! an `sb` event at open and an `se` event (with measured duration) at
//! close, so the ledger can rebuild the same profile offline, check
//! that spans balance, and export a Chrome trace.
//!
//! Spans are for *stages* — a sweep's lookup/evaluate/append phases, a
//! search's drive loop — never per-point work; the per-call cost (two
//! `Instant::now`s and a short mutex section at close, plus two locked
//! file appends when recording) is trivial at stage granularity and
//! ruinous at point granularity. Per-point visibility is what
//! [`crate::counter`] is for.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::sink;

struct Frame {
    /// `/`-joined path down to and including this span.
    path: String,
    start: Instant,
    /// Accumulated durations of direct children, in microseconds.
    child_us: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Open span `name` on this thread, nested under the innermost live
/// span. Hold the returned guard for the span's extent:
///
/// ```
/// {
///     let _s = ng_obs::span("sweep");
///     let _inner = ng_obs::span("evaluate");
///     // ... work ...
/// } // both close here, innermost first
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_string(),
        };
        stack.push(Frame { path: path.clone(), start: Instant::now(), child_us: 0 });
        path
    });
    sink::emit_span_begin(&path);
    SpanGuard { armed: true }
}

/// Closes its span when dropped. Guards must drop in reverse open
/// order (the natural result of lexical scoping); a guard that
/// outlives a later-opened one would mis-attribute child time.
#[must_use = "a span measures the extent of its guard — bind it with `let _s = span(..)`"]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let closed = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop()?;
            let total_us = frame.start.elapsed().as_micros() as u64;
            if let Some(parent) = stack.last_mut() {
                parent.child_us += total_us;
            }
            Some((frame, total_us))
        });
        let Some((frame, total_us)) = closed else {
            return;
        };
        let self_us = total_us.saturating_sub(frame.child_us);
        {
            let mut profile = profile().lock().expect("span profile never poisoned");
            let stat = profile.entry(frame.path.clone()).or_default();
            stat.calls += 1;
            stat.total_us += total_us;
            stat.self_us += self_us;
        }
        sink::emit_span_end(&frame.path, total_us);
    }
}

/// Per-path aggregate across every closed span with that path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of spans closed at this path.
    pub calls: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Sum of durations minus time in child spans, microseconds.
    pub self_us: u64,
}

fn profile() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static PROFILE: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    PROFILE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The in-process profile: every closed span path with its aggregate
/// stats, in path order. Like counters, cumulative for the process —
/// diff two snapshots for a per-run view.
pub fn profile_snapshot() -> Vec<(String, SpanStat)> {
    let profile = profile().lock().expect("span profile never poisoned");
    profile.iter().map(|(path, stat)| (path.clone(), *stat)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stat(path: &str) -> SpanStat {
        profile_snapshot().into_iter().find(|(p, _)| p == path).map(|(_, s)| s).unwrap_or_default()
    }

    #[test]
    fn nesting_builds_paths_and_charges_self_time() {
        // Distinct root name: the profile is process-global and shared
        // with every other test in this binary.
        let before_root = stat("test-nest");
        let before_child = stat("test-nest/child");
        {
            let _root = span("test-nest");
            std::thread::sleep(Duration::from_millis(4));
            {
                let _child = span("child");
                std::thread::sleep(Duration::from_millis(4));
            }
        }
        let root = stat("test-nest");
        let child = stat("test-nest/child");
        assert_eq!(root.calls - before_root.calls, 1);
        assert_eq!(child.calls - before_child.calls, 1);
        let root_total = root.total_us - before_root.total_us;
        let root_self = root.self_us - before_root.self_us;
        let child_total = child.total_us - before_child.total_us;
        // Root total covers both sleeps; its self time excludes the child.
        assert!(root_total >= child_total);
        assert_eq!(root_self, root_total - child_total);
        assert!(child_total >= 3_000, "child slept ~4ms, saw {child_total}us");
        assert!(root_self >= 3_000, "root slept ~4ms outside child, saw {root_self}us");
    }

    #[test]
    fn sibling_threads_do_not_nest() {
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _s = span("test-thread-root");
                    std::thread::sleep(Duration::from_millis(1));
                });
            }
        });
        // Each thread rooted its own span: no "test-thread-root/test-thread-root".
        assert!(profile_snapshot().iter().all(|(p, _)| p != "test-thread-root/test-thread-root"));
        assert!(stat("test-thread-root").calls >= 2);
    }

    #[test]
    fn repeated_calls_accumulate() {
        let before = stat("test-repeat");
        for _ in 0..5 {
            let _s = span("test-repeat");
        }
        let after = stat("test-repeat");
        assert_eq!(after.calls - before.calls, 5);
    }
}
