//! The read side of the event ledger: parse, profile, check, export.
//!
//! A ledger is whatever [`crate::sink`] appended — possibly from
//! several processes, possibly ending in a torn line if a writer
//! crashed mid-append. [`Ledger::read`] therefore parses leniently:
//! every line that is a well-formed flat JSON object becomes an
//! [`Event`]; anything else (torn tail, stray garbage) is counted in
//! [`Ledger::skipped_lines`] and ignored.
//!
//! From the events we rebuild exactly what the live process knew:
//!
//! * [`Ledger::profile`] — per-stage aggregates (calls, total, self
//!   time) reconstructed by replaying `sb`/`se` per `(pid, tid)`
//!   stack, mirroring [`crate::span`]'s in-process accounting.
//! * [`Ledger::check`] — the run health verdict: do spans balance, do
//!   the named stages cover the root span's wall time, and does
//!   `sweep.cache_hits + sweep.fresh_evals == sweep.points` hold for
//!   every process that swept points.
//! * [`Ledger::chrome_trace`] — the same events as Chrome
//!   `trace.json` (open in chrome://tracing or ui.perfetto.dev).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::json_escape;

/// One parsed ledger event: the `ev` discriminator plus its fields.
/// Fields are flat — strings or unsigned integers — by construction
/// of the writer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    fields: BTreeMap<String, Field>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Field {
    Num(u64),
    Str(String),
}

impl Event {
    /// The event kind (`meta`, `sb`, `se`, `ctr`, `hb`), or `""`.
    pub fn kind(&self) -> &str {
        self.str_field("ev").unwrap_or("")
    }

    /// A string field, when present and a string.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        match self.fields.get(name)? {
            Field::Str(s) => Some(s),
            Field::Num(_) => None,
        }
    }

    /// A numeric field, when present and a number.
    pub fn num_field(&self, name: &str) -> Option<u64> {
        match self.fields.get(name)? {
            Field::Num(n) => Some(*n),
            Field::Str(_) => None,
        }
    }
}

/// Parse one line as a flat JSON object (string and unsigned-integer
/// values only — the only shapes the writer produces). `None` on
/// anything else; callers treat that as a skippable line.
fn parse_event(line: &str) -> Option<Event> {
    let mut chars = line.trim().char_indices().peekable();
    let s = line.trim();
    let mut fields = BTreeMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while chars.next_if(|&(_, c)| c.is_ascii_whitespace()).is_some() {}
    }
    fn parse_string(
        s: &str,
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Option<String> {
        let (_, quote) = chars.next()?;
        if quote != '"' {
            return None;
        }
        let mut out = String::new();
        loop {
            let (_, c) = chars.next()?;
            match c {
                '"' => return Some(out),
                '\\' => {
                    let (i, esc) = chars.next()?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let hex = s.get(i + 1..i + 5)?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            for _ in 0..4 {
                                chars.next()?;
                            }
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    let (_, open) = chars.next()?;
    if open != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.next_if(|&(_, c)| c == '}').is_some() {
        skip_ws(&mut chars);
        return chars.next().is_none().then_some(Event { fields });
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(s, &mut chars)?;
        skip_ws(&mut chars);
        let (_, colon) = chars.next()?;
        if colon != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            (_, '"') => Field::Str(parse_string(s, &mut chars)?),
            (_, c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some((_, d)) = chars.next_if(|&(_, c)| c.is_ascii_digit()) {
                    n = n.checked_mul(10)?.checked_add(d as u64 - '0' as u64)?;
                }
                Field::Num(n)
            }
            _ => return None,
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next()? {
            (_, ',') => continue,
            (_, '}') => break,
            _ => return None,
        }
    }
    skip_ws(&mut chars);
    chars.next().is_none().then_some(Event { fields })
}

/// A parsed ledger: the event stream plus what had to be skipped.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Events in file order.
    pub events: Vec<Event>,
    /// Lines that did not parse as events (a torn final line from a
    /// crashed writer lands here, by design).
    pub skipped_lines: usize,
}

/// Per-stage aggregate reconstructed from the ledger, one per span
/// path (summed across processes and threads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProfile {
    /// `/`-joined span path, e.g. `dse/sweep/evaluate`.
    pub path: String,
    /// Spans closed at this path.
    pub calls: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Total minus time in child spans, microseconds.
    pub self_us: u64,
}

/// The verdict of [`Ledger::check`].
#[derive(Debug, Clone, Default)]
pub struct LedgerCheck {
    /// Span paths opened (`sb`) but never closed (`se`), or closed out
    /// of order. Empty means every span balanced.
    pub unbalanced: Vec<String>,
    /// Fraction of the largest root span's wall time spent inside
    /// named child stages (1 − self/total). The acceptance bar is
    /// ≥ 0.95; a ledger with no root spans reports 0.
    pub coverage: f64,
    /// Path and total of the root span coverage was measured on.
    pub root: Option<(String, u64)>,
    /// Violations of `sweep.cache_hits + sweep.fresh_evals ==
    /// sweep.points`, one message per offending process.
    pub invariant_violations: Vec<String>,
    /// Processes whose final counters included `sweep.points`.
    pub sweeping_pids: usize,
}

impl LedgerCheck {
    /// Overall verdict at a given coverage floor.
    pub fn ok(&self, coverage_min: f64) -> bool {
        self.unbalanced.is_empty()
            && self.invariant_violations.is_empty()
            && self.coverage >= coverage_min
    }
}

impl Ledger {
    /// Read and parse a ledger file leniently.
    pub fn read(path: &Path) -> io::Result<Ledger> {
        let bytes = std::fs::read(path)?;
        Ok(Self::parse(&String::from_utf8_lossy(&bytes)))
    }

    /// Parse ledger text leniently: unparseable lines are counted, not
    /// fatal.
    pub fn parse(text: &str) -> Ledger {
        let mut ledger = Ledger::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_event(line) {
                Some(ev) => ledger.events.push(ev),
                None => ledger.skipped_lines += 1,
            }
        }
        ledger
    }

    /// Iterate events of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.kind() == kind)
    }

    /// Final value of every counter, per process: the last `ctr` event
    /// wins for each `(pid, name)`.
    pub fn final_counters(&self) -> BTreeMap<(u64, String), u64> {
        let mut out = BTreeMap::new();
        for ev in self.of_kind("ctr") {
            if let (Some(pid), Some(name), Some(val)) =
                (ev.num_field("pid"), ev.str_field("name"), ev.num_field("val"))
            {
                out.insert((pid, name.to_string()), val);
            }
        }
        out
    }

    /// Rebuild the per-stage profile by replaying `sb`/`se` through a
    /// stack per `(pid, tid)` — the offline mirror of the in-process
    /// accounting in [`crate::span`]. Unbalanced events are tolerated
    /// here (dropped); [`Ledger::check`] is where they become errors.
    pub fn profile(&self) -> Vec<StageProfile> {
        // Per-(pid,tid) stack of (path, child_us).
        let mut stacks: BTreeMap<(u64, u64), Vec<(String, u64)>> = BTreeMap::new();
        let mut agg: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for ev in self.events.iter() {
            let key = (ev.num_field("pid").unwrap_or(0), ev.num_field("tid").unwrap_or(0));
            match ev.kind() {
                "sb" => {
                    if let Some(path) = ev.str_field("path") {
                        stacks.entry(key).or_default().push((path.to_string(), 0));
                    }
                }
                "se" => {
                    let (Some(path), Some(dur)) = (ev.str_field("path"), ev.num_field("dur"))
                    else {
                        continue;
                    };
                    let stack = stacks.entry(key).or_default();
                    // Only a close matching the innermost open counts;
                    // anything else is an imbalance check() will flag.
                    if stack.last().is_some_and(|(top, _)| top == path) {
                        let (_, child_us) = stack.pop().expect("guarded by last()");
                        if let Some((_, parent_child)) = stack.last_mut() {
                            *parent_child += dur;
                        }
                        let entry = agg.entry(path.to_string()).or_default();
                        entry.0 += 1;
                        entry.1 += dur;
                        entry.2 += dur.saturating_sub(child_us);
                    }
                }
                _ => {}
            }
        }
        agg.into_iter()
            .map(|(path, (calls, total_us, self_us))| StageProfile {
                path,
                calls,
                total_us,
                self_us,
            })
            .collect()
    }

    /// Run the health checks: span balance, stage coverage of the
    /// largest root span, and the cache-accounting invariant.
    pub fn check(&self) -> LedgerCheck {
        let mut check = LedgerCheck::default();

        // Balance: replay stacks; a close must match the innermost open.
        let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
        for ev in self.events.iter() {
            let key = (ev.num_field("pid").unwrap_or(0), ev.num_field("tid").unwrap_or(0));
            match ev.kind() {
                "sb" => {
                    if let Some(path) = ev.str_field("path") {
                        stacks.entry(key).or_default().push(path.to_string());
                    }
                }
                "se" => {
                    let Some(path) = ev.str_field("path") else { continue };
                    let stack = stacks.entry(key).or_default();
                    if stack.last().is_some_and(|top| top == path) {
                        stack.pop();
                    } else {
                        check.unbalanced.push(format!("close without matching open: {path}"));
                    }
                }
                _ => {}
            }
        }
        for (_, stack) in stacks {
            for path in stack {
                check.unbalanced.push(format!("open without close: {path}"));
            }
        }
        check.unbalanced.sort();
        check.unbalanced.dedup();

        // Coverage: on the largest root span (the process-level root on
        // the main thread), how much wall time did named child stages
        // account for? 1 − self/total, from the reconstructed profile.
        let profile = self.profile();
        if let Some(root) =
            profile.iter().filter(|p| !p.path.contains('/')).max_by_key(|p| p.total_us)
        {
            check.root = Some((root.path.clone(), root.total_us));
            if root.total_us > 0 {
                check.coverage = 1.0 - (root.self_us as f64 / root.total_us as f64);
            }
        }

        // Invariant: per sweeping process, hits + fresh == points.
        let counters = self.final_counters();
        for ((pid, name), &points) in counters.iter() {
            if name != "sweep.points" || points == 0 {
                continue;
            }
            check.sweeping_pids += 1;
            let hits = counters.get(&(*pid, "sweep.cache_hits".to_string())).copied().unwrap_or(0);
            let fresh =
                counters.get(&(*pid, "sweep.fresh_evals".to_string())).copied().unwrap_or(0);
            if hits + fresh != points {
                check.invariant_violations.push(format!(
                    "pid {pid}: cache_hits ({hits}) + fresh_evals ({fresh}) != points ({points})"
                ));
            }
        }
        check
    }

    /// Export the span events as Chrome `trace.json` (a JSON array of
    /// `B`/`E` duration events, timestamps in microseconds), loadable
    /// in chrome://tracing or ui.perfetto.dev.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for ev in self.events.iter() {
            let ph = match ev.kind() {
                "sb" => "B",
                "se" => "E",
                _ => continue,
            };
            let Some(path) = ev.str_field("path") else { continue };
            let name = path.rsplit('/').next().unwrap_or(path);
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"dse\",\"ph\":\"{ph}\",\"ts\":{},\
                 \"pid\":{},\"tid\":{}}}",
                json_escape(name),
                ev.num_field("ts").unwrap_or(0),
                ev.num_field("pid").unwrap_or(0),
                ev.num_field("tid").unwrap_or(0),
            );
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(pid: u64, tid: u64, path: &str, ts: u64) -> String {
        format!("{{\"ev\":\"sb\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"path\":\"{path}\"}}")
    }
    fn se(pid: u64, tid: u64, path: &str, ts: u64, dur: u64) -> String {
        format!(
            "{{\"ev\":\"se\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\
             \"path\":\"{path}\",\"dur\":{dur}}}"
        )
    }
    fn ctr(pid: u64, name: &str, val: u64) -> String {
        format!("{{\"ev\":\"ctr\",\"ts\":0,\"pid\":{pid},\"name\":\"{name}\",\"val\":{val}}}")
    }

    #[test]
    fn parses_writer_shapes_and_skips_garbage() {
        let text = [
            "{\"ev\":\"meta\",\"ts\":1,\"pid\":7,\"k\":\"preset\",\"v\":\"quick \\\"q\\\"\"}",
            "",
            "not json",
            "{\"ev\":\"ctr\",\"ts\":2,\"pid\":7,\"name\":\"sweep.points\",\"val\":128}",
            "{\"ev\":\"sb\",\"ts\":3,\"pid\":7,\"tid\":0,\"pa", // torn tail
        ]
        .join("\n");
        let ledger = Ledger::parse(&text);
        assert_eq!(ledger.events.len(), 2);
        assert_eq!(ledger.skipped_lines, 2);
        assert_eq!(ledger.events[0].str_field("v"), Some("quick \"q\""));
        assert_eq!(ledger.events[1].num_field("val"), Some(128));
    }

    #[test]
    fn profile_mirrors_in_process_accounting() {
        // root(100) wrapping child(60), plus a second process's root.
        let text = [
            sb(1, 0, "dse", 0),
            sb(1, 0, "dse/sweep", 10),
            se(1, 0, "dse/sweep", 70, 60),
            se(1, 0, "dse", 100, 100),
            sb(2, 0, "dse", 0),
            se(2, 0, "dse", 40, 40),
        ]
        .join("\n");
        let profile = Ledger::parse(&text).profile();
        let root = profile.iter().find(|p| p.path == "dse").unwrap();
        assert_eq!((root.calls, root.total_us, root.self_us), (2, 140, 80));
        let sweep = profile.iter().find(|p| p.path == "dse/sweep").unwrap();
        assert_eq!((sweep.calls, sweep.total_us, sweep.self_us), (1, 60, 60));
    }

    #[test]
    fn check_flags_imbalance_and_measures_coverage() {
        let balanced = [
            sb(1, 0, "dse", 0),
            sb(1, 0, "dse/sweep", 0),
            se(1, 0, "dse/sweep", 96, 96),
            se(1, 0, "dse", 100, 100),
        ]
        .join("\n");
        let check = Ledger::parse(&balanced).check();
        assert!(check.unbalanced.is_empty());
        assert!((check.coverage - 0.96).abs() < 1e-9);
        assert!(check.ok(0.95));
        assert!(!check.ok(0.97));

        let torn =
            [sb(1, 0, "dse", 0), sb(1, 0, "dse/sweep", 0), se(1, 0, "dse", 100, 100)].join("\n");
        let check = Ledger::parse(&torn).check();
        assert!(!check.unbalanced.is_empty());
        assert!(!check.ok(0.0));
    }

    #[test]
    fn counter_invariant_is_per_process() {
        let good = [
            ctr(1, "sweep.points", 100),
            ctr(1, "sweep.cache_hits", 40),
            ctr(1, "sweep.fresh_evals", 60),
            ctr(2, "sweep.points", 10),
            ctr(2, "sweep.cache_hits", 0),
            ctr(2, "sweep.fresh_evals", 10),
        ]
        .join("\n");
        let check = Ledger::parse(&good).check();
        assert_eq!(check.sweeping_pids, 2);
        assert!(check.invariant_violations.is_empty());

        let bad = [ctr(3, "sweep.points", 100), ctr(3, "sweep.fresh_evals", 60)].join("\n");
        let check = Ledger::parse(&bad).check();
        assert_eq!(check.invariant_violations.len(), 1);
        assert!(check.invariant_violations[0].contains("pid 3"));
    }

    #[test]
    fn chrome_trace_pairs_b_and_e() {
        let text = [sb(1, 0, "dse/sweep", 5), se(1, 0, "dse/sweep", 25, 20)].join("\n");
        let trace = Ledger::parse(&text).chrome_trace();
        assert!(trace.trim_start().starts_with('['));
        assert!(trace.trim_end().ends_with(']'));
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"ph\":\"E\""));
        // Chrome names use the leaf segment.
        assert!(trace.contains("\"name\":\"sweep\""));
    }
}
