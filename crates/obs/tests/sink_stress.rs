//! Crash-safety contract of the JSONL event sink (ISSUE 6):
//! concurrent appenders must never tear each other's lines, and a
//! reader must tolerate a file whose final line was cut short by a
//! dying writer.

use std::path::PathBuf;

use ng_obs::{append_jsonl_line, sink::heartbeat_line, Ledger};

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ng-obs-{tag}-{}.jsonl", std::process::id()))
}

/// Many threads hammering one sink file: every appended line must
/// survive intact — the locked single-`write_all` discipline means a
/// reader never sees two writers interleaved mid-line.
#[test]
fn concurrent_appends_produce_no_torn_lines() {
    const WRITERS: usize = 8;
    const LINES_PER_WRITER: usize = 200;

    let path = temp_file("stress");
    let _ = std::fs::remove_file(&path);

    std::thread::scope(|scope| {
        for worker in 0..WRITERS {
            let path = &path;
            scope.spawn(move || {
                for done in 0..LINES_PER_WRITER {
                    let line = heartbeat_line(worker, WRITERS, done, LINES_PER_WRITER, "run");
                    append_jsonl_line(path, &line).expect("append succeeds");
                }
            });
        }
    });

    let ledger = Ledger::read(&path).expect("sink file readable");
    assert_eq!(ledger.skipped_lines, 0, "torn or malformed lines in sink file");
    let beats: Vec<_> = ledger.of_kind("hb").collect();
    assert_eq!(beats.len(), WRITERS * LINES_PER_WRITER);

    // Stronger than counting: every (worker, done) pair arrived exactly
    // once, so no line was lost or spliced into a parseable-but-wrong one.
    let mut seen = vec![[false; LINES_PER_WRITER]; WRITERS];
    for beat in &beats {
        let worker = beat.num_field("worker").expect("worker field") as usize;
        let done = beat.num_field("done").expect("done field") as usize;
        assert!(!seen[worker][done], "duplicate heartbeat ({worker}, {done})");
        seen[worker][done] = true;
    }
    assert!(seen.iter().flatten().all(|&s| s), "missing heartbeat lines");

    let _ = std::fs::remove_file(&path);
}

/// A writer killed mid-append leaves a partial final line with no
/// trailing newline. The reader must keep every complete line and
/// report exactly one skipped line rather than erroring out.
#[test]
fn reader_tolerates_truncated_final_line() {
    let path = temp_file("torn-tail");
    let _ = std::fs::remove_file(&path);

    for done in 0..4 {
        append_jsonl_line(&path, &heartbeat_line(0, 1, done, 4, "run")).expect("append succeeds");
    }
    // Simulate the crash: chop the file mid-way through its last line.
    let bytes = std::fs::read(&path).expect("sink file readable");
    let keep = bytes.len() - 9;
    std::fs::write(&path, &bytes[..keep]).expect("truncate succeeds");

    let ledger = Ledger::read(&path).expect("truncated file still readable");
    assert_eq!(ledger.skipped_lines, 1, "exactly the torn tail is skipped");
    assert_eq!(ledger.of_kind("hb").count(), 3, "complete lines all survive");

    let _ = std::fs::remove_file(&path);
}
