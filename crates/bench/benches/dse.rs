//! Criterion benches of the design-space explorer: sweep throughput
//! (points/sec through the full emulator path) and frontier extraction
//! on large objective clouds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ng_dse::{pareto_indices, Objectives, SweepEngine, SweepSpec};

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse_sweep");
    let spec = SweepSpec::quick();
    group.throughput(Throughput::Elements(spec.point_count() as u64));
    group.bench_function("quick_preset", |b| {
        let engine = SweepEngine::new().without_cache();
        b.iter(|| engine.run(&spec).expect("valid spec"))
    });
    let paper = SweepSpec::paper();
    group.throughput(Throughput::Elements(paper.point_count() as u64));
    group.sample_size(10);
    group.bench_function("paper_preset_1440pts", |b| {
        let engine = SweepEngine::new().without_cache();
        b.iter(|| engine.run(&paper).expect("valid spec"))
    });
    group.finish();
}

fn bench_pareto_extraction(c: &mut Criterion) {
    // A synthetic cloud with a realistically small frontier: random
    // trade-off shells plus noise.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let cloud: Vec<Objectives> = (0..10_000)
        .map(|_| {
            let (a, b, n) = (next(), next(), next());
            Objectives {
                speedup: 100.0 * a * b + n,
                area_pct: 50.0 * a + n,
                power_pct: 50.0 * b + n,
            }
        })
        .collect();
    let mut group = c.benchmark_group("dse_pareto");
    group.throughput(Throughput::Elements(cloud.len() as u64));
    group.bench_function("frontier_10k_points", |b| b.iter(|| pareto_indices(&cloud)));
    group.finish();
}

criterion_group!(benches, bench_sweep_throughput, bench_pareto_extraction);
criterion_main!(benches);
