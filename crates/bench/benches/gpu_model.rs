//! Criterion benches of the GPU performance model and the NGPC emulator
//! themselves (they must be fast enough for design-space sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use ng_gpu::cost::estimate_frame;
use ng_gpu::ops::op_breakdown_average;
use ng_gpu::{kernel_breakdown, rtx3090, FrameWorkload};
use ng_neural::apps::{AppKind, EncodingKind};
use ngpc::emulator::{emulate, EmulatorInput};

fn bench_cost_model(c: &mut Criterion) {
    let gpu = rtx3090();
    let w = FrameWorkload::derive(AppKind::Nvr, EncodingKind::MultiResDenseGrid, 1920 * 1080);
    c.bench_function("gpu_estimate_frame", |b| b.iter(|| estimate_frame(&gpu, &w)));
    c.bench_function("gpu_kernel_breakdown", |b| {
        b.iter(|| kernel_breakdown(AppKind::Nerf, EncodingKind::MultiResHashGrid, 1920 * 1080))
    });
    c.bench_function("gpu_op_breakdown", |b| {
        b.iter(|| op_breakdown_average(&gpu, EncodingKind::MultiResDenseGrid))
    });
}

fn bench_emulator(c: &mut Criterion) {
    c.bench_function("ngpc_emulate", |b| {
        b.iter(|| emulate(&EmulatorInput { nfp_units: 64, ..EmulatorInput::default() }))
    });
    c.bench_function("ngpc_emulate_full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for app in AppKind::ALL {
                for enc in EncodingKind::ALL {
                    for n in [8u32, 16, 32, 64] {
                        acc += emulate(&EmulatorInput {
                            app,
                            encoding: enc,
                            nfp_units: n,
                            ..EmulatorInput::default()
                        })
                        .speedup;
                    }
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_cost_model, bench_emulator);
criterion_main!(benches);
