//! Criterion benches of the training loop: one optimizer step per
//! application (the per-step cost a practitioner would care about).

use criterion::{criterion_group, criterion_main, Criterion};
use ng_neural::apps::gia::GiaModel;
use ng_neural::apps::nsdf::NsdfModel;
use ng_neural::apps::EncodingKind;
use ng_neural::data::procedural::ProceduralImage;
use ng_neural::data::sdf::SdfShape;
use ng_neural::train::{TrainConfig, Trainer};

fn bench_gia_step(c: &mut Criterion) {
    let image = ProceduralImage::new(5);
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    group.bench_function("gia_batch256_low_res", |b| {
        // Fresh model per iteration batch would swamp the timing; train
        // repeatedly on the same model (steady-state step cost).
        let mut model = GiaModel::new(EncodingKind::LowResDenseGrid, 1);
        let cfg = TrainConfig { steps: 1, batch_size: 256, ..TrainConfig::default() };
        let trainer = Trainer::new(cfg);
        b.iter(|| trainer.train_gia(&mut model, &image));
    });
    group.bench_function("nsdf_batch256_hashgrid", |b| {
        let shape = SdfShape::centered_sphere(0.3);
        let mut model = NsdfModel::new(EncodingKind::MultiResHashGrid, 2);
        let cfg = TrainConfig { steps: 1, batch_size: 256, ..TrainConfig::default() };
        let trainer = Trainer::new(cfg);
        b.iter(|| trainer.train_nsdf(&mut model, move |p| shape.distance(p), 0.2));
    });
    group.finish();
}

criterion_group!(benches, bench_gia_step);
criterion_main!(benches);
