//! Criterion benches of the input-encoding substrate: throughput of the
//! three Table I encoding schemes plus the fixed-function baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ng_neural::encoding::composite::IdentityEncoding;
use ng_neural::encoding::frequency::FrequencyEncoding;
use ng_neural::encoding::sh::SphericalHarmonics;
use ng_neural::encoding::{encode_batch, Encoding, GridConfig, MultiResGrid};

fn bench_grid_encodings(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_encode");
    let configs = [
        ("hashgrid_L16", GridConfig::hashgrid(3, 14, 1.5)),
        ("densegrid_L8", GridConfig::densegrid(3, 14)),
        ("low_res_L2", GridConfig::low_res_densegrid(3, 14)),
    ];
    let batch: Vec<f32> = (0..3 * 1024).map(|i| (i as f32 * 0.61803) % 1.0).collect();
    for (name, cfg) in configs {
        let grid = MultiResGrid::new(cfg, 1).expect("valid config");
        group.throughput(Throughput::Elements(1024));
        group.bench_with_input(BenchmarkId::new("batch1024", name), &grid, |b, g| {
            b.iter(|| encode_batch(g, &batch).expect("encodes"));
        });
    }
    group.finish();
}

fn bench_fixed_function(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixed_function_encode");
    let freq = FrequencyEncoding::new(3, 10);
    let sh = SphericalHarmonics::degree4();
    let id = IdentityEncoding::new(16);
    let p3 = [0.3f32, 0.6, 0.9];
    let p16: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
    group.bench_function("frequency_3x10", |b| {
        let mut out = vec![0.0; freq.output_dim()];
        b.iter(|| freq.encode_into(&p3, &mut out).expect("encodes"));
    });
    group.bench_function("spherical_harmonics_deg4", |b| {
        let mut out = vec![0.0; sh.output_dim()];
        b.iter(|| sh.encode_into(&p3, &mut out).expect("encodes"));
    });
    group.bench_function("identity_16", |b| {
        let mut out = vec![0.0; 16];
        b.iter(|| id.encode_into(&p16, &mut out).expect("encodes"));
    });
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let grid = MultiResGrid::new(GridConfig::hashgrid(3, 12, 1.5), 2).expect("valid");
    let d_out = vec![1.0f32; grid.output_dim()];
    let mut d_params = vec![0.0f32; grid.param_count()];
    c.bench_function("grid_backward_hashgrid", |b| {
        b.iter(|| grid.backward(&[0.4, 0.5, 0.6], &d_out, &mut d_params).expect("backward"));
    });
}

criterion_group!(benches, bench_grid_encodings, bench_fixed_function, bench_backward);
criterion_main!(benches);
