//! The paper's modulo-vs-mask micro-ablation: the NFP `grid_index` unit
//! replaces the general integer modulo with a shift/mask because table
//! sizes are powers of two. This bench quantifies the same effect in
//! software, alongside the hash and dense-index primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use ng_neural::encoding::hash::{dense_index, spatial_hash, table_mask, HASH_PRIMES};
use std::hint::black_box;

fn bench_hash(c: &mut Criterion) {
    c.bench_function("spatial_hash_3d", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(97);
            black_box(spatial_hash(&[i, i.wrapping_mul(3), i.wrapping_mul(7)], 19))
        });
    });
    c.bench_function("dense_index_3d", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 100;
            black_box(dense_index(&[i, i, i], 128))
        });
    });
}

fn raw_hash(coords: &[u32; 3]) -> u32 {
    let mut h = 0u32;
    for (i, &c) in coords.iter().enumerate() {
        h ^= c.wrapping_mul(HASH_PRIMES[i]);
    }
    h
}

fn bench_modulo_vs_mask(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_reduction");
    // Non-constant table size defeats compiler strength reduction, like
    // the GPU kernel the paper profiles where T is a runtime value.
    let t: u32 = black_box(1 << 19);
    group.bench_function("general_modulo", |b| {
        let mut i = 1u32;
        b.iter(|| {
            i = i.wrapping_add(1013);
            black_box(raw_hash(&[i, i ^ 5, i ^ 9]) % t)
        });
    });
    group.bench_function("power_of_two_mask", |b| {
        let mut i = 1u32;
        let mask = table_mask(19);
        b.iter(|| {
            i = i.wrapping_add(1013);
            black_box(raw_hash(&[i, i ^ 5, i ^ 9]) & mask)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hash, bench_modulo_vs_mask);
criterion_main!(benches);
