//! Criterion benches of the rendering substrate: compositing, sphere
//! tracing and full small-frame renders through a live model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ng_neural::apps::nvr::NvrModel;
use ng_neural::apps::EncodingKind;
use ng_neural::data::sdf::SdfShape;
use ng_neural::math::Vec3;
use ng_neural::render::camera::{Camera, Ray};
use ng_neural::render::sphere_trace::{sphere_trace, SphereTraceConfig};
use ng_neural::render::volume::{composite_ray, RaymarchConfig};
use ng_neural::render::ImageBuffer;

fn bench_compositing(c: &mut Criterion) {
    let cfg = RaymarchConfig { n_samples: 96, ..RaymarchConfig::default() };
    c.bench_function("composite_ray_96_samples", |b| {
        b.iter(|| {
            composite_ray(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), 0.0, 1.0, &cfg, |p| {
                (Vec3::new(p.z, 0.5, 1.0 - p.z), 3.0 * p.z)
            })
        })
    });
}

fn bench_sphere_trace(c: &mut Criterion) {
    let shape = SdfShape::centered_torus(0.2, 0.07);
    let ray = Ray { origin: Vec3::new(0.5, 0.5, -1.5), dir: Vec3::new(0.0, 0.0, 1.0) };
    let cfg = SphereTraceConfig::default();
    c.bench_function("sphere_trace_torus", |b| {
        b.iter(|| sphere_trace(&ray, &cfg, |p| shape.distance(p)))
    });
}

fn bench_neural_frame(c: &mut Criterion) {
    // A 32x32 volume-rendered frame through an untrained NVR model:
    // measures the full query pipeline under rendering load.
    let model = NvrModel::new(EncodingKind::LowResDenseGrid, 3);
    let cam = Camera::orbit(0.8, 0.4, 1.8, 1.0);
    let march = RaymarchConfig { n_samples: 16, ..RaymarchConfig::default() };
    let mut group = c.benchmark_group("neural_frame");
    group.sample_size(10);
    group.throughput(Throughput::Elements(32 * 32));
    group.bench_function("nvr_32x32", |b| {
        b.iter(|| {
            let mut img = ImageBuffer::new(32, 32);
            img.fill_from(|u, v| {
                let ray = cam.ray(u, v);
                match ray.intersect_unit_cube() {
                    Some((t0, t1)) => {
                        composite_ray(ray.origin, ray.dir, t0, t1, &march, |p| {
                            let s = model.query(p).expect("in range");
                            (s.color, s.sigma)
                        })
                        .color
                    }
                    None => Vec3::ZERO,
                }
            });
            img
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compositing, bench_sphere_trace, bench_neural_frame);
criterion_main!(benches);
