//! Criterion benches of the NFP functional hardware models: the fused
//! pipeline, the encoding cluster and the MLP engine, plus the fusion
//! ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ng_neural::apps::nsdf::NsdfModel;
use ng_neural::apps::EncodingKind;
use ngpc::cluster::Ngpc;
use ngpc::engine::FusedNfp;
use ngpc::{NfpConfig, NgpcConfig};

fn bench_fused_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("nfp_fused_query");
    for enc in EncodingKind::ALL {
        let model = NsdfModel::new(enc, 7);
        let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).expect("builds");
        group.bench_with_input(BenchmarkId::from_parameter(enc.abbrev()), &(), |b, _| {
            b.iter(|| nfp.query(&[0.37, 0.58, 0.71]).expect("query"));
        });
    }
    group.finish();
}

fn bench_fused_batch(c: &mut Criterion) {
    let model = NsdfModel::new(EncodingKind::LowResDenseGrid, 9);
    let mut nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).expect("builds");
    let batch: Vec<f32> = (0..3 * 512).map(|i| (i as f32 * 0.37) % 1.0).collect();
    let mut group = c.benchmark_group("nfp_fused_batch");
    group.throughput(Throughput::Elements(512));
    group.bench_function("512_queries", |b| {
        b.iter(|| nfp.run_batch(&batch).expect("runs"));
    });
    group.finish();
}

fn bench_cluster_scaling(c: &mut Criterion) {
    let model = NsdfModel::new(EncodingKind::LowResDenseGrid, 11);
    let batch: Vec<f32> = (0..3 * 2048).map(|i| (i as f32 * 0.73) % 1.0).collect();
    let mut group = c.benchmark_group("ngpc_cluster_batch2048");
    for n in [1u32, 8, 64] {
        let mut cluster = Ngpc::new(NgpcConfig::with_units(n), model.field()).expect("builds");
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| cluster.run_batch(&batch).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fused_query, bench_fused_batch, bench_cluster_scaling);
criterion_main!(benches);
