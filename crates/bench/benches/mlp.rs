//! Criterion benches of the fully-fused-style MLPs: forward, traced
//! forward and backward for the Table I topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ng_neural::math::Activation;
use ng_neural::mlp::{Mlp, MlpConfig};

fn table1_nets() -> Vec<(&'static str, Mlp)> {
    vec![
        (
            "nerf_density_32x3x16",
            Mlp::new(MlpConfig::neural_graphics(32, 3, 16, Activation::None), 1).expect("valid"),
        ),
        (
            "nerf_color_32x4x3",
            Mlp::new(MlpConfig::neural_graphics(32, 4, 3, Activation::None), 2).expect("valid"),
        ),
        (
            "nsdf_32x4x1",
            Mlp::new(MlpConfig::neural_graphics(32, 4, 1, Activation::None), 3).expect("valid"),
        ),
        (
            "nvr_16x4x4",
            Mlp::new(MlpConfig::neural_graphics(16, 4, 4, Activation::None), 4).expect("valid"),
        ),
    ]
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_forward");
    for (name, mlp) in table1_nets() {
        let x: Vec<f32> = (0..mlp.config().input_dim).map(|i| (i as f32 * 0.21).sin()).collect();
        let mut out = vec![0.0; mlp.config().output_dim];
        group.bench_with_input(BenchmarkId::from_parameter(name), &mlp, |b, m| {
            b.iter(|| m.forward_into(&x, &mut out).expect("forward"));
        });
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_train_step");
    for (name, mlp) in table1_nets() {
        let x: Vec<f32> = (0..mlp.config().input_dim).map(|i| (i as f32 * 0.13).cos()).collect();
        let d_out = vec![1.0f32; mlp.config().output_dim];
        let mut grads = vec![0.0f32; mlp.param_count()];
        group.bench_with_input(BenchmarkId::from_parameter(name), &mlp, |b, m| {
            b.iter(|| {
                let trace = m.forward_traced(&x).expect("forward");
                m.backward(&x, &trace, &d_out, &mut grads).expect("backward")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_train_step);
criterion_main!(benches);
