//! Benchmarked figure regeneration: every paper table/figure computation
//! runs under Criterion, both to keep them fast and to exercise them on
//! every `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use ng_gpu::gap::{performance_gap, RenderTarget};
use ng_gpu::ops::op_breakdown_average;
use ng_gpu::profile::breakdown_figure;
use ng_gpu::rtx3090;
use ng_neural::apps::{AppKind, EncodingKind};
use ngpc::bandwidth::table3;
use ngpc::emulator::average_speedup;
use ngpc::pixels::figure14;

fn bench_figures(c: &mut Criterion) {
    let gpu = rtx3090();
    c.bench_function("fig05_breakdown", |b| b.iter(|| EncodingKind::ALL.map(breakdown_figure)));
    c.bench_function("fig08_ops", |b| {
        b.iter(|| op_breakdown_average(&gpu, EncodingKind::MultiResHashGrid))
    });
    c.bench_function("fig12_averages", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for enc in EncodingKind::ALL {
                for n in [8u32, 16, 32, 64] {
                    acc += average_speedup(enc, n);
                }
            }
            acc
        })
    });
    c.bench_function("fig14_pixels", |b| b.iter(|| figure14(EncodingKind::MultiResHashGrid, 64)));
    c.bench_function("fig15_area_power", |b| {
        b.iter(|| [8u32, 16, 32, 64].map(ng_hw::ngpc_area_power))
    });
    c.bench_function("table3_bandwidth", |b| b.iter(table3));
    c.bench_function("headline_gaps", |b| {
        b.iter(|| {
            AppKind::ALL
                .map(|a| performance_gap(a, EncodingKind::MultiResHashGrid, RenderTarget::UHD4K_60))
        })
    });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
