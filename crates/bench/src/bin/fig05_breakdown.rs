//! Regenerates paper Fig. 5: kernel-level cycle breakdown of the four
//! applications for the three encodings, with the published
//! cross-application averages for comparison.

use ng_bench::{paper, pct, print_table, vs_paper};
use ng_gpu::profile::breakdown_figure;
use ng_neural::apps::EncodingKind;

fn main() {
    for (i, encoding) in EncodingKind::ALL.iter().enumerate() {
        let fig = breakdown_figure(*encoding);
        let rows: Vec<Vec<String>> = fig
            .rows
            .iter()
            .map(|r| {
                vec![r.app.name().to_string(), pct(r.encoding_pct), pct(r.mlp_pct), pct(r.rest_pct)]
            })
            .collect();
        print_table(
            &format!("Fig. 5({}): {encoding}", ["a", "b", "c"][i]),
            &["app", "input encoding", "MLP", "rest kernels"],
            &rows,
        );
        let (pe, pm) = paper::ENC_MLP_AVG_PCT[i];
        print_table(
            "averages",
            &["kernel", "share vs paper"],
            &[
                vec!["encoding".to_string(), vs_paper(fig.avg_encoding_pct, pe)],
                vec!["MLP".to_string(), vs_paper(fig.avg_mlp_pct, pm)],
            ],
        );
    }
}
