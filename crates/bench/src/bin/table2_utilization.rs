//! Regenerates paper Table II: GPU compute/memory utilization per kernel.
//! Prints the paper's measured reference values side by side with our
//! cost-model estimates.

use ng_bench::print_table;
use ng_gpu::profile::{model_utilization, table2_reference};
use ng_gpu::rtx3090;

fn main() {
    let rows: Vec<Vec<String>> = table2_reference()
        .iter()
        .map(|r| {
            vec![
                format!("{} {}", r.app, r.encoding.abbrev()),
                if r.is_encoding_kernel { "encoding" } else { "MLP" }.to_string(),
                format!("({};{};1)/(512;1;1)", r.grid.0, r.grid.1),
                format!("{:.2}", r.compute_util_per_call),
                format!("{:.2}", r.memory_util_per_call),
                format!("{}", r.kernel_calls),
                format!("{:.2}", r.compute_util_avg),
                format!("{:.2}", r.memory_util_avg),
            ]
        })
        .collect();
    print_table(
        "Table II (paper reference, Nsight measurements)",
        &[
            "app-enc",
            "kernel",
            "grid/block",
            "comp/call %",
            "mem/call %",
            "calls",
            "comp avg %",
            "mem avg %",
        ],
        &rows,
    );

    let gpu = rtx3090();
    let mut model_rows = Vec::new();
    for app in ng_neural::apps::AppKind::ALL {
        for enc in ng_neural::apps::EncodingKind::ALL {
            let m = model_utilization(&gpu, app, enc);
            model_rows.push(vec![
                format!("{} {}", app, enc.abbrev()),
                format!("{:.1}", m.encoding_compute_pct),
                format!("{:.1}", m.encoding_memory_pct),
                format!("{:.1}", m.mlp_compute_pct),
                format!("{:.1}", m.mlp_memory_pct),
            ]);
        }
    }
    print_table(
        "cost-model estimated utilizations (for comparison)",
        &["app-enc", "enc comp %", "enc mem %", "mlp comp %", "mlp mem %"],
        &model_rows,
    );
    println!(
        "\nKey property preserved: MLP memory utilization exceeds compute\n\
         utilization in every configuration (the paper's small-MLP analysis)."
    );
}
