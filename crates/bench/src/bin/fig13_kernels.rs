//! Regenerates paper Fig. 13: standalone kernel-level speedups of the
//! input-encoding and MLP engines at scaling factors 8/16/32/64, with the
//! Timeloop/Accelergy-lite cross-validation of the MLP engine (the
//! "mlp imp TA" dotted lines, expected within ~7 %).

use ng_bench::{paper, print_table, times};
use ng_neural::apps::EncodingKind;
use ng_timeloop::arch::PeArray;
use ng_timeloop::energy::EnergyTable;
use ng_timeloop::evaluate_mlp;
use ngpc::engine::MlpEngine;
use ngpc::kernels::{kernel_speedup, AcceleratedKernel};
use ngpc::{NfpConfig, NgpcConfig};

fn main() {
    for encoding in EncodingKind::ALL {
        let rows: Vec<Vec<String>> = NgpcConfig::SCALING_FACTORS
            .iter()
            .map(|&n| {
                vec![
                    format!("NGPC-{n}"),
                    times(kernel_speedup(encoding, AcceleratedKernel::InputEncoding, n)),
                    times(kernel_speedup(encoding, AcceleratedKernel::Mlp, n)),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 13: kernel-level speedups, {encoding}"),
            &["config", "input encoding", "MLP"],
            &rows,
        );
    }
    let refs: Vec<Vec<String>> = paper::FIG13_NGPC64
        .iter()
        .map(|(name, e, m)| vec![name.to_string(), times(*e), times(*m)])
        .collect();
    print_table("paper NGPC-64 reference", &["encoding", "encoding engine", "MLP engine"], &refs);

    // Timeloop/Accelergy cross-validation of the MLP engine cycle model
    // on a representative Table I network (4 hidden layers, 32 -> 3).
    let batch = 100_000u64;
    let nfp = NfpConfig::default();
    let mlp = ng_neural::mlp::Mlp::new(
        ng_neural::mlp::MlpConfig::neural_graphics(32, 4, 3, ng_neural::math::Activation::None),
        1,
    )
    .expect("valid");
    let mut engine = MlpEngine::new(&nfp);
    engine.load_weights(&mlp);
    let engine_cycles = engine.batch_cycles(batch);
    let ta = evaluate_mlp(&PeArray::nfp_mlp_engine(), &EnergyTable::default(), batch, 32, 64, 4, 3);
    let diff_pct = 100.0 * (engine_cycles as f64 - ta.cycles as f64).abs() / ta.cycles as f64;
    print_table(
        "MLP engine vs Timeloop/Accelergy-lite (paper: within ~7%)",
        &["model", "cycles for 100k queries"],
        &[
            vec!["NFP MLP engine".to_string(), engine_cycles.to_string()],
            vec!["timeloop-lite (mlp imp TA)".to_string(), ta.cycles.to_string()],
            vec!["difference".to_string(), format!("{diff_pct:.2}%")],
        ],
    );
    assert!(diff_pct <= 7.0, "MLP engine model diverged from Timeloop-lite: {diff_pct:.2}%");
    println!("\ncross-validation PASSED ({diff_pct:.2}% <= 7%)");
}
