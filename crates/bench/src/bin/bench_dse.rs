//! `bench_dse` — the tracked perf harness of the incremental DSE
//! pipeline (ISSUE 2 satellite, grown to the mac-arrays preset in
//! ISSUE 3).
//!
//! For each tracked preset, times three sweeps against a fresh cache
//! and calibration store:
//!
//! 1. **cold** — nothing on disk: pays the GPU-model calibration and
//!    evaluates every point;
//! 2. **warm** — identical re-run: must be served entirely from the
//!    point cache (zero evaluations);
//! 3. **incremental** — the same spec grown by one clock value: must
//!    evaluate only the new points;
//! 4. **compact + warm** — `dse compact` folds the CSV tail into a
//!    binary generation, then the warm re-run must still be 100% hits
//!    (now served by the layered base + tail reader).
//!
//! Writes a machine-readable `BENCH_dse.json` with one entry per
//! preset (`{preset, cold_s, warm_s, incremental_s, points,
//! cold_points_per_sec}`) so future PRs have a perf trajectory to
//! compare against — covering both the flagship paper sweep and the
//! MAC-array / engine-count space the compositional timing model
//! opened — plus a `guided` entry for the budgeted searcher over the
//! exploded guided-lanes space (`{space_points, budget, evaluations,
//! wall_s, points_per_sec, recovered_headline}`) and a `distributed`
//! entry for a cold sharded run through the multi-writer point store
//! (`{preset, workers, cold_s, warm_s, points, cold_points_per_sec,
//! matches_single_process}`), plus a `store_load` entry timing
//! cold-load-to-serveable on a synthetic million-row store, CSV parse
//! vs compacted binary generation (`{rows, csv_bytes,
//! generation_bytes, csv_load_s, compact_s, binary_load_s, speedup}`),
//! plus a `map_search` entry for the joint mapping search: a cold
//! annotate pass that searches every distinct `(MAC array, layer
//! shape)` problem and seeds the memo store, then the warm pass that
//! must be served entirely from it (`{preset, cold_s, warm_s,
//! cold_searches, cold_memo_hits, warm_searches, warm_memo_hits,
//! warm_hit_ratio, max_disagreement}`).
//!
//! Since the observability PR each preset entry also carries the
//! `ng-obs` counter deltas of its cold run (`counters_cold`) and the
//! warm run's hit ratio, and the file closes with a `stage_profile_us`
//! breakdown of where this process's wall time went (per span path) —
//! the counter/stage snapshots the run ledger records, folded into the
//! perf trajectory. Since the robustness PR a `robustness_counters`
//! block pins the degraded-append and job-manifest counters (normally
//! all zero: a bench run that diverted rows to the in-memory overlay
//! was not measuring the store it claims to).
//!
//! ```text
//! bench_dse [--quick] [--check-warm] [--check-overhead] [--out PATH]
//! ```
//!
//! `--quick` benches the 16-point quick preset instead of the tracked
//! paper + mac-arrays presets; `--check-warm` exits non-zero if any
//! warm re-run evaluated a point or any incremental run evaluated more
//! than its delta (the CI guard for the incremental machinery);
//! `--check-overhead` compares this run's tracing-off cold throughput
//! on the paper preset against the committed `BENCH_dse.json` and
//! fails if it fell below half the recorded baseline — a deliberately
//! generous floor (CI machines are noisy) whose job is to catch the
//! instrumentation becoming accidentally hot, not 5% regressions (the
//! strict 5% acceptance check is a local, quiet-machine measurement).

use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use ng_dse::{
    EvalCache, EvaluatedPoint, SearchSpec, Searcher, SweepEngine, SweepOutcome, SweepSpec,
};

fn run(spec: &SweepSpec, cache_dir: &std::path::Path) -> (f64, SweepOutcome) {
    let engine = SweepEngine::new().with_cache_dir(cache_dir);
    let started = Instant::now();
    let outcome = engine.run(spec).expect("preset specs validate");
    (started.elapsed().as_secs_f64(), outcome)
}

struct PresetBench {
    name: String,
    cold_s: f64,
    warm_s: f64,
    incremental_s: f64,
    points: usize,
    cold_points_per_sec: f64,
    warm_evaluated: usize,
    incremental_evaluated: usize,
    expected_delta: usize,
    warm_hit_ratio: f64,
    compact_s: f64,
    warm_after_compact_s: f64,
    warm_after_compact_evaluated: usize,
    /// Counter growth during the cold run, `(name, delta)` in name
    /// order — the observability cross-check that the timing numbers
    /// measured what they claim (e.g. `sweep.fresh_evals == points`).
    counters_cold: Vec<(String, u64)>,
}

fn bench_preset(spec: &SweepSpec, scratch: &std::path::Path) -> PresetBench {
    // A private point cache per preset: every cold run must really be
    // cold even though the presets share points (e.g. the paper NFP).
    let cache_dir = scratch.join(format!("point-cache-{}", spec.name));
    let mut grown = spec.clone();
    grown.clock_ghz.push(1.25);

    let before_cold = ng_obs::counter::snapshot();
    let (cold_s, cold) = run(spec, &cache_dir);
    let counters_cold: Vec<(String, u64)> = ng_obs::counter::snapshot()
        .delta_since(&before_cold)
        .iter()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    let (warm_s, warm) = run(spec, &cache_dir);
    let (incremental_s, inc) = run(&grown, &cache_dir);

    // Fold the whole CSV tail into a binary generation, then prove the
    // layered reader (compact base + empty tail) still serves every
    // point of the grown spec warm.
    let cache = EvalCache::new(&cache_dir);
    let started = Instant::now();
    ng_dse::compact(&cache).expect("compaction succeeds");
    let compact_s = started.elapsed().as_secs_f64();
    let (warm_after_compact_s, warm2) = run(&grown, &cache_dir);

    println!("[{}]", spec.name);
    println!("cold:        {:8.1} ms  ({} points evaluated)", cold_s * 1e3, cold.stats.evaluated);
    println!(
        "warm:        {:8.1} ms  ({} points evaluated, {} hits)",
        warm_s * 1e3,
        warm.stats.evaluated,
        warm.stats.cache_hits
    );
    println!(
        "incremental: {:8.1} ms  ({} points evaluated, {} hits)",
        incremental_s * 1e3,
        inc.stats.evaluated,
        inc.stats.cache_hits
    );
    println!(
        "compacted:   {:8.1} ms fold + {:8.1} ms warm re-run ({} points evaluated, {} hits)",
        compact_s * 1e3,
        warm_after_compact_s * 1e3,
        warm2.stats.evaluated,
        warm2.stats.cache_hits
    );

    PresetBench {
        name: spec.name.clone(),
        cold_s,
        warm_s,
        incremental_s,
        points: spec.point_count(),
        cold_points_per_sec: cold.stats.points_per_sec(),
        warm_evaluated: warm.stats.evaluated,
        incremental_evaluated: inc.stats.evaluated,
        expected_delta: grown.point_count() - spec.point_count(),
        warm_hit_ratio: if warm.stats.total_points == 0 {
            0.0
        } else {
            warm.stats.cache_hits as f64 / warm.stats.total_points as f64
        },
        compact_s,
        warm_after_compact_s,
        warm_after_compact_evaluated: warm2.stats.evaluated,
        counters_cold,
    }
}

/// Cold-load-to-serveable on a synthetic million-row store: parse the
/// CSV write-ahead layer vs single-read the compacted binary
/// generation (the tentpole's headline number).
struct StoreLoadBench {
    rows: usize,
    csv_bytes: u64,
    generation_bytes: u64,
    csv_load_s: f64,
    compact_s: f64,
    binary_load_s: f64,
    speedup: f64,
}

fn bench_store_load(scratch: &std::path::Path) -> StoreLoadBench {
    const ROWS: usize = 1_000_000;
    const BATCH: usize = 100_000;
    let dir = scratch.join("point-cache-store-load");
    let cache = EvalCache::new(&dir);

    // Fabricate a million distinct points on a fine-grained clock axis
    // (metrics are synthetic — this benches the store, not the model).
    let base = SweepSpec::quick().points()[0];
    let mut appended = 0;
    while appended < ROWS {
        let batch: Vec<EvaluatedPoint> = (appended..(appended + BATCH).min(ROWS))
            .map(|i| {
                let mut point = base;
                point.index = i;
                point.clock_ghz = 0.5 + i as f64 * 1e-6;
                let s = (i % 9973) as f64;
                EvaluatedPoint {
                    point,
                    speedup: 1.0 + s * 1e-3,
                    area_pct_of_gpu: 0.5 + s * 1e-4,
                    power_pct_of_gpu: 1.5 + s * 1e-4,
                    gpu_ms: 30.0 + s * 1e-2,
                    ngpc_frame_ms: 5.0 + s * 1e-3,
                    amdahl_bound: 10.0 + s * 1e-3,
                    plateaued: i % 2 == 0,
                }
            })
            .collect();
        cache.append(&batch).expect("synthetic append succeeds");
        appended += batch.len();
    }
    let csv_bytes = cache.store_stats().tail_bytes();

    let started = Instant::now();
    let loaded = cache.load_all();
    let csv_load_s = started.elapsed().as_secs_f64();
    assert_eq!(loaded.len(), ROWS, "every synthetic row must parse");
    drop(loaded);

    let started = Instant::now();
    let report = ng_dse::compact(&cache).expect("compaction succeeds");
    let compact_s = started.elapsed().as_secs_f64();
    assert_eq!(report.rows_out, ROWS);

    let started = Instant::now();
    let base = ng_dse::compact::load_latest(&cache.store_dir()).expect("generation loads");
    let binary_load_s = started.elapsed().as_secs_f64();
    assert_eq!(base.rows(), ROWS, "the generation must carry every row");
    let generation_bytes = base.bytes();

    let speedup = if binary_load_s > 0.0 { csv_load_s / binary_load_s } else { f64::INFINITY };
    println!("[store-load ({ROWS} synthetic rows)]");
    println!(
        "csv parse:   {:8.1} ms  ({:.1} MiB live CSV)",
        csv_load_s * 1e3,
        csv_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("compaction:  {:8.1} ms  (one-off fold)", compact_s * 1e3);
    println!(
        "binary load: {:8.1} ms  ({:.1} MiB generation, {speedup:.1}x faster to serveable)",
        binary_load_s * 1e3,
        generation_bytes as f64 / (1024.0 * 1024.0)
    );

    StoreLoadBench {
        rows: ROWS,
        csv_bytes,
        generation_bytes,
        csv_load_s,
        compact_s,
        binary_load_s,
        speedup,
    }
}

/// Cold vs warm joint mapping search over a preset's evaluated points:
/// the cold annotate pass searches each distinct `(MAC array, layer
/// shape)` problem once and seeds the memo store; the warm pass must
/// be served entirely from it.
struct MapSearchBench {
    preset: String,
    cold_s: f64,
    warm_s: f64,
    cold_searches: u64,
    cold_memo_hits: u64,
    warm_searches: u64,
    warm_memo_hits: u64,
    warm_hit_ratio: f64,
    max_disagreement: f64,
}

fn bench_map_search(spec: &SweepSpec, scratch: &std::path::Path) -> MapSearchBench {
    // A private cache root: the memo store lives beside the point
    // cache, and the cold pass must really be cold.
    let cache_dir = scratch.join(format!("point-cache-mapsearch-{}", spec.name));
    let engine = SweepEngine::new().with_cache_dir(&cache_dir);
    let outcome = engine.run(spec).expect("preset specs validate");
    let store = ng_dse::MapMemoStore::new(&cache_dir);

    let started = Instant::now();
    let cold = ng_dse::annotate(&outcome.points, Some(&store));
    let cold_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let warm = ng_dse::annotate(&outcome.points, Some(&store));
    let warm_s = started.elapsed().as_secs_f64();

    let warm_lookups = warm.evals + warm.memo_hits;
    let warm_hit_ratio =
        if warm_lookups == 0 { 0.0 } else { warm.memo_hits as f64 / warm_lookups as f64 };
    println!("[{} --map-search]", spec.name);
    println!(
        "cold:        {:8.1} ms  ({} search(es), {} memo hit(s))",
        cold_s * 1e3,
        cold.evals,
        cold.memo_hits
    );
    println!(
        "warm:        {:8.1} ms  ({} search(es), {} memo hit(s), {:.0}% served by the memo)",
        warm_s * 1e3,
        warm.evals,
        warm.memo_hits,
        warm_hit_ratio * 100.0
    );

    MapSearchBench {
        preset: spec.name.clone(),
        cold_s,
        warm_s,
        cold_searches: cold.evals,
        cold_memo_hits: cold.memo_hits,
        warm_searches: warm.evals,
        warm_memo_hits: warm.memo_hits,
        warm_hit_ratio,
        max_disagreement: cold.max_disagreement(),
    }
}

/// One cold guided search over the exploded preset (its own point
/// cache, so the searcher really evaluates).
struct GuidedBench {
    space_points: usize,
    budget: usize,
    evaluations: usize,
    wall_s: f64,
    points_per_sec: f64,
    recovered_headline: bool,
}

fn bench_guided(scratch: &std::path::Path) -> GuidedBench {
    let spec = SweepSpec::guided_lanes();
    let search = SearchSpec::for_space(&spec);
    let searcher = Searcher::new().with_cache_dir(scratch.join("point-cache-guided-search"));
    let outcome = searcher.run(&spec, &search).expect("preset validates");
    let recovered = outcome.frontier.iter().any(|a| a.is_paper_organisation());
    let stats = &outcome.stats;
    let wall_s = stats.wall.as_secs_f64();
    println!("[guided-lanes --search]");
    println!(
        "search:      {:8.1} ms  ({} of {} points evaluated, {:.2}% of the space, headline {})",
        wall_s * 1e3,
        stats.evaluations,
        stats.space_points,
        100.0 * stats.budget_fraction_used(),
        if recovered { "recovered" } else { "MISSED" },
    );
    GuidedBench {
        space_points: stats.space_points,
        budget: stats.budget,
        evaluations: stats.evaluations,
        wall_s,
        points_per_sec: if wall_s > 0.0 { stats.evaluations as f64 / wall_s } else { 0.0 },
        recovered_headline: recovered,
    }
}

/// A cold sharded run of the paper preset through the coordinator/
/// worker protocol (in-process workers, one shared store), plus the
/// warm re-run that proves worker appends read back as hits.
struct DistribBench {
    preset: String,
    workers: usize,
    cold_s: f64,
    warm_s: f64,
    points: usize,
    cold_points_per_sec: f64,
    matches_single_process: bool,
    warm_evaluated: usize,
}

fn bench_distributed(scratch: &std::path::Path) -> DistribBench {
    let spec = SweepSpec::paper();
    let workers = 3;
    let store = scratch.join("point-cache-distributed");
    let threads = (ng_dse::pool::available_threads() / workers).max(1);

    let started = Instant::now();
    let cold = ng_dse::distrib::run_sharded_in_process(&spec, workers, threads, &store)
        .expect("preset validates");
    let cold_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let warm = ng_dse::distrib::run_sharded_in_process(&spec, workers, threads, &store)
        .expect("preset validates");
    let warm_s = started.elapsed().as_secs_f64();

    let reference = SweepEngine::new().without_cache().run(&spec).expect("preset validates");
    let matches =
        cold.outcome.points == reference.points && warm.outcome.points == reference.points;

    println!("[{} --workers {workers} (sharded store)]", spec.name);
    println!(
        "cold:        {:8.1} ms  ({} points evaluated across {workers} workers, {} recovered, \
         single-process match: {})",
        cold_s * 1e3,
        cold.outcome.stats.evaluated,
        cold.recovered,
        if matches { "yes" } else { "NO" },
    );
    println!(
        "warm:        {:8.1} ms  ({} points evaluated, {} hits)",
        warm_s * 1e3,
        warm.outcome.stats.evaluated,
        warm.outcome.stats.cache_hits,
    );

    DistribBench {
        preset: spec.name.clone(),
        workers,
        cold_s,
        warm_s,
        points: spec.point_count(),
        cold_points_per_sec: if cold_s > 0.0 { spec.point_count() as f64 / cold_s } else { 0.0 },
        matches_single_process: matches,
        warm_evaluated: warm.outcome.stats.evaluated,
    }
}

/// The `cold_points_per_sec` recorded for `preset` in the committed
/// trajectory file, extracted with a string scan (the file is written
/// by this binary, so the shape is known; no JSON dependency needed).
fn baseline_cold_throughput(path: &str, preset: &str) -> Option<f64> {
    let text = fs::read_to_string(path).ok()?;
    let entry = text.find(&format!("\"preset\": \"{preset}\""))?;
    let tail = &text[entry..];
    let field = tail.find("\"cold_points_per_sec\":")?;
    let value = tail[field + "\"cold_points_per_sec\":".len()..].trim_start();
    let end = value.find([',', '\n', '}'])?;
    value[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    // Honor NG_DSE_TRACE like the `dse` binary: tracing a bench run is
    // how instrumentation overhead itself gets profiled.
    ng_obs::sink::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check_warm = false;
    let mut check_overhead = false;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check-warm" => check_warm = true,
            "--check-overhead" => check_overhead = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("bench_dse: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("bench_dse: unknown argument `{other}`");
                eprintln!(
                    "usage: bench_dse [--quick] [--check-warm] [--check-overhead] [--out PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // The overhead baseline comes from the *committed* trajectory file,
    // read before anything overwrites it.
    let overhead_baseline = if check_overhead {
        match baseline_cold_throughput("BENCH_dse.json", "paper") {
            Some(t) => Some(t),
            None => {
                eprintln!(
                    "bench_dse: --check-overhead needs a committed BENCH_dse.json with a \
                     `paper` preset entry"
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    // Fresh, private stores so a dirty global cache cannot turn a cold
    // run warm. The calibration dir env var has to be set before the
    // first emulator call of this process. Note: GPU-model calibration
    // is memoized per process, so only the *first* preset's cold run
    // pays it (~1 s) — later presets' cold numbers measure pure sweep
    // evaluation, which is also how EXPERIMENTS.md reports them. Keep
    // `paper` first so the trajectory stays comparable across PRs.
    let scratch = std::env::temp_dir().join(format!("ng-bench-dse-{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    std::env::set_var("NGPC_CALIB_CACHE_DIR", scratch.join("calib"));

    let specs: Vec<SweepSpec> = if quick {
        vec![SweepSpec::quick()]
    } else {
        vec![SweepSpec::paper(), SweepSpec::mac_arrays()]
    };
    // The tracked repo-root trajectory covers the full presets only; a
    // casual --quick run must not silently overwrite it.
    let out_path = out_path.unwrap_or_else(|| {
        if quick {
            "BENCH_dse_quick.json".to_string()
        } else {
            "BENCH_dse.json".to_string()
        }
    });

    let benches: Vec<PresetBench> = specs.iter().map(|s| bench_preset(s, &scratch)).collect();
    // The guided searcher and the distributed backend are benched on
    // the full runs only (their spaces are the full presets; a --quick
    // run has nothing to search or shard).
    // The joint mapping search is benched on the run's first preset in
    // both modes (it is cheap: one search per distinct MAC-array/layer
    // problem, not per point).
    let map_search = bench_map_search(&specs[0], &scratch);
    let guided = if quick { None } else { Some(bench_guided(&scratch)) };
    let distributed = if quick { None } else { Some(bench_distributed(&scratch)) };
    let store_load = if quick { None } else { Some(bench_store_load(&scratch)) };

    let entries: Vec<String> = benches
        .iter()
        .map(|b| {
            let counters: Vec<String> = b
                .counters_cold
                .iter()
                .map(|(name, v)| format!("        \"{name}\": {v}"))
                .collect();
            format!(
                "    {{\n      \"preset\": \"{}\",\n      \"cold_s\": {},\n      \"warm_s\": {},\n      \
                 \"incremental_s\": {},\n      \"points\": {},\n      \
                 \"cold_points_per_sec\": {},\n      \"warm_hit_ratio\": {},\n      \
                 \"compact_s\": {},\n      \"warm_after_compact_s\": {},\n      \
                 \"counters_cold\": {{\n{}\n      }}\n    }}",
                b.name,
                b.cold_s,
                b.warm_s,
                b.incremental_s,
                b.points,
                b.cold_points_per_sec,
                b.warm_hit_ratio,
                b.compact_s,
                b.warm_after_compact_s,
                counters.join(",\n"),
            )
        })
        .collect();
    let guided_json = guided
        .as_ref()
        .map(|g| {
            format!(
                ",\n  \"guided\": {{\n    \"preset\": \"guided-lanes\",\n    \
                 \"space_points\": {},\n    \"budget\": {},\n    \"evaluations\": {},\n    \
                 \"wall_s\": {},\n    \"points_per_sec\": {},\n    \
                 \"recovered_headline\": {}\n  }}",
                g.space_points,
                g.budget,
                g.evaluations,
                g.wall_s,
                g.points_per_sec,
                g.recovered_headline,
            )
        })
        .unwrap_or_default();
    let distributed_json = distributed
        .as_ref()
        .map(|d| {
            format!(
                ",\n  \"distributed\": {{\n    \"preset\": \"{}\",\n    \"workers\": {},\n    \
                 \"cold_s\": {},\n    \"warm_s\": {},\n    \"points\": {},\n    \
                 \"cold_points_per_sec\": {},\n    \"matches_single_process\": {}\n  }}",
                d.preset,
                d.workers,
                d.cold_s,
                d.warm_s,
                d.points,
                d.cold_points_per_sec,
                d.matches_single_process,
            )
        })
        .unwrap_or_default();
    let store_load_json = store_load
        .as_ref()
        .map(|s| {
            format!(
                ",\n  \"store_load\": {{\n    \"rows\": {},\n    \"csv_bytes\": {},\n    \
                 \"generation_bytes\": {},\n    \"csv_load_s\": {},\n    \"compact_s\": {},\n    \
                 \"binary_load_s\": {},\n    \"speedup\": {}\n  }}",
                s.rows,
                s.csv_bytes,
                s.generation_bytes,
                s.csv_load_s,
                s.compact_s,
                s.binary_load_s,
                s.speedup,
            )
        })
        .unwrap_or_default();
    let map_search_json = format!(
        ",\n  \"map_search\": {{\n    \"preset\": \"{}\",\n    \"cold_s\": {},\n    \
         \"warm_s\": {},\n    \"cold_searches\": {},\n    \"cold_memo_hits\": {},\n    \
         \"warm_searches\": {},\n    \"warm_memo_hits\": {},\n    \"warm_hit_ratio\": {},\n    \
         \"max_disagreement\": {}\n  }}",
        map_search.preset,
        map_search.cold_s,
        map_search.warm_s,
        map_search.cold_searches,
        map_search.cold_memo_hits,
        map_search.warm_searches,
        map_search.warm_memo_hits,
        map_search.warm_hit_ratio,
        map_search.max_disagreement,
    );
    // Where this process's wall time went, per span path — the same
    // stage breakdown `dse trace` reconstructs from a ledger, taken
    // from the in-process profile registry.
    let stage_rows: Vec<String> = ng_obs::profile_snapshot()
        .iter()
        .map(|(path, s)| {
            format!(
                "    \"{path}\": {{ \"calls\": {}, \"total_us\": {}, \"self_us\": {} }}",
                s.calls, s.total_us, s.self_us
            )
        })
        .collect();
    let stage_json = if stage_rows.is_empty() {
        String::new()
    } else {
        format!(",\n  \"stage_profile_us\": {{\n{}\n  }}", stage_rows.join(",\n"))
    };
    // Pin the robustness counters in the snapshot explicitly: they are
    // zero on a healthy bench run, so the growth-only `counters_cold`
    // delta would never show them — but a *nonzero* degraded-append
    // count means the cold numbers measured the in-memory overlay, not
    // the store, and that must be visible in the trajectory file.
    let robustness_json = format!(
        ",\n  \"robustness_counters\": {{\n    \"store.degraded_appends\": {},\n    \
         \"jobs.manifests_written\": {},\n    \"jobs.resumed\": {}\n  }}",
        ng_dse::obs_counters::store_degraded_appends().get(),
        ng_dse::obs_counters::jobs_manifests_written().get(),
        ng_dse::obs_counters::jobs_resumed().get(),
    );
    let json = format!(
        "{{\n  \"presets\": [\n{}\n  ]{}{}{}{}{}{}\n}}\n",
        entries.join(",\n"),
        guided_json,
        distributed_json,
        store_load_json,
        map_search_json,
        robustness_json,
        stage_json
    );
    if let Err(e) = fs::write(&out_path, &json) {
        eprintln!("bench_dse: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    let _ = fs::remove_dir_all(&scratch);

    if let Some(baseline) = overhead_baseline {
        let paper = benches.iter().find(|b| b.name == "paper");
        match paper {
            Some(b) if b.cold_points_per_sec < baseline * 0.5 => {
                eprintln!(
                    "bench_dse: REGRESSION — tracing-off cold throughput on `paper` fell to \
                     {:.0} points/sec, below half the committed baseline ({:.0}); the \
                     instrumentation has become hot",
                    b.cold_points_per_sec, baseline
                );
                return ExitCode::FAILURE;
            }
            Some(b) => println!(
                "overhead check: {:.0} points/sec cold vs {:.0} baseline — ok",
                b.cold_points_per_sec, baseline
            ),
            None => {
                eprintln!("bench_dse: --check-overhead needs the `paper` preset (drop --quick)");
                return ExitCode::FAILURE;
            }
        }
    }

    if check_warm {
        if map_search.warm_searches != 0 {
            eprintln!(
                "bench_dse: REGRESSION — warm map-search re-run over `{}` ran {} search(es) \
                 (expected 0: the memo store must serve every mapping lookup)",
                map_search.preset, map_search.warm_searches
            );
            return ExitCode::FAILURE;
        }
        if map_search.warm_hit_ratio < 1.0 {
            eprintln!(
                "bench_dse: REGRESSION — warm map-search re-run over `{}` was only {:.1}% \
                 memo hits (expected 100%)",
                map_search.preset,
                map_search.warm_hit_ratio * 100.0
            );
            return ExitCode::FAILURE;
        }
        if let Some(d) = &distributed {
            if !d.matches_single_process {
                eprintln!(
                    "bench_dse: REGRESSION — the sharded `{}` run over {} workers diverged \
                     from the single-process sweep",
                    d.preset, d.workers
                );
                return ExitCode::FAILURE;
            }
            if d.warm_evaluated != 0 {
                eprintln!(
                    "bench_dse: REGRESSION — warm re-run after the distributed `{}` sweep \
                     evaluated {} points (worker appends must read back as hits)",
                    d.preset, d.warm_evaluated
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some(g) = &guided {
            if !g.recovered_headline {
                eprintln!(
                    "bench_dse: REGRESSION — guided search missed the NGPC-64 headline \
                     organisation ({} evaluations of {})",
                    g.evaluations, g.space_points
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some(s) = &store_load {
            if s.speedup < 10.0 {
                eprintln!(
                    "bench_dse: REGRESSION — compacted cold load is only {:.1}x faster than \
                     CSV parse on the {}-row synthetic store (the binary generation must be \
                     at least 10x faster to serveable)",
                    s.speedup, s.rows
                );
                return ExitCode::FAILURE;
            }
        }
        for b in &benches {
            if b.warm_evaluated != 0 {
                eprintln!(
                    "bench_dse: REGRESSION — warm re-run of the unchanged `{}` spec evaluated \
                     {} points (expected 0: the point cache must serve all of them)",
                    b.name, b.warm_evaluated
                );
                return ExitCode::FAILURE;
            }
            if b.incremental_evaluated != b.expected_delta {
                eprintln!(
                    "bench_dse: REGRESSION — grown `{}` spec evaluated {} points (expected {})",
                    b.name, b.incremental_evaluated, b.expected_delta
                );
                return ExitCode::FAILURE;
            }
            if b.warm_after_compact_evaluated != 0 {
                eprintln!(
                    "bench_dse: REGRESSION — warm re-run of `{}` after compaction evaluated \
                     {} points (the binary base must serve them all)",
                    b.name, b.warm_after_compact_evaluated
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
