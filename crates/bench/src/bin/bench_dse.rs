//! `bench_dse` — the tracked perf harness of the incremental DSE
//! pipeline (ISSUE 2 satellite).
//!
//! Times three sweeps against a fresh cache and calibration store:
//!
//! 1. **cold** — nothing on disk: pays the GPU-model calibration and
//!    evaluates every point;
//! 2. **warm** — identical re-run: must be served entirely from the
//!    point cache (zero evaluations);
//! 3. **incremental** — the same spec grown by one clock value: must
//!    evaluate only the new points.
//!
//! Writes a machine-readable `BENCH_dse.json`
//! (`{cold_s, warm_s, incremental_s, points}`) so future PRs have a
//! perf trajectory to compare against.
//!
//! ```text
//! bench_dse [--quick] [--check-warm] [--out PATH]
//! ```
//!
//! `--quick` benches the 16-point quick preset instead of the
//! 1440-point paper preset; `--check-warm` exits non-zero if the warm
//! re-run evaluated any point (the CI guard for the incremental
//! machinery).

use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use ng_dse::{SweepEngine, SweepOutcome, SweepSpec};

fn run(spec: &SweepSpec, cache_dir: &std::path::Path) -> (f64, SweepOutcome) {
    let engine = SweepEngine::new().with_cache_dir(cache_dir);
    let started = Instant::now();
    let outcome = engine.run(spec).expect("preset specs validate");
    (started.elapsed().as_secs_f64(), outcome)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check_warm = false;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check-warm" => check_warm = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("bench_dse: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("bench_dse: unknown argument `{other}`");
                eprintln!("usage: bench_dse [--quick] [--check-warm] [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
    }

    // Fresh, private stores: the cold run must really be cold (pay the
    // GPU-model calibration), and a dirty global cache must not turn
    // it warm. The calibration dir env var has to be set before the
    // first emulator call of this process.
    let scratch = std::env::temp_dir().join(format!("ng-bench-dse-{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    std::env::set_var("NGPC_CALIB_CACHE_DIR", scratch.join("calib"));
    let cache_dir = scratch.join("point-cache");

    let spec = if quick { SweepSpec::quick() } else { SweepSpec::paper() };
    // The tracked repo-root trajectory is paper-preset only; a casual
    // --quick run must not silently overwrite it with 16-point numbers.
    let out_path = out_path.unwrap_or_else(|| {
        if quick {
            "BENCH_dse_quick.json".to_string()
        } else {
            "BENCH_dse.json".to_string()
        }
    });
    let mut grown = spec.clone();
    grown.clock_ghz.push(1.25);

    let (cold_s, cold) = run(&spec, &cache_dir);
    let (warm_s, warm) = run(&spec, &cache_dir);
    let (incremental_s, inc) = run(&grown, &cache_dir);

    println!("cold:        {:8.1} ms  ({} points evaluated)", cold_s * 1e3, cold.stats.evaluated);
    println!(
        "warm:        {:8.1} ms  ({} points evaluated, {} hits)",
        warm_s * 1e3,
        warm.stats.evaluated,
        warm.stats.cache_hits
    );
    println!(
        "incremental: {:8.1} ms  ({} points evaluated, {} hits)",
        incremental_s * 1e3,
        inc.stats.evaluated,
        inc.stats.cache_hits
    );

    let json = format!(
        "{{\n  \"preset\": \"{}\",\n  \"cold_s\": {cold_s},\n  \"warm_s\": {warm_s},\n  \
         \"incremental_s\": {incremental_s},\n  \"points\": {}\n}}\n",
        spec.name,
        spec.point_count(),
    );
    if let Err(e) = fs::write(&out_path, &json) {
        eprintln!("bench_dse: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    let _ = fs::remove_dir_all(&scratch);

    if check_warm && warm.stats.evaluated != 0 {
        eprintln!(
            "bench_dse: REGRESSION — warm re-run of an unchanged spec evaluated {} points \
             (expected 0: the point cache must serve all of them)",
            warm.stats.evaluated
        );
        return ExitCode::FAILURE;
    }
    if check_warm {
        let expected_delta = grown.point_count() - spec.point_count();
        if inc.stats.evaluated != expected_delta {
            eprintln!(
                "bench_dse: REGRESSION — grown spec evaluated {} points (expected {})",
                inc.stats.evaluated, expected_delta
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
