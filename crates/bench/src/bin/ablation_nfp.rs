//! Ablation studies over the NFP design choices the paper fixes:
//!
//! 1. **Grid SRAM capacity** — the paper sizes it at 1 MB so (most of) a
//!    level's table is resident; smaller SRAMs stream in multiple passes.
//! 2. **SRAM banking** — 2^d banks serve all corners of a cell per cycle;
//!    fewer banks serialise the corner burst.
//! 3. **Engine fusion** — the encoding -> MLP round trip through DRAM
//!    that fusion removes.
//! 4. **MAC array geometry** — 64x64 exactly fits the 64-wide Table I
//!    layers; smaller arrays tile, larger ones idle.
//! 5. **Batch overlap** — the Fig. 10-b pipelining of NGPC work against
//!    the GPU's fused rest-kernels.

use ng_bench::print_table;
use ng_neural::apps::nsdf::NsdfModel;
use ng_neural::apps::EncodingKind;
use ng_timeloop::arch::PeArray;
use ng_timeloop::energy::EnergyTable;
use ng_timeloop::evaluate_mlp;
use ngpc::engine::FusedNfp;
use ngpc::sched::{overlapped_makespan_ms, serial_makespan_ms};
use ngpc::NfpConfig;

const BATCH: u64 = 100_000;

fn sram_capacity_ablation() {
    // The dense 3D grid's finest levels are the largest tables.
    let model = NsdfModel::new(EncodingKind::MultiResDenseGrid, 5);
    let mut rows = Vec::new();
    for kb in [128usize, 256, 512, 1024, 2048, 4096] {
        let cfg = NfpConfig { grid_sram_bytes: kb * 1024, ..NfpConfig::default() };
        let nfp = FusedNfp::from_field(cfg, model.field()).expect("configures");
        rows.push(vec![format!("{kb} KiB"), format!("{:.0} us", nfp.batch_time_ns(BATCH) / 1e3)]);
    }
    print_table(
        "ablation 1: grid SRAM capacity (NSDF densegrid, 100k queries)",
        &["SRAM per engine", "batch latency"],
        &rows,
    );
}

fn banking_ablation() {
    // Measure the per-query corner-burst cost directly on one engine:
    // eight 3D-cell corners hit one bank 8x when unbanked, but spread
    // across 2^d banks when fully banked.
    use ngpc::engine::EncodingEngine;
    let model = NsdfModel::new(EncodingKind::MultiResDenseGrid, 5);
    let mut rows = Vec::new();
    let queries = 512;
    for banks in [1u32, 2, 4, 8, 16] {
        let mut engine = EncodingEngine::new(1 << 20, banks);
        engine.configure(&model.field().encoding, 3).expect("configures");
        let mut out = vec![0.0f32; 2];
        for i in 0..queries {
            let t = i as f32 / queries as f32;
            engine
                .encode_into(&[t, (t * 3.31).fract(), (t * 7.77).fract()], &mut out)
                .expect("encodes");
        }
        rows.push(vec![
            format!("{banks}"),
            format!("{:.2}", engine.busy_cycles() as f64 / queries as f64),
            format!("{}", engine.sram_stats().bank_conflict_cycles),
        ]);
    }
    print_table(
        "ablation 2: grid SRAM banks (512 queries, 8 corners per 3D cell)",
        &["banks", "cycles/query", "total conflict cycles"],
        &rows,
    );
}

fn fusion_ablation() {
    let mut rows = Vec::new();
    for enc in EncodingKind::ALL {
        let model = NsdfModel::new(enc, 5);
        let nfp = FusedNfp::from_field(NfpConfig::default(), model.field()).expect("configures");
        let fused = nfp.batch_time_ns(BATCH);
        let unfused = nfp.batch_time_unfused_ns(BATCH, 936.2);
        rows.push(vec![
            enc.abbrev().to_string(),
            format!("{:.0} us", fused / 1e3),
            format!("{:.0} us", unfused / 1e3),
            format!("{:.2}x", unfused / fused),
        ]);
    }
    print_table(
        "ablation 3: engine fusion (100k queries)",
        &["encoding", "fused", "unfused (+DRAM round trip)", "gain"],
        &rows,
    );
}

fn mac_array_ablation() {
    // Timeloop-lite view: cycles for the NSDF MLP over a batch on
    // different array geometries.
    let mut rows = Vec::new();
    for (r, c) in [(16u32, 16u32), (32, 32), (64, 64), (128, 128)] {
        let arch = PeArray { rows: r, cols: c, ..PeArray::nfp_mlp_engine() };
        let eval = evaluate_mlp(&arch, &EnergyTable::default(), BATCH, 32, 64, 4, 1);
        let util = eval.macs as f64 / (eval.cycles as f64 * arch.pes() as f64);
        rows.push(vec![
            format!("{r}x{c}"),
            format!("{}", eval.cycles),
            format!("{:.1}%", 100.0 * util),
            format!("{:.1} uJ", eval.energy_uj),
        ]);
    }
    print_table(
        "ablation 4: MAC array geometry (NSDF MLP, 100k queries)",
        &["array", "cycles", "PE utilization", "energy"],
        &rows,
    );
    println!(
        "64x64 is the knee: smaller arrays multiply cycles, larger ones\n\
         idle on 64-wide layers — the paper's sizing."
    );
}

fn overlap_ablation() {
    let mut rows = Vec::new();
    for batches in [1u64, 4, 16, 64] {
        let (ngpc_ms, rest_ms) = (0.9f64, 0.7f64);
        let serial = serial_makespan_ms(batches, ngpc_ms, rest_ms);
        let over = overlapped_makespan_ms(batches, ngpc_ms, rest_ms);
        rows.push(vec![
            format!("{batches}"),
            format!("{serial:.2} ms"),
            format!("{over:.2} ms"),
            format!("{:.2}x", serial / over),
        ]);
    }
    print_table(
        "ablation 5: batch overlap (Fig. 10-b; stages 0.9 / 0.7 ms)",
        &["batches", "serial", "overlapped", "gain"],
        &rows,
    );
}

fn main() {
    sram_capacity_ablation();
    banking_ablation();
    fusion_ablation();
    mac_array_ablation();
    overlap_ablation();
}
