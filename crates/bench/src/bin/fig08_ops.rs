//! Regenerates paper Fig. 8: the top-5 operation-level breakdown inside
//! the input-encoding kernel for MRHG / MRDG / LRDG.

use ng_bench::{pct, print_table};
use ng_gpu::ops::op_breakdown_average;
use ng_gpu::rtx3090;
use ng_neural::apps::EncodingKind;

fn main() {
    let gpu = rtx3090();
    for encoding in EncodingKind::ALL {
        let b = op_breakdown_average(&gpu, encoding);
        let rows: Vec<Vec<String>> =
            b.top5().iter().map(|(op, share)| vec![op.name().to_string(), pct(*share)]).collect();
        print_table(
            &format!("Fig. 8: {} ({})", encoding, encoding.abbrev()),
            &["operation", "share of encoding-kernel cycles"],
            &rows,
        );
    }
    println!(
        "\nNote: the hash function is exactly zero for MRDG/LRDG (1:1 index\n\
         mapping), and the integer modulo ranks in the top ops for all three\n\
         encodings — both observations from the paper's Section IV."
    );
}
