//! Regenerates paper Fig. 14: pixels renderable within 30/60/90/120 FPS
//! budgets with and without the NGPC (NGPC-64), per encoding, annotated
//! with the largest standard resolution sustained.

use ng_bench::print_table;
use ng_neural::apps::EncodingKind;
use ngpc::pixels::{figure14, PixelBudget};

fn fmt_row(b: &PixelBudget) -> Vec<String> {
    let res = |r: Option<ng_neural::render::image::Resolution>| {
        r.map(|r| r.name().to_string()).unwrap_or_else(|| "-".to_string())
    };
    vec![
        b.app.name().to_string(),
        format!("{:.0}", b.fps),
        format!("{:.2}M", b.gpu_pixels as f64 / 1e6),
        res(b.gpu_resolution()),
        format!("{:.2}M", b.ngpc_pixels as f64 / 1e6),
        res(b.ngpc_resolution()),
    ]
}

fn main() {
    for encoding in EncodingKind::ALL {
        let rows: Vec<Vec<String>> = figure14(encoding, 64).iter().map(fmt_row).collect();
        print_table(
            &format!("Fig. 14: pixels within FPS budget, {encoding}, NGPC-64"),
            &["app", "FPS", "GPU px", "GPU res", "NGPC px", "NGPC res"],
            &rows,
        );
    }
    println!(
        "\nHeadline check (hashgrid): NeRF sustains 4k UHD at 30 FPS; GIA and\n\
         NVR sustain 8k UHD at 120 FPS; NSDF sustains 8k at 60 FPS (the paper\n\
         claims 8k@120 for NSDF, which its own Fig. 12 Amdahl cap contradicts\n\
         — see EXPERIMENTS.md)."
    );
}
