//! Regenerates paper Fig. 15: NGPC area and power normalized to the
//! RTX 3090, for scaling factors 8/16/32/64, with the per-component
//! 45 nm budgets behind them.

use ng_bench::{paper, print_table, vs_paper};
use ng_hw::ngpc_area_power;
use ngpc::NgpcConfig;

fn main() {
    let rows: Vec<Vec<String>> = NgpcConfig::SCALING_FACTORS
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let r = ngpc_area_power(n);
            vec![
                format!("NGPC-{n}"),
                vs_paper(r.area_pct_of_gpu, paper::FIG15_AREA_PCT[i]),
                vs_paper(r.power_pct_of_gpu, paper::FIG15_POWER_PCT[i]),
            ]
        })
        .collect();
    print_table(
        "Fig. 15: NGPC vs RTX 3090 (7 nm scaled)",
        &["config", "area % of die", "power % of TDP"],
        &rows,
    );

    let r = ngpc_area_power(8);
    print_table(
        "one NFP at 45 nm (component budgets)",
        &["component", "area mm^2", "power W"],
        &[
            vec![
                "grid SRAMs (16 x 1 MB)".to_string(),
                format!("{:.2}", r.grid_srams.area_mm2_45),
                format!("{:.2}", r.grid_srams.watts_45),
            ],
            vec![
                "MLP engine (64x64 MACs + SRAMs)".to_string(),
                format!("{:.2}", r.mlp_engine.area_mm2_45),
                format!("{:.2}", r.mlp_engine.watts_45),
            ],
            vec![
                "encoding datapaths (16 engines)".to_string(),
                format!("{:.2}", r.encoding_logic.area_mm2_45),
                format!("{:.2}", r.encoding_logic.watts_45),
            ],
            vec![
                "NFP total (w/ integration overhead)".to_string(),
                format!("{:.2}", r.nfp_area_mm2_45),
                format!("{:.2}", r.nfp_watts_45),
            ],
            vec![
                "NFP total at 7 nm".to_string(),
                format!("{:.2}", r.nfp_area_mm2_7),
                format!("{:.2}", r.nfp_watts_7),
            ],
        ],
    );
}
