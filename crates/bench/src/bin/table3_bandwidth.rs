//! Regenerates paper Table III: NGPC input/output bandwidth and data
//! access time at the 4k / 60 FPS operating point.

use ng_bench::print_table;
use ngpc::bandwidth::{table3, GPU_DRAM_BW_GBPS};

fn main() {
    let rows: Vec<Vec<String>> = table3()
        .iter()
        .map(|r| {
            vec![
                r.app.name().to_string(),
                format!("{:.3}", r.input_gbps),
                format!("{:.3}", r.output_gbps),
                format!("{:.3}", r.total_gbps),
                format!("{:.3}", r.access_time_ms),
                format!("{:.1}%", 100.0 * r.total_gbps / GPU_DRAM_BW_GBPS),
            ]
        })
        .collect();
    print_table(
        "Table III: NGPC bandwidth at 4k/60FPS (paper: NeRF 69.523/46.349/231.743 GB/s, 4.126 ms; others 34.761/34.761/69.523 GB/s, 1.238 ms)",
        &["app", "input GB/s", "output GB/s", "total GB/s", "access ms", "% of GPU BW"],
        &rows,
    );
}
