//! Regenerates paper Table I: the hyper-parameters of every
//! application x encoding configuration, derived from the live model
//! objects (so the printed values are what the code actually runs).

use ng_bench::print_table;
use ng_neural::apps::all_table1;

fn main() {
    let rows: Vec<Vec<String>> = all_table1()
        .iter()
        .map(|p| {
            let g = p.grid;
            let mut model = format!(
                "{}-[grid]->{}-[MLP(64;layers={})]->{}",
                g.dim,
                g.output_dim(),
                p.mlp.hidden_layers,
                p.mlp.output_dim
            );
            if let Some(c) = p.color_mlp {
                model.push_str(&format!(
                    " + color {}-[MLP(64;layers={})]->{}",
                    c.input_dim, c.hidden_layers, c.output_dim
                ));
            }
            vec![
                p.app.to_string(),
                p.encoding.abbrev().to_string(),
                format!("{}", g.base_resolution),
                format!("{:.5}", g.growth_factor),
                format!("{}", g.features_per_level),
                format!("2^{}", g.log2_table_size),
                format!("{}", g.n_levels),
                model,
            ]
        })
        .collect();
    print_table(
        "Table I: application parameters",
        &["app", "enc", "Nmin", "b", "F", "T", "L", "model"],
        &rows,
    );
}
