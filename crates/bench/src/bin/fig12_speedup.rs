//! Regenerates paper Fig. 12: end-to-end application speedup on the NGPC
//! for scaling factors 8/16/32/64, per encoding, plus the Amdahl bounds
//! (horizontal lines) and the paper-average comparison.

use ng_bench::{paper, print_table, times, vs_paper};
use ng_neural::apps::{AppKind, EncodingKind};
use ngpc::emulator::{average_speedup, emulate, EmulatorInput};
use ngpc::NgpcConfig;

fn main() {
    for (panel, encoding) in ["(a)", "(b)", "(c)"].iter().zip(EncodingKind::ALL) {
        let mut rows = Vec::new();
        for app in AppKind::ALL {
            let mut row = vec![app.name().to_string()];
            let mut amdahl = 0.0;
            for n in NgpcConfig::SCALING_FACTORS {
                let r = emulate(&EmulatorInput {
                    app,
                    encoding,
                    nfp_units: n,
                    ..EmulatorInput::default()
                });
                amdahl = r.amdahl_bound;
                let mark = if r.plateaued { "*" } else { "" };
                row.push(format!("{}{}", times(r.speedup), mark));
            }
            row.push(times(amdahl));
            rows.push(row);
        }
        print_table(
            &format!("Fig. 12{panel}: {encoding} (* = plateaued)"),
            &["app", "NGPC-8", "NGPC-16", "NGPC-32", "NGPC-64", "Amdahl bound"],
            &rows,
        );
        let paper_avg = paper::FIG12_AVG
            .iter()
            .find(|(name, _)| *name == encoding.name())
            .map(|(_, v)| *v)
            .expect("encoding present");
        let avg_rows: Vec<Vec<String>> = NgpcConfig::SCALING_FACTORS
            .iter()
            .zip(paper_avg)
            .map(|(&n, p)| vec![format!("NGPC-{n}"), vs_paper(average_speedup(encoding, n), p)])
            .collect();
        print_table("average across applications", &["config", "speedup vs paper"], &avg_rows);
    }
}
