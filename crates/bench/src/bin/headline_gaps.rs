//! Regenerates the paper's Section I/III headline numbers: FHD frame
//! times, the 4k@60 performance gaps (1.51x–55.50x), and the AR/VR power
//! gap (2–4 orders of magnitude).

use ng_bench::{paper, print_table, times, vs_paper};
use ng_gpu::gap::{ar_vr_power_gap_oom, performance_gap, RenderTarget};
use ng_gpu::{frame_time_ms, rtx3090};
use ng_neural::apps::{AppKind, EncodingKind};

fn main() {
    let hg = EncodingKind::MultiResHashGrid;
    let fhd = 1920 * 1080;

    let rows: Vec<Vec<String>> = AppKind::ALL
        .iter()
        .zip(paper::FHD_MS)
        .map(|(&app, p)| vec![app.name().to_string(), vs_paper(frame_time_ms(app, hg, fhd), p)])
        .collect();
    print_table("FHD (1920x1080) frame time, hashgrid [ms]", &["app", "time vs paper"], &rows);

    let target = RenderTarget::UHD4K_60;
    let rows: Vec<Vec<String>> = AppKind::ALL
        .iter()
        .map(|&app| {
            let g = performance_gap(app, hg, target);
            let verdict = if g <= 1.0 { "meets target".to_string() } else { times(g) };
            vec![app.name().to_string(), verdict]
        })
        .collect();
    print_table(
        "4k @ 60 FPS performance gap (paper: 55.50x / 6.68x / meets / 1.51x)",
        &["app", "gap"],
        &rows,
    );

    let gpu = rtx3090();
    let rows: Vec<Vec<String>> = AppKind::ALL
        .iter()
        .map(|&app| {
            let oom = ar_vr_power_gap_oom(&gpu, app, hg, target, 1.0);
            vec![app.name().to_string(), format!("{oom:.1} OOM")]
        })
        .collect();
    print_table(
        "AR/VR power gap at a 1 W headset budget (paper: ~2-4 OOM)",
        &["app", "gap"],
        &rows,
    );
}
