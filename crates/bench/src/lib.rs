//! # ng-bench — the benchmark harness
//!
//! One binary per table/figure of the paper's evaluation (run with
//! `cargo run -p ng-bench --release --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_params` | Table I (application hyper-parameters) |
//! | `fig05_breakdown` | Fig. 5 (kernel-level cycle breakdown) |
//! | `fig08_ops` | Fig. 8 (op-level encoding breakdown) |
//! | `table2_utilization` | Table II (GPU utilizations) |
//! | `headline_gaps` | Section I/III performance gaps |
//! | `fig12_speedup` | Fig. 12 (end-to-end NGPC speedups + Amdahl) |
//! | `fig13_kernels` | Fig. 13 (kernel speedups + Timeloop check) |
//! | `fig14_pixels` | Fig. 14 (pixels vs FPS budgets) |
//! | `fig15_area_power` | Fig. 15 (area/power vs RTX 3090) |
//! | `table3_bandwidth` | Table III (NGPC bandwidth/access time) |
//!
//! Criterion benches (`cargo bench -p ng-bench`) measure the software
//! substrate itself: encoding throughput, MLP inference, the hash/modulo
//! ablation, the NFP engine models and the figure generators.

use std::fmt::Display;

/// Render a fixed-width text table with a header rule.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n== {title} ==");
    let cells: Vec<Vec<String>> =
        rows.iter().map(|r| r.iter().map(|c| c.to_string()).collect()).collect();
    let heads: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let cols = heads.len();
    let mut widths: Vec<usize> = heads.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |row: &[String]| {
        let mut out = String::new();
        for (i, c) in row.iter().enumerate().take(cols) {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        out
    };
    println!("{}", line(&heads));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * cols));
    for row in &cells {
        println!("{}", line(row));
    }
}

/// Format a ratio as `12.34x`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// Format a paper-vs-measured pair with relative error.
pub fn vs_paper(measured: f64, paper: f64) -> String {
    let err = if paper != 0.0 { 100.0 * (measured - paper) / paper } else { 0.0 };
    format!("{measured:.2} (paper {paper:.2}, {err:+.1}%)")
}

/// Published reference values used across the figure binaries.
pub mod paper {
    /// Fig. 12 average speedups per encoding for NGPC-8/16/32/64.
    pub const FIG12_AVG: [(&str, [f64; 4]); 3] = [
        ("multi resolution hashgrid", [12.94, 20.85, 33.73, 39.04]),
        ("multi resolution densegrid", [9.05, 14.22, 22.57, 26.22]),
        ("low resolution densegrid", [9.37, 14.66, 22.97, 26.4]),
    ];
    /// Fig. 13 NGPC-64 kernel speedups (encoding, mlp) per encoding.
    pub const FIG13_NGPC64: [(&str, f64, f64); 3] = [
        ("multi resolution hashgrid", 246.0, 1232.0),
        ("multi resolution densegrid", 379.0, 1070.0),
        ("low resolution densegrid", 2353.0, 1451.0),
    ];
    /// Fig. 15 area/power percentages for NGPC-8/16/32/64.
    pub const FIG15_AREA_PCT: [f64; 4] = [4.52, 9.04, 18.01, 36.18];
    /// Fig. 15 power percentages.
    pub const FIG15_POWER_PCT: [f64; 4] = [2.75, 5.51, 11.03, 22.06];
    /// Section III FHD hashgrid frame times (NeRF, NSDF, GIA, NVR), ms.
    pub const FHD_MS: [f64; 4] = [231.0, 27.87, 2.12, 6.32];
    /// Section III average encoding+MLP fractions per encoding (%).
    pub const ENC_MLP_AVG_PCT: [(f64, f64); 3] = [(40.24, 32.12), (24.63, 35.37), (24.15, 35.37)];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(times(2.0), "2.00x");
        assert_eq!(pct(12.345), "12.35%");
        assert!(vs_paper(10.0, 10.0).contains("+0.0%"));
        assert!(vs_paper(11.0, 10.0).contains("+10.0%"));
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["a", "b"], &[vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn paper_constants_sane() {
        assert_eq!(paper::FIG12_AVG.len(), 3);
        assert!(paper::FIG15_AREA_PCT[3] > paper::FIG15_AREA_PCT[0]);
    }
}
