//! The incremental-evaluation contract of the point-level cache
//! (ISSUE 2 satellites): growing a cached sweep must (a) evaluate only
//! the delta and (b) produce results point-for-point identical to a
//! cold full evaluation, and shard corruption must degrade to misses
//! for exactly the points the shard held.

use std::fs;
use std::path::PathBuf;

use ng_dse::{EvalCache, SweepEngine, SweepSpec};
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ng-dse-incremental-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A family of spec pairs (subset, full): the full spec is `quick`
/// grown along one axis; the subset drops the axis's tail.
fn grown_axis_cases() -> Vec<(SweepSpec, SweepSpec)> {
    let mut cases = Vec::new();

    let mut full = SweepSpec::quick();
    full.clock_ghz = vec![0.75, 1.0, 1.25];
    let mut half = full.clone();
    half.clock_ghz.truncate(1);
    cases.push((half, full));

    let mut full = SweepSpec::quick();
    full.nfp_units = vec![8, 16, 32, 64];
    let mut half = full.clone();
    half.nfp_units.truncate(2);
    cases.push((half, full));

    let mut full = SweepSpec::quick();
    full.grid_sram_kb = vec![512, 1024, 2048];
    let mut half = full.clone();
    half.grid_sram_kb.truncate(2);
    cases.push((half, full));

    let mut full = SweepSpec::quick();
    full.pixels = vec![1280 * 720, 1920 * 1080];
    let mut half = full.clone();
    half.pixels.truncate(1);
    cases.push((half, full));

    // The lane/FIFO axes opened in ISSUE 4: growing either must hit the
    // cached paper-default points and evaluate only the new values.
    let mut full = SweepSpec::quick();
    full.lanes_per_engine = vec![1, 2, 4];
    let mut half = full.clone();
    half.lanes_per_engine.truncate(1);
    cases.push((half, full));

    let mut full = SweepSpec::quick();
    full.input_fifo_depth = vec![64, 8, 2];
    let mut half = full.clone();
    half.input_fifo_depth.truncate(1);
    cases.push((half, full));

    cases
}

#[test]
fn half_then_grown_equals_full_sweep_point_for_point() {
    for (i, (half, full)) in grown_axis_cases().into_iter().enumerate() {
        let dir = tmpdir(&format!("grow-{i}"));
        let engine = SweepEngine::new().with_cache_dir(&dir);

        let warmup = engine.run(&half).unwrap();
        let grown = engine.run(&full).unwrap();
        let reference = SweepEngine::new().without_cache().run(&full).unwrap();

        assert_eq!(grown.points.len(), reference.points.len(), "case {i}");
        for (a, b) in grown.points.iter().zip(&reference.points) {
            assert_eq!(a, b, "case {i}: cached-then-grown diverges from cold full sweep");
        }
        // Only the delta was evaluated.
        assert_eq!(
            grown.stats.evaluated,
            full.point_count() - half.point_count(),
            "case {i}: grown run must evaluate only the new points"
        );
        assert_eq!(grown.stats.cache_hits, warmup.stats.total_points, "case {i}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized prefix split: evaluating any prefix of an axis first,
    /// then the full spec, is indistinguishable from one cold sweep.
    #[test]
    fn random_prefix_then_full_matches_cold(split in 1usize..4, case in 0usize..4) {
        let (_, full) = grown_axis_cases().into_iter().nth(case).unwrap();
        let mut half = full.clone();
        // Shrink one axis to a random prefix (pick the axis the case grew).
        match case {
            0 => half.clock_ghz.truncate(split.min(half.clock_ghz.len() - 1)),
            1 => half.nfp_units.truncate(split.min(half.nfp_units.len() - 1)),
            2 => half.grid_sram_kb.truncate(split.min(half.grid_sram_kb.len() - 1)),
            _ => half.pixels.truncate(split.min(half.pixels.len() - 1)),
        }
        let dir = tmpdir(&format!("prop-{case}-{split}"));
        let engine = SweepEngine::new().with_cache_dir(&dir);
        engine.run(&half).unwrap();
        let grown = engine.run(&full).unwrap();
        let reference = SweepEngine::new().without_cache().run(&full).unwrap();
        prop_assert_eq!(&grown.points, &reference.points);
        prop_assert_eq!(
            grown.stats.evaluated,
            full.point_count() - half.point_count()
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn corrupted_shard_misses_only_its_points() {
    let dir = tmpdir("corrupt-shard");
    let spec = SweepSpec::quick();
    let engine = SweepEngine::new().with_cache_dir(&dir);
    let first = engine.run(&spec).unwrap();

    // Overwrite one whole shard with garbage; every other shard is
    // untouched.
    let cache = EvalCache::new(&dir);
    let points = spec.points();
    let victim_key = EvalCache::point_key(&points[0]);
    let victim_shard = cache.shard_path(victim_key);
    let in_victim =
        points.iter().filter(|p| cache.shard_path(EvalCache::point_key(p)) == victim_shard).count();
    assert!(in_victim > 0 && in_victim < points.len(), "quick spec spans several shards");
    fs::write(&victim_shard, "total garbage\nnot,a,row\n").unwrap();

    let second = engine.run(&spec).unwrap();
    assert_eq!(
        second.stats.evaluated, in_victim,
        "exactly the corrupted shard's points are re-evaluated"
    );
    assert_eq!(second.stats.cache_hits, points.len() - in_victim);
    assert_eq!(second.points, first.points, "results unchanged after self-heal");

    // The re-evaluation healed the shard: a third run is a full hit.
    let third = engine.run(&spec).unwrap();
    assert!(third.stats.cache_hit);
    assert_eq!(third.stats.evaluated, 0);
    fs::remove_dir_all(&dir).unwrap();
}
