//! End-to-end checks of `dse --map-search` (PR 10 acceptance): the
//! memo round-trip (cold search → warm 100%-hit re-run, byte-identical
//! annotated CSV), off-mode byte-identity (the plain CSV never moves),
//! the cross-validation agreement gate, and distributed parity (a
//! `--workers 3 --map-search` run seeds the shared memo and emits the
//! same CSV as a single process).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn dse(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dse")).args(args).output().expect("dse runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (stdout, out.status.success())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ng-dse-mapsearch-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn headline(stdout: &str) -> &str {
    stdout.lines().find(|l| l.starts_with("map-search:")).expect("map-search headline printed")
}

#[test]
fn memo_round_trip_cold_then_warm_byte_identical() {
    let dir = tmpdir("roundtrip");
    let dir_s = dir.display().to_string();
    let csv = dir.join("out.csv").display().to_string();

    // Cold: every distinct (MAC array, layer shape) problem searches
    // once; repeats within the run are in-run memo hits.
    let (out, ok) = dse(&[
        "--preset",
        "quick",
        "--cache-dir",
        &dir_s,
        "--csv",
        &csv,
        "--map-search",
        "--cache-stats",
        "--quiet",
    ]);
    assert!(ok, "cold run failed:\n{out}");
    let cold = headline(&out).to_string();
    assert!(!cold.starts_with("map-search: 0 search(es)"), "cold run must search: {cold}");
    assert!(
        out.lines().any(|l| l.starts_with("mapping memo tail:")),
        "--cache-stats must report the memo store:\n{out}"
    );
    let cold_csv = fs::read(dir.join("out.csv")).unwrap();

    // Warm: zero searches, 100% memo hits, byte-identical CSV — the
    // memo stores exact cycles and raw f64 energy bits.
    let (out, ok) = dse(&[
        "--preset",
        "quick",
        "--cache-dir",
        &dir_s,
        "--csv",
        &csv,
        "--map-search",
        "--quiet",
    ]);
    assert!(ok, "warm run failed:\n{out}");
    assert!(
        headline(&out).starts_with("map-search: 0 search(es)"),
        "warm run must be 100% memo hits: {}",
        headline(&out)
    );
    assert_eq!(fs::read(dir.join("out.csv")).unwrap(), cold_csv, "warm CSV must be byte-identical");

    // Compaction folds the memo tail into a base; the run after that
    // still serves everything without a search.
    let (out, ok) = dse(&["compact", "--cache-dir", &dir_s]);
    assert!(ok, "compact failed:\n{out}");
    assert!(out.contains("mapping memo: folded"), "compact must fold the memo:\n{out}");
    let (out, ok) = dse(&[
        "--preset",
        "quick",
        "--cache-dir",
        &dir_s,
        "--csv",
        &csv,
        "--map-search",
        "--quiet",
    ]);
    assert!(ok, "post-compact run failed:\n{out}");
    assert!(
        headline(&out).starts_with("map-search: 0 search(es)"),
        "the memo base must serve every lookup: {}",
        headline(&out)
    );
    assert_eq!(fs::read(dir.join("out.csv")).unwrap(), cold_csv);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn off_mode_csv_is_untouched_and_mapped_csv_only_appends_columns() {
    let dir = tmpdir("offmode");
    let dir_s = dir.display().to_string();
    let plain_csv = dir.join("plain.csv").display().to_string();
    let mapped_csv = dir.join("mapped.csv").display().to_string();

    let (out, ok) =
        dse(&["--preset", "quick", "--cache-dir", &dir_s, "--csv", &plain_csv, "--quiet"]);
    assert!(ok, "plain run failed:\n{out}");
    assert!(!out.contains("map-search:"), "no headline without --map-search:\n{out}");
    let (out, ok) = dse(&[
        "--preset",
        "quick",
        "--cache-dir",
        &dir_s,
        "--csv",
        &mapped_csv,
        "--map-search",
        "--quiet",
    ]);
    assert!(ok, "mapped run failed:\n{out}");

    let plain = fs::read_to_string(dir.join("plain.csv")).unwrap();
    let mapped = fs::read_to_string(dir.join("mapped.csv")).unwrap();
    assert_ne!(plain, mapped);
    for (p, m) in plain.lines().zip(mapped.lines()) {
        assert!(
            m.starts_with(p),
            "every mapped row must extend its plain row:\n plain: {p}\nmapped: {m}"
        );
        assert_eq!(m[p.len()..].split(',').count() - 1, 5, "five appended columns: {m}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn agreement_gate_passes_on_the_quick_preset() {
    let dir = tmpdir("agreement");
    let dir_s = dir.display().to_string();
    let (out, ok) =
        dse(&["--preset", "quick", "--cache-dir", &dir_s, "--check-map-agreement", "--quiet"]);
    assert!(ok, "--check-map-agreement must pass inside the band:\n{out}");
    assert!(out.contains("max disagreement"), "headline printed:\n{out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn workers_seed_the_shared_memo_and_match_single_process_output() {
    let single = tmpdir("single");
    let multi = tmpdir("multi");
    let single_s = single.display().to_string();
    let multi_s = multi.display().to_string();
    let single_csv = single.join("out.csv").display().to_string();
    let multi_csv = multi.join("out.csv").display().to_string();

    let (out, ok) = dse(&[
        "--preset",
        "quick",
        "--cache-dir",
        &single_s,
        "--csv",
        &single_csv,
        "--map-search",
        "--quiet",
    ]);
    assert!(ok, "single-process run failed:\n{out}");
    let (out, ok) = dse(&[
        "--preset",
        "quick",
        "--cache-dir",
        &multi_s,
        "--csv",
        &multi_csv,
        "--map-search",
        "--workers",
        "3",
        "--quiet",
    ]);
    assert!(ok, "distributed run failed:\n{out}");
    assert!(
        out.lines().filter(|l| l.contains("map-search:")).count() >= 2,
        "workers must report their memo seeding:\n{out}"
    );
    assert_eq!(
        fs::read(single.join("out.csv")).unwrap(),
        fs::read(multi.join("out.csv")).unwrap(),
        "distributed --map-search CSV must match single-process byte-for-byte"
    );

    // The coordinator's own annotation ran against the worker-seeded
    // memo: a follow-up warm run proves the store holds every mapping.
    let (out, ok) = dse(&[
        "--preset",
        "quick",
        "--cache-dir",
        &multi_s,
        "--csv",
        &multi_csv,
        "--map-search",
        "--quiet",
    ]);
    assert!(ok, "warm run failed:\n{out}");
    assert!(
        headline(&out).starts_with("map-search: 0 search(es)"),
        "worker-seeded memo must make the re-run warm: {}",
        headline(&out)
    );
    let _ = fs::remove_dir_all(&single);
    let _ = fs::remove_dir_all(&multi);
}
