//! Property tests of the Pareto module (ISSUE satellite): frontier
//! internal consistency, permutation invariance, and constraint
//! soundness over randomized objective clouds.

use ng_dse::pareto::constrained_pareto;
use ng_dse::{pareto_indices, Constraints, Objectives, StreamingFrontier};
use proptest::prelude::*;

/// Build an objective cloud from a flat coordinate vector (3 per point).
fn cloud(coords: &[f64]) -> Vec<Objectives> {
    coords
        .chunks_exact(3)
        .map(|c| Objectives { speedup: c[0], area_pct: c[1], power_pct: c[2] })
        .collect()
}

/// Deterministic Fisher–Yates from a seed (xorshift64).
fn permute<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    seed |= 1;
    for i in (1..out.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        out.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    out
}

/// Sort objective triples for set comparison (values, not indices).
fn canonicalize(objs: &[Objectives]) -> Vec<(u64, u64, u64)> {
    let mut keys: Vec<(u64, u64, u64)> = objs
        .iter()
        .map(|o| (o.speedup.to_bits(), o.area_pct.to_bits(), o.power_pct.to_bits()))
        .collect();
    keys.sort_unstable();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_frontier_point_dominates_another(
        coords in prop::collection::vec(0.0f64..100.0, 0..120),
    ) {
        let objs = cloud(&coords);
        let frontier = pareto_indices(&objs);
        for &i in &frontier {
            for &j in &frontier {
                prop_assert!(
                    !objs[i].dominates(&objs[j]),
                    "frontier point {i} dominates frontier point {j}"
                );
            }
        }
    }

    #[test]
    fn every_excluded_point_is_dominated_by_a_frontier_point(
        coords in prop::collection::vec(0.0f64..50.0, 0..90),
    ) {
        let objs = cloud(&coords);
        let frontier = pareto_indices(&objs);
        for i in 0..objs.len() {
            if frontier.contains(&i) {
                continue;
            }
            prop_assert!(
                frontier.iter().any(|&j| objs[j].dominates(&objs[i])),
                "excluded point {i} is dominated by no frontier point"
            );
        }
    }

    #[test]
    fn frontier_is_invariant_under_permutation(
        coords in prop::collection::vec(0.0f64..100.0, 0..120),
        seed in 0u64..1_000_000,
    ) {
        let objs = cloud(&coords);
        let shuffled = permute(&objs, seed);
        let a: Vec<Objectives> =
            pareto_indices(&objs).into_iter().map(|i| objs[i]).collect();
        let b: Vec<Objectives> =
            pareto_indices(&shuffled).into_iter().map(|i| shuffled[i]).collect();
        prop_assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn constraints_never_admit_an_out_of_budget_point(
        coords in prop::collection::vec(0.0f64..100.0, 0..120),
        max_area in 0.0f64..100.0,
        max_power in 0.0f64..100.0,
        min_speedup in 0.0f64..100.0,
    ) {
        let objs = cloud(&coords);
        let budget = Constraints {
            max_area_pct: Some(max_area),
            max_power_pct: Some(max_power),
            min_speedup: Some(min_speedup),
        };
        let kept = ng_dse::pareto::constrained_pareto(&objs, &budget);
        for &i in &kept {
            prop_assert!(objs[i].area_pct <= max_area);
            prop_assert!(objs[i].power_pct <= max_power);
            prop_assert!(objs[i].speedup >= min_speedup);
        }
        // And the filter alone (independent of frontier extraction)
        // agrees with admits().
        for (i, o) in objs.iter().enumerate() {
            if budget.admits(o) {
                prop_assert!(
                    o.area_pct <= max_area && o.power_pct <= max_power
                        && o.speedup >= min_speedup,
                    "admits() admitted out-of-budget point {i}"
                );
            }
        }
    }

    #[test]
    fn streaming_frontier_is_set_equal_to_naive_constrained_pareto(
        coords in prop::collection::vec(0.0f64..50.0, 0..120),
        dup_seed in 0u64..1_000_000,
        max_area in 0.0f64..70.0,
        min_speedup in 0.0f64..35.0,
        unconstrained in 0u8..2,
    ) {
        // Build a cloud, then splice in exact duplicates of some points
        // (picked by a seeded walk) so ties-on-all-objectives are
        // exercised, not just hoped for.
        let mut objs = cloud(&coords);
        if !objs.is_empty() {
            let mut seed = dup_seed | 1;
            for _ in 0..objs.len() / 4 + 1 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let copy = objs[(seed % objs.len() as u64) as usize];
                objs.push(copy);
            }
        }
        let constraints = if unconstrained == 1 {
            Constraints::NONE
        } else {
            Constraints {
                max_area_pct: Some(max_area),
                min_speedup: Some(min_speedup),
                ..Constraints::NONE
            }
        };
        // Naive batch extraction...
        let expected: Vec<Objectives> =
            constrained_pareto(&objs, &constraints).into_iter().map(|i| objs[i]).collect();
        // ... must be set-equal to streamed insert-with-dominance-pruning.
        let mut streaming = StreamingFrontier::new();
        for (i, &o) in objs.iter().enumerate() {
            streaming.insert_constrained(o, i, &constraints);
        }
        let streamed: Vec<Objectives> =
            streaming.into_payloads().into_iter().map(|i| objs[i]).collect();
        prop_assert_eq!(canonicalize(&streamed), canonicalize(&expected));
    }

    #[test]
    fn streaming_insert_order_is_irrelevant(
        coords in prop::collection::vec(0.0f64..100.0, 0..90),
        seed in 0u64..1_000_000,
    ) {
        let objs = cloud(&coords);
        let shuffled = permute(&objs, seed);
        let run = |input: &[Objectives]| -> Vec<Objectives> {
            let mut f = StreamingFrontier::new();
            for &o in input {
                f.insert(o, o);
            }
            f.into_payloads()
        };
        prop_assert_eq!(canonicalize(&run(&objs)), canonicalize(&run(&shuffled)));
    }

    #[test]
    fn duplicating_a_frontier_point_keeps_both_copies(
        coords in prop::collection::vec(0.0f64..100.0, 3..60),
    ) {
        let objs = cloud(&coords);
        let frontier = pareto_indices(&objs);
        if let Some(&i) = frontier.first() {
            let mut doubled = objs.clone();
            doubled.push(objs[i]);
            let f2 = pareto_indices(&doubled);
            prop_assert!(f2.contains(&i));
            prop_assert!(f2.contains(&(doubled.len() - 1)), "equal duplicate must survive");
        }
    }
}
