//! Interrupt → durable job manifest → `dse resume` (ISSUE 9): a
//! SIGTERM-killed sweep must leave a resumable manifest behind, and
//! `dse resume` must complete it byte-identically to a run that was
//! never interrupted.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Run the real `dse` binary with `envs` set, returning
/// (stdout, stderr, exit code).
fn dse(args: &[&str], envs: &[(&str, &str)]) -> (String, String, Option<i32>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dse"));
    cmd.args(args);
    // A fault plan or trace path leaking in from the invoking shell
    // would change what this test measures.
    cmd.env_remove("NG_DSE_FAULTS").env_remove("NG_DSE_TRACE");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("dse runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ng-dse-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sigterm_leaves_a_manifest_and_resume_completes_byte_identical() {
    let dir = tmpdir("parity");
    let store = dir.join("store").display().to_string();
    let out_csv = dir.join("out.csv").display().to_string();
    let ref_csv = dir.join("ref.csv").display().to_string();

    // The fault-free reference.
    let (out, err, code) = dse(&["--preset", "quick", "--no-cache", "--csv", &ref_csv], &[]);
    assert_eq!(code, Some(0), "reference run failed:\nstdout: {out}\nstderr: {err}");

    // A real SIGTERM at the 5th evaluation: the run drains (in-flight
    // points finish and flush), exits 130, and leaves an Interrupted
    // manifest pointing at everything needed to finish the job.
    let (out, err, code) = dse(
        &["--preset", "quick", "--cache-dir", &store, "--csv", &out_csv, "--threads", "2"],
        &[("NG_DSE_FAULTS", "signal:term@point=5")],
    );
    assert_eq!(
        code,
        Some(ng_dse::distrib::EXIT_INTERRUPTED),
        "interrupted run must exit 130:\nstdout: {out}\nstderr: {err}"
    );
    assert!(err.contains("drain"), "the drain must be announced on stderr:\n{err}");
    let manifest = ng_dse::job::JobManifest::latest_resumable(dir.join("store").as_path())
        .expect("the killed run left a resumable manifest");
    assert_eq!(manifest.status, ng_dse::job::JobStatus::Interrupted);
    assert!(manifest.delivered < manifest.total_points, "{manifest:?}");
    assert_eq!(manifest.csv.as_deref(), Some(out_csv.as_str()), "{manifest:?}");

    // `dse resume` (bare: newest resumable job) re-enters the exact
    // run mode, pays only the missing tail, and writes the same CSV an
    // uninterrupted run would have.
    let (out, err, code) = dse(&["resume", "--cache-dir", &store], &[]);
    assert_eq!(code, Some(0), "resume failed:\nstdout: {out}\nstderr: {err}");
    assert!(err.contains(&format!("resuming {}", manifest.id)), "{err}");
    assert_eq!(
        fs::read(&out_csv).unwrap(),
        fs::read(&ref_csv).unwrap(),
        "resumed CSV must be byte-identical to the uninterrupted run"
    );

    // The finished job is Done; resuming it again by id is refused
    // with a usage error, and bare `dse resume` finds nothing left.
    let job_path = manifest.path();
    let (_, err, code) =
        dse(&["resume", &job_path.display().to_string(), "--cache-dir", &store], &[]);
    assert_eq!(code, Some(ng_dse::distrib::EXIT_USAGE), "a Done job must be refused:\n{err}");
    assert!(err.contains("completion"), "{err}");
    let (_, err, code) = dse(&["resume", "--cache-dir", &store], &[]);
    assert_eq!(code, Some(ng_dse::distrib::EXIT_USAGE));
    assert!(err.contains("no resumable job"), "{err}");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_on_an_empty_store_is_a_usage_error() {
    let dir = tmpdir("empty");
    let (_, err, code) = dse(&["resume", "--cache-dir", &dir.display().to_string()], &[]);
    assert_eq!(code, Some(ng_dse::distrib::EXIT_USAGE));
    assert!(err.contains("no resumable job"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}
