//! End-to-end CLI checks of guided-search mode (ISSUE 4): `--search`
//! runs the budgeted searcher instead of the exhaustive sweep, honours
//! `--budget`/`--seed`, and `--check-headline` gates on recovery.

use std::process::Command;

fn dse(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dse")).args(args).output().expect("dse runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn saturated_search_on_quick_recovers_the_headline() {
    // The quick preset contains the NGPC-64 point; a budget covering
    // the whole (64-point) space must recover it and exit zero.
    let (out, err, ok) =
        dse(&["--search", "--preset", "quick", "--no-cache", "--budget", "64", "--check-headline"]);
    assert!(ok, "search run failed:\nstdout: {out}\nstderr: {err}");
    assert!(out.contains("guided search `quick` (hill)"), "{out}");
    assert!(out.contains("budget covers the space"), "{out}");
    assert!(out.contains("recovered the NGPC-64 organisation"), "{out}");
}

#[test]
fn explicit_strategy_and_seed_are_accepted() {
    let (out, err, ok) = dse(&[
        "--search",
        "evolve",
        "--preset",
        "quick",
        "--no-cache",
        "--budget",
        "24",
        "--seed",
        "7",
    ]);
    assert!(ok, "evolve run failed:\nstdout: {out}\nstderr: {err}");
    assert!(out.contains("guided search `quick` (evolve)"), "{out}");
    let (_, err, ok) = dse(&["--search", "anneal", "--preset", "quick"]);
    assert!(!ok, "unknown strategy must fail");
    assert!(err.contains("unknown strategy"), "{err}");
}

#[test]
fn search_mode_rejects_sweep_only_outputs() {
    let (_, err, ok) =
        dse(&["--search", "--preset", "quick", "--no-cache", "--csv", "/tmp/nope.csv"]);
    assert!(!ok);
    assert!(err.contains("rerun without --search"), "{err}");
}

#[test]
fn budget_zero_is_a_clean_error() {
    let (_, err, ok) = dse(&["--search", "--preset", "quick", "--no-cache", "--budget", "0"]);
    assert!(!ok);
    assert!(err.contains("budget must be nonzero"), "{err}");
}
