//! Guards the [`ng_dse::MODEL_VERSION`] contract: the constant is the
//! only thing invalidating cached sweep results, and nothing derives it
//! from the model code — so this test pins a fingerprint of the model
//! outputs *next to* the version string. Retuning `ngpc`'s emulator,
//! the GPU model or the area/power substrate changes the fingerprint
//! and fails here with instructions, instead of silently serving stale
//! caches to every future `dse` run.

use ng_dse::{SweepEngine, SweepSpec, MODEL_VERSION};

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash the quick-preset sweep's objectives, rounded to 9 significant
/// digits — coarse enough to absorb cross-platform libm jitter, fine
/// enough that any deliberate model change shifts it.
fn model_fingerprint() -> u64 {
    let outcome =
        SweepEngine::new().without_cache().with_threads(1).run(&SweepSpec::quick()).unwrap();
    let mut text = String::new();
    for p in &outcome.points {
        text.push_str(&format!(
            "{:.9e},{:.9e},{:.9e};",
            p.speedup, p.area_pct_of_gpu, p.power_pct_of_gpu
        ));
    }
    fnv1a(&text)
}

#[test]
fn model_version_is_bumped_with_the_models() {
    assert_eq!(
        (MODEL_VERSION, model_fingerprint()),
        ("ngpc-models-v2", 17736195704250673075),
        "evaluation-model outputs changed: bump ng_dse::MODEL_VERSION \
         (crates/dse/src/lib.rs) so stale .dse-cache entries self-invalidate, \
         then update the pinned fingerprint here"
    );
}
