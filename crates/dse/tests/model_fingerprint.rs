//! Guards the model-versioning contract behind the point-level cache.
//!
//! [`ng_dse::model_fingerprint`] (a hash of the quick-preset sweep's
//! objectives) is folded into every cache key, so model drift
//! invalidates cached results automatically. This test pins the
//! fingerprint *value* next to the hand-maintained
//! [`ng_dse::MODEL_VERSION`] tag: retuning `ngpc`'s emulator, the GPU
//! model or the area/power substrate changes the fingerprint and fails
//! here with instructions — keeping the human-readable tag honest even
//! though stale caches can no longer be served either way.

use ng_dse::{model_fingerprint, MODEL_VERSION};

#[test]
fn model_version_is_bumped_with_the_models() {
    assert_eq!(
        (MODEL_VERSION, model_fingerprint()),
        ("ngpc-models-v4", 3895588123208138528),
        "evaluation-model outputs changed: bump ng_dse::MODEL_VERSION \
         (crates/dse/src/lib.rs) so cache generations stay tellable apart \
         on disk, then update the pinned fingerprint here"
    );
}
