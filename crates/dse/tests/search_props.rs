//! Property tests of the guided searcher (ISSUE 4 satellite): with a
//! budget covering the whole space, guided search must degenerate to
//! exactly the exhaustive sweep's cross-app Pareto frontier — for
//! arbitrary (small) axis subsets, both strategies, and any seed.

use ng_dse::{
    ArchPoint, Constraints, SearchSpec, SearchStrategy, Searcher, SweepEngine, SweepSpec,
};
use ng_neural::apps::EncodingKind;
use proptest::prelude::*;

/// Sort frontier objectives for set comparison.
fn canon(frontier: &[ArchPoint]) -> Vec<(u64, u64, u64)> {
    let mut keys: Vec<(u64, u64, u64)> = frontier
        .iter()
        .map(|a| {
            (a.avg_speedup.to_bits(), a.area_pct_of_gpu.to_bits(), a.power_pct_of_gpu.to_bits())
        })
        .collect();
    keys.sort_unstable();
    keys
}

/// A small randomized spec: every axis draws a subset so the space
/// stays a few dozen architectures.
fn small_spec(
    encodings: usize,
    units: usize,
    srams: usize,
    lanes: usize,
    fifos: usize,
) -> SweepSpec {
    let take = |all: &[u32], n: usize| all[..n.max(1)].to_vec();
    let mut spec = SweepSpec::quick();
    spec.encodings = EncodingKind::ALL[..encodings.max(1)].to_vec();
    spec.nfp_units = take(&[8, 16, 32, 64], units);
    spec.grid_sram_kb = take(&[1024, 512], srams);
    spec.lanes_per_engine = take(&[1, 2], lanes);
    spec.input_fifo_depth = take(&[64, 8], fifos);
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn saturated_budget_recovers_the_exhaustive_frontier(
        encodings in 1usize..=3,
        units in 1usize..=4,
        srams in 1usize..=2,
        lanes in 1usize..=2,
        fifos in 1usize..=2,
        seed in 0u64..1_000_000,
        evolutionary in 0u8..2,
    ) {
        let strategy =
            if evolutionary == 1 { SearchStrategy::Evolutionary } else { SearchStrategy::HillClimb };
        let spec = small_spec(encodings, units, srams, lanes, fifos);
        let exhaustive = SweepEngine::new().without_cache().run(&spec).unwrap();
        let expected = exhaustive.cross_app_frontier(&Constraints::NONE);
        let search = SearchSpec {
            strategy,
            budget: spec.point_count(),
            seed,
            ..SearchSpec::default()
        };
        let outcome = Searcher::new().without_cache().run(&spec, &search).unwrap();
        prop_assert!(outcome.stats.exhaustive);
        prop_assert_eq!(outcome.stats.evaluations, spec.point_count());
        prop_assert_eq!(canon(&outcome.frontier), canon(&expected));
    }

    #[test]
    fn partial_budget_frontier_members_are_truly_non_dominated(
        seed in 0u64..1_000_000,
    ) {
        // With a partial budget the searched frontier is a subset of
        // the visited set's frontier; every member must survive against
        // the TRUE exhaustive frontier's dominance (a searched point may
        // be missing, but never bogus: whatever the searcher reports as
        // non-dominated among its visits must not be dominated by any
        // other *reported* point, and every reported point must appear
        // in the exhaustive evaluation with identical objectives).
        let spec = small_spec(2, 4, 2, 2, 2);
        let exhaustive = SweepEngine::new().without_cache().run(&spec).unwrap();
        let all = exhaustive.cross_app();
        let search = SearchSpec {
            budget: spec.point_count() / 3,
            seed,
            ..SearchSpec::default()
        };
        let outcome = Searcher::new().without_cache().run(&spec, &search).unwrap();
        prop_assert!(outcome.stats.evaluations <= search.budget);
        for a in &outcome.frontier {
            let twin = all.iter().find(|b| {
                b.encoding == a.encoding
                    && b.nfp_units == a.nfp_units
                    && b.grid_sram_kb == a.grid_sram_kb
                    && b.lanes_per_engine == a.lanes_per_engine
                    && b.input_fifo_depth == a.input_fifo_depth
            });
            let twin = twin.expect("searched arch exists in the exhaustive fold");
            prop_assert_eq!(twin.avg_speedup.to_bits(), a.avg_speedup.to_bits());
            prop_assert_eq!(twin.area_pct_of_gpu.to_bits(), a.area_pct_of_gpu.to_bits());
        }
    }
}
