//! End-to-end CLI check of the incremental pipeline (ISSUE 2
//! acceptance): re-running `dse` with one added clock value evaluates
//! only the new points, and `--cache-stats` reports the reuse.

use std::process::Command;

fn dse(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dse")).args(args).output().expect("dse runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (stdout, out.status.success())
}

fn stats_line(stdout: &str) -> &str {
    stdout.lines().find(|l| l.starts_with("cache stats:")).expect("cache stats line printed")
}

#[test]
fn grown_clock_axis_evaluates_only_the_new_points() {
    let dir = std::env::temp_dir().join(format!("ng-dse-cli-cache-stats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();

    // Cold run: everything is a miss.
    let (out, ok) = dse(&["--preset", "quick", "--cache-dir", &dir_s, "--cache-stats"]);
    assert!(ok, "cold run failed:\n{out}");
    assert!(
        stats_line(&out).contains("0 hits, 16 misses, 16 evaluated"),
        "unexpected cold stats: {}",
        stats_line(&out)
    );
    // The store-layer extension: tail row counts across the shards
    // must add up to the 16 appended points, the (absent) compact base
    // and base/tail hit split are reported, and the lock-wait /
    // tail-heal line is present.
    let tail = out.lines().find(|l| l.starts_with("store tail:")).expect("shard row counts");
    assert!(tail.contains("(16 live CSV"), "tail rows must sum to 16: {tail}");
    let base = out.lines().find(|l| l.starts_with("store base:")).expect("base line");
    assert!(base.contains("none"), "no generation yet: {base}");
    assert!(
        out.lines().any(|l| l.starts_with("store hits this process:")),
        "missing base/tail hit split:\n{out}"
    );
    assert!(
        out.lines().any(|l| l.starts_with("store lock wait:")),
        "missing lock-wait line:\n{out}"
    );

    // Identical warm re-run: zero points evaluated.
    let (out, ok) = dse(&["--preset", "quick", "--cache-dir", &dir_s, "--cache-stats"]);
    assert!(ok, "warm run failed:\n{out}");
    assert!(
        stats_line(&out).contains("16 hits, 0 misses, 0 evaluated"),
        "warm re-run must be a 100% hit: {}",
        stats_line(&out)
    );

    // Grow the clock axis by one value: only the 16 new points run.
    let (out, ok) =
        dse(&["--preset", "quick", "--clocks", "1.0,1.25", "--cache-dir", &dir_s, "--cache-stats"]);
    assert!(ok, "grown run failed:\n{out}");
    assert!(
        stats_line(&out).contains("16 hits, 16 misses, 16 evaluated"),
        "grown axis must evaluate only its delta: {}",
        stats_line(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_rows_are_counted_and_surfaced() {
    let dir = std::env::temp_dir().join(format!("ng-dse-cli-rows-skipped-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();

    let (out, ok) = dse(&["--preset", "quick", "--cache-dir", &dir_s, "--cache-stats"]);
    assert!(ok, "cold run failed:\n{out}");
    assert!(
        out.lines().any(|l| l.contains("0 corrupt row(s) skipped")),
        "clean store reports zero skips:\n{out}"
    );

    // Tear one row in one shard: the warm run must skip it (the reader
    // stays lenient), count it, and point at the doctor.
    let store = ng_dse::EvalCache::new(&dir).store_dir();
    let shard = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path()))
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("csv"))
        .expect("at least one shard file");
    let mut text = std::fs::read_to_string(&shard).unwrap();
    text.push_str("torn,row,that,parses,as,nothing\n");
    std::fs::write(&shard, text).unwrap();

    let (out, ok) = dse(&["--preset", "quick", "--cache-dir", &dir_s, "--cache-stats"]);
    assert!(ok, "warm run failed:\n{out}");
    // The count is cumulative for the process (a shard may be read
    // more than once per run), so assert it moved rather than pinning
    // the exact load count.
    assert!(
        out.lines().any(|l| l.contains("corrupt row(s) skipped")
            && !l.contains("0 corrupt row(s)")
            && l.contains("dse fsck")),
        "skipped rows must be surfaced with the fsck hint:\n{out}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
