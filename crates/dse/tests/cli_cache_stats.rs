//! End-to-end CLI check of the incremental pipeline (ISSUE 2
//! acceptance): re-running `dse` with one added clock value evaluates
//! only the new points, and `--cache-stats` reports the reuse.

use std::process::Command;

fn dse(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dse")).args(args).output().expect("dse runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (stdout, out.status.success())
}

fn stats_line(stdout: &str) -> &str {
    stdout.lines().find(|l| l.starts_with("cache stats:")).expect("cache stats line printed")
}

#[test]
fn grown_clock_axis_evaluates_only_the_new_points() {
    let dir = std::env::temp_dir().join(format!("ng-dse-cli-cache-stats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();

    // Cold run: everything is a miss.
    let (out, ok) = dse(&["--preset", "quick", "--cache-dir", &dir_s, "--cache-stats"]);
    assert!(ok, "cold run failed:\n{out}");
    assert!(
        stats_line(&out).contains("0 hits, 16 misses, 16 evaluated"),
        "unexpected cold stats: {}",
        stats_line(&out)
    );
    // The per-shard extension: row counts across the store's shards
    // must add up to the 16 appended points, and the lock-wait /
    // tail-heal line is present.
    let shards = out.lines().find(|l| l.starts_with("store shards:")).expect("shard row counts");
    assert!(shards.contains("(16 total"), "shard rows must sum to 16: {shards}");
    assert!(
        out.lines().any(|l| l.starts_with("store lock wait:")),
        "missing lock-wait line:\n{out}"
    );

    // Identical warm re-run: zero points evaluated.
    let (out, ok) = dse(&["--preset", "quick", "--cache-dir", &dir_s, "--cache-stats"]);
    assert!(ok, "warm run failed:\n{out}");
    assert!(
        stats_line(&out).contains("16 hits, 0 misses, 0 evaluated"),
        "warm re-run must be a 100% hit: {}",
        stats_line(&out)
    );

    // Grow the clock axis by one value: only the 16 new points run.
    let (out, ok) =
        dse(&["--preset", "quick", "--clocks", "1.0,1.25", "--cache-dir", &dir_s, "--cache-stats"]);
    assert!(ok, "grown run failed:\n{out}");
    assert!(
        stats_line(&out).contains("16 hits, 16 misses, 16 evaluated"),
        "grown axis must evaluate only its delta: {}",
        stats_line(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
