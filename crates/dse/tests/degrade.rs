//! Resource-exhaustion degradation (ISSUE 9): with every store append
//! failing ENOSPC-style, a sweep must still complete and deliver its
//! results — diverting fresh rows to the per-process in-memory
//! overlay, warning exactly once, and surfacing the damage in the
//! `store.degraded_appends` counter and the `--cache-stats` report.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn dse(args: &[&str], envs: &[(&str, &str)]) -> (String, String, Option<i32>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dse"));
    cmd.args(args);
    cmd.env_remove("NG_DSE_FAULTS").env_remove("NG_DSE_TRACE");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("dse runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ng-dse-degrade-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn enospc_degrades_to_the_overlay_and_the_run_still_delivers() {
    let dir = tmpdir("enospc");
    let store = dir.join("store").display().to_string();
    let out_csv = dir.join("out.csv").display().to_string();
    let ref_csv = dir.join("ref.csv").display().to_string();

    let (out, err, code) = dse(&["--preset", "quick", "--no-cache", "--csv", &ref_csv], &[]);
    assert_eq!(code, Some(0), "reference run failed:\nstdout: {out}\nstderr: {err}");

    // Uncapped `append:enospc`: every shard append of the 16-point
    // sweep fails as a full disk would. Exhaustion must NOT kill the
    // run (exit 0, full CSV) — it degrades.
    let (out, err, code) = dse(
        &[
            "--preset",
            "quick",
            "--cache-dir",
            &store,
            "--csv",
            &out_csv,
            "--cache-stats",
            "--threads",
            "2",
        ],
        &[("NG_DSE_FAULTS", "append:enospc")],
    );
    assert_eq!(code, Some(0), "degraded run must complete:\nstdout: {out}\nstderr: {err}");
    assert_eq!(
        err.matches("degrading to an in-memory overlay").count(),
        1,
        "exactly one degradation warning:\n{err}"
    );
    assert_eq!(
        fs::read(&out_csv).unwrap(),
        fs::read(&ref_csv).unwrap(),
        "a degraded run still delivers the full, correct CSV"
    );
    // All 16 fresh rows were diverted, and the report says so.
    assert!(
        out.contains("store degraded appends this process: 16 row(s)"),
        "--cache-stats must surface the diverted rows:\n{out}"
    );
    // The job manifest lives next to the store and was closed Done
    // (manifest writes are not shard appends, so they survived).
    assert!(out.contains("store jobs: 1 manifest(s), 0 resumable"), "{out}");

    // The overlay died with the process: a fault-free re-run finds an
    // empty store, re-evaluates everything, and persists it this time.
    let (out, err, code) =
        dse(&["--preset", "quick", "--cache-dir", &store, "--cache-stats", "--threads", "2"], &[]);
    assert_eq!(code, Some(0), "re-run failed:\nstdout: {out}\nstderr: {err}");
    assert!(
        out.contains("0 hits, 16 misses, 16 evaluated"),
        "degraded rows are lost at exit and re-evaluate next run:\n{out}"
    );
    assert!(out.contains("store degraded appends this process: 0 row(s)"), "{out}");

    // And nothing about the degraded episode corrupted the store.
    let (_, err, code) = dse(&["fsck", "--cache-dir", &store, "--check"], &[]);
    assert_eq!(code, Some(0), "store must be clean after degradation:\n{err}");

    fs::remove_dir_all(&dir).unwrap();
}
