//! End-to-end checks of the observability surface (ISSUE 6): a traced
//! quick-preset run must produce a balanced, invariant-satisfying
//! ledger; `dse trace` must summarize and export it; and the progress
//! meter must never leak into stdout (`--quiet` byte-parity).

use std::path::PathBuf;
use std::process::Command;

fn dse(args: &[&str], envs: &[(&str, &str)]) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dse"));
    cmd.args(args).env_remove(ng_obs::sink::TRACE_ENV).env_remove(ng_obs::progress::PROGRESS_ENV);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("dse runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ng-dse-trace-{tag}-{}", std::process::id()))
}

#[test]
fn traced_quick_run_balances_spans_and_satisfies_counter_invariant() {
    let ledger_path = temp_path("quick.jsonl");
    let _ = std::fs::remove_file(&ledger_path);
    let ledger_s = ledger_path.display().to_string();

    let (out, err, ok) =
        dse(&["--preset", "quick", "--no-cache", "--quiet", "--trace", &ledger_s], &[]);
    assert!(ok, "traced run failed:\nstdout:\n{out}\nstderr:\n{err}");

    let ledger = ng_obs::Ledger::read(&ledger_path).expect("ledger written");
    assert_eq!(ledger.skipped_lines, 0, "ledger contains malformed lines");
    let verdict = ledger.check();
    assert!(verdict.unbalanced.is_empty(), "unbalanced spans: {:?}", verdict.unbalanced);
    assert!(
        verdict.invariant_violations.is_empty(),
        "counter invariant violated: {:?}",
        verdict.invariant_violations
    );
    assert!(verdict.sweeping_pids >= 1, "no process recorded sweep counters");

    // Check the invariant directly from the raw counters too, rather
    // than trusting the checker alone.
    let counters = ledger.final_counters();
    let get = |name: &str| {
        counters.iter().find(|((_, n), _)| n == name).map(|(_, v)| *v).unwrap_or_default()
    };
    let points = get("sweep.points");
    assert!(points > 0, "traced run evaluated no points");
    assert_eq!(
        get("sweep.cache_hits") + get("sweep.fresh_evals"),
        points,
        "hits + fresh_evals != points"
    );

    // The `dse trace --check` subcommand agrees, on its own exit code.
    // The coverage floor is waived: on a sub-millisecond quick sweep,
    // fixed startup costs dominate the root span (the >= 95% bar is
    // enforced on the paper preset by the CI trace-smoke step).
    let (out, err, ok) = dse(&["trace", &ledger_s, "--check", "--min-coverage", "0"], &[]);
    assert!(ok, "trace --check failed:\nstdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("spans: balanced"), "missing balance verdict:\n{out}");
    assert!(out.contains("counter invariant"), "missing invariant verdict:\n{out}");
    assert!(out.contains("root span: dse"), "missing root span line:\n{out}");

    let _ = std::fs::remove_file(&ledger_path);
}

#[test]
fn trace_subcommand_exports_chrome_json() {
    let ledger_path = temp_path("chrome.jsonl");
    let chrome_path = temp_path("chrome.json");
    let _ = std::fs::remove_file(&ledger_path);
    let _ = std::fs::remove_file(&chrome_path);
    let ledger_s = ledger_path.display().to_string();
    let chrome_s = chrome_path.display().to_string();

    let (out, err, ok) =
        dse(&["--preset", "quick", "--no-cache", "--quiet", "--trace", &ledger_s], &[]);
    assert!(ok, "traced run failed:\nstdout:\n{out}\nstderr:\n{err}");
    let (out, err, ok) = dse(&["trace", &ledger_s, "--chrome", &chrome_s], &[]);
    assert!(ok, "chrome export failed:\nstdout:\n{out}\nstderr:\n{err}");

    let trace = std::fs::read_to_string(&chrome_path).expect("chrome trace written");
    assert!(trace.trim_start().starts_with('['), "not a JSON array:\n{trace}");
    assert!(trace.trim_end().ends_with(']'), "not a JSON array:\n{trace}");
    assert!(trace.contains("\"ph\":\"B\"") && trace.contains("\"ph\":\"E\""));

    let _ = std::fs::remove_file(&ledger_path);
    let _ = std::fs::remove_file(&chrome_path);
}

/// The progress meter draws only to stderr: stdout from a run with the
/// meter forced on must be byte-identical to a `--quiet` run, except
/// for the wall-clock throughput line, which legitimately varies.
#[test]
fn quiet_keeps_stdout_byte_identical() {
    let varying = |line: &&str| !line.starts_with("evaluation:");

    let (loud, err, ok) =
        dse(&["--preset", "quick", "--no-cache"], &[(ng_obs::progress::PROGRESS_ENV, "1")]);
    assert!(ok, "run with meter failed:\n{err}");
    assert!(err.contains('\r'), "forced-on meter never drew to stderr:\n{err}");

    let (quiet, err, ok) = dse(&["--preset", "quick", "--no-cache", "--quiet"], &[]);
    assert!(ok, "quiet run failed:\n{err}");
    assert!(!err.contains('\r'), "--quiet still drew a progress line:\n{err}");

    let loud: Vec<&str> = loud.lines().filter(varying).collect();
    let quiet: Vec<&str> = quiet.lines().filter(varying).collect();
    assert_eq!(loud, quiet, "stdout differs with/without the progress meter");
}
