//! End-to-end checks of `dse fsck` (ISSUE 7): a corrupted store is
//! audited, `--check` gates on the findings, `--repair` restores the
//! store to canonical form, and the repaired store serves a 100%-warm
//! re-run whose CSV is byte-identical to the original.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn dse(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_dse")).args(args).output().expect("dse runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ng-dse-fsck-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Damage every shard file without destroying any point's last valid
/// copy: junk lines, interior headers, duplicated rows, and a torn
/// half-row at the tail.
fn corrupt_store(store: &PathBuf) {
    for entry in fs::read_dir(store).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        let mut text = fs::read_to_string(&path).unwrap();
        let last_row = text.lines().rfind(|l| !l.starts_with('#')).unwrap().to_string();
        text.push_str("this is not a row at all\n");
        text.push_str("# ng-dse point cache | interior header from a splice\n");
        text.push_str(&last_row);
        text.push('\n');
        text.push_str(&last_row[..last_row.len() / 2]); // torn tail
        fs::write(&path, text).unwrap();
    }
}

#[test]
fn repair_restores_a_fully_warm_byte_identical_rerun() {
    let dir = tmpdir("repair");
    fs::create_dir_all(&dir).unwrap();
    let store_dir = dir.join("store");
    let store_s = store_dir.display().to_string();
    let clean_csv = dir.join("clean.csv");
    let warm_csv = dir.join("warm.csv");

    let (out, err, code) = dse(&[
        "--preset",
        "quick",
        "--cache-dir",
        &store_s,
        "--csv",
        &clean_csv.display().to_string(),
    ]);
    assert_eq!(code, 0, "seed run failed:\nstdout: {out}\nstderr: {err}");

    let store = ng_dse::EvalCache::new(&store_dir).store_dir();
    corrupt_store(&store);

    // The audit sees the damage; --check turns it into a non-zero exit.
    let (out, _, code) = dse(&["fsck", "--cache-dir", &store_s]);
    assert_eq!(code, 0, "plain audit reports, it does not gate:\n{out}");
    assert!(out.contains("dirty file"), "{out}");
    let (_, err, code) = dse(&["fsck", "--cache-dir", &store_s, "--check"]);
    assert_ne!(code, 0, "--check must gate on findings");
    assert!(err.contains("--repair"), "points at the fix: {err}");

    // Repair, then verify the doctor's own post-condition.
    let (out, err, code) = dse(&["fsck", "--cache-dir", &store_s, "--repair"]);
    assert_eq!(code, 0, "repair failed:\nstdout: {out}\nstderr: {err}");
    let (_, _, code) = dse(&["fsck", "--cache-dir", &store_s, "--check"]);
    assert_eq!(code, 0, "store must be clean after repair");

    // The acceptance check: the repaired store serves the whole sweep
    // warm, and the output is byte-identical to the pre-damage run.
    let (out, err, code) = dse(&[
        "--preset",
        "quick",
        "--cache-dir",
        &store_s,
        "--cache-stats",
        "--csv",
        &warm_csv.display().to_string(),
    ]);
    assert_eq!(code, 0, "re-run failed:\nstdout: {out}\nstderr: {err}");
    let stats = out.lines().find(|l| l.starts_with("cache stats:")).expect("stats line");
    assert!(stats.contains("16 hits, 0 misses, 0 evaluated"), "100% warm: {stats}");
    assert_eq!(
        fs::read(&clean_csv).unwrap(),
        fs::read(&warm_csv).unwrap(),
        "repaired store must reproduce the original CSV byte-for-byte"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fsck_audits_a_ledger_and_repairs_torn_lines() {
    let dir = tmpdir("ledger");
    fs::create_dir_all(&dir).unwrap();
    let store_s = dir.join("store").display().to_string();
    let ledger = dir.join("run.jsonl");
    let ledger_s = ledger.display().to_string();

    let (_, err, code) =
        dse(&["--preset", "quick", "--cache-dir", &store_s, "--trace", &ledger_s, "--quiet"]);
    assert_eq!(code, 0, "traced run failed:\n{err}");

    // Tear the ledger's tail, as a killed writer would.
    let mut text = fs::read_to_string(&ledger).unwrap();
    let keep = text.len() - 7;
    text.truncate(keep);
    fs::write(&ledger, text).unwrap();

    let (out, _, code) = dse(&["fsck", "--cache-dir", &store_s, "--ledger", &ledger_s]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("1 torn line(s)"), "{out}");
    let (_, _, code) = dse(&["fsck", "--cache-dir", &store_s, "--ledger", &ledger_s, "--check"]);
    assert_ne!(code, 0, "--check gates on ledger damage too");

    let (out, _, code) = dse(&["fsck", "--cache-dir", &store_s, "--ledger", &ledger_s, "--repair"]);
    assert_eq!(code, 0, "{out}");
    let (out, _, code) = dse(&["fsck", "--cache-dir", &store_s, "--ledger", &ledger_s, "--check"]);
    assert_eq!(code, 0, "clean after repair: {out}");
    assert!(out.contains("0 torn line(s)"), "{out}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn usage_errors_exit_2() {
    let (_, err, code) = dse(&["--bogus-flag"]);
    assert_eq!(code, 2, "unknown flags are usage errors: {err}");
    let (_, err, code) = dse(&["--preset", "no-such-preset"]);
    assert_eq!(code, 2, "unknown preset is a usage error: {err}");
    let (_, _, code) = dse(&["fsck", "--bogus"]);
    assert_eq!(code, 2, "fsck argument errors are usage errors like every other entry point");
}
