//! End-to-end checks of the multi-process sweep backend (ISSUE 5):
//! real `dse` worker processes hammering one point store concurrently,
//! the coordinator CLI matching the single-process run byte-for-byte,
//! and kill-and-resume evaluating only the missing delta.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn dse(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dse")).args(args).output().expect("dse runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ng-dse-distrib-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn stats_line(stdout: &str) -> &str {
    stdout.lines().find(|l| l.starts_with("cache stats:")).expect("cache stats line printed")
}

#[test]
fn concurrent_worker_processes_lose_no_rows() {
    // The multi-writer stress test of the ISSUE, with real processes:
    // every worker of a 4-way split appends to the same store at the
    // same time; afterwards every row must read back intact.
    let dir = tmpdir("stress");
    let dir_s = dir.display().to_string();
    let of = 4;
    let children: Vec<_> = (0..of)
        .map(|shard| {
            Command::new(env!("CARGO_BIN_EXE_dse"))
                .args([
                    "--preset",
                    "mac-arrays",
                    "--worker-shard",
                    &format!("{shard}/{of}"),
                    "--cache-dir",
                    &dir_s,
                    "--threads",
                    "2",
                ])
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("worker spawns")
        })
        .collect();
    for mut child in children {
        assert!(child.wait().expect("worker joins").success(), "worker exited non-zero");
    }

    // Every point of the 432-point preset must be a hit — no torn or
    // lost lines anywhere — and bit-identical to a fresh evaluation.
    let spec = ng_dse::SweepSpec::mac_arrays();
    let cache = ng_dse::EvalCache::new(&dir);
    let loaded = cache.lookup(&spec.points());
    let loaded: Vec<_> =
        loaded.into_iter().collect::<Option<Vec<_>>>().expect("no torn or lost rows");
    let reference = ng_dse::SweepEngine::new().without_cache().run(&spec).unwrap();
    assert_eq!(loaded, reference.points);

    // Exactly one header per shard file: the lock made header creation
    // race-safe even though all four processes started on a fresh dir.
    let store = cache.store_dir();
    for entry in fs::read_dir(&store).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let headers = text.lines().filter(|l| l.starts_with('#')).count();
        assert_eq!(headers, 1, "{}: exactly one header", path.display());
        assert!(text.ends_with('\n'), "{}: no torn tail", path.display());
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn coordinator_matches_single_process_byte_for_byte() {
    let dir = tmpdir("parity");
    let dist_csv = dir.join("dist.csv");
    let single_csv = dir.join("single.csv");
    fs::create_dir_all(&dir).unwrap();

    let (out, err, ok) = dse(&[
        "--preset",
        "quick",
        "--workers",
        "3",
        "--cache-dir",
        &dir.join("store").display().to_string(),
        "--csv",
        &dist_csv.display().to_string(),
    ]);
    assert!(ok, "distributed run failed:\nstdout: {out}\nstderr: {err}");
    assert_eq!(out.matches("worker ").count(), 3, "three worker summaries:\n{out}");
    assert!(!out.contains("coordinator recovered"), "clean run needs no recovery:\n{out}");

    let (out, _, ok) =
        dse(&["--preset", "quick", "--no-cache", "--csv", &single_csv.display().to_string()]);
    assert!(ok, "single-process run failed:\n{out}");

    assert_eq!(
        fs::read(&dist_csv).unwrap(),
        fs::read(&single_csv).unwrap(),
        "distributed CSV must be byte-identical to the single-process CSV"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_run_resumes_with_only_the_missing_delta() {
    // Simulate a run killed after one worker finished: only shard 0's
    // slice made it into the store. The restarted distributed run must
    // serve that slice from the store and evaluate exactly the rest.
    let dir = tmpdir("resume");
    let dir_s = dir.display().to_string();

    let (out, err, ok) =
        dse(&["--preset", "quick", "--worker-shard", "0/3", "--cache-dir", &dir_s]);
    assert!(ok, "worker failed:\nstdout: {out}\nstderr: {err}");
    assert!(out.contains("worker 0/3: 6 points, 0 hits, 6 evaluated"), "{out}");

    let (out, err, ok) =
        dse(&["--preset", "quick", "--workers", "3", "--cache-dir", &dir_s, "--cache-stats"]);
    assert!(ok, "resumed run failed:\nstdout: {out}\nstderr: {err}");
    assert!(
        stats_line(&out).contains("6 hits, 10 misses, 10 evaluated"),
        "resume must pay only the delta: {}",
        stats_line(&out)
    );
    // The worker that re-ran shard 0 found its whole slice cached.
    assert!(out.contains("worker 0/3: 6 points, 6 hits, 0 evaluated"), "{out}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn chaos_kill_plan_still_matches_single_process_byte_for_byte() {
    // Deterministic chaos: every worker aborts at its second evaluation
    // (having delivered nothing — workers append only after finishing
    // their whole slice). The coordinator's merge must recover every
    // point and the final CSV must be byte-identical to a fault-free
    // single-process run.
    let dir = tmpdir("chaos-kill");
    fs::create_dir_all(&dir).unwrap();
    let dist_csv = dir.join("dist.csv");
    let single_csv = dir.join("single.csv");

    let (out, err, ok) = dse(&[
        "--preset",
        "quick",
        "--workers",
        "3",
        "--quiet",
        "--faults",
        "worker:kill@point=2",
        "--cache-dir",
        &dir.join("store").display().to_string(),
        "--csv",
        &dist_csv.display().to_string(),
    ]);
    assert!(ok, "chaos run must still succeed:\nstdout: {out}\nstderr: {err}");
    assert!(err.contains("failed (its slice was recovered"), "workers died:\n{err}");
    assert!(out.contains("coordinator recovered"), "recovery must be reported:\n{out}");

    let (out, _, ok) =
        dse(&["--preset", "quick", "--no-cache", "--csv", &single_csv.display().to_string()]);
    assert!(ok, "single-process run failed:\n{out}");
    assert_eq!(
        fs::read(&dist_csv).unwrap(),
        fs::read(&single_csv).unwrap(),
        "CSV under worker-kill faults must be byte-identical to fault-free"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hung_worker_lease_is_revoked_and_the_run_completes() {
    // Every worker hangs at its first evaluation; heartbeats (if any)
    // freeze. The coordinator must revoke each lease, SIGKILL the
    // worker, burn through the replacement grant (which hangs the same
    // way — the plan is inherited), and finally evaluate the slices
    // itself. Slow by design (two stall windows per worker), but the
    // result must still be bit-identical.
    let dir = tmpdir("chaos-hang");
    let spec = ng_dse::SweepSpec::quick();
    let distributed = ng_dse::Coordinator::new(2)
        .with_worker_exe(env!("CARGO_BIN_EXE_dse"))
        .with_worker_env("NG_DSE_FAULTS", "worker:hang@point=1")
        .with_cache_dir(&dir)
        .with_threads_per_worker(1)
        .with_stall_after(std::time::Duration::from_millis(400))
        .with_quiet(true)
        .run(&spec)
        .expect("coordinator completes despite hung workers");
    assert!(distributed.workers.iter().all(|w| !w.ok), "every worker hung");
    assert!(
        distributed.workers.iter().all(|w| w.lease_revoked),
        "every lease must be revoked: {:?}",
        distributed.workers
    );
    assert!(
        distributed.workers.iter().any(|w| w.status_line().contains("SIGKILL")),
        "the kill must be named"
    );
    assert_eq!(distributed.recovered, spec.point_count(), "merge evaluated everything");
    let reference = ng_dse::SweepEngine::new().without_cache().run(&spec).unwrap();
    assert_eq!(distributed.outcome.points, reference.points);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_append_failure_exits_3_and_the_cause_is_named() {
    // Workers evaluate their slices fine but every append fails
    // (p=1 exhausts the bounded retries). They must exit with the
    // dedicated store-append code, the coordinator must translate it
    // for humans, and the merge must still deliver the full sweep.
    let dir = tmpdir("chaos-append");
    let spec = ng_dse::SweepSpec::quick();
    let distributed = ng_dse::Coordinator::new(2)
        .with_worker_exe(env!("CARGO_BIN_EXE_dse"))
        .with_worker_env("NG_DSE_FAULTS", "append:io@p=1")
        .with_cache_dir(&dir)
        .with_threads_per_worker(1)
        .with_quiet(true)
        .run(&spec)
        .expect("coordinator recovers undelivered slices");
    for w in &distributed.workers {
        assert!(!w.ok, "append must have failed: {w:?}");
        assert_eq!(w.exit, Some(ng_dse::distrib::EXIT_STORE_APPEND), "{w:?}");
        assert!(
            w.status_line().contains("could not persist"),
            "cause must be human-readable: {}",
            w.status_line()
        );
    }
    assert_eq!(distributed.recovered, spec.point_count());
    let reference = ng_dse::SweepEngine::new().without_cache().run(&spec).unwrap();
    assert_eq!(distributed.outcome.points, reference.points);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn coordinator_cli_rejects_bad_combinations() {
    let (_, err, ok) = dse(&["--preset", "quick", "--workers", "2", "--no-cache"]);
    assert!(!ok, "--workers needs the store");
    assert!(err.contains("--no-cache"), "{err}");

    let (_, err, ok) = dse(&["--preset", "quick", "--workers", "0"]);
    assert!(!ok);
    assert!(err.contains("--workers"), "{err}");

    let (_, err, ok) = dse(&["--preset", "quick", "--worker-shard", "3/3"]);
    assert!(!ok);
    assert!(err.contains("--worker-shard"), "{err}");

    let (_, err, ok) = dse(&["--search", "--preset", "quick", "--workers", "2"]);
    assert!(!ok, "--search is sequential");
    assert!(err.contains("--search"), "{err}");

    let (_, err, ok) = dse(&["--preset", "quick", "--workers", "2", "--worker-shard", "0/2"]);
    assert!(!ok, "coordinator and worker modes are exclusive");
    assert!(err.contains("mutually"), "{err}");

    // Worker mode must reject outcome-producing flags loudly, not
    // silently ignore them (a worker writes no CSV/JSON/report and
    // applies no constraints).
    for flag in [
        &["--csv", "x.csv"][..],
        &["--json", "x.json"],
        &["--check-headline"],
        &["--min-speedup", "2"],
        &["--top", "4"],
        &["--cache-stats"],
    ] {
        let mut args = vec!["--preset", "quick", "--worker-shard", "0/2"];
        args.extend_from_slice(flag);
        let (_, err, ok) = dse(&args);
        assert!(!ok, "{flag:?} must be rejected in worker mode");
        assert!(err.contains(flag[0]), "{err}");
    }
}
