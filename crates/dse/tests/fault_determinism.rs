//! Deterministic fault replay (ISSUE 9): the same fault seed must
//! reproduce the same run, down to the retry counter and the exact
//! backoff sites recorded in the ledger — otherwise `dse chaos
//! --seed N` could not replay a failure.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ng-dse-faultdet-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// One seeded faulted run in a fresh store: returns the
/// `store.retries` growth reported by `--metrics` and the sequence of
/// `store.retry` backoff-site messages from the run ledger.
fn seeded_run(dir: &std::path::Path, plan: &str) -> (u64, Vec<String>) {
    let trace = dir.join("trace.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_dse"))
        .args([
            "--preset",
            "quick",
            "--cache-dir",
            &dir.join("store").display().to_string(),
            "--threads",
            "1",
            "--quiet",
            "--metrics",
            "--trace",
            &trace.display().to_string(),
        ])
        .env_remove("NG_DSE_FAULTS")
        .env_remove("NG_DSE_TRACE")
        .env("NG_DSE_FAULTS", plan)
        .output()
        .expect("dse runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "the seeded plan must be survivable (retries absorb every injected error):\n{stderr}"
    );
    let retries = stderr
        .lines()
        .find_map(|l| l.strip_prefix("store.retries = "))
        .expect("injected append errors must move store.retries")
        .trim()
        .parse()
        .expect("counter value parses");
    // The ledger's backoff-site events, in emission order: which shard
    // retried, how many times. `"v":"shard 3: 2 retried append
    // attempt(s)"` — keep just the message.
    let sites: Vec<String> = fs::read_to_string(&trace)
        .expect("ledger written")
        .lines()
        .filter(|l| l.contains("\"k\":\"store.retry\""))
        .map(|l| {
            let v = l.find("\"v\":\"").expect("meta event has a value") + 5;
            l[v..l.rfind('"').unwrap()].to_string()
        })
        .collect();
    (retries, sites)
}

#[test]
fn same_fault_seed_reproduces_retries_and_backoff_sites() {
    // p=0.3 with 4 retries: every shard append survives (the chance of
    // five consecutive injected failures is 0.24%, and the outcome is
    // a pure function of the seed — no flakiness), but several appends
    // pay at least one backoff.
    let plan = "seed=7;append:io@p=0.3";
    let dir_a = tmpdir("a");
    let dir_b = tmpdir("b");
    let (retries_a, sites_a) = seeded_run(&dir_a, plan);
    let (retries_b, sites_b) = seeded_run(&dir_b, plan);

    assert!(retries_a > 0, "the plan must actually inject (else this test checks nothing)");
    assert_eq!(retries_a, retries_b, "same seed, same store.retries");
    assert!(!sites_a.is_empty(), "retried appends must name their backoff site in the ledger");
    assert_eq!(sites_a, sites_b, "same seed, same backoff sites in the same order");

    // A different seed shifts where the injections land — the proof
    // that the determinism above comes from the seed, not from the
    // injection being degenerate (all-or-nothing).
    let dir_c = tmpdir("c");
    let (_, sites_c) = seeded_run(&dir_c, "seed=8;append:io@p=0.3");
    assert_ne!(sites_a, sites_c, "a different seed must land differently");

    fs::remove_dir_all(&dir_a).unwrap();
    fs::remove_dir_all(&dir_b).unwrap();
    fs::remove_dir_all(&dir_c).unwrap();
}
