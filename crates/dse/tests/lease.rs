//! Lease lifecycle under a deterministic wedge (ISSUE 9): a worker
//! whose replacement hangs the same way must burn exactly one respawn
//! — the second expiry exhausts the grant budget and the slice falls
//! to the coordinator's local recovery, never a third spawn.
//!
//! Lives alone in this file: it asserts process-global counter deltas,
//! which tests running concurrently in the same process would race.

use std::fs;
use std::time::Duration;

#[test]
fn double_lease_expiry_recovers_locally_after_exactly_one_respawn() {
    let dir = std::env::temp_dir().join(format!("ng-dse-lease-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let expired_before = ng_dse::obs_counters::distrib_leases_expired().get();
    let killed_before = ng_dse::obs_counters::distrib_workers_killed().get();
    let reassigned_before = ng_dse::obs_counters::distrib_leases_reassigned().get();

    // One worker owning the whole slice, hanging at its first
    // evaluation. The plan is inherited by the replacement, so the
    // respawn hangs identically — a deterministic wedge.
    let spec = ng_dse::SweepSpec::quick();
    let distributed = ng_dse::Coordinator::new(1)
        .with_worker_exe(env!("CARGO_BIN_EXE_dse"))
        .with_worker_env("NG_DSE_FAULTS", "worker:hang@point=1")
        .with_cache_dir(&dir)
        .with_threads_per_worker(1)
        .with_stall_after(Duration::from_millis(400))
        .with_quiet(true)
        .run(&spec)
        .expect("coordinator completes despite the wedge");

    // Both the initial holder and its single replacement expired and
    // were killed; MAX_LEASE_GRANTS=2 means no second replacement.
    assert_eq!(
        ng_dse::obs_counters::distrib_leases_expired().get() - expired_before,
        2,
        "the lease must expire twice (holder, then replacement)"
    );
    assert_eq!(
        ng_dse::obs_counters::distrib_workers_killed().get() - killed_before,
        2,
        "both holders must be SIGKILLed"
    );
    assert_eq!(
        ng_dse::obs_counters::distrib_leases_reassigned().get() - reassigned_before,
        1,
        "exactly one respawn: the second expiry must fall to local recovery"
    );

    // Local recovery delivered the whole slice, bit-identical.
    let report = &distributed.workers[0];
    assert!(report.lease_revoked && !report.ok, "{report:?}");
    assert_eq!(distributed.recovered, spec.point_count(), "the merge evaluated everything");
    let reference = ng_dse::SweepEngine::new().without_cache().run(&spec).unwrap();
    assert_eq!(distributed.outcome.points, reference.points);

    fs::remove_dir_all(&dir).unwrap();
}
