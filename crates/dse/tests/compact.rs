//! End-to-end checks of `dse compact` (ISSUE 8): compaction preserves
//! every reader-visible row bit-exactly, a compactor killed at any
//! crash point loses nothing (the CSV write-ahead layer stays
//! authoritative), `dse fsck` sweeps up the debris, and a randomized
//! append history round-trips through the binary generation with
//! latest-wins duplicate semantics.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

use ng_dse::{DesignPoint, EvalCache, EvaluatedPoint};
use ng_neural::apps::{AppKind, EncodingKind};
use proptest::prelude::*;

fn dse(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_dse")).args(args).output().expect("dse runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("ng-dse-compact-cli-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn stats_line(stdout: &str) -> &str {
    stdout.lines().find(|l| l.starts_with("cache stats:")).expect("cache stats line printed")
}

#[test]
fn compact_preserves_results_and_serves_warm_from_the_base() {
    let dir = tmpdir("parity");
    fs::create_dir_all(&dir).unwrap();
    let store_s = dir.join("store").display().to_string();
    let pre_csv = dir.join("pre.csv").display().to_string();
    let post_csv = dir.join("post.csv").display().to_string();

    let (out, err, code) = dse(&["--preset", "quick", "--cache-dir", &store_s, "--csv", &pre_csv]);
    assert_eq!(code, 0, "seed run failed:\nstdout: {out}\nstderr: {err}");

    let (out, err, code) = dse(&["compact", "--cache-dir", &store_s]);
    assert_eq!(code, 0, "compact failed:\nstdout: {out}\nstderr: {err}");
    assert!(out.contains("wrote generation 1"), "{out}");
    assert!(out.contains("16 CSV row(s)"), "all 16 quick-preset rows fold: {out}");

    // The warm re-run is 100% hits — all served from the binary base —
    // and its CSV is byte-identical to the never-compacted run.
    let (out, err, code) =
        dse(&["--preset", "quick", "--cache-dir", &store_s, "--cache-stats", "--csv", &post_csv]);
    assert_eq!(code, 0, "warm run failed:\nstdout: {out}\nstderr: {err}");
    assert!(
        stats_line(&out).contains("16 hits, 0 misses, 0 evaluated"),
        "100% warm through the base: {}",
        stats_line(&out)
    );
    let base = out.lines().find(|l| l.starts_with("store base:")).expect("base line");
    assert!(base.contains("generation 1"), "{base}");
    assert!(
        out.lines().any(|l| l.starts_with("store hits this process: 16 from base")),
        "all hits must come from the base layer:\n{out}"
    );
    assert_eq!(
        fs::read(&pre_csv).unwrap(),
        fs::read(&post_csv).unwrap(),
        "compaction must not change a single output byte"
    );

    // An immediate second compaction folds the (empty) tail into a new
    // generation and still serves the same rows.
    let (out, _, code) = dse(&["compact", "--cache-dir", &store_s]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("wrote generation 2"), "{out}");
    assert!(out.contains("16 base + 0 CSV row(s)"), "{out}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_at_every_stage_loses_no_rows_and_a_retry_succeeds() {
    // Kill the compactor at each of its three crash points in turn:
    // after writing the tmp image, after publishing the generation, and
    // mid-way through truncating the CSV tails. Whatever is left on
    // disk, the warm re-run must be 100% hits and byte-identical to the
    // never-compacted run, and a plain retry must complete the fold.
    for stage in 1..=3u32 {
        let dir = tmpdir("crash");
        fs::create_dir_all(&dir).unwrap();
        let store_s = dir.join("store").display().to_string();
        let clean_csv = dir.join("clean.csv").display().to_string();
        let warm_csv = dir.join("warm.csv").display().to_string();

        let (out, err, code) =
            dse(&["--preset", "quick", "--cache-dir", &store_s, "--csv", &clean_csv]);
        assert_eq!(code, 0, "seed run failed:\nstdout: {out}\nstderr: {err}");

        let plan = format!("compact:crash@stage={stage}");
        let (out, err, code) = dse(&["compact", "--cache-dir", &store_s, "--faults", &plan]);
        assert_ne!(code, 0, "stage {stage}: injected crash must fail the compactor:\n{out}");
        assert!(err.contains("compact"), "stage {stage}: cause named on stderr: {err}");

        let (out, err, code) = dse(&[
            "--preset",
            "quick",
            "--cache-dir",
            &store_s,
            "--cache-stats",
            "--csv",
            &warm_csv,
        ]);
        assert_eq!(code, 0, "stage {stage}: warm run failed:\nstdout: {out}\nstderr: {err}");
        assert!(
            stats_line(&out).contains("16 hits, 0 misses, 0 evaluated"),
            "stage {stage}: crash debris must not cost a single row: {}",
            stats_line(&out)
        );
        assert_eq!(
            fs::read(&clean_csv).unwrap(),
            fs::read(&warm_csv).unwrap(),
            "stage {stage}: warm CSV must match the never-compacted run byte-for-byte"
        );

        // The next compactor picks up where the dead one left off.
        let (out, err, code) = dse(&["compact", "--cache-dir", &store_s]);
        assert_eq!(code, 0, "stage {stage}: retry failed:\nstdout: {out}\nstderr: {err}");
        assert!(out.contains("wrote generation"), "stage {stage}: {out}");
        let (out, _, code) = dse(&["--preset", "quick", "--cache-dir", &store_s, "--cache-stats"]);
        assert_eq!(code, 0, "stage {stage}: post-retry warm run failed");
        assert!(
            stats_line(&out).contains("16 hits, 0 misses, 0 evaluated"),
            "stage {stage}: still 100% warm after the retry: {}",
            stats_line(&out)
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn fsck_repairs_compactor_crash_debris() {
    // A compactor killed before publishing leaves a tmp image behind.
    // It is invisible to readers, but `dse fsck` must flag it, `--check`
    // must gate on it, and `--repair` must sweep it.
    let dir = tmpdir("fsck");
    fs::create_dir_all(&dir).unwrap();
    let store_s = dir.join("store").display().to_string();

    let (_, err, code) = dse(&["--preset", "quick", "--cache-dir", &store_s, "--quiet"]);
    assert_eq!(code, 0, "seed run failed:\n{err}");
    let (_, _, code) =
        dse(&["compact", "--cache-dir", &store_s, "--faults", "compact:crash@stage=1"]);
    assert_ne!(code, 0, "injected crash must fail the compactor");

    let (out, _, code) = dse(&["fsck", "--cache-dir", &store_s]);
    assert_eq!(code, 0, "plain audit reports, it does not gate:\n{out}");
    assert!(out.contains("ORPHANED"), "the tmp image is flagged:\n{out}");
    let (_, err, code) = dse(&["fsck", "--cache-dir", &store_s, "--check"]);
    assert_ne!(code, 0, "--check must gate on the debris");
    assert!(err.contains("--repair"), "points at the fix: {err}");

    let (out, err, code) = dse(&["fsck", "--cache-dir", &store_s, "--repair"]);
    assert_eq!(code, 0, "repair failed:\nstdout: {out}\nstderr: {err}");
    let (_, _, code) = dse(&["fsck", "--cache-dir", &store_s, "--check"]);
    assert_eq!(code, 0, "store must be clean after repair");
    fs::remove_dir_all(&dir).unwrap();
}

/// A synthetic design point on a one-dimensional clock axis: distinct
/// `i` values hash to distinct store keys, repeated `i` values collide
/// on purpose (duplicate-key appends).
fn dp(i: usize) -> DesignPoint {
    DesignPoint {
        index: i,
        app: AppKind::ALL[i % AppKind::ALL.len()],
        encoding: EncodingKind::ALL[i % EncodingKind::ALL.len()],
        pixels: 2_073_600,
        nfp_units: 4,
        clock_ghz: 1.0 + (i as f64) * 0.125,
        grid_sram_kb: 16,
        grid_sram_banks: 4,
        encoding_engines: 2,
        mac_rows: 4,
        mac_cols: 16,
        lanes_per_engine: 4,
        input_fifo_depth: 8,
    }
}

/// Fabricated metrics, a deterministic function of `seed` so that two
/// appends of the same point are distinguishable.
fn ep(i: usize, seed: u32) -> EvaluatedPoint {
    let s = seed as f64;
    EvaluatedPoint {
        point: dp(i),
        speedup: 1.0 + s * 1e-3,
        area_pct_of_gpu: 0.5 + s * 1e-4,
        power_pct_of_gpu: 1.5 + s * 1e-4,
        gpu_ms: 30.0 + s * 1e-2,
        ngpc_frame_ms: 5.0 + s * 1e-3,
        amdahl_bound: 10.0 + s * 1e-3,
        plateaued: seed.is_multiple_of(2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// compact(load(csv)) round-trips every row, including duplicate
    /// keys where the *latest* append must win — exactly what the CSV
    /// reader promises — and a lookup against the compacted store is
    /// indistinguishable from one against the raw CSV.
    #[test]
    fn compact_round_trips_every_row_latest_wins(
        ids in prop::collection::vec(0usize..40, 1..100),
        seeds in prop::collection::vec(0u32..1_000_000, 1..100),
    ) {
        let dir = tmpdir("props");
        let cache = EvalCache::new(&dir);
        let rows: Vec<EvaluatedPoint> =
            ids.iter().zip(&seeds).map(|(&i, &s)| ep(i, s)).collect();
        cache.append(&rows).unwrap();

        // The reference semantics: later appends shadow earlier ones.
        let mut expected: HashMap<u64, EvaluatedPoint> = HashMap::new();
        for row in &rows {
            expected.insert(EvalCache::point_key(&row.point), *row);
        }

        let report = ng_dse::compact(&cache).unwrap();
        prop_assert_eq!(report.rows_out, expected.len(), "one row per distinct key");
        prop_assert_eq!(report.generation, Some(1));
        prop_assert_eq!(&cache.load_all(), &expected, "bit-exact round trip");

        // Point lookups go through the layered reader (empty tail,
        // binary base) and must agree row for row.
        let points: Vec<DesignPoint> = expected.values().map(|r| r.point).collect();
        let looked: Vec<EvaluatedPoint> =
            cache.lookup(&points).into_iter().map(|r| r.unwrap()).collect();
        for (point, row) in points.iter().zip(&looked) {
            prop_assert_eq!(row, &expected[&EvalCache::point_key(point)]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
