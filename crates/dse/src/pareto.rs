//! Pareto frontier extraction over the architect's three objectives.
//!
//! A configuration is *dominated* if some other configuration is at
//! least as good on every objective — higher speedup, lower area, lower
//! power — and strictly better on at least one. The frontier is the set
//! of non-dominated configurations: every point an architect could
//! rationally pick, for some weighting of the objectives.

use serde::{Deserialize, Serialize};

/// One configuration's position in objective space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    /// End-to-end speedup over the GPU baseline (maximise).
    pub speedup: f64,
    /// Cluster area as % of the GPU die (minimise).
    pub area_pct: f64,
    /// Cluster power as % of GPU TDP (minimise).
    pub power_pct: f64,
}

impl Objectives {
    /// Strict Pareto dominance: no worse on all objectives, strictly
    /// better on at least one. Equal points do not dominate each other.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.speedup >= other.speedup
            && self.area_pct <= other.area_pct
            && self.power_pct <= other.power_pct;
        let strictly_better = self.speedup > other.speedup
            || self.area_pct < other.area_pct
            || self.power_pct < other.power_pct;
        no_worse && strictly_better
    }
}

/// Budget constraints an architect imposes before reading the frontier,
/// e.g. "area ≤ 3% of the GPU die, power ≤ 5% of TDP".
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Upper bound on area (% of GPU die).
    pub max_area_pct: Option<f64>,
    /// Upper bound on power (% of GPU TDP).
    pub max_power_pct: Option<f64>,
    /// Lower bound on speedup.
    pub min_speedup: Option<f64>,
}

impl Constraints {
    /// No bounds at all.
    pub const NONE: Constraints =
        Constraints { max_area_pct: None, max_power_pct: None, min_speedup: None };

    /// Whether a point satisfies every configured bound.
    pub fn admits(&self, o: &Objectives) -> bool {
        self.max_area_pct.is_none_or(|b| o.area_pct <= b)
            && self.max_power_pct.is_none_or(|b| o.power_pct <= b)
            && self.min_speedup.is_none_or(|b| o.speedup >= b)
    }

    /// Whether any bound is configured.
    pub fn is_constrained(&self) -> bool {
        self != &Constraints::NONE
    }
}

/// Indices (ascending) of the non-dominated points of `objectives`.
///
/// Candidates are visited best-speedup-first, so a point only needs
/// checking against the frontier built so far — `O(n log n + n·f)` with
/// `f` the frontier size, instead of the naive all-pairs scan. Ties on
/// all three objectives are all kept (none dominates another).
pub fn pareto_indices(objectives: &[Objectives]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..objectives.len()).collect();
    order.sort_by(|&a, &b| {
        let (oa, ob) = (&objectives[a], &objectives[b]);
        ob.speedup
            .total_cmp(&oa.speedup)
            .then(oa.area_pct.total_cmp(&ob.area_pct))
            .then(oa.power_pct.total_cmp(&ob.power_pct))
            .then(a.cmp(&b))
    });
    let mut frontier: Vec<usize> = Vec::new();
    'candidates: for &i in &order {
        for &j in &frontier {
            if objectives[j].dominates(&objectives[i]) {
                continue 'candidates;
            }
        }
        frontier.push(i);
    }
    frontier.sort_unstable();
    frontier
}

/// [`pareto_indices`] over only the points admitted by `constraints`
/// (indices still refer to the input slice).
pub fn constrained_pareto(objectives: &[Objectives], constraints: &Constraints) -> Vec<usize> {
    let admitted: Vec<usize> =
        (0..objectives.len()).filter(|&i| constraints.admits(&objectives[i])).collect();
    let sub: Vec<Objectives> = admitted.iter().map(|&i| objectives[i]).collect();
    pareto_indices(&sub).into_iter().map(|k| admitted[k]).collect()
}

/// An incremental Pareto frontier: points stream in one at a time and
/// the structure maintains exactly the non-dominated set seen so far.
///
/// Each insert checks the candidate against the *current frontier only*
/// (dominated candidates are rejected, newly dominated members are
/// evicted in the same pass), so a full pass over `n` points costs
/// `O(n·f)` with `f` the running frontier size — replacing the
/// collect-everything-then-filter [`constrained_pareto`] pass and, more
/// importantly, letting a guided searcher keep its archive current
/// without ever materialising the visited set's objectives. Exact ties
/// on all three objectives are all kept (equal points do not dominate
/// each other), matching the batch extractor.
#[derive(Debug, Clone, Default)]
pub struct StreamingFrontier<T> {
    entries: Vec<(Objectives, T)>,
}

impl<T> StreamingFrontier<T> {
    /// An empty frontier.
    pub fn new() -> Self {
        StreamingFrontier { entries: Vec::new() }
    }

    /// Offer one point. Returns `true` if it joined the frontier
    /// (i.e. no current member dominates it); members it dominates are
    /// evicted. Accepted offers count into `frontier.inserts`, each
    /// eviction into `frontier.prunes` — the churn pair that tells a
    /// trace reader whether a search kept improving or went flat.
    pub fn insert(&mut self, objectives: Objectives, payload: T) -> bool {
        if self.entries.iter().any(|(o, _)| o.dominates(&objectives)) {
            return false;
        }
        let before = self.entries.len();
        self.entries.retain(|(o, _)| !objectives.dominates(o));
        let evicted = before - self.entries.len();
        if evicted > 0 {
            crate::obs_counters::frontier_prunes().add(evicted as u64);
        }
        crate::obs_counters::frontier_inserts().incr();
        self.entries.push((objectives, payload));
        true
    }

    /// Offer one point only if `constraints` admit it.
    pub fn insert_constrained(
        &mut self,
        objectives: Objectives,
        payload: T,
        constraints: &Constraints,
    ) -> bool {
        constraints.admits(&objectives) && self.insert(objectives, payload)
    }

    /// Current frontier size.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no point has survived (or been offered).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `objectives` is dominated by a current member.
    pub fn dominated(&self, objectives: &Objectives) -> bool {
        self.entries.iter().any(|(o, _)| o.dominates(objectives))
    }

    /// Iterate the frontier in insertion order (survivors only).
    pub fn iter(&self) -> impl Iterator<Item = &(Objectives, T)> {
        self.entries.iter()
    }

    /// Consume the frontier, yielding the surviving payloads in
    /// insertion order.
    pub fn into_payloads(self) -> Vec<T> {
        self.entries.into_iter().map(|(_, p)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(speedup: f64, area_pct: f64, power_pct: f64) -> Objectives {
        Objectives { speedup, area_pct, power_pct }
    }

    #[test]
    fn dominance_is_strict() {
        assert!(o(2.0, 1.0, 1.0).dominates(&o(1.0, 1.0, 1.0)));
        assert!(o(1.0, 0.5, 1.0).dominates(&o(1.0, 1.0, 1.0)));
        assert!(!o(1.0, 1.0, 1.0).dominates(&o(1.0, 1.0, 1.0)), "equal points");
        assert!(!o(2.0, 2.0, 1.0).dominates(&o(1.0, 1.0, 1.0)), "trade-off");
    }

    #[test]
    fn frontier_of_a_chain_is_its_best_point() {
        // Strictly improving chain: only the last survives.
        let objs = vec![o(1.0, 3.0, 3.0), o(2.0, 2.0, 2.0), o(3.0, 1.0, 1.0)];
        assert_eq!(pareto_indices(&objs), vec![2]);
    }

    #[test]
    fn trade_offs_are_all_kept() {
        let objs = vec![o(3.0, 3.0, 1.0), o(2.0, 2.0, 2.0), o(1.0, 1.0, 3.0)];
        assert_eq!(pareto_indices(&objs), vec![0, 1, 2]);
    }

    #[test]
    fn exact_ties_are_all_kept() {
        let objs = vec![o(2.0, 1.0, 1.0), o(2.0, 1.0, 1.0), o(1.0, 2.0, 2.0)];
        assert_eq!(pareto_indices(&objs), vec![0, 1]);
    }

    #[test]
    fn constraints_filter_before_the_frontier() {
        // The unconstrained winner busts the area budget; under the
        // budget the dominated-by-it point becomes frontier.
        let objs = vec![o(10.0, 8.0, 2.0), o(5.0, 2.0, 2.0)];
        assert_eq!(pareto_indices(&objs), vec![0, 1]);
        let budget = Constraints { max_area_pct: Some(3.0), ..Constraints::default() };
        assert_eq!(constrained_pareto(&objs, &budget), vec![1]);
        assert!(budget.is_constrained());
        assert!(!Constraints::NONE.is_constrained());
        assert!(Constraints::NONE.admits(&objs[0]));
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_indices(&[]).is_empty());
        assert!(constrained_pareto(&[], &Constraints::NONE).is_empty());
    }

    #[test]
    fn streaming_frontier_evicts_and_rejects() {
        let mut f = StreamingFrontier::new();
        assert!(f.is_empty());
        assert!(f.insert(o(1.0, 2.0, 2.0), "weak"));
        // A dominating point evicts the weak one.
        assert!(f.insert(o(2.0, 1.0, 1.0), "strong"));
        assert_eq!(f.len(), 1);
        // A dominated candidate is rejected outright...
        assert!(!f.insert(o(1.5, 1.5, 1.5), "late"));
        assert!(f.dominated(&o(1.5, 1.5, 1.5)));
        // ... an exact tie is kept alongside.
        assert!(f.insert(o(2.0, 1.0, 1.0), "tie"));
        // ... and a trade-off joins.
        assert!(f.insert(o(3.0, 5.0, 5.0), "big"));
        let mut payloads = f.into_payloads();
        payloads.sort_unstable();
        assert_eq!(payloads, vec!["big", "strong", "tie"]);
    }

    #[test]
    fn streaming_frontier_respects_constraints() {
        let budget = Constraints { max_area_pct: Some(3.0), ..Constraints::default() };
        let mut f = StreamingFrontier::new();
        assert!(!f.insert_constrained(o(10.0, 8.0, 2.0), 0usize, &budget), "over budget");
        assert!(f.insert_constrained(o(5.0, 2.0, 2.0), 1usize, &budget));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn streaming_frontier_matches_batch_extractor() {
        // A mixed cloud with chains, trade-offs and exact ties: the
        // streamed survivors must be set-equal to `constrained_pareto`.
        let objs = vec![
            o(1.0, 3.0, 3.0),
            o(2.0, 2.0, 2.0),
            o(3.0, 1.0, 1.0),
            o(3.0, 1.0, 1.0), // exact tie with the previous
            o(0.5, 0.5, 9.0),
            o(9.0, 9.0, 0.5),
        ];
        let mut f = StreamingFrontier::new();
        for (i, &ob) in objs.iter().enumerate() {
            f.insert(ob, i);
        }
        let mut streamed: Vec<usize> = f.into_payloads();
        streamed.sort_unstable();
        assert_eq!(streamed, constrained_pareto(&objs, &Constraints::NONE));
    }
}
