//! `dse --map-search`: joint mapping search over a sweep's points.
//!
//! The timing stack evaluates every point under the paper's fixed
//! weight-stationary tiling ([`ngpc::FixedTiling`]). This module runs
//! [`ng_timeloop::best_mapping`] over every distinct `(MAC array, MLP
//! layer shape)` problem a sweep visits, feeds the winners back through
//! [`ngpc::EmulationContext::eval_with_mapping`], and reports the
//! fixed-vs-searched comparison per point. Searches are memoized in the
//! [`MapMemoStore`] beside the point store, so re-runs and distributed
//! workers pay each mapspace enumeration once per model generation.
//!
//! The annotation is a *side table*: [`annotate`] never mutates the
//! evaluated points, so everything downstream of the point store — the
//! cache rows, the frontier, the plain CSV — is byte-identical with
//! `--map-search` off, and a warm re-run (100 % memo hits) reproduces
//! the cold run's annotated output byte-identically too (memo rows
//! store exact integer cycles and raw f64 energy bits).
//!
//! This is also the crate's Fig. 13 cross-validation seam: `ngpc`'s
//! tile model and `ng-timeloop`'s mapping evaluation are independent
//! implementations of the same machine, and [`MapSearchOutcome::
//! max_disagreement`] measures how far apart they land (the paper
//! reports ~7 % agreement against real Timeloop/Accelergy;
//! `--check-map-agreement` gates CI on [`AGREEMENT_BAND`]).

use std::collections::HashMap;

use ngpc::{mlp_layer_shapes, mlp_query_cycles, FixedTiling, MappingTable};

use crate::mapmemo::{MapMemoStore, MapRecord, MAP_SEARCH_BATCH};
use crate::obs_counters;
use crate::sweep::EvaluatedPoint;

/// The relative agreement band between `ngpc`'s fixed tile model and
/// `ng-timeloop`'s mapping evaluation that `--check-map-agreement`
/// enforces — the paper's Fig. 13 reports its MLP-engine model within
/// ~7 % of real Timeloop/Accelergy.
pub const AGREEMENT_BAND: f64 = 0.07;

/// Mapping-derived metrics for one evaluated point — the side table
/// `--map-search` joins onto emitters and reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapMetrics {
    /// Per-query MLP cycles under the paper's fixed tiling.
    pub fixed_mlp_cycles: f64,
    /// Per-query MLP cycles under the searched best mappings.
    pub searched_mlp_cycles: f64,
    /// Per-query MLP energy of the searched mappings, microjoules.
    pub energy_uj: f64,
    /// End-to-end speedup re-evaluated under the searched mappings.
    pub speedup: f64,
}

impl MapMetrics {
    /// Fixed-over-searched MLP cycle ratio: how much faster the
    /// searched schedule retires queries (1.0 = the fixed dataflow is
    /// already optimal, which is exactly what the cross-validation
    /// expects on power-of-two arrays).
    pub fn map_speedup(&self) -> f64 {
        self.fixed_mlp_cycles / self.searched_mlp_cycles
    }

    /// Relative disagreement between the two models on this point:
    /// `|searched/fixed - 1|`. Since the full-array tile is always in
    /// the mapspace, a searched schedule can only tie or beat the fixed
    /// one — any gap in either direction is model disagreement.
    pub fn disagreement(&self) -> f64 {
        (self.searched_mlp_cycles / self.fixed_mlp_cycles - 1.0).abs()
    }
}

/// The result of annotating one point set.
#[derive(Debug, Clone, PartialEq)]
pub struct MapSearchOutcome {
    /// One metrics row per input point, in input order.
    pub metrics: Vec<MapMetrics>,
    /// Mapping searches actually run — one per *distinct* `(MAC
    /// array, layer shape)` problem not already in the memo.
    pub evals: u64,
    /// Lookups served without a search: from the on-disk memo store
    /// or from an earlier point in the same run.
    pub memo_hits: u64,
}

impl MapSearchOutcome {
    /// The largest relative disagreement between the fixed tile model
    /// and the searched timeloop evaluation across all points (0.0 on
    /// an empty set).
    pub fn max_disagreement(&self) -> f64 {
        self.metrics.iter().map(MapMetrics::disagreement).fold(0.0, f64::max)
    }

    /// Points whose searched mapping strictly beats the fixed tiling
    /// on cycles, and the best ratio seen: `(count, best_speedup)`.
    pub fn beats_fixed(&self) -> (usize, f64) {
        let count = self.metrics.iter().filter(|m| m.map_speedup() > 1.0 + 1e-12).count();
        let best = self.metrics.iter().map(MapMetrics::map_speedup).fold(1.0, f64::max);
        (count, best)
    }

    /// One summary line for reports: agreement, band verdict, and
    /// where (if anywhere) the search beat the paper's dataflow.
    pub fn headline(&self) -> String {
        let (beats, best) = self.beats_fixed();
        format!(
            "map-search: {} search(es), {} memo hit(s); timeloop-vs-ngpc max disagreement \
             {:.2}% (band {:.0}%); searched mapping beats fixed on {beats}/{} point(s) \
             (best {best:.3}x)",
            self.evals,
            self.memo_hits,
            self.max_disagreement() * 100.0,
            AGREEMENT_BAND * 100.0,
            self.metrics.len(),
        )
    }
}

/// Annotate evaluated points with mapping-search metrics: per point,
/// search (or recall) the best mapping of every MLP layer shape on its
/// MAC array, build a [`MappingTable`], and re-evaluate the point under
/// it. Fresh searches are appended to `store` so later runs — and
/// concurrent workers sharing the store — hit the memo instead.
pub fn annotate(points: &[EvaluatedPoint], store: Option<&MapMemoStore>) -> MapSearchOutcome {
    let _span = ng_obs::span("mapsearch.annotate");
    let mut memo: HashMap<u64, MapRecord> = store.map(MapMemoStore::load_all).unwrap_or_default();
    let mut fresh: Vec<MapRecord> = Vec::new();
    let (mut evals, mut memo_hits) = (0u64, 0u64);
    let mut ctx = ngpc::EmulationContext::new();
    let metrics = points
        .iter()
        .map(|p| {
            let input = p.point.emulator_input();
            let nfp = &input.nfp;
            let mut table = MappingTable::new();
            let mut energy_uj = 0.0;
            for (rows, cols) in mlp_layer_shapes(input.app, input.encoding) {
                let key =
                    MapMemoStore::layer_key(nfp.mac_rows, nfp.mac_cols, rows as u32, cols as u32);
                let record = match memo.get(&key) {
                    Some(record) => {
                        memo_hits += 1;
                        *record
                    }
                    None => {
                        let (problem, arch) =
                            ng_timeloop::layer_problem(nfp, rows, cols, MAP_SEARCH_BATCH);
                        let result = ng_timeloop::best_mapping(
                            &problem,
                            &arch,
                            &ng_timeloop::EnergyTable::default(),
                        );
                        evals += 1;
                        let record = MapRecord {
                            mac_rows: nfp.mac_rows,
                            mac_cols: nfp.mac_cols,
                            rows: rows as u32,
                            cols: cols as u32,
                            spatial_n: result.mapping.spatial_n,
                            spatial_k: result.mapping.spatial_k,
                            weight_stationary: result.mapping.dataflow
                                == ng_timeloop::Dataflow::WeightStationary,
                            cycles: result.cost.cycles,
                            energy_uj: result.energy_uj,
                            candidates: result.candidates,
                        };
                        memo.insert(key, record);
                        fresh.push(record);
                        record
                    }
                };
                // Per-query cycles are exact: every stored cycle count
                // is `tiles * MAP_SEARCH_BATCH`.
                table.set(rows, cols, record.cycles as f64 / MAP_SEARCH_BATCH as f64);
                energy_uj += record.energy_uj / MAP_SEARCH_BATCH as f64;
            }
            let fixed_mlp_cycles = mlp_query_cycles(input.app, input.encoding, nfp, &FixedTiling);
            let searched_mlp_cycles = mlp_query_cycles(input.app, input.encoding, nfp, &table);
            let searched = ctx.eval_with_mapping(&input, &table);
            MapMetrics {
                fixed_mlp_cycles,
                searched_mlp_cycles,
                energy_uj,
                speedup: searched.speedup,
            }
        })
        .collect();
    if evals > 0 {
        obs_counters::mapsearch_evals().add(evals);
    }
    if memo_hits > 0 {
        obs_counters::mapsearch_memo_hits().add(memo_hits);
    }
    if let Some(store) = store {
        let _ = store.append(&fresh);
    }
    MapSearchOutcome { metrics, evals, memo_hits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use crate::sweep::SweepEngine;

    #[test]
    fn annotation_agrees_with_the_tile_model_and_never_loses() {
        let outcome = SweepEngine::new().without_cache().run(&SweepSpec::quick()).unwrap();
        let annotated = annotate(&outcome.points, None);
        assert_eq!(annotated.metrics.len(), outcome.points.len());
        // Even without a store, repeats within the run hit the in-run
        // memo — only distinct (arch, layer) problems are searched.
        assert!(annotated.evals > 0);
        assert!(annotated.memo_hits > 0, "quick preset repeats layer shapes across points");
        assert!(
            annotated.max_disagreement() <= AGREEMENT_BAND,
            "cross-validation outside the band: {}",
            annotated.max_disagreement()
        );
        for (m, p) in annotated.metrics.iter().zip(&outcome.points) {
            // The full-array tile is always in the mapspace, so the
            // search can only tie or beat the fixed schedule.
            assert!(m.searched_mlp_cycles <= m.fixed_mlp_cycles + 1e-9, "{m:?}");
            assert!(m.speedup >= p.speedup * (1.0 - 1e-9), "{m:?} vs {}", p.speedup);
            assert!(m.energy_uj > 0.0);
        }
    }

    #[test]
    fn searched_speedup_is_exact_under_fixed_equivalence() {
        // On power-of-two arrays the searched mapping ties the fixed
        // tiling bit-for-bit, so re-evaluation under it reproduces the
        // point's speedup exactly — the invariant that keeps
        // `--map-search` from perturbing the frontier.
        let outcome = SweepEngine::new().without_cache().run(&SweepSpec::quick()).unwrap();
        let annotated = annotate(&outcome.points, None);
        for (m, p) in annotated.metrics.iter().zip(&outcome.points) {
            if m.searched_mlp_cycles == m.fixed_mlp_cycles {
                assert_eq!(m.speedup, p.speedup, "tied mapping must reproduce the point");
            }
        }
    }
}
