//! # `dse chaos` — the seeded soak harness
//!
//! Runs N iterations of a quick-preset sweep, each under a
//! randomized-but-replayable fault schedule, and asserts after every
//! iteration that the robustness machinery actually delivered its
//! promise:
//!
//! - the run (or, for `signal`, its `dse resume` continuation)
//!   completes and its CSV is **byte-identical** to a fault-free
//!   reference run;
//! - a follow-up run backfills anything the fault destroyed, and the
//!   run after that is **100% warm** (zero misses, zero evaluations);
//! - `dse fsck --check` finds the store **clean** at the end.
//!
//! Seven fault classes are drawn from the schedule seed: `kill` and
//! `hang` (distributed workers dying / livelocking mid-slice), `torn`
//! (a crash-shaped torn shard tail), `io` (probabilistic transient
//! append failures absorbed by retries), `enospc` (storage exhaustion
//! degrading the store to its in-memory overlay), `signal` (SIGTERM
//! mid-sweep, drained and finished by `dse resume`) and `mapmemo-torn`
//! (a torn `--map-search` memo append, healed by re-search and
//! `fsck --repair`).
//!
//! ## Replayability
//!
//! Iteration `i` of `dse chaos --seed S` derives its entire schedule
//! (class and parameters) from `S + i` alone, so a failing iteration
//! replays exactly — and alone — with
//! `dse chaos --iterations 1 --seed <that iteration's seed>`; the
//! report prints the seed next to every iteration.
//!
//! Each iteration runs real `dse` child processes (the current
//! executable): a fault plan arms once per process, and half the point
//! of the soak is exercising the same process-level drain, recovery
//! and resume paths a user hits.

use std::fmt;
use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use ng_fault::splitmix64;

/// Options for [`run_soak`] — the `dse chaos` flags.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// How many fault iterations to run.
    pub iterations: usize,
    /// Base seed; iteration `i`'s schedule seed is `seed + i`.
    pub seed: u64,
    /// Scratch directory for stores/CSVs (default: a fresh directory
    /// under the system temp dir, removed when every iteration passes).
    pub scratch_dir: Option<PathBuf>,
    /// The `dse` executable to drive (default: the current executable —
    /// correct when invoked as `dse chaos`; tests pass
    /// `CARGO_BIN_EXE_dse`).
    pub exe: Option<PathBuf>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions { iterations: 5, seed: 1, scratch_dir: None, exe: None }
    }
}

/// The fault classes the soak draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A distributed worker aborts mid-slice (`worker:kill`).
    Kill,
    /// A distributed worker hangs forever (`worker:hang`), caught by
    /// the coordinator's stall detector.
    Hang,
    /// A store append leaves a torn final row (`shard:torn-tail`).
    Torn,
    /// Probabilistic transient append failures (`append:io`).
    Io,
    /// Storage exhaustion (`append:enospc`) — the degraded-overlay path.
    Enospc,
    /// SIGTERM mid-sweep (`signal:term`) — the drain + `dse resume` path.
    Signal,
    /// A `--map-search` memo append leaves a torn final row
    /// (`mapmemo:torn-tail`) — the run is unaffected (its in-memory
    /// table holds the values), the next run re-searches the gap, and
    /// `fsck --repair` heals the shard.
    MapMemoTorn,
}

impl FaultClass {
    const ALL: [FaultClass; 7] = [
        FaultClass::Kill,
        FaultClass::Hang,
        FaultClass::Torn,
        FaultClass::Io,
        FaultClass::Enospc,
        FaultClass::Signal,
        FaultClass::MapMemoTorn,
    ];

    /// Short name used in the outcome table.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Kill => "kill",
            FaultClass::Hang => "hang",
            FaultClass::Torn => "torn-tail",
            FaultClass::Io => "io",
            FaultClass::Enospc => "enospc",
            FaultClass::Signal => "signal",
            FaultClass::MapMemoTorn => "mapmemo-torn",
        }
    }
}

/// One iteration's outcome.
#[derive(Debug, Clone)]
pub struct IterationOutcome {
    /// 1-based iteration number within this soak.
    pub index: usize,
    /// The seed that replays this iteration alone
    /// (`dse chaos --iterations 1 --seed <this>`).
    pub schedule_seed: u64,
    /// The fault class the seed drew.
    pub class: FaultClass,
    /// The exact `NG_DSE_FAULTS` plan the faulted child ran under.
    pub plan: String,
    /// Whether every invariant held.
    pub passed: bool,
    /// What passed, or which invariant broke and how.
    pub detail: String,
}

/// The soak's result: every iteration, plus the per-class rollup the
/// `Display` impl renders.
#[derive(Debug)]
pub struct ChaosReport {
    /// Base seed the soak ran with.
    pub base_seed: u64,
    /// Scratch directory the iterations ran in (kept on failure).
    pub scratch: PathBuf,
    /// Per-iteration outcomes, in order.
    pub iterations: Vec<IterationOutcome>,
}

impl ChaosReport {
    /// The iterations whose invariants broke.
    pub fn failed_iterations(&self) -> Vec<&IterationOutcome> {
        self.iterations.iter().filter(|i| !i.passed).collect()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos soak: {} iteration(s), base seed {}",
            self.iterations.len(),
            self.base_seed
        )?;
        let rows: Vec<Vec<String>> = self
            .iterations
            .iter()
            .map(|it| {
                vec![
                    it.index.to_string(),
                    it.schedule_seed.to_string(),
                    it.class.name().to_string(),
                    it.plan.clone(),
                    if it.passed { "pass".to_string() } else { "FAIL".to_string() },
                ]
            })
            .collect();
        f.write_str(&crate::report::render_table(
            &["iter", "seed", "class", "fault plan", "result"],
            &rows,
        ))?;
        writeln!(f, "\nper-class outcomes:")?;
        let class_rows: Vec<Vec<String>> = FaultClass::ALL
            .iter()
            .filter_map(|c| {
                let runs: Vec<&IterationOutcome> =
                    self.iterations.iter().filter(|i| i.class == *c).collect();
                if runs.is_empty() {
                    return None;
                }
                let passed = runs.iter().filter(|i| i.passed).count();
                Some(vec![
                    c.name().to_string(),
                    runs.len().to_string(),
                    passed.to_string(),
                    (runs.len() - passed).to_string(),
                ])
            })
            .collect();
        f.write_str(&crate::report::render_table(&["class", "runs", "pass", "fail"], &class_rows))?;
        for it in self.failed_iterations() {
            writeln!(
                f,
                "iteration {} (seed {}, {}): {}",
                it.index,
                it.schedule_seed,
                it.class.name(),
                it.detail
            )?;
        }
        Ok(())
    }
}

/// A finished (or killed-on-timeout) child `dse` process.
struct ChildRun {
    exit: Option<i32>,
    stdout: String,
    stderr: String,
    timed_out: bool,
}

impl ChildRun {
    fn describe(&self) -> String {
        let code = match (self.timed_out, self.exit) {
            (true, _) => "timed out".to_string(),
            (false, Some(c)) => format!("exit {c}"),
            (false, None) => "killed by signal".to_string(),
        };
        let tail = |s: &str| -> String {
            let lines: Vec<&str> = s.lines().rev().take(3).collect();
            lines.into_iter().rev().collect::<Vec<_>>().join(" | ")
        };
        format!("{code}; stderr: {}", tail(&self.stderr))
    }
}

/// How long one child `dse` process may run before the soak kills it
/// and fails the iteration. Generous: a quick-preset sweep is
/// milliseconds, and even the hang iteration's stall-detection
/// round-trips are bounded in single-digit seconds.
const CHILD_TIMEOUT: Duration = Duration::from_secs(180);

/// Run the `dse` executable with `args`, a scrubbed environment
/// (`extra_env` on top), and a hard timeout.
fn run_child(
    exe: &Path,
    args: &[&str],
    extra_env: &[(&str, &str)],
    timeout: Duration,
) -> Result<ChildRun, String> {
    let mut cmd = Command::new(exe);
    cmd.args(args)
        // A chaos child's faults and trace are this harness's to
        // configure — never inherited from the invoking shell.
        .env_remove(ng_fault::FAULTS_ENV)
        .env_remove(ng_obs::sink::TRACE_ENV)
        .env_remove(crate::distrib::STALL_TIMEOUT_ENV)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().map_err(|e| format!("chaos: spawn {}: {e}", exe.display()))?;
    let started = Instant::now();
    let mut timed_out = false;
    let status = loop {
        match child.try_wait().map_err(|e| format!("chaos: wait: {e}"))? {
            Some(status) => break status,
            None if started.elapsed() > timeout => {
                timed_out = true;
                let _ = child.kill();
                break child.wait().map_err(|e| format!("chaos: wait after kill: {e}"))?;
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    // A quick-preset child's output is far below the pipe buffer, so
    // reading after exit cannot deadlock.
    let mut stdout = String::new();
    let mut stderr = String::new();
    if let Some(mut s) = child.stdout.take() {
        let _ = s.read_to_string(&mut stdout);
    }
    if let Some(mut s) = child.stderr.take() {
        let _ = s.read_to_string(&mut stderr);
    }
    Ok(ChildRun { exit: status.code(), stdout, stderr, timed_out })
}

/// One iteration's derived schedule: the fault class, the plan string,
/// and whether the faulted run is distributed.
struct Schedule {
    class: FaultClass,
    plan: String,
    distributed: bool,
    /// Run every phase with `--map-search` (and byte-compare against
    /// the map-search reference CSV instead of the plain one).
    map_search: bool,
    /// Extra env for the faulted child (stall timeout for `hang`).
    env: Vec<(&'static str, String)>,
    /// Expected exit of the faulted child (`signal` drains to 130).
    expect_exit: i32,
}

/// Derive iteration `i`'s schedule from its seed alone — the whole
/// point: `chaos --iterations 1 --seed S` replays any iteration whose
/// printed seed is `S`.
fn schedule(seed: u64) -> Schedule {
    let s0 = splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let s1 = splitmix64(s0);
    let s2 = splitmix64(s1);
    let class = FaultClass::ALL[(s0 % FaultClass::ALL.len() as u64) as usize];
    match class {
        // Workers evaluate ~8 of the quick preset's 16 points each, so
        // keep the death tick in 2..=5 — it must actually fire.
        FaultClass::Kill => Schedule {
            class,
            plan: format!("worker:kill@point={}", 2 + s1 % 4),
            distributed: true,
            map_search: false,
            env: Vec::new(),
            expect_exit: 0,
        },
        // A short stall window keeps the hang iteration's
        // detect-kill-recover loop in seconds, not the default 10s.
        FaultClass::Hang => Schedule {
            class,
            plan: format!("worker:hang@point={}", 2 + s1 % 4),
            distributed: true,
            map_search: false,
            env: vec![(crate::distrib::STALL_TIMEOUT_ENV, "1".to_string())],
            expect_exit: 0,
        },
        FaultClass::Torn => Schedule {
            class,
            plan: format!("shard:torn-tail@n={}", 1 + s1 % 2),
            distributed: false,
            map_search: false,
            env: Vec::new(),
            expect_exit: 0,
        },
        // p ≤ 0.3: four retries absorb the flakes, so the run must
        // still complete (a seed that exhausts retries is a genuine
        // soak failure worth seeing).
        FaultClass::Io => Schedule {
            class,
            plan: format!("seed={};append:io@p=0.{}", seed, 1 + s1 % 3),
            distributed: false,
            map_search: false,
            env: Vec::new(),
            expect_exit: 0,
        },
        // Sometimes every append fails (uncapped), sometimes only the
        // first few divert — both must degrade, not die.
        FaultClass::Enospc => Schedule {
            class,
            plan: if s2.is_multiple_of(2) {
                "append:enospc".to_string()
            } else {
                format!("append:enospc@n={}", 2 + s2 % 6)
            },
            distributed: false,
            map_search: false,
            env: Vec::new(),
            expect_exit: 0,
        },
        // The quick preset has 16 fresh evals; a tick in 2..=11 always
        // fires with work left, so the drain always leaves a resumable
        // manifest.
        FaultClass::Signal => Schedule {
            class,
            plan: format!("signal:term@point={}", 2 + s1 % 10),
            distributed: false,
            map_search: false,
            env: Vec::new(),
            expect_exit: crate::distrib::EXIT_INTERRUPTED,
        },
        // The memo appends once, post-merge, so tick 1 always fires;
        // tick 2 exercises the second shard touched (when one exists).
        FaultClass::MapMemoTorn => Schedule {
            class,
            plan: format!("mapmemo:torn-tail@n={}", 1 + s1 % 2),
            distributed: false,
            map_search: true,
            env: Vec::new(),
            expect_exit: 0,
        },
    }
}

/// Byte-compare a produced CSV against the fault-free reference.
fn csv_parity(produced: &Path, reference: &[u8]) -> Result<(), String> {
    let bytes =
        fs::read(produced).map_err(|e| format!("csv {} unreadable: {e}", produced.display()))?;
    if bytes == reference {
        Ok(())
    } else {
        Err(format!(
            "csv {} differs from the fault-free reference ({} vs {} bytes)",
            produced.display(),
            bytes.len(),
            reference.len()
        ))
    }
}

/// Run one iteration; `Ok(detail)` when every invariant held,
/// `Err(detail)` naming the first one that broke.
fn run_iteration(
    exe: &Path,
    iter_dir: &Path,
    sched: &Schedule,
    plain_reference_csv: &[u8],
    map_reference_csv: &[u8],
) -> Result<String, String> {
    fs::create_dir_all(iter_dir).map_err(|e| format!("create {}: {e}", iter_dir.display()))?;
    let reference_csv = if sched.map_search { map_reference_csv } else { plain_reference_csv };
    let store = iter_dir.join("store");
    let csv = iter_dir.join("out.csv");
    let store_s = store.display().to_string();
    let csv_s = csv.display().to_string();

    // Phase 1: the faulted run.
    let mut args = vec![
        "--preset",
        "quick",
        "--cache-dir",
        store_s.as_str(),
        "--csv",
        csv_s.as_str(),
        "--threads",
        "2",
        "--quiet",
    ];
    if sched.distributed {
        args.extend_from_slice(&["--workers", "2"]);
    }
    if sched.map_search {
        args.push("--map-search");
    }
    let mut env: Vec<(&str, &str)> = vec![(ng_fault::FAULTS_ENV, sched.plan.as_str())];
    for (k, v) in &sched.env {
        env.push((k, v.as_str()));
    }
    let faulted = run_child(exe, &args, &env, CHILD_TIMEOUT)?;
    if faulted.timed_out || faulted.exit != Some(sched.expect_exit) {
        return Err(format!(
            "faulted run: expected exit {}, got {}",
            sched.expect_exit,
            faulted.describe()
        ));
    }
    match sched.class {
        // The degradation path must have announced itself — a plan
        // that silently injected nothing proves nothing.
        FaultClass::Enospc if !faulted.stderr.contains("degrading to an in-memory overlay") => {
            return Err(format!(
                "faulted run: no degradation warning on stderr ({})",
                faulted.describe()
            ));
        }
        FaultClass::Signal => {
            // The drain must have finished the run via `dse resume`,
            // byte-identically.
            let resume = run_child(
                exe,
                &["resume", "--cache-dir", store_s.as_str(), "--quiet"],
                &[],
                CHILD_TIMEOUT,
            )?;
            if resume.timed_out || resume.exit != Some(0) {
                return Err(format!("dse resume: {}", resume.describe()));
            }
        }
        _ => {}
    }
    // Every path that reaches here has produced the CSV: completed
    // faulted runs directly, the signal iteration via its resume.
    csv_parity(&csv, reference_csv).map_err(|e| format!("after faulted run: {e}"))?;

    // Phase 2: a fault-free backfill run re-evaluates whatever the
    // fault destroyed (torn rows, overlay-diverted rows, torn memo
    // rows) and heals the store in passing.
    let mut plain = vec![
        "--preset",
        "quick",
        "--cache-dir",
        store_s.as_str(),
        "--csv",
        csv_s.as_str(),
        "--cache-stats",
        "--threads",
        "2",
        "--quiet",
    ];
    if sched.map_search {
        plain.push("--map-search");
    }
    let backfill = run_child(exe, &plain, &[], CHILD_TIMEOUT)?;
    if backfill.timed_out || backfill.exit != Some(0) {
        return Err(format!("backfill run: {}", backfill.describe()));
    }
    csv_parity(&csv, reference_csv).map_err(|e| format!("after backfill run: {e}"))?;

    // Phase 3: the run after that must be 100% warm — the store now
    // holds every point.
    let warm = run_child(exe, &plain, &[], CHILD_TIMEOUT)?;
    if warm.timed_out || warm.exit != Some(0) {
        return Err(format!("warm run: {}", warm.describe()));
    }
    if !warm.stdout.contains(" 0 misses, 0 evaluated (") {
        let stats = warm
            .stdout
            .lines()
            .find(|l| l.starts_with("cache stats:"))
            .unwrap_or("<no cache stats line>");
        return Err(format!("warm run was not 100% warm: {stats}"));
    }
    csv_parity(&csv, reference_csv).map_err(|e| format!("after warm run: {e}"))?;

    // Phase 4: the store doctor must be able to leave the store clean.
    // Repair first — a torn-tail fault leaves an extra torn line that
    // loses no data (every point still serves, as the warm run just
    // proved), so nothing ever rewrites that shard on its own; healing
    // it is exactly what `dse fsck --repair` is for. On an undamaged
    // store the repair is a no-op.
    let repair =
        run_child(exe, &["fsck", "--cache-dir", store_s.as_str(), "--repair"], &[], CHILD_TIMEOUT)?;
    if repair.timed_out || repair.exit != Some(0) {
        return Err(format!("fsck --repair: {}", repair.describe()));
    }
    let fsck =
        run_child(exe, &["fsck", "--cache-dir", store_s.as_str(), "--check"], &[], CHILD_TIMEOUT)?;
    if fsck.timed_out || fsck.exit != Some(0) {
        return Err(format!("fsck --check after repair: {}", fsck.describe()));
    }

    Ok("recovered; csv parity; warm re-run; store fsck-clean".to_string())
}

/// Run the soak. Returns the report (which the caller renders and
/// turns into an exit code); `Err` only for harness-level failures —
/// the reference run failing, the scratch dir being unusable.
pub fn run_soak(opts: &ChaosOptions) -> Result<ChaosReport, String> {
    let exe = match &opts.exe {
        Some(exe) => exe.clone(),
        None => std::env::current_exe().map_err(|e| format!("chaos: current_exe: {e}"))?,
    };
    let scratch = match &opts.scratch_dir {
        Some(dir) => dir.clone(),
        None => {
            std::env::temp_dir().join(format!("dse-chaos-{}-{}", std::process::id(), opts.seed))
        }
    };
    fs::create_dir_all(&scratch)
        .map_err(|e| format!("chaos: create {}: {e}", scratch.display()))?;

    // The fault-free reference everything is byte-compared against.
    let ref_store = scratch.join("reference/store");
    let ref_csv = scratch.join("reference/out.csv");
    let reference = run_child(
        &exe,
        &[
            "--preset",
            "quick",
            "--cache-dir",
            &ref_store.display().to_string(),
            "--csv",
            &ref_csv.display().to_string(),
            "--threads",
            "2",
            "--quiet",
        ],
        &[],
        CHILD_TIMEOUT,
    )?;
    if reference.timed_out || reference.exit != Some(0) {
        return Err(format!("chaos: fault-free reference run failed: {}", reference.describe()));
    }
    let reference_csv = fs::read(&ref_csv)
        .map_err(|e| format!("chaos: reference csv {}: {e}", ref_csv.display()))?;
    // A second, `--map-search` reference for the mapmemo iterations —
    // their CSV carries the mapping columns, so it byte-compares
    // against this one. Reusing the reference store makes the point
    // evaluations warm; only the mapping search is new work.
    let ref_map_csv = scratch.join("reference/out-map.csv");
    let map_reference = run_child(
        &exe,
        &[
            "--preset",
            "quick",
            "--cache-dir",
            &ref_store.display().to_string(),
            "--csv",
            &ref_map_csv.display().to_string(),
            "--map-search",
            "--threads",
            "2",
            "--quiet",
        ],
        &[],
        CHILD_TIMEOUT,
    )?;
    if map_reference.timed_out || map_reference.exit != Some(0) {
        return Err(format!(
            "chaos: fault-free --map-search reference run failed: {}",
            map_reference.describe()
        ));
    }
    let map_reference_csv = fs::read(&ref_map_csv)
        .map_err(|e| format!("chaos: reference csv {}: {e}", ref_map_csv.display()))?;

    let mut iterations = Vec::with_capacity(opts.iterations);
    for i in 0..opts.iterations {
        let schedule_seed = opts.seed.wrapping_add(i as u64);
        let sched = schedule(schedule_seed);
        eprintln!(
            "chaos: iteration {}/{} (seed {schedule_seed}): {} — {}",
            i + 1,
            opts.iterations,
            sched.class.name(),
            sched.plan,
        );
        let iter_dir = scratch.join(format!("iter-{:02}-{}", i + 1, sched.class.name()));
        let (passed, detail) =
            match run_iteration(&exe, &iter_dir, &sched, &reference_csv, &map_reference_csv) {
                Ok(detail) => (true, detail),
                Err(detail) => (false, detail),
            };
        if passed {
            // Keep the scratch of failing iterations for post-mortems;
            // passing ones are just disk.
            let _ = fs::remove_dir_all(&iter_dir);
        } else {
            eprintln!("chaos: iteration {} FAILED: {detail} (kept {})", i + 1, iter_dir.display());
        }
        iterations.push(IterationOutcome {
            index: i + 1,
            schedule_seed,
            class: sched.class,
            plan: sched.plan,
            passed,
            detail,
        });
    }

    if iterations.iter().all(|i| i.passed) {
        let _ = fs::remove_dir_all(&scratch);
    }
    Ok(ChaosReport { base_seed: opts.seed, scratch, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        for seed in 0..64 {
            let a = schedule(seed);
            let b = schedule(seed);
            assert_eq!(a.class, b.class);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.distributed, b.distributed);
            assert_eq!(a.expect_exit, b.expect_exit);
        }
    }

    #[test]
    fn seeds_cover_every_class_and_every_plan_parses() {
        let mut seen = [false; 7];
        for seed in 0..64 {
            let s = schedule(seed);
            seen[FaultClass::ALL.iter().position(|c| *c == s.class).unwrap()] = true;
            // A typo'd schedule would inject nothing and pass vacuously.
            ng_fault::FaultPlan::parse(&s.plan).unwrap();
        }
        assert!(seen.iter().all(|s| *s), "64 seeds must draw every class: {seen:?}");
    }

    #[test]
    fn report_renders_table_and_failures() {
        let report = ChaosReport {
            base_seed: 9,
            scratch: PathBuf::from("/tmp/x"),
            iterations: vec![
                IterationOutcome {
                    index: 1,
                    schedule_seed: 9,
                    class: FaultClass::Torn,
                    plan: "shard:torn-tail@n=1".to_string(),
                    passed: true,
                    detail: "ok".to_string(),
                },
                IterationOutcome {
                    index: 2,
                    schedule_seed: 10,
                    class: FaultClass::Signal,
                    plan: "signal:term@point=4".to_string(),
                    passed: false,
                    detail: "dse resume: exit 2".to_string(),
                },
            ],
        };
        let text = report.to_string();
        assert!(text.contains("torn-tail"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("per-class outcomes:"));
        assert!(text.contains("dse resume: exit 2"));
        assert_eq!(report.failed_iterations().len(), 1);
    }
}
