//! The mapping-memo store behind `dse --map-search`.
//!
//! A mapping search ([`ng_timeloop::best_mapping`]) enumerates the full
//! mapspace of one `(MAC array, layer shape)` problem — cheap once,
//! wasteful when every sweep, worker process and re-run repeats it for
//! the same handful of layer shapes. This store memoizes the winning
//! mapping per problem with the same on-disk discipline as the point
//! store ([`crate::cache`]): a generation directory keyed by
//! `(MODEL_VERSION, model fingerprint)`, [`SHARD_COUNT`] locked-append
//! CSV shards as the write-ahead tail, and a compacted base generation
//! (`base-NNNNNN.csv`, checksummed) the tail overlays. Distributed
//! workers share searches through it exactly like they share point
//! evaluations.
//!
//! ## Key
//!
//! [`MapMemoStore::layer_key`] hashes only `(mac_rows, mac_cols, layer
//! rows, layer cols)` under the generation's model fingerprint. That is
//! deliberate: a mapping's cycle count and energy depend on nothing
//! else — clock cancels out of cycle counts, and the engine's SRAM
//! provisioning follows the MAC dimensions through the floorplan — so
//! two architectures differing only in clock, SRAM or lane axes share
//! one memo row per layer shape.
//!
//! ## Robustness
//!
//! The same failure model as the point store, at memo stakes (a lost
//! row re-searches, it never corrupts results):
//!
//! * appends hold the shard's exclusive advisory lock (header-once,
//!   torn-tail heal, `ng_fault::with_retries` backoff);
//! * `mapmemo:torn-tail` ([`ng_fault::take_mapmemo_torn_tail`]) tears
//!   an append mid-row the way a killed writer would — readers skip the
//!   torn row (counted into `mapmemo.rows_skipped`) and `dse fsck`
//!   names and repairs it;
//! * a persistent capacity error drops the rows with one warning — the
//!   in-process [`ngpc::MappingTable`] already holds the values, so the
//!   run's output is unaffected.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Once;

use crate::obs_counters;
use crate::{model_fingerprint, MODEL_VERSION};

/// Number of shard files per memo generation (same fan-out as the
/// point store: rows are distributed by the top nibble of their key).
pub const SHARD_COUNT: usize = crate::cache::SHARD_COUNT;

/// The canonical query batch every memoized search is evaluated at.
/// Cycle counts scale linearly in the batch (one query streams per
/// cycle per tile), so one batch size serves every caller; per-query
/// cycles are `cycles / MAP_SEARCH_BATCH`, exact because every stored
/// cycle count is a multiple of the batch.
pub const MAP_SEARCH_BATCH: u64 = 4096;

/// One memoized mapping-search result: the problem's identity, the
/// winning mapping and its cost at [`MAP_SEARCH_BATCH`] queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapRecord {
    /// MAC array rows of the engine searched.
    pub mac_rows: u32,
    /// MAC array columns of the engine searched.
    pub mac_cols: u32,
    /// Layer weight-matrix rows (output neurons).
    pub rows: u32,
    /// Layer weight-matrix columns (input neurons).
    pub cols: u32,
    /// Winning spatial tile of the output-neuron dimension.
    pub spatial_n: u64,
    /// Winning spatial tile of the input-neuron dimension.
    pub spatial_k: u64,
    /// Whether the winning dataflow is weight-stationary.
    pub weight_stationary: bool,
    /// Total cycles at [`MAP_SEARCH_BATCH`] queries.
    pub cycles: u64,
    /// Total energy at [`MAP_SEARCH_BATCH`] queries, microjoules.
    pub energy_uj: f64,
    /// Mapspace candidates the search evaluated.
    pub candidates: u32,
}

impl MapRecord {
    /// This record's store key (see the module docs for why only the
    /// array and layer dimensions enter it).
    pub fn key(&self) -> u64 {
        MapMemoStore::layer_key(self.mac_rows, self.mac_cols, self.rows, self.cols)
    }

    /// Serialize the payload (everything after the key column). The
    /// energy is stored as raw f64 bits so a warm run reproduces a cold
    /// run's report byte-identically.
    pub fn to_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{:016x},{}",
            self.mac_rows,
            self.mac_cols,
            self.rows,
            self.cols,
            self.spatial_n,
            self.spatial_k,
            if self.weight_stationary { "ws" } else { "os" },
            self.cycles,
            self.energy_uj.to_bits(),
            self.candidates,
        )
    }

    /// Parse a payload serialized by [`MapRecord::to_row`].
    pub fn from_row(row: &str) -> Result<MapRecord, String> {
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 10 {
            return Err(format!("mapmemo row has {} fields, expected 10", fields.len()));
        }
        let int = |i: usize| -> Result<u64, String> {
            fields[i].parse().map_err(|_| format!("mapmemo field {i} `{}` not a number", fields[i]))
        };
        let weight_stationary = match fields[6] {
            "ws" => true,
            "os" => false,
            other => return Err(format!("mapmemo dataflow `{other}` is neither ws nor os")),
        };
        Ok(MapRecord {
            mac_rows: int(0)? as u32,
            mac_cols: int(1)? as u32,
            rows: int(2)? as u32,
            cols: int(3)? as u32,
            spatial_n: int(4)?,
            spatial_k: int(5)?,
            weight_stationary,
            cycles: int(7)?,
            energy_uj: f64::from_bits(
                u64::from_str_radix(fields[8], 16)
                    .map_err(|_| format!("mapmemo energy `{}` not hex bits", fields[8]))?,
            ),
            candidates: int(9)? as u32,
        })
    }
}

/// Parse one memo shard (or base body) text into `(key, record)` rows
/// in file order plus the count of skipped data lines — the same
/// lenient contract as the point store's `parse_shard_text`: comments,
/// headers, torn lines and rows whose dimensions no longer hash to
/// their stated key are skipped, never fatal.
pub(crate) fn parse_memo_text(text: &str) -> (Vec<(u64, MapRecord)>, u64) {
    let mut rows = Vec::new();
    let mut skipped = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("key,") {
            continue;
        }
        let parsed = line
            .split_once(',')
            .and_then(|(key_hex, row)| {
                Some((u64::from_str_radix(key_hex, 16).ok()?, MapRecord::from_row(row).ok()?))
            })
            .filter(|(stated, record)| record.key() == *stated);
        match parsed {
            Some(row) => rows.push(row),
            None => skipped += 1,
        }
    }
    (rows, skipped)
}

/// One snapshot of the memo store's two read layers — the mapping half
/// of `dse --cache-stats`, mirroring [`crate::cache::StoreStats`].
#[derive(Debug, Clone, Default)]
pub struct MapMemoStats {
    /// `(rows, bytes)` per CSV shard of the live tail.
    pub shards: Vec<(usize, u64)>,
    /// The compacted base, if one exists: `(seq, rows, bytes)`.
    pub base: Option<(u64, usize, u64)>,
}

impl MapMemoStats {
    /// Total live CSV tail rows across shards.
    pub fn tail_rows(&self) -> usize {
        self.shards.iter().map(|(rows, _)| rows).sum()
    }

    /// Total live CSV tail bytes across shards.
    pub fn tail_bytes(&self) -> u64 {
        self.shards.iter().map(|(_, bytes)| bytes).sum()
    }
}

/// What one memo compaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapMemoCompactReport {
    /// Rows folded into the new base (`None` when there was nothing to
    /// fold and no base was written).
    pub rows: Option<usize>,
    /// The new base's sequence number, when one was written.
    pub seq: Option<u64>,
}

/// A directory of memoized mapping-search results, rooted at the same
/// cache root as the point store (the memo generation lives *inside*
/// the point store's generation directory, so one `--cache-dir` governs
/// both).
#[derive(Debug, Clone)]
pub struct MapMemoStore {
    dir: PathBuf,
}

impl MapMemoStore {
    /// A memo store rooted at the cache root `dir` (created lazily).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        MapMemoStore { dir: dir.into() }
    }

    /// The memo key of one `(MAC array, layer shape)` problem under the
    /// current models.
    pub fn layer_key(mac_rows: u32, mac_cols: u32, rows: u32, cols: u32) -> u64 {
        ng_neural::math::fnv1a64(&format!(
            "mapmemo;{MODEL_VERSION};{:016x};mrows={mac_rows};mcols={mac_cols};\
             rows={rows};cols={cols}",
            model_fingerprint(),
        ))
    }

    /// The shard index a key lives in (its top nibble).
    pub fn shard_of(key: u64) -> usize {
        (key >> 60) as usize
    }

    /// The memo generation directory: `mapmemo/` inside the point
    /// store's `(MODEL_VERSION, fingerprint)` generation, so model
    /// drift retires both stores together.
    pub fn store_dir(&self) -> PathBuf {
        self.dir.join(format!("{MODEL_VERSION}-{:016x}", model_fingerprint())).join("mapmemo")
    }

    /// The shard file a key lives in.
    pub fn shard_path(&self, key: u64) -> PathBuf {
        self.store_dir().join(format!("shard-{:x}.csv", Self::shard_of(key)))
    }

    pub(crate) fn base_files(store_dir: &Path) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = fs::read_dir(store_dir) else { return Vec::new() };
        let mut out: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().to_str()?.to_string();
                let seq = name.strip_prefix("base-")?.strip_suffix(".csv")?.parse::<u64>().ok()?;
                Some((seq, e.path()))
            })
            .collect();
        out.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq)); // newest first
        out
    }

    /// Read and verify one base file: `Some(rows)` when the header's
    /// row count and checksum match the body, `None` otherwise.
    pub(crate) fn read_base(path: &Path) -> Option<Vec<(u64, MapRecord)>> {
        let text = fs::read_to_string(path).ok()?;
        let (header, body) = text.split_once('\n')?;
        let mut declared_rows: Option<usize> = None;
        let mut declared_sum: Option<u64> = None;
        for part in header.trim_start_matches('#').split('|').map(str::trim) {
            if let Some(v) = part.strip_prefix("rows ") {
                declared_rows = v.trim().parse().ok();
            } else if let Some(v) = part.strip_prefix("sum ") {
                declared_sum = u64::from_str_radix(v.trim(), 16).ok();
            }
        }
        if declared_sum != Some(ng_neural::math::fnv1a64(body)) {
            return None;
        }
        let (rows, skipped) = parse_memo_text(body);
        (skipped == 0 && declared_rows == Some(rows.len())).then_some(rows)
    }

    /// Load both layers into one map (tail over base). Torn or corrupt
    /// tail rows are counted into `mapmemo.rows_skipped` and skipped —
    /// those problems simply re-search.
    pub fn load_all(&self) -> HashMap<u64, MapRecord> {
        let store_dir = self.store_dir();
        let mut out: HashMap<u64, MapRecord> = HashMap::new();
        for (_, path) in Self::base_files(&store_dir) {
            if let Some(rows) = Self::read_base(&path) {
                out.extend(rows);
                break; // newest valid base wins; older ones are dead weight
            }
        }
        let mut skipped = 0u64;
        for shard in 0..SHARD_COUNT {
            let path = store_dir.join(format!("shard-{shard:x}.csv"));
            let Ok(text) = fs::read_to_string(&path) else { continue };
            let (rows, s) = parse_memo_text(&text);
            skipped += s;
            out.extend(rows);
        }
        if skipped > 0 {
            obs_counters::mapmemo_rows_skipped().add(skipped);
        }
        out
    }

    /// Append freshly searched records to their shards under the same
    /// locked-append discipline as the point store. A persistent
    /// capacity error drops the rows with one warning instead of
    /// failing the run — the caller's in-memory table already holds the
    /// values, so only the *next* run's warm-hit ratio suffers.
    pub fn append(&self, records: &[MapRecord]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let dir = self.store_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            if !ng_fault::is_exhaustion(&e) {
                return Err(e);
            }
            Self::warn_degraded(&e, records.len());
            return Ok(());
        }
        let mut by_shard: Vec<(String, u64)> = vec![(String::new(), 0); SHARD_COUNT];
        for r in records {
            let key = r.key();
            let (buf, rows) = &mut by_shard[Self::shard_of(key)];
            buf.push_str(&format!("{key:016x},{}\n", r.to_row()));
            *rows += 1;
        }
        for (shard, (body, rows)) in by_shard.iter().enumerate() {
            if body.is_empty() {
                continue;
            }
            let path = dir.join(format!("shard-{shard:x}.csv"));
            let (result, _retries) =
                ng_fault::with_retries("mapmemo:append", || Self::append_shard(&path, body, *rows));
            match result {
                Ok(()) => {}
                Err(e) if ng_fault::is_exhaustion(&e) => Self::warn_degraded(&e, *rows as usize),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn warn_degraded(cause: &io::Error, rows: usize) {
        static WARNED: Once = Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "dse: mapping-memo append failed ({cause}); {rows} memo row(s) dropped — \
                 this run is unaffected, the next one re-searches them"
            );
        });
    }

    /// One locked shard append: length probe, header creation, torn
    /// tail heal and row write under the shard's exclusive advisory
    /// lock — the point store's critical section, with the
    /// `mapmemo:torn-tail` fault hook in place of `shard:torn-tail`.
    fn append_shard(path: &Path, body: &str, rows: u64) -> io::Result<()> {
        let lock_started = std::time::Instant::now();
        let file = loop {
            let file = fs::OpenOptions::new().read(true).create(true).append(true).open(path)?;
            if let Err(e) = file.lock() {
                if e.kind() != io::ErrorKind::Unsupported {
                    return Err(e);
                }
            }
            // `fsck --repair` (and memo compaction) replace shards by
            // tmp+rename under the old inode's lock; re-check we hold
            // the live file, exactly like the point store.
            if !Self::same_inode(&file, path) {
                continue;
            }
            break file;
        };
        let mut file = file;
        obs_counters::store_lock_wait_us().add(lock_started.elapsed().as_micros() as u64);
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(
                format!(
                    "# ng-dse mapping memo | model {MODEL_VERSION} | fingerprint {:016x}\n",
                    model_fingerprint()
                )
                .as_bytes(),
            )?;
        } else {
            use std::io::{Read, Seek, SeekFrom};
            let mut last = [0u8; 1];
            file.seek(SeekFrom::Start(len - 1))?;
            file.read_exact(&mut last)?;
            if last != [b'\n'] {
                file.write_all(b"\n")?;
                obs_counters::store_tail_heals().incr();
            }
        }
        if ng_fault::take_mapmemo_torn_tail() {
            // A writer killed mid-`write_all`: the body lands with its
            // final row cut in half, and the caller believes it
            // succeeded. Readers skip the torn row; `dse fsck` repairs.
            let data = body.strip_suffix('\n').unwrap_or(body);
            let last_start = data.rfind('\n').map_or(0, |i| i + 1);
            let torn_end = last_start + (data.len() - last_start) / 2;
            file.write_all(&body.as_bytes()[..torn_end.max(1)])?;
            obs_counters::mapmemo_rows_appended().add(rows.saturating_sub(1));
            return Ok(());
        }
        file.write_all(body.as_bytes())?;
        obs_counters::mapmemo_rows_appended().add(rows);
        Ok(())
    }

    #[cfg(unix)]
    fn same_inode(file: &fs::File, path: &Path) -> bool {
        use std::os::unix::fs::MetadataExt;
        match (file.metadata(), fs::metadata(path)) {
            (Ok(held), Ok(live)) => held.ino() == live.ino() && held.dev() == live.dev(),
            _ => false,
        }
    }

    #[cfg(not(unix))]
    fn same_inode(_file: &fs::File, _path: &Path) -> bool {
        true
    }

    /// Per-shard and base stats in one pass — the `--cache-stats`
    /// backing data.
    pub fn store_stats(&self) -> MapMemoStats {
        let store_dir = self.store_dir();
        let shards = (0..SHARD_COUNT)
            .map(|shard| {
                let path = store_dir.join(format!("shard-{shard:x}.csv"));
                let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let rows = fs::read_to_string(&path)
                    .map(|text| parse_memo_text(&text).0.len())
                    .unwrap_or(0);
                (rows, bytes)
            })
            .collect();
        let base = Self::base_files(&store_dir).into_iter().find_map(|(seq, path)| {
            let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            Self::read_base(&path).map(|rows| (seq, rows.len(), bytes))
        });
        MapMemoStats { shards, base }
    }

    /// Fold the live CSV tail (and any existing base) into a fresh
    /// checksummed base generation, then drop the folded tail and the
    /// superseded base — the memo analogue of `dse compact`. A run
    /// against a compacted store serves every memo hit from one file.
    pub fn compact(&self) -> io::Result<MapMemoCompactReport> {
        let store_dir = self.store_dir();
        if !store_dir.exists() {
            return Ok(MapMemoCompactReport { rows: None, seq: None });
        }
        let all = self.load_all();
        if all.is_empty() {
            return Ok(MapMemoCompactReport { rows: None, seq: None });
        }
        let old_bases = Self::base_files(&store_dir);
        let seq = old_bases.first().map_or(1, |(seq, _)| seq + 1);
        let mut rows: Vec<(u64, MapRecord)> = all.into_iter().collect();
        rows.sort_by_key(|(key, _)| *key);
        let mut body = String::new();
        for (key, record) in &rows {
            body.push_str(&format!("{key:016x},{}\n", record.to_row()));
        }
        let header = format!(
            "# ng-dse mapping memo base | model {MODEL_VERSION} | fingerprint {:016x} | \
             seq {seq} | rows {} | sum {:016x}\n",
            model_fingerprint(),
            rows.len(),
            ng_neural::math::fnv1a64(&body),
        );
        let path = store_dir.join(format!("base-{seq:06}.csv"));
        let tmp = store_dir.join(format!("base-{seq:06}.csv.tmp.{}", std::process::id()));
        fs::write(&tmp, format!("{header}{body}"))?;
        fs::rename(&tmp, &path)?;
        // The base is durable; the folded tail and superseded bases are
        // now dead weight. A crash between these removals only leaves
        // rows that shadow their base copies identically.
        for shard in 0..SHARD_COUNT {
            let _ = fs::remove_file(store_dir.join(format!("shard-{shard:x}.csv")));
        }
        for (_, old) in old_bases {
            let _ = fs::remove_file(old);
        }
        Ok(MapMemoCompactReport { rows: Some(rows.len()), seq: Some(seq) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(mac: u32, rows: u32, cols: u32) -> MapRecord {
        MapRecord {
            mac_rows: mac,
            mac_cols: mac,
            rows,
            cols,
            spatial_n: rows.min(mac) as u64,
            spatial_k: cols.min(mac) as u64,
            weight_stationary: true,
            cycles: MAP_SEARCH_BATCH * (rows.div_ceil(mac) as u64) * (cols.div_ceil(mac) as u64),
            energy_uj: 123.456_789,
            candidates: 98,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ng-dse-mapmemo-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn rows_round_trip_bit_exactly() {
        for r in [record(64, 64, 32), record(64, 1, 64), record(48, 128, 64)] {
            let parsed = MapRecord::from_row(&r.to_row()).unwrap();
            assert_eq!(parsed, r);
            assert_eq!(parsed.energy_uj.to_bits(), r.energy_uj.to_bits());
        }
        assert!(MapRecord::from_row("1,2,3").is_err());
        assert!(MapRecord::from_row("64,64,64,64,64,64,xx,4096,0,98").is_err());
    }

    #[test]
    fn append_load_compact_round_trips() {
        let dir = tmpdir("roundtrip");
        let store = MapMemoStore::new(&dir);
        assert!(store.load_all().is_empty(), "cold store");
        let records = [record(64, 64, 32), record(64, 64, 64), record(32, 64, 64)];
        store.append(&records).unwrap();
        let loaded = store.load_all();
        assert_eq!(loaded.len(), records.len());
        for r in &records {
            assert_eq!(loaded.get(&r.key()), Some(r));
        }
        // Compaction folds the tail into a checksummed base and the
        // store serves identically from it.
        let report = store.compact().unwrap();
        assert_eq!(report.rows, Some(records.len()));
        let stats = store.store_stats();
        assert_eq!(stats.tail_rows(), 0, "tail folded away");
        assert_eq!(stats.base.map(|(_, rows, _)| rows), Some(records.len()));
        let compacted = store.load_all();
        assert_eq!(compacted, loaded, "base serves bit-identically");
        // New appends overlay the base.
        store.append(&[record(16, 64, 64)]).unwrap();
        assert_eq!(store.load_all().len(), records.len() + 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_rows_are_skipped_and_healed_by_reappend() {
        let dir = tmpdir("torn");
        let store = MapMemoStore::new(&dir);
        let r = record(64, 64, 32);
        store.append(&[r]).unwrap();
        let path = store.shard_path(r.key());
        let text = fs::read_to_string(&path).unwrap();
        let torn: String = text[..text.len() - 8].to_string();
        fs::write(&path, torn).unwrap();
        assert!(store.load_all().is_empty(), "the torn row is a miss");
        store.append(&[r]).unwrap();
        assert_eq!(store.load_all().get(&r.key()), Some(&r), "re-append heals");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_base_is_ignored_not_served() {
        let dir = tmpdir("badbase");
        let store = MapMemoStore::new(&dir);
        store.append(&[record(64, 64, 32)]).unwrap();
        store.compact().unwrap();
        let (seq, base) = MapMemoStore::base_files(&store.store_dir())[0].clone();
        assert_eq!(seq, 1);
        let mut bytes = fs::read(&base).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        fs::write(&base, bytes).unwrap();
        assert!(MapMemoStore::read_base(&base).is_none(), "checksum rejects the flip");
        assert!(store.load_all().is_empty(), "a corrupt base serves nothing");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn layer_key_tracks_all_four_dims() {
        let base = MapMemoStore::layer_key(64, 64, 64, 32);
        assert_ne!(base, MapMemoStore::layer_key(32, 64, 64, 32));
        assert_ne!(base, MapMemoStore::layer_key(64, 32, 64, 32));
        assert_ne!(base, MapMemoStore::layer_key(64, 64, 32, 32));
        assert_ne!(base, MapMemoStore::layer_key(64, 64, 64, 64));
        assert_eq!(base, MapMemoStore::layer_key(64, 64, 64, 32));
    }
}
