//! Content-hashed evaluation cache.
//!
//! The cache key is an FNV-1a hash of the spec's canonical axis
//! encoding plus [`crate::MODEL_VERSION`]: any change to the swept axes
//! lands in a different file, and model changes do too *provided*
//! `MODEL_VERSION` is bumped with them (it is a hand-maintained tag,
//! not derived from the model code — see its doc comment; `--no-cache`
//! is the escape hatch if a stale cache is suspected). One sweep = one
//! CSV file (the same format [`crate::emit`] exposes to users), headed
//! by a `#` line recording the key for post-mortem inspection.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::emit::{points_from_csv, points_to_csv};
use crate::spec::SweepSpec;
use crate::sweep::EvaluatedPoint;
use crate::MODEL_VERSION;

/// FNV-1a, 64-bit.
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A directory of per-spec evaluation results.
#[derive(Debug, Clone)]
pub struct EvalCache {
    dir: PathBuf,
}

impl EvalCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        EvalCache { dir: dir.into() }
    }

    /// The cache key of a spec under the current model version.
    pub fn key(spec: &SweepSpec) -> String {
        format!("{:016x}", fnv1a(&format!("{MODEL_VERSION};{}", spec.canonical())))
    }

    /// The file a spec's results live in.
    pub fn path(&self, spec: &SweepSpec) -> PathBuf {
        self.dir.join(format!("sweep-{}.csv", Self::key(spec)))
    }

    /// Load a spec's cached results, if present and intact. Any
    /// corruption (bad parse, wrong point count) is treated as a miss.
    pub fn load(&self, spec: &SweepSpec) -> Option<Vec<EvaluatedPoint>> {
        let text = fs::read_to_string(self.path(spec)).ok()?;
        let points = points_from_csv(&text).ok()?;
        if points.len() != spec.point_count() {
            return None;
        }
        Some(points)
    }

    /// Store a sweep's results; returns the file written.
    pub fn store(&self, spec: &SweepSpec, points: &[EvaluatedPoint]) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path(spec);
        let body = format!(
            "# ng-dse evaluation cache | key {} | model {} | spec `{}`\n{}",
            Self::key(spec),
            MODEL_VERSION,
            spec.name,
            points_to_csv(points),
        );
        // Write-then-rename (with a per-process tmp name, so two
        // concurrent runs of the same spec cannot truncate each
        // other's tmp mid-write) — a crashed or racing run never
        // leaves a torn file that a later run would half-parse.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepEngine;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ng-dse-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let spec = SweepSpec::quick();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let cache = EvalCache::new(&dir);
        assert!(cache.load(&spec).is_none(), "cold cache");
        let path = cache.store(&spec, &outcome.points).unwrap();
        assert!(path.exists());
        assert_eq!(cache.load(&spec).unwrap(), outcome.points);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_tracks_axes_and_model_version() {
        let a = SweepSpec::quick();
        let mut renamed = a.clone();
        renamed.name = "other".to_string();
        assert_eq!(EvalCache::key(&a), EvalCache::key(&renamed), "name not part of identity");
        let mut grown = a.clone();
        grown.nfp_units.push(128);
        assert_ne!(EvalCache::key(&a), EvalCache::key(&grown));
    }

    #[test]
    fn corrupt_or_truncated_files_are_misses() {
        let dir = tmpdir("corrupt");
        let spec = SweepSpec::quick();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let cache = EvalCache::new(&dir);
        cache.store(&spec, &outcome.points[..3]).unwrap();
        assert!(cache.load(&spec).is_none(), "wrong point count");
        fs::write(cache.path(&spec), "garbage\n").unwrap();
        assert!(cache.load(&spec).is_none(), "unparseable");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_integrates_the_cache() {
        let dir = tmpdir("engine");
        let spec = SweepSpec::quick();
        let engine = SweepEngine::new().with_cache_dir(&dir);
        let first = engine.run(&spec).unwrap();
        assert!(!first.stats.cache_hit);
        assert_eq!(first.stats.evaluated, spec.point_count());
        let second = engine.run(&spec).unwrap();
        assert!(second.stats.cache_hit);
        assert_eq!(second.stats.evaluated, 0);
        assert_eq!(first.points, second.points, "cache returns bit-identical results");
        fs::remove_dir_all(&dir).unwrap();
    }
}
