//! Point-level, sharded evaluation cache.
//!
//! PR 1's cache was keyed per *spec*: one CSV per sweep, so adding a
//! single axis value to a 1440-point sweep re-evaluated all 1440
//! points. This store is keyed per *point*:
//!
//! * **Key** — [`EvalCache::point_key`]: FNV-1a over the point's axis
//!   tuple (everything except its spec-local `index`), the
//!   hand-maintained [`crate::MODEL_VERSION`] tag, *and* the computed
//!   [`crate::model_fingerprint`] — so model drift invalidates
//!   automatically even when the tag was forgotten.
//! * **Layout** — one directory per `(MODEL_VERSION, fingerprint)`
//!   generation, holding [`SHARD_COUNT`] append-friendly CSV shards; a
//!   point lives in the shard named by the top nibble of its key.
//! * **Concurrency** — every append holds the shard's exclusive
//!   advisory file lock ([`std::fs::File::lock`]) for its whole
//!   critical section (torn-tail probe, header creation, row write),
//!   so concurrent writers — threads or processes — never interleave
//!   mid-line and a fresh shard gets exactly one header. The lock is
//!   released by the kernel even if the writer dies, and readers never
//!   lock (a reader racing an append sees either the old or the new
//!   tail, both parseable). Filesystems without lock support degrade
//!   to unlocked appends, which only the multi-writer backend notices.
//! * **Degradation** — a torn line, a duplicate or interior header, a
//!   corrupted shard, or a key mismatch (the stored axes no longer
//!   hash to the stored key) makes exactly the affected points misses;
//!   everything else keeps hitting.
//!
//! [`crate::sweep::SweepEngine::run`] partitions a spec into cached and
//! missing points through [`EvalCache::lookup`], evaluates only the
//! misses, and appends them back — overlapping or grown specs pay only
//! for their delta.
//!
//! Since PR 8 the CSV shards are only the *write-ahead* layer:
//! `dse compact` folds them into a binary columnar generation
//! ([`crate::compact`]) that loads with one `read` and zero per-row
//! parsing. Readers overlay the live CSV tail (which wins) on that
//! compact base, so appenders keep writing CSV exactly as before and
//! never coordinate with the compactor beyond the shard locks.
//!
//! **Storage exhaustion degrades, it does not kill.** An append that
//! fails with a *persistent* capacity error (ENOSPC, EROFS, quota,
//! permissions — see [`ng_fault::is_exhaustion`]) diverts its rows to
//! a per-process in-memory overlay instead of failing the run: this
//! process keeps hitting those points ([`EvalCache::lookup`] and
//! [`EvalCache::load_all`] consult the overlay after both disk
//! layers), one stderr warning names the condition, and the
//! `store.degraded_appends` counter records every diverted row. The
//! results are lost when the process exits — the next run simply
//! re-evaluates them — which is strictly better than the alternative
//! the store used to pick: a worker dying with `EXIT_STORE_APPEND`
//! and delivering nothing.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, Once, OnceLock};

use crate::emit::{point_from_row, point_to_row};
use crate::obs_counters;
use crate::spec::DesignPoint;
use crate::sweep::EvaluatedPoint;
use crate::{model_fingerprint, MODEL_VERSION};

/// Number of shard files per cache generation (points are distributed
/// by the top nibble of their key).
pub const SHARD_COUNT: usize = 16;

/// Per-process in-memory overlay holding rows whose disk append hit a
/// persistent capacity error (ENOSPC/EROFS/quota). Keyed by
/// `(store dir, point key)` so two caches in one process — the normal
/// state of the test binary — never see each other's diverted rows.
/// Never pre-initialised: a healthy process pays one `OnceLock::get`
/// (a relaxed load) per overlay consult and no allocation.
static DEGRADED_OVERLAY: OnceLock<Mutex<HashMap<(PathBuf, u64), EvaluatedPoint>>> = OnceLock::new();

fn overlay_get(store_dir: &Path, key: u64) -> Option<EvaluatedPoint> {
    let map = DEGRADED_OVERLAY.get()?.lock().unwrap();
    map.get(&(store_dir.to_path_buf(), key)).copied()
}

fn overlay_insert(store_dir: &Path, rows: &[(u64, EvaluatedPoint)]) {
    let mut map = DEGRADED_OVERLAY.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap();
    for (key, point) in rows {
        map.insert((store_dir.to_path_buf(), *key), *point);
    }
}

fn overlay_rows(store_dir: &Path) -> Vec<(u64, EvaluatedPoint)> {
    let Some(map) = DEGRADED_OVERLAY.get() else {
        return Vec::new();
    };
    let map = map.lock().unwrap();
    map.iter()
        .filter(|((dir, _), _)| dir == store_dir)
        .map(|((_, key), point)| (*key, *point))
        .collect()
}

/// Parse one shard file's text into `(key, point)` rows in file order
/// (callers collapse duplicates later-wins by inserting in order),
/// plus the count of skipped data lines. Comment, header and
/// torn/corrupt lines are skipped *wherever* they appear, and a row
/// whose stored axes no longer hash to its stated key is rejected
/// (guards against truncation splices and rows copied across
/// generations). Shared verbatim by the live reader and the compactor
/// so a row folds into a generation exactly when a reader would have
/// served it.
pub(crate) fn parse_shard_text(text: &str) -> (Vec<(u64, EvaluatedPoint)>, u64) {
    let mut rows = Vec::new();
    let mut skipped = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("key,") {
            continue;
        }
        let parsed = line
            .split_once(',')
            .and_then(|(key_hex, row)| {
                Some((u64::from_str_radix(key_hex, 16).ok()?, point_from_row(row).ok()?))
            })
            .filter(|(stated, point)| EvalCache::point_key(&point.point) == *stated);
        match parsed {
            Some(row) => rows.push(row),
            None => skipped += 1,
        }
    }
    (rows, skipped)
}

/// One snapshot of the store's two read layers, gathered in a single
/// pass per file — the `--cache-stats` backing data.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// `(rows, bytes)` per CSV shard of the live tail.
    pub shards: Vec<(usize, u64)>,
    /// The compact base, if one exists: `(generation seq, rows,
    /// bytes)`.
    pub base: Option<(u64, usize, u64)>,
}

impl StoreStats {
    /// Total live CSV tail rows across shards.
    pub fn tail_rows(&self) -> usize {
        self.shards.iter().map(|(rows, _)| rows).sum()
    }

    /// Total live CSV tail bytes across shards.
    pub fn tail_bytes(&self) -> u64 {
        self.shards.iter().map(|(_, bytes)| bytes).sum()
    }
}

/// A directory of point-level evaluation results.
#[derive(Debug, Clone)]
pub struct EvalCache {
    dir: PathBuf,
}

impl EvalCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        EvalCache { dir: dir.into() }
    }

    /// The cache key of one design point under the current models: a
    /// hash of its axis tuple (not its spec-local index), the
    /// [`MODEL_VERSION`] tag and the computed model fingerprint.
    pub fn point_key(point: &DesignPoint) -> u64 {
        ng_neural::math::fnv1a64(&format!(
            "{MODEL_VERSION};{:016x};app={};enc={};px={};nfp={};clk={:016x};kb={};banks={};\
             eng={};mrows={};mcols={};lanes={};fifo={}",
            model_fingerprint(),
            crate::spec::app_slug(point.app),
            crate::spec::encoding_slug(point.encoding),
            point.pixels,
            point.nfp_units,
            point.clock_ghz.to_bits(),
            point.grid_sram_kb,
            point.grid_sram_banks,
            point.encoding_engines,
            point.mac_rows,
            point.mac_cols,
            point.lanes_per_engine,
            point.input_fifo_depth,
        ))
    }

    /// The generation directory all shards of the current model version
    /// live in. A model change (tag bump or fingerprint drift) lands in
    /// a fresh directory and the stale one is never read again.
    pub fn store_dir(&self) -> PathBuf {
        self.dir.join(format!("{MODEL_VERSION}-{:016x}", model_fingerprint()))
    }

    /// The shard index a key lives in (its top nibble).
    pub fn shard_of(key: u64) -> usize {
        (key >> 60) as usize
    }

    /// The shard file a key lives in.
    pub fn shard_path(&self, key: u64) -> PathBuf {
        self.store_dir().join(format!("shard-{:x}.csv", Self::shard_of(key)))
    }

    /// Parse one shard into key → point, skipping comment, header and
    /// torn/corrupt lines (those points simply stay misses). Header
    /// lines are skipped *wherever* they appear — a duplicate or
    /// interior header left by a pre-locking writer race costs nothing
    /// rather than dropping the shard. A later duplicate of a key
    /// wins, matching append order.
    ///
    /// Skipped data lines are not free information loss: each one is a
    /// point that will silently re-evaluate, so they are counted into
    /// `cache.rows_skipped` (surfaced by `dse --cache-stats` and
    /// audited precisely by `dse fsck`).
    fn load_shard(&self, shard: usize) -> HashMap<u64, EvaluatedPoint> {
        let path = self.store_dir().join(format!("shard-{shard:x}.csv"));
        let Ok(text) = fs::read_to_string(&path) else {
            return HashMap::new();
        };
        let (rows, skipped) = parse_shard_text(&text);
        if skipped > 0 {
            obs_counters::cache_rows_skipped().add(skipped);
        }
        // Later duplicate of a key wins, matching append order.
        rows.into_iter().collect()
    }

    /// Look up every point of a sweep: `Some(result)` per hit (with the
    /// point's *current* spec index, not the index it was stored
    /// under), `None` per miss. Only the CSV shards the keys land in
    /// are read; the compact base (if any) is loaded once, lazily, the
    /// first time a key misses the tail. The tail wins on overlap —
    /// rows appended since (or raced with) the last compaction shadow
    /// their base copies.
    pub fn lookup(&self, points: &[DesignPoint]) -> Vec<Option<EvaluatedPoint>> {
        let keys: Vec<u64> = points.iter().map(Self::point_key).collect();
        let store_dir = self.store_dir();
        let mut shards: Vec<Option<HashMap<u64, EvaluatedPoint>>> =
            (0..SHARD_COUNT).map(|_| None).collect();
        let mut base: Option<Option<crate::compact::CompactBase>> = None;
        let (mut base_hits, mut tail_hits) = (0u64, 0u64);
        let out = points
            .iter()
            .zip(&keys)
            .map(|(point, &key)| {
                let shard = shards[Self::shard_of(key)]
                    .get_or_insert_with(|| self.load_shard(Self::shard_of(key)));
                let stored = match shard.get(&key) {
                    Some(stored) => {
                        tail_hits += 1;
                        *stored
                    }
                    None => match base
                        .get_or_insert_with(|| crate::compact::load_latest(&store_dir))
                        .as_ref()
                        .and_then(|b| b.get(key))
                    {
                        Some(stored) => {
                            base_hits += 1;
                            stored
                        }
                        // Rows whose disk append hit storage exhaustion
                        // exist only in the per-process overlay.
                        None => overlay_get(&store_dir, key)?,
                    },
                };
                // A 64-bit collision between different axis tuples is
                // astronomically unlikely but cheap to rule out.
                if stored.point.arch_key() != point.arch_key() || stored.point.app != point.app {
                    return None;
                }
                Some(EvaluatedPoint { point: *point, ..stored })
            })
            .collect();
        if base_hits > 0 {
            obs_counters::store_base_hits().add(base_hits);
        }
        if tail_hits > 0 {
            obs_counters::store_tail_hits().add(tail_hits);
        }
        out
    }

    /// Append freshly evaluated points to their shards. One buffered
    /// `write_all` per shard under that shard's exclusive advisory
    /// lock; the first writer to lock a fresh shard writes its header.
    ///
    /// The lock makes concurrent appends — from threads or from other
    /// processes — safe: a single large `write_all` on an `O_APPEND`
    /// descriptor is *not* atomic (the kernel may split it, letting
    /// another writer's rows land mid-line), and without the lock two
    /// writers can both observe an empty shard and both write the
    /// header. Both races corrupt rows that then read back as misses —
    /// silently wrong for the multi-process sweep backend, whose
    /// workers hand results to the coordinator *through* this store.
    pub fn append(&self, points: &[EvaluatedPoint]) -> io::Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        let dir = self.store_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            if !ng_fault::is_exhaustion(&e) {
                return Err(e);
            }
            // The store's filesystem cannot even hold the directory:
            // divert everything and keep the run alive.
            let rows: Vec<(u64, EvaluatedPoint)> =
                points.iter().map(|p| (Self::point_key(&p.point), *p)).collect();
            self.degrade_append(&dir, &rows, &e);
            return Ok(());
        }
        let mut by_shard: Vec<(String, Vec<(u64, EvaluatedPoint)>)> =
            vec![(String::new(), Vec::new()); SHARD_COUNT];
        for p in points {
            let key = Self::point_key(&p.point);
            let (buf, rows) = &mut by_shard[Self::shard_of(key)];
            buf.push_str(&format!("{key:016x},{}\n", point_to_row(p)));
            rows.push((key, *p));
        }
        for (shard, (body, shard_rows)) in by_shard.iter().enumerate() {
            if body.is_empty() {
                continue;
            }
            let path = dir.join(format!("shard-{shard:x}.csv"));
            // A transient failure (flaky filesystem, injected
            // `append:io` fault) is retried with jittered exponential
            // backoff. The injection point sits *before* the first
            // write, so a retried attempt never duplicates rows — and
            // even a mid-write retry would only produce a duplicate
            // key, which readers resolve (later wins) and `dse fsck`
            // repairs.
            let (result, retries) = ng_fault::with_retries("append:io", || {
                Self::append_shard(&path, body, shard_rows.len() as u64)
            });
            if retries > 0 {
                obs_counters::store_retries().add(retries as u64);
                // The backoff site, in the ledger: a deterministic
                // fault seed must reproduce not just the retry *count*
                // but *where* the backoff was spent
                // (tests/fault_determinism.rs pins both).
                ng_obs::emit_meta(
                    "store.retry",
                    &format!("shard {shard:x}: {retries} retried append attempt(s)"),
                );
            }
            match result {
                Ok(()) => {}
                // A *persistent* capacity error (ENOSPC, EROFS, quota,
                // permissions) will not yield to retries or to the next
                // shard. Divert this shard's rows to the in-memory
                // overlay and keep going: the sweep completes and
                // delivers results, at the cost of re-evaluating these
                // rows next run — strictly better than dying with
                // `EXIT_STORE_APPEND` and delivering nothing.
                Err(e) if ng_fault::is_exhaustion(&e) => self.degrade_append(&dir, shard_rows, &e),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Divert rows that could not be persisted to the per-process
    /// overlay: count them, warn once per process, and carry on.
    fn degrade_append(&self, store_dir: &Path, rows: &[(u64, EvaluatedPoint)], cause: &io::Error) {
        overlay_insert(store_dir, rows);
        obs_counters::store_degraded_appends().add(rows.len() as u64);
        static WARNED: Once = Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "dse: point store append failed ({cause}); degrading to an in-memory overlay — \
                 this run completes, but its fresh rows are lost at exit and will re-evaluate \
                 next run (see the store.degraded_appends counter)"
            );
            ng_obs::emit_meta(
                "store.degraded",
                &format!("appends diverted to in-memory overlay: {cause}"),
            );
        });
    }

    /// One locked shard append: the whole critical section (length
    /// probe, header creation, tail repair, row write) under the
    /// shard's exclusive advisory lock. Idempotent from the caller's
    /// perspective until the body write starts, which is why
    /// [`EvalCache::append`] may retry it.
    fn append_shard(path: &Path, body: &str, rows: u64) -> io::Result<()> {
        if let Some(e) = ng_fault::store_append_error() {
            return Err(e);
        }
        if let Some(e) = ng_fault::store_append_exhaustion() {
            return Err(e);
        }
        // Exclusive advisory lock for the whole critical section
        // (length probe, header, tail repair, row write). Released
        // on drop/close — including by the kernel if we crash. A
        // filesystem that does not support locking degrades to the
        // old unlocked behaviour; any *other* lock failure (e.g. a
        // flaky network filesystem) is a real error — proceeding
        // unlocked would silently void the multi-writer contract.
        let lock_started = std::time::Instant::now();
        let file = loop {
            let file = fs::OpenOptions::new().read(true).create(true).append(true).open(path)?;
            if let Err(e) = file.lock() {
                if e.kind() != io::ErrorKind::Unsupported {
                    return Err(e);
                }
            }
            // The compactor (and `fsck --repair`) replace shard files
            // by tmp+rename *while holding the old inode's lock* — so
            // a writer that blocked on that lock may now hold an
            // unlinked file whose rows no reader would ever see.
            // Re-stat the path after locking and start over on the
            // live inode; the rename has already happened, so this
            // converges in one extra round.
            if !Self::same_inode(&file, path) {
                continue;
            }
            break file;
        };
        let mut file = file;
        obs_counters::store_lock_wait_us().add(lock_started.elapsed().as_micros() as u64);
        // The length must be read *after* the lock: another writer
        // may have created the header between open and lock.
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(
                format!(
                    "# ng-dse point cache | model {MODEL_VERSION} | fingerprint {:016x}\n",
                    model_fingerprint()
                )
                .as_bytes(),
            )?;
        } else {
            // A crashed writer can leave the shard without a final
            // newline; appending onto that torn tail would merge
            // (and so lose) the first fresh row. Terminate it first.
            use std::io::{Read, Seek, SeekFrom};
            let mut last = [0u8; 1];
            file.seek(SeekFrom::Start(len - 1))?;
            file.read_exact(&mut last)?;
            if last != [b'\n'] {
                file.write_all(b"\n")?;
                obs_counters::store_tail_heals().incr();
            }
        }
        if ng_fault::take_store_torn_tail() {
            // Simulate a writer killed mid-`write_all`: persist the
            // body with its final row cut in half and report success —
            // the caller believes the rows landed, exactly as a real
            // crash victim would have. Readers skip the torn row, and
            // recovery (re-evaluation or `fsck --repair`) heals it.
            let data = body.strip_suffix('\n').unwrap_or(body);
            let last_start = data.rfind('\n').map_or(0, |i| i + 1);
            let torn_end = last_start + (data.len() - last_start) / 2;
            file.write_all(&body.as_bytes()[..torn_end.max(1)])?;
            obs_counters::store_rows_appended().add(rows.saturating_sub(1));
            return Ok(());
        }
        file.write_all(body.as_bytes())?;
        obs_counters::store_rows_appended().add(rows);
        Ok(())
    }

    /// Does the open descriptor still name the file at `path`? False
    /// when a tmp+rename replaced the path while we waited on the old
    /// inode's lock. On platforms without inode identity this reports
    /// true — matching the pre-compaction behaviour there.
    #[cfg(unix)]
    fn same_inode(file: &fs::File, path: &Path) -> bool {
        use std::os::unix::fs::MetadataExt;
        match (file.metadata(), fs::metadata(path)) {
            (Ok(held), Ok(live)) => held.ino() == live.ino() && held.dev() == live.dev(),
            _ => false,
        }
    }

    #[cfg(not(unix))]
    fn same_inode(_file: &fs::File, _path: &Path) -> bool {
        true
    }

    /// Load every live CSV shard once, returning each shard's parsed
    /// map alongside its on-disk size. The one pass behind *both*
    /// [`EvalCache::shard_stats`] and [`EvalCache::load_all`] — the
    /// stats/bulk-load paths used to call `load_shard` separately per
    /// consumer and re-parse every shard from disk each time.
    fn live_shards(&self) -> Vec<(HashMap<u64, EvaluatedPoint>, u64)> {
        (0..SHARD_COUNT)
            .map(|shard| {
                let path = self.store_dir().join(format!("shard-{shard:x}.csv"));
                let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                (self.load_shard(shard), bytes)
            })
            .collect()
    }

    /// Per-shard row counts of the live CSV tail: `(rows, bytes)`
    /// indexed by shard, counting only parseable data rows (comments,
    /// headers and torn lines excluded — the same rows
    /// [`EvalCache::lookup`] could serve). Powers the per-shard half of
    /// `dse --cache-stats`.
    pub fn shard_stats(&self) -> Vec<(usize, u64)> {
        self.live_shards().into_iter().map(|(rows, bytes)| (rows.len(), bytes)).collect()
    }

    /// Both read layers in one pass: per-shard tail stats plus the
    /// compact base's generation number, row count and file size.
    pub fn store_stats(&self) -> StoreStats {
        StoreStats {
            shards: self.shard_stats(),
            base: crate::compact::load_latest(&self.store_dir())
                .map(|base| (base.seq(), base.rows(), base.bytes())),
        }
    }

    /// A cheap upper bound on live CSV tail rows — data-line counts
    /// without parsing — used by the opt-in auto-compaction trigger.
    /// Torn or corrupt lines are counted too: they are exactly the
    /// bloat compaction exists to shed.
    pub fn tail_row_estimate(&self) -> usize {
        (0..SHARD_COUNT)
            .map(|shard| {
                let path = self.store_dir().join(format!("shard-{shard:x}.csv"));
                let Ok(text) = fs::read_to_string(&path) else {
                    return 0;
                };
                text.lines()
                    .filter(|l| {
                        let l = l.trim();
                        !l.is_empty() && !l.starts_with('#') && !l.starts_with("key,")
                    })
                    .count()
            })
            .sum()
    }

    /// The cache's root directory (generations live underneath).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Load both layers of the current generation into one in-memory
    /// map (CSV tail over compact base) — the bulk entry point for
    /// guided search, which probes points one at a time and must not
    /// re-read shard files per probe the way per-sweep
    /// [`EvalCache::lookup`] may.
    pub fn load_all(&self) -> HashMap<u64, EvaluatedPoint> {
        let mut out: HashMap<u64, EvaluatedPoint> =
            match crate::compact::load_latest(&self.store_dir()) {
                Some(base) => base.iter().collect(),
                None => HashMap::new(),
            };
        for (shard, _) in self.live_shards() {
            out.extend(shard);
        }
        // Rows diverted by storage exhaustion are real results too —
        // guided search must see them like any persisted row.
        out.extend(overlay_rows(&self.store_dir()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use crate::sweep::SweepEngine;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ng-dse-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_lookup_round_trips() {
        let dir = tmpdir("roundtrip");
        let spec = SweepSpec::quick();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let cache = EvalCache::new(&dir);
        let points = spec.points();
        assert!(cache.lookup(&points).iter().all(Option::is_none), "cold cache");
        cache.append(&outcome.points).unwrap();
        let loaded = cache.lookup(&points);
        assert_eq!(
            loaded.into_iter().collect::<Option<Vec<_>>>().unwrap(),
            outcome.points,
            "every point hits, bit-identical"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn point_key_tracks_axes_not_index() {
        let spec = SweepSpec::quick();
        let points = spec.points();
        let mut reindexed = points[3];
        reindexed.index = 77;
        assert_eq!(
            EvalCache::point_key(&points[3]),
            EvalCache::point_key(&reindexed),
            "index not part of identity"
        );
        let mut grown = points[3];
        grown.clock_ghz = 1.25;
        assert_ne!(EvalCache::point_key(&points[3]), EvalCache::point_key(&grown));
        // All quick-spec points have distinct keys.
        let mut keys: Vec<u64> = points.iter().map(EvalCache::point_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), points.len());
    }

    #[test]
    fn point_key_covers_the_lane_and_fifo_axes() {
        // Stability: the key of the paper point must not move when only
        // the *spec* grows — and must move when either new axis value
        // changes, so v4 shards never serve a differently-laned point.
        let base = SweepSpec::quick().points()[0];
        assert_eq!(base.lanes_per_engine, 1);
        assert_eq!(base.input_fifo_depth, 64);
        let key = EvalCache::point_key(&base);
        let mut laned = base;
        laned.lanes_per_engine = 2;
        assert_ne!(key, EvalCache::point_key(&laned));
        let mut shallow = base;
        shallow.input_fifo_depth = 8;
        assert_ne!(key, EvalCache::point_key(&shallow));
        // Same axes, same key — regardless of which spec enumerated it.
        let mut re_spec = SweepSpec::quick();
        re_spec.lanes_per_engine = vec![1, 2];
        re_spec.input_fifo_depth = vec![8, 64];
        let twin = re_spec
            .points()
            .into_iter()
            .find(|p| p.arch_key() == base.arch_key() && p.app == base.app)
            .expect("grown spec still contains the paper point");
        assert_eq!(key, EvalCache::point_key(&twin));
    }

    #[test]
    fn lookup_rewrites_the_spec_index() {
        // A point cached under one spec must come back with the index
        // the *current* spec assigns it.
        let dir = tmpdir("reindex");
        let spec = SweepSpec::quick();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let cache = EvalCache::new(&dir);
        cache.append(&outcome.points).unwrap();
        let mut moved = spec.points()[5];
        moved.index = 0;
        let hit = cache.lookup(&[moved])[0].expect("hit");
        assert_eq!(hit.point.index, 0);
        assert_eq!(hit.speedup, outcome.points[5].speedup);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_lines_are_misses_for_only_their_points() {
        let dir = tmpdir("torn");
        let spec = SweepSpec::quick();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let cache = EvalCache::new(&dir);
        cache.append(&outcome.points).unwrap();
        // Truncate one shard's last line mid-row (a crashed append).
        let victim_key = EvalCache::point_key(&outcome.points[0].point);
        let path = cache.shard_path(victim_key);
        let text = fs::read_to_string(&path).unwrap();
        let keep_lines: Vec<&str> = text.lines().collect();
        let torn = format!(
            "{}\n{}",
            keep_lines[..keep_lines.len() - 1].join("\n"),
            &keep_lines[keep_lines.len() - 1][..20]
        );
        fs::write(&path, torn).unwrap();
        let loaded = cache.lookup(&spec.points());
        let misses = loaded.iter().filter(|p| p.is_none()).count();
        assert_eq!(misses, 1, "exactly the torn row misses");
        // Appending onto the torn tail must not merge rows: one
        // re-append heals the shard completely.
        let missing: Vec<_> = spec
            .points()
            .iter()
            .zip(&loaded)
            .filter(|(_, hit)| hit.is_none())
            .map(|(p, _)| outcome.points[p.index])
            .collect();
        cache.append(&missing).unwrap();
        assert!(cache.lookup(&spec.points()).iter().all(Option::is_some), "healed in one cycle");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_and_duplicate_headers_are_skipped_not_fatal() {
        // A pre-locking writer race could leave a second header mid
        // shard; the reader must keep every data row around it.
        let dir = tmpdir("dup-header");
        let spec = SweepSpec::quick();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let cache = EvalCache::new(&dir);
        cache.append(&outcome.points[..8]).unwrap();
        for key in outcome.points[..8].iter().map(|p| EvalCache::point_key(&p.point)) {
            let path = cache.shard_path(key);
            let mut text = fs::read_to_string(&path).unwrap();
            text.push_str("# ng-dse point cache | duplicate interior header\n");
            fs::write(&path, text).unwrap();
        }
        cache.append(&outcome.points[8..]).unwrap();
        assert!(
            cache.lookup(&spec.points()).iter().all(Option::is_some),
            "rows on both sides of an interior header must survive"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_thread_appends_lose_no_rows() {
        // Many writers, one store: every appended row must read back
        // intact (the locked-append contract, exercised in-process;
        // the cross-process version lives in tests/distrib.rs).
        let dir = tmpdir("concurrent");
        let spec = SweepSpec::mac_arrays();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let writers = 8;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let slice: Vec<EvaluatedPoint> = outcome
                    .points
                    .iter()
                    .filter(|p| p.point.index % writers == w)
                    .copied()
                    .collect();
                let cache = EvalCache::new(&dir);
                scope.spawn(move || {
                    // One-row appends maximise interleaving pressure.
                    for p in &slice {
                        cache.append(std::slice::from_ref(p)).unwrap();
                    }
                });
            }
        });
        let cache = EvalCache::new(&dir);
        let loaded = cache.lookup(&spec.points());
        assert_eq!(
            loaded.into_iter().collect::<Option<Vec<_>>>().expect("no torn or lost rows"),
            outcome.points,
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_integrates_the_cache() {
        let dir = tmpdir("engine");
        let spec = SweepSpec::quick();
        let engine = SweepEngine::new().with_cache_dir(&dir);
        let first = engine.run(&spec).unwrap();
        assert!(!first.stats.cache_hit);
        assert_eq!(first.stats.evaluated, spec.point_count());
        assert_eq!(first.stats.cache_hits, 0);
        let second = engine.run(&spec).unwrap();
        assert!(second.stats.cache_hit);
        assert_eq!(second.stats.evaluated, 0);
        assert_eq!(second.stats.cache_hits, spec.point_count());
        assert_eq!(first.points, second.points, "cache returns bit-identical results");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_appends_serve_from_the_overlay() {
        // The full append:enospc plan is exercised cross-process in
        // tests/degrade.rs (one fault plan per process); here the
        // overlay seam itself: divert rows the way `append` does on a
        // real ENOSPC and assert every read path still serves them.
        let dir = tmpdir("degraded");
        let spec = SweepSpec::quick();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let cache = EvalCache::new(&dir);
        let enospc = io::Error::from_raw_os_error(28);
        assert!(ng_fault::is_exhaustion(&enospc));
        let rows: Vec<(u64, EvaluatedPoint)> =
            outcome.points.iter().map(|p| (EvalCache::point_key(&p.point), *p)).collect();
        let before = obs_counters::store_degraded_appends().get();
        cache.degrade_append(&cache.store_dir(), &rows, &enospc);
        assert!(
            obs_counters::store_degraded_appends().get() - before >= rows.len() as u64,
            "every diverted row is counted"
        );
        // Nothing reached disk, yet lookup serves every point
        // bit-identically — and with the current spec's indices.
        assert!(!cache.store_dir().exists(), "degradation writes nothing to disk");
        let loaded = cache.lookup(&spec.points());
        assert_eq!(
            loaded.into_iter().collect::<Option<Vec<_>>>().unwrap(),
            outcome.points,
            "overlay hits are bit-identical warm hits"
        );
        // The bulk loader guided search uses sees them too.
        let all = cache.load_all();
        assert!(rows.iter().all(|(key, p)| all.get(key) == Some(p)));
        // A different store root shares the process but not the rows.
        let other = EvalCache::new(tmpdir("degraded-other"));
        assert!(
            other.lookup(&spec.points()).iter().all(Option::is_none),
            "overlay rows are keyed per store dir"
        );
    }

    #[test]
    fn grown_spec_evaluates_only_the_delta() {
        let dir = tmpdir("delta");
        let engine = SweepEngine::new().with_cache_dir(&dir);
        let base = SweepSpec::quick();
        engine.run(&base).unwrap();
        let mut grown = base.clone();
        grown.clock_ghz.push(1.25);
        let outcome = engine.run(&grown).unwrap();
        let added = grown.point_count() - base.point_count();
        assert_eq!(outcome.stats.evaluated, added, "only the new clock's points evaluated");
        assert_eq!(outcome.stats.cache_hits, base.point_count());
        // ... and the merged result equals an uncached full evaluation.
        let reference = SweepEngine::new().without_cache().run(&grown).unwrap();
        assert_eq!(outcome.points, reference.points);
        fs::remove_dir_all(&dir).unwrap();
    }
}
