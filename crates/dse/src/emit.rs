//! Results serialisation: CSV (also the cache's on-disk format) and
//! JSON.
//!
//! Floats are written with Rust's shortest-round-trip `Display`, so a
//! parse of our own output reproduces every value bit-for-bit — which
//! is what lets the evaluation cache return results indistinguishable
//! from a fresh run.

use ng_neural::apps::{AppKind, EncodingKind};

use crate::mapsearch::MapSearchOutcome;
use crate::spec::{app_slug, encoding_slug, parse_app, parse_encoding, DesignPoint, SweepSpec};
use crate::sweep::{ArchPoint, EvaluatedPoint, SweepOutcome};

/// Column header of the points CSV.
pub const CSV_HEADER: &str = "index,app,encoding,pixels,nfp_units,clock_ghz,grid_sram_kb,\
                              grid_sram_banks,encoding_engines,mac_rows,mac_cols,\
                              lanes_per_engine,input_fifo_depth,speedup,\
                              area_pct_of_gpu,power_pct_of_gpu,gpu_ms,\
                              ngpc_frame_ms,amdahl_bound,plateaued";

/// One CSV data row of an evaluated point (no trailing newline) — the
/// unit both the full-sweep CSV and the point-level cache shards are
/// built from.
pub fn point_to_row(p: &EvaluatedPoint) -> String {
    let d = &p.point;
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        d.index,
        app_slug(d.app),
        encoding_slug(d.encoding),
        d.pixels,
        d.nfp_units,
        d.clock_ghz,
        d.grid_sram_kb,
        d.grid_sram_banks,
        d.encoding_engines,
        d.mac_rows,
        d.mac_cols,
        d.lanes_per_engine,
        d.input_fifo_depth,
        p.speedup,
        p.area_pct_of_gpu,
        p.power_pct_of_gpu,
        p.gpu_ms,
        p.ngpc_frame_ms,
        p.amdahl_bound,
        p.plateaued,
    )
}

/// Parse one [`point_to_row`] data row.
pub fn point_from_row(line: &str) -> Result<EvaluatedPoint, String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 20 {
        return Err(format!("expected 20 fields, got {}", fields.len()));
    }
    let err = |what: &str| format!("bad {what}");
    Ok(EvaluatedPoint {
        point: DesignPoint {
            index: fields[0].parse().map_err(|_| err("index"))?,
            app: parse_app(fields[1]).ok_or_else(|| err("app"))?,
            encoding: parse_encoding(fields[2]).ok_or_else(|| err("encoding"))?,
            pixels: fields[3].parse().map_err(|_| err("pixels"))?,
            nfp_units: fields[4].parse().map_err(|_| err("nfp_units"))?,
            clock_ghz: fields[5].parse().map_err(|_| err("clock_ghz"))?,
            grid_sram_kb: fields[6].parse().map_err(|_| err("grid_sram_kb"))?,
            grid_sram_banks: fields[7].parse().map_err(|_| err("grid_sram_banks"))?,
            encoding_engines: fields[8].parse().map_err(|_| err("encoding_engines"))?,
            mac_rows: fields[9].parse().map_err(|_| err("mac_rows"))?,
            mac_cols: fields[10].parse().map_err(|_| err("mac_cols"))?,
            lanes_per_engine: fields[11].parse().map_err(|_| err("lanes_per_engine"))?,
            input_fifo_depth: fields[12].parse().map_err(|_| err("input_fifo_depth"))?,
        },
        speedup: fields[13].parse().map_err(|_| err("speedup"))?,
        area_pct_of_gpu: fields[14].parse().map_err(|_| err("area_pct_of_gpu"))?,
        power_pct_of_gpu: fields[15].parse().map_err(|_| err("power_pct_of_gpu"))?,
        gpu_ms: fields[16].parse().map_err(|_| err("gpu_ms"))?,
        ngpc_frame_ms: fields[17].parse().map_err(|_| err("ngpc_frame_ms"))?,
        amdahl_bound: fields[18].parse().map_err(|_| err("amdahl_bound"))?,
        plateaued: fields[19].parse().map_err(|_| err("plateaued"))?,
    })
}

/// The extra columns `--map-search` appends to every CSV row: the
/// fixed-vs-searched MLP cycle comparison, the searched mapping's
/// per-query energy, and the end-to-end speedup re-evaluated under the
/// searched schedule.
pub const MAP_CSV_COLUMNS: &str =
    "fixed_mlp_cycles,searched_mlp_cycles,map_speedup,map_energy_uj,searched_speedup";

/// Render evaluated points as CSV with the `--map-search` side table
/// joined on: the plain [`CSV_HEADER`] plus [`MAP_CSV_COLUMNS`], one
/// annotated row per point. Floats use shortest-round-trip `Display`,
/// so a warm (100 % memo hit) re-run reproduces a cold run's output
/// byte-for-byte. `annotations.metrics` must be index-aligned with
/// `points` (which [`crate::mapsearch::annotate`] guarantees).
pub fn points_to_csv_with_mapping(
    points: &[EvaluatedPoint],
    annotations: &MapSearchOutcome,
) -> String {
    assert_eq!(points.len(), annotations.metrics.len(), "annotation side table misaligned");
    let mut out = String::with_capacity(96 * (points.len() + 1));
    out.push_str(CSV_HEADER);
    out.push(',');
    out.push_str(MAP_CSV_COLUMNS);
    out.push('\n');
    for (p, m) in points.iter().zip(&annotations.metrics) {
        out.push_str(&point_to_row(p));
        out.push_str(&format!(
            ",{},{},{},{},{}\n",
            m.fixed_mlp_cycles,
            m.searched_mlp_cycles,
            m.map_speedup(),
            m.energy_uj,
            m.speedup,
        ));
    }
    out
}

/// Render evaluated points as CSV (header + one row per point).
pub fn points_to_csv(points: &[EvaluatedPoint]) -> String {
    let mut out = String::with_capacity(64 * (points.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for p in points {
        out.push_str(&point_to_row(p));
        out.push('\n');
    }
    out
}

/// Parse [`points_to_csv`] output (used by the evaluation cache).
/// Lines starting with `#` are ignored.
pub fn points_from_csv(text: &str) -> Result<Vec<EvaluatedPoint>, String> {
    let mut points = Vec::new();
    let mut saw_header = false;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !saw_header {
            // First non-comment line must be the header.
            if line != CSV_HEADER {
                return Err(format!("line {}: unexpected header `{line}`", i + 1));
            }
            saw_header = true;
            continue;
        }
        points.push(point_from_row(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    if !saw_header {
        return Err("empty CSV".to_string());
    }
    Ok(points)
}

/// A JSON number: finite floats via shortest-round-trip `Display`,
/// non-finite as `null` (JSON has no inf/nan).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn app_list(apps: &[AppKind]) -> String {
    let items: Vec<String> = apps.iter().map(|&a| json_str(app_slug(a))).collect();
    format!("[{}]", items.join(","))
}

fn encoding_list(encodings: &[EncodingKind]) -> String {
    let items: Vec<String> = encodings.iter().map(|&e| json_str(encoding_slug(e))).collect();
    format!("[{}]", items.join(","))
}

fn json_point(p: &EvaluatedPoint) -> String {
    let d = &p.point;
    format!(
        "{{\"index\":{},\"app\":{},\"encoding\":{},\"pixels\":{},\"nfp_units\":{},\
         \"clock_ghz\":{},\"grid_sram_kb\":{},\"grid_sram_banks\":{},\"encoding_engines\":{},\
         \"mac_rows\":{},\"mac_cols\":{},\"lanes_per_engine\":{},\"input_fifo_depth\":{},\
         \"speedup\":{},\
         \"area_pct_of_gpu\":{},\"power_pct_of_gpu\":{},\"gpu_ms\":{},\"ngpc_frame_ms\":{},\
         \"amdahl_bound\":{},\"plateaued\":{}}}",
        d.index,
        json_str(app_slug(d.app)),
        json_str(encoding_slug(d.encoding)),
        d.pixels,
        d.nfp_units,
        json_f64(d.clock_ghz),
        d.grid_sram_kb,
        d.grid_sram_banks,
        d.encoding_engines,
        d.mac_rows,
        d.mac_cols,
        d.lanes_per_engine,
        d.input_fifo_depth,
        json_f64(p.speedup),
        json_f64(p.area_pct_of_gpu),
        json_f64(p.power_pct_of_gpu),
        json_f64(p.gpu_ms),
        json_f64(p.ngpc_frame_ms),
        json_f64(p.amdahl_bound),
        p.plateaued,
    )
}

fn json_arch(a: &ArchPoint) -> String {
    format!(
        "{{\"encoding\":{},\"pixels\":{},\"nfp_units\":{},\"clock_ghz\":{},\"grid_sram_kb\":{},\
         \"grid_sram_banks\":{},\"encoding_engines\":{},\"mac_rows\":{},\"mac_cols\":{},\
         \"lanes_per_engine\":{},\"input_fifo_depth\":{},\
         \"apps\":{},\"avg_speedup\":{},\"area_pct_of_gpu\":{},\
         \"power_pct_of_gpu\":{}}}",
        json_str(encoding_slug(a.encoding)),
        a.pixels,
        a.nfp_units,
        json_f64(a.clock_ghz),
        a.grid_sram_kb,
        a.grid_sram_banks,
        a.encoding_engines,
        a.mac_rows,
        a.mac_cols,
        a.lanes_per_engine,
        a.input_fifo_depth,
        a.apps,
        json_f64(a.avg_speedup),
        json_f64(a.area_pct_of_gpu),
        json_f64(a.power_pct_of_gpu),
    )
}

fn json_spec(spec: &SweepSpec) -> String {
    format!(
        "{{\"name\":{},\"apps\":{},\"encodings\":{},\"pixels\":{:?},\"nfp_units\":{:?},\
         \"clock_ghz\":{:?},\"grid_sram_kb\":{:?},\"grid_sram_banks\":{:?},\
         \"encoding_engines\":{:?},\"mac_rows\":{:?},\"mac_cols\":{:?},\
         \"lanes_per_engine\":{:?},\"input_fifo_depth\":{:?}}}",
        json_str(&spec.name),
        app_list(&spec.apps),
        encoding_list(&spec.encodings),
        spec.pixels,
        spec.nfp_units,
        spec.clock_ghz,
        spec.grid_sram_kb,
        spec.grid_sram_banks,
        spec.encoding_engines,
        spec.mac_rows,
        spec.mac_cols,
        spec.lanes_per_engine,
        spec.input_fifo_depth,
    )
}

/// One point's JSON object with the `--map-search` side-table fields
/// joined on (same extra columns as [`MAP_CSV_COLUMNS`]).
fn json_point_mapped(p: &EvaluatedPoint, m: &crate::mapsearch::MapMetrics) -> String {
    let base = json_point(p);
    format!(
        "{},\"fixed_mlp_cycles\":{},\"searched_mlp_cycles\":{},\"map_speedup\":{},\
         \"map_energy_uj\":{},\"searched_speedup\":{}}}",
        &base[..base.len() - 1],
        json_f64(m.fixed_mlp_cycles),
        json_f64(m.searched_mlp_cycles),
        json_f64(m.map_speedup()),
        json_f64(m.energy_uj),
        json_f64(m.speedup),
    )
}

fn outcome_json_impl(
    outcome: &SweepOutcome,
    frontier: &[ArchPoint],
    annotations: Option<&MapSearchOutcome>,
) -> String {
    let points: Vec<String> = match annotations {
        Some(a) => {
            assert_eq!(outcome.points.len(), a.metrics.len(), "annotation side table misaligned");
            outcome.points.iter().zip(&a.metrics).map(|(p, m)| json_point_mapped(p, m)).collect()
        }
        None => outcome.points.iter().map(json_point).collect(),
    };
    let map_block = match annotations {
        Some(a) => {
            let (beats, best) = a.beats_fixed();
            format!(
                "\"map_search\":{{\"evals\":{},\"memo_hits\":{},\"max_disagreement\":{},\
                 \"agreement_band\":{},\"beats_fixed\":{beats},\"best_map_speedup\":{}}},\n",
                a.evals,
                a.memo_hits,
                json_f64(a.max_disagreement()),
                json_f64(crate::mapsearch::AGREEMENT_BAND),
                json_f64(best),
            )
        }
        None => String::new(),
    };
    let archs: Vec<String> = frontier.iter().map(json_arch).collect();
    let s = &outcome.stats;
    format!(
        "{{\n\"spec\":{},\n\"stats\":{{\"total_points\":{},\"evaluated\":{},\"cache_hits\":{},\
         \"cache_hit\":{},\"threads\":{},\"wall_ms\":{},\"points_per_sec\":{}}},\n{map_block}\
         \"frontier\":[{}],\n\"points\":[\n{}\n]\n}}\n",
        json_spec(&outcome.spec),
        s.total_points,
        s.evaluated,
        s.cache_hits,
        s.cache_hit,
        s.threads,
        json_f64(s.wall.as_secs_f64() * 1e3),
        json_f64(s.points_per_sec()),
        archs.join(","),
        points.join(",\n"),
    )
}

/// Render a full outcome — spec, stats, every point, and the cross-app
/// frontier — as a single JSON document.
pub fn outcome_to_json(outcome: &SweepOutcome, frontier: &[ArchPoint]) -> String {
    outcome_json_impl(outcome, frontier, None)
}

/// [`outcome_to_json`] with the `--map-search` side table joined on: a
/// top-level `map_search` summary object plus five mapping-derived
/// fields on every point.
pub fn outcome_to_json_with_mapping(
    outcome: &SweepOutcome,
    frontier: &[ArchPoint],
    annotations: &MapSearchOutcome,
) -> String {
    outcome_json_impl(outcome, frontier, Some(annotations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::Constraints;
    use crate::spec::SweepSpec;
    use crate::sweep::SweepEngine;

    fn outcome() -> SweepOutcome {
        SweepEngine::new().without_cache().run(&SweepSpec::quick()).unwrap()
    }

    #[test]
    fn csv_round_trips_bit_exactly() {
        let outcome = outcome();
        let csv = points_to_csv(&outcome.points);
        let parsed = points_from_csv(&csv).unwrap();
        assert_eq!(parsed, outcome.points);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(points_from_csv("").is_err());
        assert!(points_from_csv("not,a,header\n").is_err());
        let outcome = outcome();
        let mut csv = points_to_csv(&outcome.points[..1]);
        csv.push_str("1,nerf,hashgrid,bad\n");
        assert!(points_from_csv(&csv).is_err());
    }

    #[test]
    fn csv_ignores_comment_lines() {
        let outcome = outcome();
        let csv = format!("# cache header\n{}", points_to_csv(&outcome.points));
        assert_eq!(points_from_csv(&csv).unwrap(), outcome.points);
    }

    #[test]
    fn json_has_the_expected_shape() {
        let outcome = outcome();
        let frontier = outcome.cross_app_frontier(&Constraints::NONE);
        let json = outcome_to_json(&outcome, &frontier);
        assert!(json.contains("\"spec\":"));
        assert!(json.contains("\"frontier\":["));
        assert!(json.contains("\"points\":["));
        assert!(json.contains("\"app\":\"nerf\""));
        assert!(!json.contains("NaN"));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn mapping_columns_extend_but_never_perturb_the_plain_formats() {
        let outcome = outcome();
        let annotations = crate::mapsearch::annotate(&outcome.points, None);
        let plain = points_to_csv(&outcome.points);
        let mapped = points_to_csv_with_mapping(&outcome.points, &annotations);
        assert!(mapped.starts_with(&format!("{CSV_HEADER},{MAP_CSV_COLUMNS}\n")));
        assert_eq!(mapped.lines().count(), plain.lines().count());
        for (m, p) in mapped.lines().zip(plain.lines()).skip(1) {
            assert!(m.starts_with(&format!("{p},")), "plain row must be a prefix: {m}");
            assert_eq!(m.split(',').count(), p.split(',').count() + 5);
        }

        let frontier = outcome.cross_app_frontier(&crate::pareto::Constraints::NONE);
        let json = outcome_to_json_with_mapping(&outcome, &frontier, &annotations);
        assert!(json.contains("\"map_search\":{"));
        assert!(json.contains("\"searched_speedup\":"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn json_strings_escape_controls() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
